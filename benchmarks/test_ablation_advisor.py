"""Ablation — learned variant selection (the paper's §9 future work).

Trains the :class:`VariantAdvisor` on the measured yeast cost matrix
and evaluates, leave-one-out, racing only the top-k recommended
variants instead of the full portfolio.  Expected shape: k=2 races
preserve most of the full race's QLA speedup while spending a fraction
of its total work (steps across all racing threads).
"""

from conftest import publish

from repro.harness import Table
from repro.psi import Variant, VariantAdvisor, query_features
from repro.rewriting import LabelStats

PORTFOLIO = tuple(
    Variant(alg, rw)
    for alg in ("GQL", "SPA")
    for rw in ("Orig", "ILF", "DND")
)


def _costs(matrix, unit):
    return {
        v: matrix.charged(unit, v.algorithm, v.rewriting)
        for v in PORTFOLIO
    }


def test_advisor_subset_races(yeast_matrix, benchmark):
    m = yeast_matrix
    from repro.harness import build_nfv_graph

    graph = build_nfv_graph("yeast")
    stats = LabelStats.of_graph(graph)
    feats = [
        query_features(q.graph, stats) for q in m.queries
    ]
    units = list(m.units)

    def evaluate(k):
        """Leave-one-out: race only the advisor's top-k variants."""
        ratio_sum = 0.0
        work_sum = 0
        full_work_sum = 0
        for u in units:
            advisor = VariantAdvisor(PORTFOLIO, neighbors=5)
            for v_unit in units:
                if v_unit != u:
                    advisor.observe(feats[v_unit], _costs(m, v_unit))
            picked = advisor.recommend(feats[u], k=k)
            costs = _costs(m, u)
            subset_time = min(costs[v] for v in picked)
            full_time = min(costs.values())
            ratio_sum += full_time / subset_time
            work_sum += sum(min(costs[v], subset_time) for v in picked)
            full_work_sum += sum(
                min(c, full_time) for c in costs.values()
            )
        n = len(units)
        return ratio_sum / n, work_sum / n, full_work_sum / n

    table = Table(
        "Ablation: advisor-guided subset races (yeast, portfolio of "
        f"{len(PORTFOLIO)})",
        [
            "k raced", "time preserved (QLA, 1.0 = full race)",
            "avg work steps", "full-race work steps",
        ],
    )
    preserved = {}
    for k in (1, 2, 3):
        quality, work, full_work = evaluate(k)
        preserved[k] = quality
        table.add_row(k, quality, work, full_work)
    publish(table)

    # racing more predicted variants can only close the gap
    assert preserved[1] <= preserved[2] + 1e-9 or preserved[1] > 0.9
    assert preserved[3] >= preserved[1] - 1e-9
    # k=2 should already preserve the bulk of the full race's time
    assert preserved[2] > 0.5

    benchmark(lambda: evaluate(2))
