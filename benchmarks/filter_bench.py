"""Filter-phase benchmark: bitset fast path vs the seed's set algebra.

Measures the FTV *filtering* stage in isolation — query path census,
trie probing, candidate intersection — for Grapes and GGSX over a
synthetic PPI-like collection and a query stream with isomorphic
repeats (the serving workload shape):

* **baseline** — ``FTVIndex.filter_reference``: the seed
  implementation (label-space census per call, posting-dict scans, set
  intersections, no memoization);
* **fast** — ``FTVIndex.filter``: interned int-coded census memoized
  per instance and per canonical form, threshold-mask posting bitsets,
  rarest-first bitwise-AND fold.

Both paths run over the identical stream and their candidate sets are
digest-checked for bit-for-bit equality before any number is reported.
A second section serves a closed-loop NFV workload with the filter-era
service features (request coalescing + plan-seeded racing) off and on,
recording the p95 simulated-step latency each way.

Usage::

    PYTHONPATH=src python benchmarks/filter_bench.py            # full
    PYTHONPATH=src python benchmarks/filter_bench.py --quick    # CI smoke

Writes ``BENCH_filter.json`` next to this file.  The equivalence
digest is deterministic for fixed arguments; throughput numbers are
wall-clock and machine-dependent.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script invocation: repo-root layout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.datasets import ppi_like
from repro.indexing import GGSXIndex, GrapesIndex
from repro.service import canon as _canon  # noqa: F401 -- preload the
# deferred census-memo dependency so its one-time import cost never
# lands inside a timed region
from repro.workload import extract_query, permuted_instance

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_filter.json"


def build_stream(graphs, num_queries, repeat_fraction, seed):
    """Query stream with permuted isomorphic repeats (serving shape)."""
    rng = random.Random(seed)
    base = []
    stream = []
    for i in range(num_queries):
        if base and rng.random() < repeat_fraction:
            original = base[rng.randrange(len(base))]
            stream.append(permuted_instance(original, rng))
            continue
        while True:
            gid = rng.randrange(len(graphs))
            try:
                q = extract_query(
                    graphs[gid], 3 + rng.randrange(5), rng, name=f"q{i}"
                )
                break
            except Exception:
                continue
        base.append(q)
        stream.append(q)
    return stream


def candidates_digest(rows):
    """Order-sensitive digest over (method, query index, candidates)."""
    payload = "\n".join(
        f"{method}:{i}:{','.join(map(str, cands))}"
        for method, i, cands in rows
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def baseline_prep(index, query, with_locations):
    """The seed's pre-race path for one query, faithfully.

    Filter (label census + posting-dict set algebra), then — for
    Grapes — the per-candidate *re-extraction* the seed performed
    inside ``relevant_components``: a fresh query census and a
    posting-dict walk collecting the feature locations of each
    candidate.  GGSX verifies whole graphs, so its prep is the filter
    alone.  Returns (candidates, per-candidate location unions).
    """
    candidates = index.filter_reference(query)
    if not with_locations:
        return candidates, []
    unions = []
    for gid in candidates:
        census = index.query_census(query)  # the seed's re-extraction
        vertices = set()
        for seq in census.counts:
            coded = index.interner.encode_sequence(seq)
            if coded is None:
                continue
            posting = index.trie.lookup(coded).get(gid)
            if posting is not None:
                vertices |= posting.locations
        unions.append(frozenset(vertices))
    return candidates, unions


def fast_prep(index, query, with_locations):
    """The fast pre-race path: memoized census, bitsets, one-pass
    location unions shared across candidates and isomorphic repeats."""
    candidates = index.filter(query)
    if not with_locations:
        return candidates, []
    return candidates, [
        index.feature_locations(query, gid) for gid in candidates
    ]


def bench_filters(args):
    graphs = ppi_like(
        num_graphs=args.graphs,
        avg_nodes=args.avg_nodes,
        num_labels=args.labels,
        seed=args.seed,
    )
    stream = build_stream(
        graphs, args.queries, args.repeat_fraction, args.seed + 1
    )
    methods = {}
    baseline_rows = []
    fast_rows = []
    for name, cls in (("Grapes", GrapesIndex), ("GGSX", GGSXIndex)):
        locations = name == "Grapes"
        index = cls(graphs, max_path_length=args.path_length)
        index.warm()

        base_secs = 1e18
        for _ in range(args.repetitions):
            start = time.perf_counter()
            base_out = [
                baseline_prep(index, q, locations) for q in stream
            ]
            base_secs = min(base_secs, time.perf_counter() - start)

        # standalone: a fresh fast index, nothing precomputed — repeats
        # pay their canonicalisation inside the timed region (single
        # shot: the canonical keys memoize on the query instances, so
        # only the first pass is genuinely cold)
        start = time.perf_counter()
        alone_out = [fast_prep(index, q, locations) for q in stream]
        alone_secs = time.perf_counter() - start

        # served context: the service canonicalises every submission
        # for its result cache (seed behaviour) and the key is memoized
        # per query instance, so by filter time it is already on the
        # graph — replicate that by hoisting the canon out of the
        # timed region.  Each repetition runs through a fresh index
        # (cold census caches), so the cold path recurs per pass.
        for q in stream:
            _canon.canonical_query_key(q)
        fast_secs = 1e18
        for _ in range(args.repetitions):
            served_index = cls(graphs, max_path_length=args.path_length)
            served_index.warm()
            start = time.perf_counter()
            fast_out = [
                fast_prep(served_index, q, locations) for q in stream
            ]
            fast_secs = min(fast_secs, time.perf_counter() - start)

        # bit-for-bit: candidate ids AND per-candidate location unions
        if base_out != fast_out or base_out != alone_out:
            raise SystemExit(
                f"{name}: fast filter diverged from the reference"
            )
        baseline_rows += [
            (name, i, c) for i, (c, _) in enumerate(base_out)
        ]
        fast_rows += [
            (name, i, c) for i, (c, _) in enumerate(fast_out)
        ]
        methods[name] = {
            "includes_location_prep": locations,
            "baseline_seconds": base_secs,
            "standalone_seconds": alone_secs,
            "fast_seconds": fast_secs,
            "baseline_qps": len(stream) / base_secs,
            "standalone_qps": len(stream) / alone_secs,
            "fast_qps": len(stream) / fast_secs,
            "standalone_speedup": base_secs / alone_secs,
            "speedup": base_secs / fast_secs,
            "census_cache": served_index.census_cache_metrics(),
            "mean_candidates": (
                sum(len(c) for c, _ in fast_out) / len(fast_out)
            ),
        }
    digest = candidates_digest(fast_rows)
    assert digest == candidates_digest(baseline_rows)
    total_base = sum(m["baseline_seconds"] for m in methods.values())
    total_fast = sum(m["fast_seconds"] for m in methods.values())
    return {
        "queries": len(stream),
        "graphs": args.graphs,
        "path_length": args.path_length,
        "repeat_fraction": args.repeat_fraction,
        "methods": methods,
        "speedup_overall": total_base / total_fast,
        "equivalence_digest": digest,
    }


def bench_serve(args):
    """p95 served latency with the filter-era features off vs on."""
    from repro.service import (
        AdmissionController,
        QueryOptions,
        Service,
        TenantPolicy,
        run_closed_loop,
    )
    from repro.workload import default_tenant_mixes, generate_tenant_stream

    results = {}
    for label, plan_seeding, coalesce in (
        ("features_off", False, False),
        ("features_on", True, True),
    ):
        svc = Service(
            workers=4,
            plan_seeding=plan_seeding,
            coalesce=coalesce,
            admission=AdmissionController(
                default_policy=TenantPolicy(step_budget=args.budget)
            ),
        )
        svc.load_dataset("yeast", scale=args.serve_scale)
        graphs = svc.catalog.get("yeast").graphs
        tenants = 3
        mixes = default_tenant_mixes(
            tenants,
            max(1, args.serve_queries // tenants),
            sizes=(4, 6, 8),
            repeat_fraction=0.5,
        )
        streams = {
            m.tenant: generate_tenant_stream(graphs, m, seed=args.seed)
            for m in mixes
        }
        report = run_closed_loop(
            svc,
            "yeast",
            streams,
            options=QueryOptions(),
            concurrency=2,
        )
        payload = report.as_json()
        results[label] = {
            "digest": payload["digest"],
            "latency_steps": payload["latency_steps"],
            "virtual_steps": payload["throughput"]["virtual_steps"],
            "coalesced": payload["admission"]["coalesced"],
            "plan_seeded": payload["admission"]["plan_seeded"],
            "result_cache_hits": payload["result_cache"]["hits"],
        }
    off = results["features_off"]["latency_steps"]["p95"]
    on = results["features_on"]["latency_steps"]["p95"]
    results["p95_improvement"] = off / on if on else float("inf")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small collection + stream (CI smoke)")
    parser.add_argument("--graphs", type=int, default=None)
    parser.add_argument("--avg-nodes", type=int, default=None)
    parser.add_argument("--labels", type=int, default=8)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--path-length", type=int, default=None)
    parser.add_argument("--repeat-fraction", type=float, default=0.5)
    parser.add_argument("--repetitions", type=int, default=5,
                        help="timing passes per measurement (best-of)")
    parser.add_argument("--serve-queries", type=int, default=None)
    parser.add_argument("--serve-scale", default=None)
    parser.add_argument("--budget", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--skip-serve", action="store_true",
                        help="filter section only")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    args.graphs = args.graphs or (8 if args.quick else 24)
    args.avg_nodes = args.avg_nodes or (40 if args.quick else 70)
    args.queries = args.queries or (60 if args.quick else 600)
    args.path_length = args.path_length or (2 if args.quick else 3)
    args.serve_queries = args.serve_queries or (24 if args.quick else 90)
    args.serve_scale = args.serve_scale or "tiny"

    payload = {
        "bench": "filter",
        "quick": args.quick,
        "seed": args.seed,
        "filter": bench_filters(args),
    }
    if not args.skip_serve:
        payload["serve"] = bench_serve(args)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)

    flt = payload["filter"]
    for name, row in flt["methods"].items():
        print(
            f"{name}: baseline {row['baseline_qps']:.0f} q/s, "
            f"fast {row['fast_qps']:.0f} q/s "
            f"({row['speedup']:.2f}x)"
        )
    print(f"filter-phase speedup overall {flt['speedup_overall']:.2f}x")
    print(f"equivalence digest {flt['equivalence_digest']}")
    if "serve" in payload:
        sv = payload["serve"]
        print(
            "served p95: "
            f"{sv['features_off']['latency_steps']['p95']} -> "
            f"{sv['features_on']['latency_steps']['p95']} steps "
            f"({sv['p95_improvement']:.2f}x)"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
