"""Fig. 8 + Table 8 — speedup*QLA across rewritings, NFV.

Paper: same metric as Fig. 7 for GraphQL/sPath/QuickSI on yeast, human,
wordnet.  Expected shape: sPath and QuickSI benefit most; GraphQL's
plan-based ordering is least ID-sensitive; wordnet benefits least (its
near-path queries with 1-2 labels give rewritings nothing to work
with — paper §6.2).
"""

from conftest import publish

from repro.harness import rewriting_speedup_table


def test_fig8_table8(nfv_matrices, benchmark):
    benchmark(
        lambda: rewriting_speedup_table(nfv_matrices["yeast"], "bench")
    )
    avgs = {}
    for name, m in nfv_matrices.items():
        table = rewriting_speedup_table(
            m, f"Fig 8 / Table 8: {name}, speedup*QLA across rewritings"
        )
        publish(table)
        for row in table.rows:
            if isinstance(row[1], float):
                avgs[(name, row[0])] = row[1]
            assert row[3] >= 1.0
    # wordnet gains less from rewritings than yeast does, for the
    # algorithm present on both (paper §6.2's sparsity/label argument)
    if ("wordnet", "SPA") in avgs and ("yeast", "SPA") in avgs:
        assert avgs[("wordnet", "SPA")] <= avgs[("yeast", "SPA")] * 2.0
