"""Fig. 6 — per-rewriting average times and hard percentages.

Paper: WLA average processing time of the original query and each of
the five proposed rewritings, plus the percentage of hard queries per
rewriting, on PPI (FTV) and yeast (NFV).  Expected shape: for FTV, the
ILF family performs best; for NFV no single rewriting dominates, and
some rewritings are *worse* than the original for GraphQL.
"""

from conftest import publish

from repro.harness import (
    rewriting_aet_table,
    rewriting_hard_pct_table,
)


def test_fig6ab_ppi(ppi_matrix, benchmark):
    m = ppi_matrix
    benchmark(lambda: rewriting_aet_table(m, "bench"))
    aet = rewriting_aet_table(
        m, "Fig 6(a): PPI, WLA-avg exec steps per rewriting"
    )
    hard = rewriting_hard_pct_table(
        m, "Fig 6(b): PPI, % hard queries per rewriting"
    )
    publish(aet)
    publish(hard)
    # each method's per-rewriting averages must differ: the rewriting
    # matters (the core of the paper's §6)
    for method in m.methods:
        col = aet.column(method)
        assert len({round(v, 6) for v in col}) > 1


def test_fig6cd_yeast(yeast_matrix, benchmark):
    m = yeast_matrix
    benchmark(lambda: rewriting_hard_pct_table(m, "bench"))
    aet = rewriting_aet_table(
        m, "Fig 6(c): yeast, WLA-avg exec steps per rewriting"
    )
    hard = rewriting_hard_pct_table(
        m, "Fig 6(d): yeast, % hard queries per rewriting"
    )
    publish(aet)
    publish(hard)
    names = aet.column("rewriting")
    assert names[0] == "Orig"
    assert "ILF+DND" in names
