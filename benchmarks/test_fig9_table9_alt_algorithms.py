"""Fig. 9 + Table 9 — speedup*QLA from alternative algorithms.

Paper: per query, the speedup of switching to the best algorithm in
the set over sticking with one algorithm (original query IDs), for
yeast with 2 and 3 algorithms, human, and wordnet.  Expected shape:
speedups exceeding the rewriting-only speedups of Fig. 8 — "the use of
multiple algorithms could be way more beneficial compared to the
rewritings" — and adding QuickSI to the yeast set helps further.
"""

from conftest import publish

from repro.harness import (
    alt_algorithm_speedup_table,
    rewriting_speedup_table,
)


def test_fig9_table9(nfv_matrices, benchmark):
    yeast = nfv_matrices["yeast"]
    benchmark(
        lambda: alt_algorithm_speedup_table(
            yeast, "bench", [("pair", ("GQL", "SPA"))]
        )
    )
    yeast_sets = [
        ("yeast2alg", ("GQL", "SPA")),
        ("yeast3alg", ("GQL", "SPA", "QSI")),
    ]
    table = alt_algorithm_speedup_table(
        yeast, "Fig 9 / Table 9: yeast, speedup*QLA from alternative "
        "algorithms", yeast_sets,
    )
    publish(table)
    by_key = {(row[0], row[1]): row[2] for row in table.rows}
    # somebody must be helped substantially by algorithm switching
    assert max(by_key.values()) > 1.5
    # the 3-algorithm set can only help more than the 2-algorithm set
    assert by_key[("yeast3alg", "GQL")] >= by_key[("yeast2alg", "GQL")]
    assert by_key[("yeast3alg", "SPA")] >= by_key[("yeast2alg", "SPA")]

    for name in ("human", "wordnet"):
        m = nfv_matrices[name]
        t = alt_algorithm_speedup_table(
            m,
            f"Fig 9 / Table 9: {name}, speedup*QLA from alternative "
            "algorithms",
            [("2alg", ("GQL", "SPA"))],
        )
        publish(t)

    # cross-observation: algorithm switching beats rewritings for the
    # weaker algorithm (paper §7 conclusion), checked on yeast/SPA
    rew = rewriting_speedup_table(yeast, "unpublished")
    rew_avg = {row[0]: row[1] for row in rew.rows}
    assert by_key[("yeast3alg", "SPA")] >= rew_avg["SPA"] * 0.5
