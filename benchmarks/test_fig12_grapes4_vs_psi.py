"""Fig. 12 — Grapes/4 vs Ψ(Grapes/1 × 4 rewritings), by query size.

Paper: both contenders use 4-way parallelism on the PPI dataset;
Ψ spends its threads on rewriting races instead of component splitting
and wins, increasingly so at larger query sizes.
"""

from conftest import publish

from repro.harness import grapes_psi_by_size_table


def test_fig12(ppi_matrix, benchmark):
    m = ppi_matrix
    benchmark(lambda: grapes_psi_by_size_table(m, "bench"))
    table = grapes_psi_by_size_table(
        m,
        "Fig 12: PPI, Grapes/4 vs Psi(Grapes/1 x ILF/IND/DND/ILF+IND), "
        "WLA-avg steps by query size",
    )
    publish(table)
    grapes4 = table.column("Grapes/4")
    psi = table.column("Psi(Grapes/1 x4 rewritings)")
    # same parallelism level: Psi must win overall (paper's punchline)
    assert sum(psi) <= sum(grapes4) * 1.1
    # and must win outright on at least one size
    assert any(p < g for p, g in zip(psi, grapes4))
