"""Fig. 1 — stragglers in FTV methods.

Paper: (a) synthetic and (b) PPI WLA-average execution times of easy /
2''-600'' / completed queries for Grapes/1, Grapes/4 (and GGSX on PPI);
(c) percentages of easy, 2''-600'' and hard queries.  Expected shape:
the completed average sits far above the easy average (stragglers
dominate), and Grapes/4 has a smaller hard share than Grapes/1.
"""

from conftest import publish

from repro.harness import band_percentages_table, stragglers_wla_table


def test_fig1a_synthetic_wla(synthetic_matrix, benchmark):
    m = synthetic_matrix
    benchmark(lambda: stragglers_wla_table(m, "bench"))
    table = stragglers_wla_table(
        m, "Fig 1(a): synthetic, WLA-avg exec steps per band"
    )
    publish(table)
    easy = table.column("easy")
    completed = table.column("completed")
    for e, c in zip(easy, completed):
        assert c >= e  # stragglers pull the completed average up


def test_fig1b_ppi_wla(ppi_matrix, benchmark):
    m = ppi_matrix
    benchmark(lambda: stragglers_wla_table(m, "bench"))
    table = stragglers_wla_table(
        m, "Fig 1(b): PPI, WLA-avg exec steps per band"
    )
    publish(table)
    assert set(table.column("method")) == {
        "Grapes/1", "Grapes/4", "GGSX"
    }


def test_fig1c_band_percentages(synthetic_matrix, ppi_matrix, benchmark):
    benchmark(
        lambda: band_percentages_table(ppi_matrix, "bench")
    )
    for name, m in (
        ("synthetic", synthetic_matrix), ("PPI", ppi_matrix)
    ):
        table = band_percentages_table(
            m, f"Fig 1(c): {name}, % of easy / 2''-600'' / hard"
        )
        publish(table)
        pct = {
            row[0]: row[1] + row[2] + row[3] for row in table.rows
        }
        for method, total in pct.items():
            assert abs(total - 100.0) < 1e-6, method
