"""Fig. 2 — stragglers in NFV methods.

Paper: WLA-average execution times per band for GraphQL, sPath (and
QuickSI on yeast) over yeast, human, wordnet, plus the band
percentages.  Expected shape: completed averages dominated by the most
expensive queries; different algorithms show different hard-query
shares on different datasets.
"""

from conftest import publish

from repro.harness import band_percentages_table, stragglers_wla_table


def test_fig2abc_wla(nfv_matrices, benchmark):
    benchmark(
        lambda: stragglers_wla_table(nfv_matrices["yeast"], "bench")
    )
    panel = {"yeast": "2(a)", "human": "2(b)", "wordnet": "2(c)"}
    for name, m in nfv_matrices.items():
        table = stragglers_wla_table(
            m, f"Fig {panel[name]}: {name}, WLA-avg exec steps per band"
        )
        publish(table)
        easy = table.column("easy")
        completed = table.column("completed")
        for e, c in zip(easy, completed):
            if c == c and e == e:  # skip NaN bands
                assert c >= e


def test_fig2d_band_percentages(nfv_matrices, benchmark):
    benchmark(
        lambda: band_percentages_table(nfv_matrices["yeast"], "bench")
    )
    hard_share = {}
    for name, m in nfv_matrices.items():
        table = band_percentages_table(
            m, f"Fig 2(d): {name}, % of easy / 2''-600'' / hard"
        )
        publish(table)
        for row in table.rows:
            hard_share[(name, row[0])] = row[3]
    # paper's observation 5 precondition: hard shares differ between
    # algorithms on the same dataset (stragglers are algorithm-specific)
    differs = any(
        hard_share[(ds, "GQL")] != hard_share[(ds, "SPA")]
        for ds in ("yeast", "human", "wordnet")
    )
    assert differs
