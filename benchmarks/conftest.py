"""Benchmark-suite fixtures: measured cost matrices, shared per session.

Every bench in this directory derives its figure/table from the same
per-dataset cost matrices, mirroring how the paper derives all of its
evaluation from one measurement campaign.  Matrices are measured once
per pytest session (a few minutes of pure Python in total) and reused.

Rendered tables are accumulated and printed in the terminal summary, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
every reproduced figure/table without needing ``-s``.
"""

from __future__ import annotations

import time

import pytest

from repro.harness import (
    FTVExperimentConfig,
    NFVExperimentConfig,
    measure_ftv_matrix,
    measure_nfv_matrix,
)

_REPORTS: list[str] = []


def publish(table_or_text) -> None:
    """Register a rendered table for the end-of-run report."""
    text = (
        table_or_text
        if isinstance(table_or_text, str)
        else table_or_text.render()
    )
    _REPORTS.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep(
        "=", "reproduced paper figures and tables"
    )
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)


def _timed(label: str, fn):
    start = time.time()
    out = fn()
    publish(f"[measurement] {label}: {time.time() - start:.1f}s")
    return out


@pytest.fixture(scope="session")
def yeast_matrix():
    cfg = NFVExperimentConfig.default("yeast")
    return _timed("yeast matrix", lambda: measure_nfv_matrix(cfg))


@pytest.fixture(scope="session")
def human_matrix():
    cfg = NFVExperimentConfig.default("human")
    return _timed("human matrix", lambda: measure_nfv_matrix(cfg))


@pytest.fixture(scope="session")
def wordnet_matrix():
    cfg = NFVExperimentConfig.default("wordnet")
    return _timed("wordnet matrix", lambda: measure_nfv_matrix(cfg))


@pytest.fixture(scope="session")
def ppi_matrix():
    cfg = FTVExperimentConfig.default("ppi")
    return _timed("ppi matrix", lambda: measure_ftv_matrix(cfg))


@pytest.fixture(scope="session")
def synthetic_matrix():
    cfg = FTVExperimentConfig.default("synthetic")
    return _timed(
        "synthetic matrix", lambda: measure_ftv_matrix(cfg)
    )


@pytest.fixture(scope="session")
def nfv_matrices(yeast_matrix, human_matrix, wordnet_matrix):
    return {
        "yeast": yeast_matrix,
        "human": human_matrix,
        "wordnet": wordnet_matrix,
    }


@pytest.fixture(scope="session")
def ftv_matrices(ppi_matrix, synthetic_matrix):
    return {"ppi": ppi_matrix, "synthetic": synthetic_matrix}
