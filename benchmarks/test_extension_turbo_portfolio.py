"""Extension — widening the Ψ portfolio with TurboISO.

The paper anticipates newer algorithms (its ref [6] is TurboISO) and
argues its framework subsumes them: a better algorithm is just another
thread to race.  This bench measures a yeast matrix with TurboISO added
to the roster and compares Ψ([GQL/SPA]) against Ψ([GQL/SPA/TUR]).
Expected shape: TurboISO alone still has hard queries (the paper's
"all algorithms show exponential execution times" claim), and adding it
to the race never hurts beyond overhead.
"""

from conftest import publish

from repro.harness import (
    NFVExperimentConfig,
    Table,
    WorkloadSpec,
    band_percentages_table,
    measure_nfv_matrix,
    psi_race_time,
)
from repro.metrics import Thresholds
from repro.psi import OverheadModel


def test_turbo_portfolio(benchmark):
    cfg = NFVExperimentConfig(
        dataset="yeast",
        workload=WorkloadSpec(sizes=(8, 16, 24), queries_per_size=5),
        thresholds=Thresholds(easy_steps=2_000, budget_steps=200_000),
        algorithms_override=("GQL", "SPA", "TUR"),
    )
    m = measure_nfv_matrix(cfg, variant_names=("Orig",))
    publish(band_percentages_table(
        m, "Extension: yeast bands with TurboISO in the roster"
    ))

    overhead = OverheadModel(per_variant_steps=32)
    two = [("GQL", "Orig"), ("SPA", "Orig")]
    three = two + [("TUR", "Orig")]
    table = Table(
        "Extension: Psi([GQL/SPA]) vs Psi([GQL/SPA/TUR]), yeast",
        ["unit pool", "avg race steps 2-alg", "avg race steps 3-alg"],
    )
    t2 = [psi_race_time(m, u, two, overhead)[0] for u in m.units]
    t3 = [psi_race_time(m, u, three, overhead)[0] for u in m.units]
    table.add_row(
        f"{len(m.queries)} queries",
        sum(t2) / len(t2),
        sum(t3) / len(t3),
    )
    publish(table)

    # racing one more algorithm costs only its overhead
    slack = overhead.per_variant_steps * 2
    assert sum(t3) <= sum(t2) + slack * len(t3)
    # TurboISO is not a silver bullet: it must not dominate every unit
    tur_wins = sum(
        1
        for u in m.units
        if m.charged(u, "TUR", "Orig")
        < min(m.charged(u, "GQL", "Orig"), m.charged(u, "SPA", "Orig"))
    )
    assert tur_wins < len(list(m.units))

    benchmark(lambda: [psi_race_time(m, u, three, overhead) for u in m.units])
