"""Observation 5, quantified — straggler-set overlap between algorithms.

The paper's Observation 5 ("stragglers are algorithm-specific") is the
load-bearing premise of multi-algorithm racing, but the paper
demonstrates it only through speedup numbers.  This bench measures it
directly: the Jaccard overlap of the per-algorithm hard sets, plus the
winner-attribution of the [GQL/SPA] race.  Expected shape: overlaps
well below 1 wherever racing helps (Fig 14/15), and both algorithms
winning non-trivial shares of races.
"""

from conftest import publish

from repro.harness import (
    hard_overlap_table,
    hard_set,
    winner_attribution_table,
)


def test_hard_set_overlap(nfv_matrices, benchmark):
    benchmark(lambda: hard_overlap_table(nfv_matrices["yeast"]))
    for name, m in nfv_matrices.items():
        table = hard_overlap_table(
            m, f"Observation 5: {name}, hard-set overlap (Jaccard)"
        )
        publish(table)
        gql_hard = hard_set(m, "GQL")
        spa_hard = hard_set(m, "SPA")
        if gql_hard or spa_hard:
            overlap = len(gql_hard & spa_hard) / len(
                gql_hard | spa_hard
            )
            # racing helps exactly when the hard sets don't coincide
            assert overlap < 1.0


def test_winner_attribution(nfv_matrices, benchmark):
    m = nfv_matrices["yeast"]
    members = [("GQL", "Orig"), ("SPA", "Orig")]
    benchmark(lambda: winner_attribution_table(m, members))
    for name, matrix in nfv_matrices.items():
        table = winner_attribution_table(
            matrix,
            members,
            f"Observation 5: {name}, [GQL/SPA] race winner shares",
        )
        publish(table)
        wins = {row[0]: row[1] for row in table.rows}
        total = sum(wins.values())
        assert total > 0
    # across the three datasets both algorithms must win somewhere:
    # no single algorithm dominates every dataset (paper §4 conclusion)
    shares = {"GQL-Orig": 0, "SPA-Orig": 0}
    for matrix in nfv_matrices.values():
        t = winner_attribution_table(matrix, members, "x")
        for row in t.rows:
            shares[row[0]] += row[1]
    assert shares["GQL-Orig"] > 0
    assert shares["SPA-Orig"] > 0
