"""Ablation — the three race executors agree.

The interleaved executor is the reproduction's deterministic stand-in
for real parallel racing (DESIGN.md §2).  This ablation verifies, on
live races over a yeast-like store, that (i) the interleaved winner's
step count equals the minimum of the standalone per-variant costs —
i.e. simulated races replayed from cost matrices are exact — and
(ii) the threaded executor reaches the same decision answers.
"""

from conftest import publish

from repro.harness import Table, build_nfv_graph
from repro.matching import Budget
from repro.psi import PsiNFV, Variant
from repro.workload import generate_workload

VARIANTS = [
    Variant("GQL", "Orig"),
    Variant("SPA", "Orig"),
    Variant("GQL", "DND"),
    Variant("SPA", "ILF"),
]


def test_executor_agreement(benchmark):
    graph = build_nfv_graph("yeast", scale="tiny")
    psi = PsiNFV(graph)
    queries = generate_workload([graph], 6, 6, seed=5)
    budget = Budget(max_steps=50_000)

    table = Table(
        "Ablation: executor agreement (yeast-like, 6 queries)",
        ["query", "min standalone", "interleaved race", "winner"],
    )
    for q in queries:
        standalone = {
            v: psi.run_variant(
                q.graph, v, budget=budget, max_embeddings=1
            )
            for v in VARIANTS
        }
        best = min(
            c.steps for c in standalone.values() if not c.killed
        )
        race = psi.race(
            q.graph, VARIANTS, budget=budget, max_embeddings=1
        )
        table.add_row(
            q.name, best, race.steps, str(race.winner)
        )
        assert race.steps == best  # zero-overhead default
        threaded = psi.race(
            q.graph, VARIANTS, budget=budget, max_embeddings=1,
            executor="threaded",
        )
        assert threaded.found == race.found
    publish(table)

    benchmark(
        lambda: psi.race(
            queries[0].graph, VARIANTS, budget=budget, max_embeddings=1
        )
    )
