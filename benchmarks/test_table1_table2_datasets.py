"""Tables 1 and 2 — dataset characteristics.

Paper: the statistics of the FTV datasets (Table 1: PPI and the
GraphGen synthetic) and NFV datasets (Table 2: yeast, human, wordnet).
This bench prints the same rows for the generated stand-ins so the
scale mapping is auditable (see DESIGN.md §2 for the substitution
rationale — node counts and label alphabets scale together to preserve
per-label multiplicity).
"""

from conftest import publish

from repro.datasets import summarize_collection, summarize_graph
from repro.harness import Table, build_ftv_graphs, build_nfv_graph


def test_table1_ftv_datasets(benchmark):
    datasets = {
        name: build_ftv_graphs(name) for name in ("ppi", "synthetic")
    }
    benchmark(lambda: summarize_collection(datasets["ppi"]))
    table = Table(
        "Table 1: FTV dataset characteristics (generated stand-ins)",
        ["statistic", "ppi", "synthetic"],
    )
    summaries = {
        name: dict(summarize_collection(graphs).as_rows())
        for name, graphs in datasets.items()
    }
    for stat in summaries["ppi"]:
        table.add_row(
            stat, summaries["ppi"][stat], summaries["synthetic"][stat]
        )
    publish(table)
    # paper regime: every PPI graph is disconnected, synthetic connected
    assert all(
        len(g.connected_components()) > 1 for g in datasets["ppi"]
    )
    assert all(g.is_connected() for g in datasets["synthetic"])
    # synthetic denser than PPI (paper: 0.020 vs 0.0022)
    ppi_density = summarize_collection(datasets["ppi"]).avg_density
    syn_density = summarize_collection(
        datasets["synthetic"]
    ).avg_density
    assert syn_density > ppi_density


def test_table2_nfv_datasets(benchmark):
    graphs = {
        name: build_nfv_graph(name)
        for name in ("yeast", "human", "wordnet")
    }
    benchmark(lambda: summarize_graph(graphs["yeast"]))
    table = Table(
        "Table 2: NFV dataset characteristics (generated stand-ins)",
        ["statistic", "yeast", "human", "wordnet"],
    )
    summaries = {
        name: dict(summarize_graph(g).as_rows())
        for name, g in graphs.items()
    }
    for stat in summaries["yeast"]:
        table.add_row(
            stat, summaries["yeast"][stat], summaries["human"][stat],
            summaries["wordnet"][stat],
        )
    publish(table)
    # paper regime ordering: human densest, wordnet sparsest + fewest
    # labels with the heaviest skew
    assert (
        graphs["human"].average_degree()
        > graphs["yeast"].average_degree()
        > graphs["wordnet"].average_degree()
    )
    assert len(graphs["wordnet"].distinct_labels()) == 5
