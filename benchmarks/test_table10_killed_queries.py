"""Table 10 — percentage of killed queries, baselines vs Ψ.

Paper: Grapes/4 on PPI and GraphQL/sPath on yeast/human/wordnet vs the
Ψ-framework (Grapes/1 × 4 rewritings for FTV; [GQL/SPA]-[Or/DND] for
NFV).  Expected shape: Ψ strictly reduces the killed percentage, often
to zero — "hard queries became extinct".
"""

from conftest import publish

from repro.harness import killed_pct_table


def test_table10(nfv_matrices, ppi_matrix, benchmark):
    ftv_members = [
        ("Grapes/1", rw) for rw in ("ILF", "IND", "DND", "ILF+IND")
    ]
    nfv_members = [
        (alg, rw) for alg in ("GQL", "SPA") for rw in ("Orig", "DND")
    ]
    entries = [("PPI", "Grapes/4", ppi_matrix, ftv_members)]
    for name, m in nfv_matrices.items():
        entries.append((name, "GQL", m, nfv_members))
        entries.append((name, "SPA", m, nfv_members))
    benchmark(lambda: killed_pct_table(entries))
    table = killed_pct_table(
        entries,
        title="Table 10: % of killed queries, baseline vs Psi",
    )
    publish(table)
    for row in table.rows:
        label, _baseline, base_killed, psi_killed = row
        assert psi_killed <= base_killed, label
