"""Fig. 4 + Table 6 — (max/min)QLA over isomorphic instances, NFV.

Paper: same metric as Fig. 3 for GraphQL/sPath/QuickSI.  Expected
shape: ratios up to a couple of orders of magnitude lower than the FTV
ones (NFV methods impose stricter matching orders), with GraphQL the
least ID-sensitive of the three.
"""

import statistics

from conftest import publish

from repro.harness import maxmin_table


def test_fig4_table6(nfv_matrices, ftv_matrices, benchmark):
    benchmark(lambda: maxmin_table(nfv_matrices["yeast"], "bench"))
    nfv_avgs = []
    for name, m in nfv_matrices.items():
        table = maxmin_table(
            m,
            f"Fig 4 / Table 6: {name}, (max/min)QLA over 6 isomorphic "
            "instances",
        )
        publish(table)
        for row in table.rows:
            if isinstance(row[1], float):
                nfv_avgs.append(row[1])
            assert row[3] >= 1.0  # min of the ratio is 1 by definition
    ftv_table = maxmin_table(ftv_matrices["ppi"], "unpublished")
    ftv_avg = statistics.mean(
        row[1] for row in ftv_table.rows if isinstance(row[1], float)
    )
    # the paper's cross-family observation: FTV variance >> NFV variance
    assert ftv_avg > statistics.mean(nfv_avgs)
