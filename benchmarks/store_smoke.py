#!/usr/bin/env python
"""CI store-smoke: the artifact store end to end, corruption included.

What it proves, in order:

1. **Corruption matrix** — a warmed store is copied once per
   corruption class (``StoreFaultInjector.CORRUPTIONS``: torn write,
   truncate, bit flip, deleted blob, version skew, stale manifest,
   duplicate manifest), the fault is injected, and a service booted
   from the damaged store must (a) detect the defect exactly as the
   recovery matrix in ``docs/STORE.md`` says, (b) quarantine what can
   be quarantined, and (c) serve the seeded workload with an
   ``answers_digest`` equal to a fresh never-persisted run — zero
   silently-served corrupt artifacts.
2. **Warm → kill → cold boot** — ``repro warm --store`` runs as a
   subprocess and exits (the warming process is gone for good); a
   service cold-booted from nothing but the store's bytes answers the
   workload digest-identically to a fresh warm, with every artifact
   restored rather than rebuilt.
3. **CLI drill** — ``repro serve --store --chaos --regrow`` as a
   subprocess: replicas killed by the fault plan are regrown from the
   store mid-drill, zero tickets lost, and the printed results digest
   equals the same CLI invocation serving without a store.

Run:  PYTHONPATH=src python benchmarks/store_smoke.py
"""

from __future__ import annotations

import os
import re
import shutil
import subprocess
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.service import (  # noqa: E402
    AdmissionController,
    QueryOptions,
    Service,
    TenantPolicy,
    run_closed_loop,
)
from repro.service.faults import StoreFaultInjector  # noqa: E402
from repro.service.sharding import ShardedCatalog  # noqa: E402
from repro.store import StoreWriter  # noqa: E402
from repro.workload import (  # noqa: E402
    default_tenant_mixes,
    generate_tenant_stream,
)

HERE = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.join(HERE, os.pardir, "src")

BUDGET = 60_000
FTV_OPTS = QueryOptions(rewritings=("Orig", "DND"))
SHARDS = 2

#: expected detection/recovery per corruption class (the docs/STORE.md
#: matrix, in executable form).  ``served`` is whether any artifact is
#: still restored from disk after the fault.
MATRIX = {
    "torn_write": {"detected": True, "quarantined": True, "served": True},
    "truncate": {"detected": True, "quarantined": True, "served": True},
    "bit_flip": {"detected": True, "quarantined": True, "served": True},
    "delete_blob": {"detected": True, "quarantined": False, "served": True},
    "version_skew": {"detected": True, "quarantined": True, "served": False},
    "stale_manifest": {"detected": True, "quarantined": True, "served": False},
    "duplicate_manifest": {
        "detected": False, "quarantined": False, "served": True,
    },
}


def check(cond: bool, message: str) -> None:
    if not cond:
        raise SystemExit(f"store-smoke FAILED: {message}")


def build_service(store=None) -> Service:
    svc = Service(
        workers=4,
        shards=SHARDS,
        replicas=1,
        admission=AdmissionController(
            default_policy=TenantPolicy(step_budget=BUDGET)
        ),
        store=store,
    )
    svc.load_dataset("ppi", scale="tiny")
    return svc


def streams(svc):
    graphs = svc.catalog.get("ppi").graphs
    mixes = default_tenant_mixes(
        2, 8, sizes=(4, 6), repeat_fraction=0.3
    )
    return {
        m.tenant: generate_tenant_stream(graphs, m, seed=9)
        for m in mixes
    }


def run(svc):
    return run_closed_loop(
        svc, "ppi", streams(svc), options=FTV_OPTS, concurrency=2
    ).as_json()


def warm_pristine(root: str) -> None:
    catalog = ShardedCatalog(num_shards=SHARDS)
    catalog.load("ppi", scale="tiny")
    StoreWriter(root).write_catalog(catalog)


def corruption_matrix(workdir: str, baseline: dict) -> None:
    pristine = os.path.join(workdir, "pristine")
    warm_pristine(pristine)
    check(
        set(MATRIX) == set(StoreFaultInjector.CORRUPTIONS),
        "matrix rows out of sync with StoreFaultInjector.CORRUPTIONS",
    )
    for kind in StoreFaultInjector.CORRUPTIONS:
        root = os.path.join(workdir, kind)
        shutil.copytree(pristine, root)
        StoreFaultInjector(root, seed=7).inject(kind)
        svc = build_service(store=root)
        reader = svc.catalog.store
        payload = run(svc)
        want = MATRIX[kind]
        check(
            (reader.corrupt_detected > 0) == want["detected"],
            f"{kind}: corrupt_detected={reader.corrupt_detected}, "
            f"expected detected={want['detected']}",
        )
        check(
            (reader.quarantined > 0) == want["quarantined"],
            f"{kind}: quarantined={reader.quarantined}, "
            f"expected quarantined={want['quarantined']}",
        )
        check(
            (reader.restores > 0) == want["served"],
            f"{kind}: restores={reader.restores}, "
            f"expected served={want['served']}",
        )
        check(
            payload["answers_digest"] == baseline["answers_digest"],
            f"{kind}: answers diverged after recovery "
            f"({payload['answers_digest']} != "
            f"{baseline['answers_digest']})",
        )
    print(
        f"[1/3] corruption matrix: {len(MATRIX)} classes detected and "
        f"recovered, answers digest {baseline['answers_digest']}"
    )


def cli(args: list[str]) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.setdefault("PYTHONHASHSEED", "0")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    check(
        proc.returncode == 0,
        f"repro {' '.join(args)} exited {proc.returncode}:\n"
        f"{proc.stdout}\n{proc.stderr}",
    )
    return proc.stdout


def cold_boot(workdir: str, baseline: dict) -> None:
    root = os.path.join(workdir, "cold")
    out = cli([
        "warm", "--store", root, "--dataset", "ppi",
        "--scale", "tiny", "--shards", str(SHARDS), "--verify",
    ])
    check("0 bad" in out, f"warm --verify reported bad blobs:\n{out}")
    # the warming process is dead; only its bytes remain
    svc = build_service(store=root)
    reader = svc.catalog.store
    check(
        reader.restores > 0 and reader.rebuilds == 0,
        f"cold boot should restore everything, got "
        f"restores={reader.restores} rebuilds={reader.rebuilds}",
    )
    payload = run(svc)
    for key in ("answers_digest", "digest"):
        check(
            payload[key] == baseline[key],
            f"cold boot {key} diverged: "
            f"{payload[key]} != {baseline[key]}",
        )
    check(
        sorted(svc.stats()) == sorted(baseline["stats_keys"]),
        "cold-boot stats key set diverged from fresh warm",
    )
    print(
        f"[2/3] warm(subprocess) -> cold boot: "
        f"{reader.restores} restores, 0 rebuilds, digest "
        f"{payload['digest']}"
    )


def cli_drill(workdir: str) -> None:
    root = os.path.join(workdir, "drill")
    cli([
        "warm", "--store", root, "--dataset", "ppi",
        "--scale", "tiny", "--shards", "2", "--replicas", "2",
    ])
    serve = [
        "serve", "--dataset", "ppi", "--scale", "tiny",
        "--shards", "2", "--replicas", "2",
        "--chaos", "--chaos-seed", "1337", "--regrow",
    ]
    stored = cli([*serve, "--store", root])
    fresh = cli(serve)

    def digest(out: str) -> str:
        match = re.search(r"results digest (\w+)", out)
        check(match is not None, f"no results digest line in:\n{out}")
        return match.group(1)

    check(
        digest(stored) == digest(fresh),
        f"serve --store digest {digest(stored)} != "
        f"fresh serve digest {digest(fresh)}",
    )
    check(
        re.search(r"chaos: .* 0 lost", stored) is not None,
        f"store-backed chaos run lost tickets:\n{stored}",
    )
    store_line = re.search(
        r"store: (\d+) restores, .*regrew (\d+) replica\(s\), "
        r"(\d+) from store",
        stored,
    )
    check(store_line is not None, f"no store summary line in:\n{stored}")
    restores, regrew, from_store = map(int, store_line.groups())
    check(restores > 0, "CLI drill restored nothing from the store")
    check(
        regrew > 0 and regrew == from_store,
        f"regrew {regrew} replica(s) but only {from_store} from store",
    )
    print(
        f"[3/3] serve --store --chaos --regrow: digest "
        f"{digest(stored)} == fresh, {restores} restores, "
        f"{regrew}/{regrew} replicas regrown from store, 0 lost"
    )


def main() -> int:
    fresh = build_service()
    baseline_payload = run(fresh)
    baseline = {
        "answers_digest": baseline_payload["answers_digest"],
        "digest": baseline_payload["digest"],
        "stats_keys": sorted(fresh.stats()),
    }
    with tempfile.TemporaryDirectory(prefix="store-smoke-") as workdir:
        corruption_matrix(workdir, baseline)
        cold_boot(workdir, baseline)
        cli_drill(workdir)
    print("store-smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
