"""Figs. 10 and 11 — Ψ-framework speedups on the FTV methods.

Paper: speedup*QLA (Fig. 10) and speedup*WLA (Fig. 11) of racing 2-6
rewriting variants inside the verification stage, per FTV method, on
synthetic and PPI.  Expected shape: every variant set beats the
original; more threads help, with diminishing returns (the paper notes
the 3-thread set is within 3-8% of the 4-thread set for Grapes).
"""

from conftest import publish

from repro.harness import PSI_FTV_VARIANT_SETS, psi_speedup_table


def test_fig10_qla(ftv_matrices, benchmark):
    benchmark(
        lambda: psi_speedup_table(
            ftv_matrices["ppi"], "bench", PSI_FTV_VARIANT_SETS[:1]
        )
    )
    for name, m in ftv_matrices.items():
        table = psi_speedup_table(
            m,
            f"Fig 10: {name}, Psi speedup*QLA (FTV variant sets)",
            PSI_FTV_VARIANT_SETS,
            mode="qla",
        )
        publish(table)
        for method in m.methods:
            col = table.column(method)
            # racing rewritings must not lose badly to the original
            assert max(col) >= 1.0


def test_fig11_wla(ftv_matrices, benchmark):
    benchmark(
        lambda: psi_speedup_table(
            ftv_matrices["ppi"], "bench", PSI_FTV_VARIANT_SETS[:1],
            mode="wla",
        )
    )
    for name, m in ftv_matrices.items():
        table = psi_speedup_table(
            m,
            f"Fig 11: {name}, Psi speedup*WLA (FTV variant sets)",
            PSI_FTV_VARIANT_SETS,
            mode="wla",
        )
        publish(table)
        # the Or/all set hedges with the original: WLA speedup >= ~1
        last_row = table.rows[-1]
        assert last_row[0] == "Psi(Or/all_rewritings)"
        for value in last_row[1:]:
            assert value > 0.5
