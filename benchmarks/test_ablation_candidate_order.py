"""Ablation — why rewritings work: VF2's vertex-selection policy.

The paper attributes the wild isomorphic-query variance to the studied
algorithms "not defining a strict order in which the nodes of the query
are matched" (§5).  Our VF2 resolves that freedom by node ID; this
ablation compares it against built-in ``degree`` and ``rarity``
policies.  Expected shape: built-in heuristics cut the ID-driven
variance across random rewritings (their order no longer follows IDs)
— but neither policy dominates on every query, which is exactly the
paper's argument for racing per-query rewritings instead of fixing one
global heuristic.
"""

import random
import statistics

from conftest import publish

from repro.harness import Table, build_nfv_graph
from repro.matching import SELECTION_POLICIES, VF2Matcher
from repro.metrics import max_min_ratio
from repro.workload import generate_workload


def test_selection_policy_sweep(benchmark):
    graph = build_nfv_graph("yeast", scale="tiny")
    queries = generate_workload([graph], 8, 8, seed=7)
    matchers = {
        policy: VF2Matcher(selection=policy)
        for policy in SELECTION_POLICIES
    }
    index = matchers["id"].prepare(graph)

    table = Table(
        "Ablation: VF2 vertex-selection policy vs rewriting variance",
        [
            "policy", "avg steps (Orig)",
            "avg (max/min) over 6 random instances",
        ],
    )
    variance = {}
    for policy, matcher in matchers.items():
        orig_steps = []
        ratios = []
        for q in queries:
            orig_steps.append(
                matcher.run(index, q.graph, max_embeddings=1).steps
            )
            times = []
            for seed in range(6):
                perm = list(q.graph.vertices())
                random.Random(seed).shuffle(perm)
                out = matcher.run(
                    index, q.graph.permuted(perm), max_embeddings=1
                )
                times.append(max(out.steps, 1))
            ratios.append(max_min_ratio(times))
        variance[policy] = statistics.mean(ratios)
        table.add_row(
            policy,
            statistics.mean(orig_steps),
            variance[policy],
        )
    publish(table)

    # informed policies must reduce the ID-permutation sensitivity
    assert min(
        variance["degree"], variance["rarity"]
    ) <= variance["id"] * 1.5

    benchmark(
        lambda: matchers["id"].run(
            index, queries[0].graph, max_embeddings=1
        )
    )
