"""Ablation — sensitivity of Ψ gains to thread spawn/sync overhead.

The paper (§8) caps the useful number of racing threads by noting that
"the instantiation and synchronization of many threads come with a
non-trivial overhead".  This ablation sweeps the overhead model and
shows the QLA speedup of the all-rewritings Ψ set degrading as each
racing thread gets more expensive — and the bigger variant sets
degrading *faster* (they pay overhead per variant).
"""

from conftest import publish

from repro.harness import Table, psi_speedup_table
from repro.psi import OverheadModel

SWEEP = (0, 32, 256, 2048, 16384)


def test_overhead_sweep(yeast_matrix, benchmark):
    m = yeast_matrix
    sets = [
        ("Psi(Or/ILF)", ("Orig", "ILF")),
        (
            "Psi(all)",
            ("Orig", "ILF", "IND", "DND", "ILF+IND", "ILF+DND"),
        ),
    ]
    benchmark(
        lambda: psi_speedup_table(
            m, "bench", sets, overhead=OverheadModel()
        )
    )
    table = Table(
        "Ablation: Psi speedup*QLA (GQL, yeast) vs per-thread overhead",
        ["overhead steps/variant", "Psi(Or/ILF) 2thr", "Psi(all) 6thr"],
    )
    series: dict[str, list[float]] = {label: [] for label, _ in sets}
    for over in SWEEP:
        t = psi_speedup_table(
            m, "x", sets,
            overhead=OverheadModel(per_variant_steps=over),
        )
        row = [over]
        for label, _ in sets:
            idx = [r[0] for r in t.rows].index(label)
            value = t.rows[idx][t.columns.index("GQL")]
            series[label].append(value)
            row.append(value)
        table.add_row(*row)
    publish(table)
    # gains must degrade monotonically-ish with overhead
    for label, values in series.items():
        assert values[0] >= values[-1], label
    # the 6-thread set pays 3x the per-variant overhead of the 2-thread
    # set: at the extreme it must have lost at least as much ground
    loss_small = series["Psi(Or/ILF)"][0] - series["Psi(Or/ILF)"][-1]
    loss_big = series["Psi(all)"][0] - series["Psi(all)"][-1]
    assert loss_big >= loss_small * 0.5
