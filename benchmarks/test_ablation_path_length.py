"""Ablation — FTV feature path length vs filtering power.

Grapes and GGSX index paths up to a maximum length (4 in the paper;
3 by default here, see DESIGN.md §2).  Longer features prune candidate
sets harder but cost more to index.  This ablation quantifies the
trade-off on the PPI-like dataset: candidate-set sizes shrink
monotonically with the path length while the trie grows.
"""

import statistics

from conftest import publish

from repro.datasets import ppi_like
from repro.harness import Table
from repro.indexing import GrapesIndex
from repro.workload import generate_workload


def test_path_length_sweep(benchmark):
    graphs = ppi_like(num_graphs=4, avg_nodes=80, num_labels=8, seed=3)
    queries = generate_workload(graphs, 8, 8, seed=17)

    table = Table(
        "Ablation: Grapes feature path length vs filtering power (PPI)",
        [
            "max path length", "trie nodes", "avg candidates",
            "avg relevant-component vertices",
        ],
    )
    prev_cands = None
    indexes = {}
    for maxlen in (1, 2, 3):
        index = GrapesIndex(graphs, max_path_length=maxlen, threads=1)
        indexes[maxlen] = index
        cand_sizes = []
        region_sizes = []
        for q in queries:
            cands = index.filter(q.graph)
            cand_sizes.append(len(cands))
            for gid in cands:
                comps = index.relevant_components(q.graph, gid)
                region_sizes.append(
                    sum(sub.order for sub, _ in comps)
                )
        avg_c = statistics.mean(cand_sizes)
        table.add_row(
            maxlen,
            index.trie.node_count,
            avg_c,
            statistics.mean(region_sizes) if region_sizes else 0.0,
        )
        if prev_cands is not None:
            assert avg_c <= prev_cands + 1e-9  # longer paths prune harder
        prev_cands = avg_c
    publish(table)

    benchmark(lambda: indexes[2].filter(queries[0].graph))
