"""Tables 3 and 4 — per-size band breakdowns (yeast and human).

Paper: for the smallest (10-edge) and largest (32-edge) query sizes,
the per-band average execution times and percentages.  Expected shape:
small queries are overwhelmingly easy with 0% hard; the largest size
brings double-digit hard percentages for the weaker algorithms
(QuickSI worst on yeast).
"""

from conftest import publish

from repro.harness import size_breakdown_table


def _hard_pct_by_size(table):
    out = {}
    for row in table.rows:
        out[(row[0], row[1])] = row[6]
    return out


def test_table3_yeast(yeast_matrix, benchmark):
    m = yeast_matrix
    benchmark(lambda: size_breakdown_table(m, "bench"))
    table = size_breakdown_table(
        m, "Table 3: yeast, per-size band breakdown (smallest/largest)"
    )
    publish(table)
    hard = _hard_pct_by_size(table)
    sizes = sorted({m.unit_size(u) for u in m.units})
    small, large = f"{sizes[0]}e", f"{sizes[-1]}e"
    # small queries: no algorithm should be drowning
    for alg in m.methods:
        assert hard[(small, alg)] <= 25.0
    # the largest size must be at least as hard as the smallest
    for alg in m.methods:
        assert hard[(large, alg)] >= hard[(small, alg)]


def test_table4_human(human_matrix, benchmark):
    m = human_matrix
    benchmark(lambda: size_breakdown_table(m, "bench"))
    table = size_breakdown_table(
        m, "Table 4: human, per-size band breakdown (smallest/largest)"
    )
    publish(table)
    hard = _hard_pct_by_size(table)
    sizes = sorted({m.unit_size(u) for u in m.units})
    small = f"{sizes[0]}e"
    for alg in m.methods:
        assert hard[(small, alg)] <= 50.0
