#!/usr/bin/env python
"""CI obs-smoke: the observability layer end to end, over a real socket.

What it proves, in order:

1. **Digest guard** — the committed ``BENCH_service.json`` digests are
   untouched by the observability refactor (the registry-backed
   ``Service.stats()`` is value-identical to the pre-refactor dict).
2. **Socket equivalence** — ``repro serve --listen`` is started as a
   subprocess, a seeded workload is driven through ``POST /query``, and
   every per-query result plus every deterministic stats key equals an
   in-process run of the same workload on an identically-configured
   service: the wall-clock front door adds zero perturbation.
3. **Trace contract** — ``GET /trace/<id>`` of the last ticket returns
   a closed, rooted span tree with fan-out legs, and ``GET /watch``
   streams schema-complete delta frames.
4. **Chaos traces** — an in-process chaos drill (2x2, mid-flight kills)
   yields a fault-touched ticket whose trace shows the kill, the lost
   leg, the retry, and the recovered leg — the acceptance drill's
   observable story.

Run:  PYTHONPATH=src python benchmarks/obs_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.cli import _build_service, build_parser  # noqa: E402
from repro.obs.client import ObsClient  # noqa: E402
from repro.service import QueryOptions  # noqa: E402
from repro.workload import (  # noqa: E402
    default_tenant_mixes,
    generate_tenant_stream,
)

HERE = os.path.dirname(os.path.abspath(__file__))
BENCH_PATH = os.path.join(HERE, "BENCH_service.json")

#: the committed digests (machine-independent); the observability
#: refactor must not move a single one
PINNED = {
    "digest": "99bbaa6775efd058",
    "answers_digest": "7d647691829e14ba",
    "decisions_digest": "cd82b1c5f364ca52",
}
PINNED_ANSWERS = "f85cb3c4a7aacd14"

SERVE_ARGS = [
    "--dataset", "ppi", "--scale", "tiny",
    "--shards", "2", "--replicas", "2", "--workers", "4",
]

#: stats keys that are pure functions of the submission history
DETERMINISTIC_KEYS = (
    "clock_steps", "ticks", "work_steps", "completed", "active",
    "shards", "shard_cancelled", "per_shard_work", "per_pool_work",
    "replicas", "faults", "fanout_waste", "routing", "latency_steps",
    "admission",
)

FTV_OPTS = {"rewritings": ["Orig", "DND"]}


def check(cond: bool, message: str) -> None:
    if not cond:
        raise SystemExit(f"obs-smoke FAILED: {message}")


def guard_committed_digests() -> None:
    with open(BENCH_PATH) as fh:
        payload = json.load(fh)
    for key, want in PINNED.items():
        check(
            payload[key] == want,
            f"BENCH_service.json {key} moved: {payload[key]} != {want}",
        )
    sections = {
        "sharding.single": payload["sharding"]["single"]["answers_digest"],
        "sharding.sharded": payload["sharding"]["sharded"]["answers_digest"],
        "routing": payload["routing"]["full_answers_digest"],
        "chaos.healthy": payload["chaos"]["healthy_answers_digest"],
        "chaos.chaos": payload["chaos"]["chaos_answers_digest"],
    }
    for name, got in sections.items():
        check(
            got == PINNED_ANSWERS,
            f"BENCH_service.json {name} answers moved: {got}",
        )
    print(f"[1/4] committed digests untouched ({PINNED['digest']})")


def build_local_service():
    args = build_parser().parse_args(["serve", *SERVE_ARGS])
    service, _ = _build_service(args, with_streams=False)
    return service


def seeded_workload(service, per_tenant=6, seed=9):
    graphs = service.catalog.get("ppi").graphs
    mixes = default_tenant_mixes(
        2, per_tenant, sizes=(4, 6), repeat_fraction=0.3
    )
    out = []
    for mix in mixes:
        for mq in generate_tenant_stream(graphs, mix, seed=seed):
            out.append((mix.tenant, mq.query.graph))
    return out


def start_server() -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(HERE, os.pardir, "src")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--listen", "127.0.0.1:0", *SERVE_ARGS],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    deadline = time.monotonic() + 60
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise SystemExit(
                "obs-smoke FAILED: server exited before binding"
            )
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        if match:
            return proc, match.group(1), int(match.group(2))
    raise SystemExit("obs-smoke FAILED: no listening line within 60s")


def socket_equivalence() -> int:
    local = build_local_service()
    workload = seeded_workload(local)
    options = QueryOptions(rewritings=("Orig", "DND"))

    local_results = []
    for tenant, graph in workload:
        ticket = local.submit("ppi", graph, tenant, options)
        local.run_until_idle()
        r = ticket.result
        local_results.append(
            (r.found, r.steps, r.winner_label, ticket.latency,
             sorted(r.matching_ids))
        )

    proc, host, port = start_server()
    last_ticket = -1
    try:
        client = ObsClient(host, port)
        remote_results = []
        for tenant, graph in workload:
            status, payload, _ = client.submit(
                "ppi", graph, tenant=tenant, options=FTV_OPTS
            )
            check(status == 200, f"POST /query -> {status}: {payload}")
            r = payload["result"]
            remote_results.append(
                (r["found"], r["steps"], r["winner"],
                 payload["latency_steps"], sorted(r["matching_ids"]))
            )
            last_ticket = payload["ticket_id"]
        check(
            remote_results == local_results,
            "socket results diverged from the in-process run",
        )

        remote_stats = client.stats()["stats"]
        local_stats = local.stats()
        for key in DETERMINISTIC_KEYS:
            check(
                remote_stats[key] == local_stats[key],
                f"stats[{key!r}] diverged: "
                f"{remote_stats[key]} != {local_stats[key]}",
            )
        print(
            f"[2/4] socket == in-process: {len(workload)} queries, "
            f"clock {remote_stats['clock_steps']}, "
            f"work {remote_stats['work_steps']}"
        )

        status, trace = client.trace(last_ticket)
        check(status == 200, f"GET /trace/{last_ticket} -> {status}")
        spans = trace["spans"]
        check(spans[0]["name"] == "ticket", "trace not rooted at ticket")
        check(trace["done"], "trace of a DONE ticket not finished")
        check(
            all(s["end"] is not None for s in spans),
            "open span in a terminal trace",
        )
        names = [s["name"] for s in spans]
        check("leg" in names, "no fan-out leg span in trace")
        check("tree" in trace, "no span tree in trace payload")

        frames = list(client.watch(frames=2, interval=0.05))
        check(len(frames) == 2, f"watch yielded {len(frames)} frames")
        wanted = {
            "seq", "clock", "completed", "delta_completed",
            "latency_steps", "per_shard_work", "fanout_waste",
            "cache_hit_rate", "replicas_live", "queued", "active",
            "degraded", "retries", "throughput_qps",
            "mutations_applied", "mutations_pending", "journal_lag",
            "collection_epoch",
        }
        for frame in frames:
            missing = wanted - set(frame)
            check(not missing, f"watch frame missing keys: {missing}")
        print(
            f"[3/4] /trace/{last_ticket} ({len(spans)} spans) and "
            f"/watch (2 frames) schema-complete"
        )
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=15)
    return last_ticket


def chaos_trace_drill() -> None:
    from repro.service import FaultEvent, FaultInjector, run_closed_loop

    service = build_local_service()
    graphs = service.catalog.get("ppi").graphs
    mixes = default_tenant_mixes(2, 8, sizes=(4, 6), repeat_fraction=0.3)
    streams = {
        m.tenant: generate_tenant_stream(graphs, m, seed=9)
        for m in mixes
    }
    faults = FaultInjector([
        FaultEvent(at=3 + s, kind="kill", shard=s, replica=-1,
                   unit="completions", seq=s)
        for s in range(2)
    ])
    report = run_closed_loop(
        service, "ppi", streams,
        options=QueryOptions(rewritings=("Orig", "DND")),
        concurrency=2, faults=faults,
    )
    check(service.rerouted >= 1, "chaos drill rerouted nothing")
    check(
        all(t.done for t in report.tickets),
        "chaos drill lost a ticket",
    )
    story = None
    for ticket in report.completed:
        if ticket.retries == 0:
            continue
        trace = service.trace(ticket.id)
        if trace is None:
            continue
        kills = trace.find("fault_kill")
        retries = trace.find("retry")
        lost = [
            leg for leg in trace.find("leg")
            if leg.attrs.get("outcome") == "lost"
        ]
        recovered = [
            leg for leg in trace.find("leg")
            if "retry" in leg.attrs and "outcome" not in leg.attrs
        ]
        if kills and retries and lost and recovered:
            check(trace.done, "fault-touched trace not finished")
            check(
                all(s.closed for s in trace.spans),
                "open span in fault-touched trace",
            )
            story = (ticket.id, len(kills), len(lost), len(recovered))
            break
    check(
        story is not None,
        "no fault-touched ticket shows kill/reroute/recovery spans",
    )
    tid, kills, lost, recovered = story
    print(
        f"[4/4] chaos trace: ticket {tid} shows {kills} kill(s), "
        f"{lost} lost leg(s), {recovered} recovered leg(s)"
    )


def main() -> int:
    guard_committed_digests()
    socket_equivalence()
    chaos_trace_drill()
    print("obs-smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
