"""Fig. 3 + Table 5 — (max/min)QLA over isomorphic instances, FTV.

Paper: across 6 isomorphic instances per query, the ratio of the
slowest to the fastest instance, with avg/stdDev/min/max/median per
method.  Expected shape: large average ratios with stdDev >> mean and
median much closer to the min — i.e. wild but skewed variance
(the paper reports FTV averages in the thousands-to-millions range;
at this reproduction's compressed budget scale the ratios compress
proportionally, see EXPERIMENTS.md).
"""

from conftest import publish

from repro.harness import maxmin_table


def test_fig3_table5(ftv_matrices, benchmark):
    benchmark(lambda: maxmin_table(ftv_matrices["ppi"], "bench"))
    for name, m in ftv_matrices.items():
        table = maxmin_table(
            m,
            f"Fig 3 / Table 5: {name}, (max/min)QLA over 6 isomorphic "
            "instances",
        )
        publish(table)
        for row in table.rows:
            method, avg, _stddev, mn, mx, median = row[:6]
            assert mx >= avg >= mn >= 1.0
            # skew: the median hugs the low end, as in the paper
            assert median <= avg
        # the variance must be non-trivial for at least one method
        assert max(row[1] for row in table.rows) > 2.0
