"""Fig. 13 — Ψ-framework with rewriting variants on the NFV methods.

Paper: speedup*QLA of racing the original plus 2-5 rewritings per
algorithm, on yeast, human, wordnet.  Expected shape: every set's
speedup >= 1 (the original is always in the race, so Ψ can only lose
the overhead), GraphQL benefits least, and the largest improvements
appear on the denser/better-labeled datasets.
"""

from conftest import publish

from repro.harness import PSI_NFV_REWRITING_SETS, psi_speedup_table


def test_fig13(nfv_matrices, benchmark):
    benchmark(
        lambda: psi_speedup_table(
            nfv_matrices["yeast"], "bench", PSI_NFV_REWRITING_SETS[:1]
        )
    )
    for name, m in nfv_matrices.items():
        table = psi_speedup_table(
            m,
            f"Fig 13: {name}, Psi speedup*QLA (Orig + rewritings)",
            PSI_NFV_REWRITING_SETS,
            mode="qla",
        )
        publish(table)
        for method in m.methods:
            col = table.column(method)
            # with Orig in every set, Psi loses only race overhead
            assert min(col) > 0.9
