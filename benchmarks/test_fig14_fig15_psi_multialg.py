"""Figs. 14 and 15 — Ψ with multiple algorithms on the NFV methods.

Paper: racing GraphQL and sPath together (optionally with a rewriting
per thread) against vanilla GraphQL (panel a) and vanilla sPath
(panel b); speedup*QLA in Fig. 14 and speedup*WLA in Fig. 15.
Expected shape: up to orders of magnitude gains for the algorithm that
finds a given dataset hard; the [Or/DND] 4-thread set hedges best.
"""

from conftest import publish

from repro.harness import (
    PSI_NFV_MULTIALG_SETS,
    psi_multialg_speedup_table,
)


def test_fig14_qla(nfv_matrices, benchmark):
    benchmark(
        lambda: psi_multialg_speedup_table(
            nfv_matrices["yeast"], "bench",
            PSI_NFV_MULTIALG_SETS[:1], baseline="GQL",
        )
    )
    for name, m in nfv_matrices.items():
        best_over_baselines = 0.0
        for baseline in ("GQL", "SPA"):
            table = psi_multialg_speedup_table(
                m,
                f"Fig 14: {name}, Psi([GQL/SPA]) speedup*QLA vs "
                f"vanilla {baseline}",
                PSI_NFV_MULTIALG_SETS,
                baseline=baseline,
                mode="qla",
            )
            publish(table)
            values = table.column(f"vs {baseline}")
            # racing never loses more than the overhead on easy queries
            assert min(values) > 0.5
            best_over_baselines = max(best_over_baselines, max(values))
        # per dataset, the weaker algorithm's baseline must gain: when a
        # query is expensive for one algorithm the other usually isn't
        # (paper observation 5) — unless, as on wordnet, the two hard
        # sets coincide, in which case the race is merely overhead-flat
        assert best_over_baselines >= 0.95


def test_fig15_wla(nfv_matrices, benchmark):
    benchmark(
        lambda: psi_multialg_speedup_table(
            nfv_matrices["yeast"], "bench",
            PSI_NFV_MULTIALG_SETS[:1], baseline="SPA", mode="wla",
        )
    )
    weak_helped = False
    for name, m in nfv_matrices.items():
        for baseline in ("GQL", "SPA"):
            table = psi_multialg_speedup_table(
                m,
                f"Fig 15: {name}, Psi([GQL/SPA]) speedup*WLA vs "
                f"vanilla {baseline}",
                PSI_NFV_MULTIALG_SETS,
                baseline=baseline,
                mode="wla",
            )
            publish(table)
            if max(table.column(f"vs {baseline}")) > 2.0:
                weak_helped = True
    # somewhere, racing both algorithms must yield a substantial WLA win
    assert weak_helped
