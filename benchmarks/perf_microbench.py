"""Engine micro-benchmark: steps/sec per matcher + race throughput.

The reproduction's execution-time model is step counts, but the wall
clock still matters — every figure in ``benchmarks/`` is produced by
driving these engines millions of steps.  This script measures the raw
throughput of the fast path (bitmask graph kernel, batched stepping,
quantum race scheduling) and records it in ``BENCH_engine.json`` so
perf regressions show up as numbers, not vibes.

Usage::

    PYTHONPATH=src python benchmarks/perf_microbench.py           # full
    PYTHONPATH=src python benchmarks/perf_microbench.py --quick   # CI smoke

Reference points on the stock workload (n=300, m=1200, 3 labels,
8-edge query): the pre-fast-path engine measured ~124k VF2 steps/sec
and ~332k race work-steps/sec; the fast path lifts both by >= 3x.

The bitmask kernel's per-probe cost grows with stored-graph order
(masks are n-bit ints), so a second, paper-scale workload (n=3000 —
the yeast dataset's size) is measured too; at that scale the fast
path still wins (VF2 ~3.8x, GQL ~2.4x, QSI ~1.4x over the set-based
seed kernel).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script invocation: repo-root layout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.graphs import gnm_graph, uniform_labels
from repro.matching import Budget, available_matchers, make_matcher
from repro.psi import interleaved_race
from repro.psi.executors import DEFAULT_RACE_QUANTUM

RACE_ALGOS = ("VF2", "QSI", "GQL", "SPA")


def build_workload(seed: int = 42):
    """The stock microbench workload (kept stable across PRs)."""
    from repro.workload import extract_query

    rng = random.Random(seed)
    n = 300
    graph = gnm_graph(
        n, 1200, uniform_labels(n, ["A", "B", "C"], rng), rng,
        name="bench",
    )
    query = extract_query(graph, 8, random.Random(7))
    return graph, query


def build_paper_scale_workload():
    """A yeast-sized workload (n=3000) probing bitmask-kernel scaling."""
    from repro.workload import extract_query

    rng = random.Random(1)
    n = 3000
    graph = gnm_graph(
        n, 12000, uniform_labels(n, ["A", "B", "C"], rng), rng,
        name="bench3k",
    )
    query = extract_query(graph, 10, random.Random(5))
    return graph, query


def bench_matcher(name, graph, query, step_cap, repeats):
    """Steps/sec for one matcher, driven standalone under a step cap."""
    m = make_matcher(name)
    index = m.prepare(graph)
    budget = Budget(max_steps=step_cap)
    # warm-up: index building and first-touch freezing off the clock
    m.run(index, query, budget=Budget(max_steps=2000),
          max_embeddings=10**9, count_only=True)
    total = 0
    start = time.perf_counter()
    for _ in range(repeats):
        out = m.run(index, query, budget=budget,
                    max_embeddings=10**9, count_only=True)
        total += out.steps
    elapsed = time.perf_counter() - start
    return {
        "steps": total,
        "seconds": round(elapsed, 4),
        "steps_per_sec": round(total / elapsed) if elapsed else None,
    }


def bench_race(graph, query, step_cap, repeats, quantum):
    """Race throughput: total work steps/sec across all variants."""
    total = 0
    races = 0
    start = time.perf_counter()
    for _ in range(repeats):
        engines = {}
        for name in RACE_ALGOS:
            m = make_matcher(name)
            engines[name] = m.engine(
                m.prepare(graph), query,
                max_embeddings=10**9, count_only=True,
            )
        race = interleaved_race(
            engines, budget=Budget(max_steps=step_cap), quantum=quantum,
        )
        total += sum(race.per_variant_steps.values())
        races += 1
    elapsed = time.perf_counter() - start
    return {
        "quantum": quantum,
        "variants": list(RACE_ALGOS),
        "work_steps": total,
        "seconds": round(elapsed, 4),
        "work_steps_per_sec": round(total / elapsed) if elapsed else None,
        "races_per_sec": round(races / elapsed, 2) if elapsed else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small caps / single repeat (CI smoke, a few seconds)",
    )
    parser.add_argument(
        "--output", default=str(Path(__file__).parent / "BENCH_engine.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    step_cap = 20_000 if args.quick else 200_000
    repeats = 1 if args.quick else 5
    graph, query = build_workload()

    report = {
        "bench": "engine_microbench",
        "quick": args.quick,
        "unix_time": int(time.time()),
        "python": sys.version.split()[0],
        "workload": {
            "graph_order": graph.order,
            "graph_size": graph.size,
            "query_order": query.order,
            "query_size": query.size,
            "step_cap": step_cap,
            "repeats": repeats,
        },
        "matchers": {},
        "paper_scale_matchers": {},
        "races": [],
    }

    for name in available_matchers():
        result = bench_matcher(name, graph, query, step_cap, repeats)
        report["matchers"][name] = result
        print(f"{name:>4}: {result['steps_per_sec']:>12,} steps/sec")

    big_graph, big_query = build_paper_scale_workload()
    for name in ("VF2", "QSI", "GQL"):
        result = bench_matcher(
            name, big_graph, big_query, step_cap, max(1, repeats // 2)
        )
        report["paper_scale_matchers"][name] = result
        print(
            f"{name:>4} (n={big_graph.order}): "
            f"{result['steps_per_sec']:>12,} steps/sec"
        )

    for quantum in (1, DEFAULT_RACE_QUANTUM):
        result = bench_race(graph, query, step_cap // 2, repeats, quantum)
        report["races"].append(result)
        print(
            f"race (quantum={quantum:>3}): "
            f"{result['work_steps_per_sec']:>12,} work-steps/sec, "
            f"{result['races_per_sec']} races/sec"
        )

    out_path = Path(args.output)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
