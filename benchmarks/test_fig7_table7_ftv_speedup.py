"""Fig. 7 + Table 7 — speedup*QLA across rewritings, FTV.

Paper: the attainable speedup of picking the best rewriting per query
over always using the original, for Grapes/1, Grapes/4, GGSX on
synthetic and PPI.  Expected shape: averages far above 1 with huge
stdDev, medians close to 1 (most queries are easy; the gains live in
the tail) — "large performance gains can come from improving the hard
queries".
"""

from conftest import publish

from repro.harness import rewriting_speedup_table


def test_fig7_table7(ftv_matrices, benchmark):
    benchmark(
        lambda: rewriting_speedup_table(ftv_matrices["ppi"], "bench")
    )
    for name, m in ftv_matrices.items():
        table = rewriting_speedup_table(
            m,
            f"Fig 7 / Table 7: {name}, speedup*QLA across rewritings",
        )
        publish(table)
        for row in table.rows:
            method, avg, _sd, mn, mx, median = row[:6]
            assert mn >= 1.0  # the original is always in the min set
            assert mx >= avg >= 1.0
            # median close to min: gains concentrate in the tail
            assert median <= avg
        assert max(row[1] for row in table.rows) > 1.5
