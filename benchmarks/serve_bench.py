"""Service load benchmark: closed-loop multi-tenant generation.

Boots ``repro.service`` on a dataset, runs the closed-loop load
generator (each tenant keeps ``--concurrency`` queries in flight over
a size/hardness-stratified stream with isomorphic repeats), and writes
``BENCH_service.json``: throughput in queries per million simulated
steps and per wall-clock second, plus p50/p95/p99 simulated-step
latency and cache/admission counters.

A second section, ``sharding``, runs the same closed-loop workload on
a multi-graph FTV collection twice — single catalog vs ``--shards N``
— and digest-checks that the **answers** (found / embedding counts /
matching graph ids) are bit-for-bit identical while the sharded run's
p95 latency is no worse.  ``results_digest`` covers historical bills
(steps, winners, latencies) and legitimately differs between layouts;
``answers_digest`` is the sharding-invariant one that must match.

A ``chaos`` section re-runs the same workload on a replicated layout
(``--replicas`` per shard) under a seeded fault plan — replica kills,
a pool wedge, a mid-flight task failure — and asserts the failure
model's invariant: chaos answers bit-for-bit equal healthy answers,
zero lost tickets, zero degraded refusals, at least one rerouted leg.

Usage::

    PYTHONPATH=src python benchmarks/serve_bench.py            # full
    PYTHONPATH=src python benchmarks/serve_bench.py --quick    # CI smoke

The run is deterministic: the JSON embeds digests that must be
identical across machines for the same arguments.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

if __package__ in (None, ""):  # script invocation: repo-root layout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cli import main as repro_main

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_service.json"


def _bench_serve(out: str, **cli_args) -> dict:
    """One ``repro bench-serve`` run; returns the JSON payload.

    Boolean values become bare flags (``True`` -> ``--flag``, ``False``
    dropped), so ``no_routing=True`` / ``decision_only=True`` pass
    through as ``--no-routing`` / ``--decision-only``.
    """
    argv = ["bench-serve", "--out", out]
    for flag, value in cli_args.items():
        name = f"--{flag.replace('_', '-')}"
        if value is True:
            argv.append(name)
        elif value is not False:
            argv += [name, str(value)]
    rc = repro_main(argv)
    if rc != 0:
        raise SystemExit(f"bench-serve failed ({rc}): {argv}")
    with open(out) as fh:
        return json.load(fh)


def _sharding_section(args, scale: str, tmpdir: str) -> dict:
    """Single-catalog vs sharded equivalence run on an FTV collection.

    Both runs are **unrouted** (``--no-routing``): this section pins
    the PR 4 fan-out bit-for-bit, so its digests double as the
    routing-off regression witness; the ``routing`` section layers the
    sketch-routed comparisons on top.
    """
    common = dict(
        dataset=args.shard_dataset,
        scale=scale,
        queries=30 if args.quick else 60,
        tenants=args.tenants,
        workers=args.workers,
        concurrency=2,
        budget=args.budget,
        seed=args.seed,
    )
    single = _bench_serve(f"{tmpdir}/single.json", shards=1, **common)
    sharded = _bench_serve(
        f"{tmpdir}/sharded.json",
        shards=args.shards,
        no_routing=True,
        **common,
    )
    if single["killed"] or sharded["killed"]:
        # killed answers are execution-dependent (that is why they are
        # never cached); the layout-invariance claim covers completed
        # answers, so the equivalence run must not kill anything
        raise SystemExit(
            f"--budget {args.budget} kills queries "
            f"(single={single['killed']}, sharded={sharded['killed']}); "
            "raise the budget for the sharding equivalence section"
        )
    if single["answers_digest"] != sharded["answers_digest"]:
        raise SystemExit(
            "sharded answers diverged from single-catalog answers: "
            f"{single['answers_digest']} != {sharded['answers_digest']}"
        )
    p95_single = single["latency_steps"]["p95"]
    p95_sharded = sharded["latency_steps"]["p95"]
    if p95_sharded > p95_single:
        raise SystemExit(
            f"sharded p95 regressed: {p95_sharded} > {p95_single}"
        )
    def trim(payload):
        return {
            "answers_digest": payload["answers_digest"],
            "digest": payload["digest"],
            "latency_steps": payload["latency_steps"],
            "throughput": payload["throughput"],
        }
    return {
        "config": {**common, "shards": args.shards},
        "answers_equal": True,
        "p95_single": p95_single,
        "p95_sharded": p95_sharded,
        "p95_speedup": (
            p95_single / p95_sharded if p95_sharded else float("inf")
        ),
        "single": trim(single),
        "sharded": trim(sharded),
    }


def _routing_section(args, scale: str, tmpdir: str, sharding: dict) -> dict:
    """Sketch-routed vs unrouted fan-outs on the sharded collection.

    Two comparisons, both digest-checked:

    * **full mode** — one routed run of exactly the sharding section's
      workload; its ``answers_digest`` must be bit-for-bit the
      single-catalog and unrouted-sharded digests (pruning soundness);
    * **decision mode** — a heavier closed loop (the contention routing
      exists for) run unrouted vs routed; ``decisions_digest`` must
      match while the routed run spends fewer wasted fan-out steps and
      no more p95 latency.
    """
    # the sharding section's exact workload (its config already names
    # the shard count), re-run with routing on (the CLI default)
    full = _bench_serve(
        f"{tmpdir}/routed_full.json", **sharding["config"]
    )
    decision = dict(
        dataset=args.shard_dataset,
        scale=scale,
        queries=60 if args.quick else 120,
        tenants=args.tenants,
        workers=args.workers,
        concurrency=6,
        budget=args.budget,
        seed=args.seed,
        shards=args.shards,
        decision_only=True,
    )
    unrouted = _bench_serve(
        f"{tmpdir}/dec_unrouted.json", no_routing=True, **decision
    )
    routed = _bench_serve(f"{tmpdir}/dec_routed.json", **decision)
    if full["killed"] or unrouted["killed"] or routed["killed"]:
        # a budget-killed shard race merges killed=True, but a shard
        # *cancelled* by a sibling's first-true contributes no outcome
        # at all — so under a killing budget the routed and unrouted
        # killed bits (hashed by both digests) legitimately diverge;
        # like the sharding section, the equivalence runs must not
        # kill anything.  This check must precede every digest compare
        # so a too-tight budget reads as "raise the budget", not as a
        # phantom soundness failure.
        raise SystemExit(
            f"--budget {args.budget} kills queries (full="
            f"{full['killed']}, unrouted={unrouted['killed']}, "
            f"routed={routed['killed']}); raise the budget for the "
            "routing equivalence section"
        )
    if full["answers_digest"] != sharding["single"]["answers_digest"]:
        raise SystemExit(
            "routed sharded answers diverged from single-catalog: "
            f"{full['answers_digest']} != "
            f"{sharding['single']['answers_digest']}"
        )
    if unrouted["decisions_digest"] != routed["decisions_digest"]:
        raise SystemExit(
            "routed decision answers diverged: "
            f"{routed['decisions_digest']} != "
            f"{unrouted['decisions_digest']}"
        )
    if routed["fanout_waste"] >= unrouted["fanout_waste"]:
        raise SystemExit(
            f"routing did not cut fan-out waste: "
            f"{routed['fanout_waste']} >= {unrouted['fanout_waste']}"
        )
    p95_unrouted = unrouted["latency_steps"]["p95"]
    p95_routed = routed["latency_steps"]["p95"]
    if p95_routed > p95_unrouted:
        raise SystemExit(
            f"routed decision p95 regressed: "
            f"{p95_routed} > {p95_unrouted}"
        )
    def trim(payload):
        return {
            "decisions_digest": payload["decisions_digest"],
            "fanout_waste": payload["fanout_waste"],
            "per_shard_work": payload["per_shard_work"],
            "latency_steps": payload["latency_steps"],
            "routing": payload["routing"],
        }
    return {
        "config": decision,
        "answers_equal": True,
        "full_answers_digest": full["answers_digest"],
        "p95_unrouted": p95_unrouted,
        "p95_routed": p95_routed,
        "fanout_waste_unrouted": unrouted["fanout_waste"],
        "fanout_waste_routed": routed["fanout_waste"],
        "waste_cut": (
            1 - routed["fanout_waste"] / unrouted["fanout_waste"]
            if unrouted["fanout_waste"]
            else 0.0
        ),
        "unrouted": trim(unrouted),
        "routed": trim(routed),
    }


def _rebalance_section(args, scale: str, tmpdir: str, sharding: dict) -> dict:
    """Skewed-assignment run with online rebalancing, digest-checked.

    The workload is the sharding section's, but loaded with the
    size-blind ``hash`` assignment so per-shard bills skew; the
    rebalancer migrates graphs at quiesce points mid-run.  Post-
    migration answers must be bit-for-bit the single-catalog answers.
    """
    common = sharding["config"] | {
        "shards": args.shards,
        "assignment": "hash",
        "no_routing": True,
    }
    skewed = _bench_serve(f"{tmpdir}/skewed.json", **common)
    rebalanced = _bench_serve(
        f"{tmpdir}/rebalanced.json",
        rebalance=True,
        rebalance_every=max(1, common["queries"] // 4),
        **common,
    )
    if skewed["killed"] or rebalanced["killed"]:
        raise SystemExit(
            f"--budget {args.budget} kills queries (skewed="
            f"{skewed['killed']}, rebalanced={rebalanced['killed']}); "
            "raise the budget for the rebalance equivalence section"
        )
    for name, payload in (("skewed", skewed), ("rebalanced", rebalanced)):
        if payload["answers_digest"] != sharding["single"]["answers_digest"]:
            raise SystemExit(
                f"{name} answers diverged from single-catalog: "
                f"{payload['answers_digest']} != "
                f"{sharding['single']['answers_digest']}"
            )
    moves = rebalanced["rebalance"]["migrations"]
    if not moves:
        raise SystemExit(
            "the skewed workload triggered no migration; the "
            "rebalance section is not exercising anything"
        )
    return {
        "config": common,
        "answers_equal": True,
        "migrations": moves,
        "rebalances": rebalanced["rebalance"]["rebalances"],
        "per_shard_work_skewed": skewed["per_shard_work"],
        "per_shard_work_rebalanced": rebalanced["per_shard_work"],
        "p95_skewed": skewed["latency_steps"]["p95"],
        "p95_rebalanced": rebalanced["latency_steps"]["p95"],
    }


def _chaos_section(args, scale: str, tmpdir: str, sharding: dict) -> dict:
    """Replicated chaos run, digest-checked against healthy serving.

    The sharding section's workload runs twice on a replicated layout
    (``--replicas``): once healthy, once with the seeded fault plan
    (replica kills, a pool wedge, a mid-flight task failure).  The
    failure-model invariant under test: every budget-completed answer
    of the chaos run is bit-for-bit the healthy (and single-catalog)
    answer, no ticket is lost, nothing degrades to refusal, and at
    least one leg really was rerouted (the drill drew blood).
    """
    common = sharding["config"] | {
        "shards": args.shards,
        "replicas": args.replicas,
        "no_routing": True,
    }
    healthy = _bench_serve(f"{tmpdir}/replicated.json", **common)
    chaos = _bench_serve(
        f"{tmpdir}/chaos.json",
        chaos=True,
        chaos_seed=args.chaos_seed,
        **common,
    )
    if healthy["killed"] or chaos["killed"]:
        raise SystemExit(
            f"--budget {args.budget} kills queries (healthy="
            f"{healthy['killed']}, chaos={chaos['killed']}); raise "
            "the budget for the chaos equivalence section"
        )
    for name, payload in (("healthy", healthy), ("chaos", chaos)):
        if payload["answers_digest"] != sharding["single"]["answers_digest"]:
            raise SystemExit(
                f"{name} replicated answers diverged from "
                f"single-catalog: {payload['answers_digest']} != "
                f"{sharding['single']['answers_digest']}"
            )
    done_h = healthy["throughput"]["queries"]
    done_c = chaos["throughput"]["queries"]
    if done_c != done_h:
        raise SystemExit(
            f"chaos run lost completions: {done_c} != {done_h}"
        )
    ch = chaos["chaos"]
    if ch["lost"]:
        raise SystemExit(f"chaos run lost {ch['lost']} tickets")
    if ch["degraded"] or ch["degraded_tickets"]:
        raise SystemExit(
            "chaos run degraded tickets despite surviving replicas: "
            f"{ch['degraded']} refusals"
        )
    if ch["rerouted"] < 1:
        raise SystemExit(
            "the fault plan rerouted no legs; the chaos section is "
            "not exercising the failure path"
        )
    return {
        "config": common | {"chaos_seed": args.chaos_seed},
        "answers_equal": True,
        "injected": ch["injected"],
        "retries": ch["retries"],
        "rerouted": ch["rerouted"],
        "tasks_failed": ch["tasks_failed"],
        "degraded": ch["degraded"],
        "lost": ch["lost"],
        "latency_healthy": ch["latency_healthy"],
        "latency_chaos": ch["latency_chaos"],
        "p95_healthy": healthy["latency_steps"]["p95"],
        "p95_chaos": chaos["latency_steps"]["p95"],
        "healthy_answers_digest": healthy["answers_digest"],
        "chaos_answers_digest": chaos["answers_digest"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny scale, 50 queries (CI smoke)")
    parser.add_argument("--dataset", default="yeast")
    parser.add_argument("--scale", default=None,
                        help="default | tiny (overrides --quick)")
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--concurrency", type=int, default=1)
    parser.add_argument("--budget", type=int, default=200_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--shards", type=int, default=2,
                        help="shard count for the sharding section")
    parser.add_argument("--replicas", type=int, default=2,
                        help="replicas per shard for the chaos section")
    parser.add_argument("--chaos-seed", type=int, default=1337,
                        help="seed for the chaos section's fault plan")
    parser.add_argument("--shard-dataset", default="ppi",
                        help="multi-graph collection for the sharding "
                             "section")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    scale = args.scale or ("tiny" if args.quick else "default")
    queries = args.queries or (50 if args.quick else 200)
    payload = _bench_serve(
        args.out,
        dataset=args.dataset,
        scale=scale,
        queries=queries,
        tenants=args.tenants,
        workers=args.workers,
        concurrency=args.concurrency,
        budget=args.budget,
        seed=args.seed,
    )
    with tempfile.TemporaryDirectory() as tmpdir:
        payload["sharding"] = _sharding_section(args, scale, tmpdir)
        payload["routing"] = _routing_section(
            args, scale, tmpdir, payload["sharding"]
        )
        payload["rebalance"] = _rebalance_section(
            args, scale, tmpdir, payload["sharding"]
        )
        payload["chaos"] = _chaos_section(
            args, scale, tmpdir, payload["sharding"]
        )
    payload["quick"] = args.quick
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)
    # well-formedness gate: the CI smoke job relies on these keys
    for key in ("throughput", "latency_steps", "result_cache", "digest",
                "answers_digest", "decisions_digest", "fanout_waste",
                "per_shard_work", "sharding", "routing", "rebalance",
                "chaos"):
        if key not in payload:
            raise SystemExit(f"BENCH_service.json missing {key!r}")
    for pct in ("p50", "p95", "p99"):
        if pct not in (payload["latency_steps"] or {}):
            raise SystemExit(f"latency summary missing {pct!r}")
    sh = payload["sharding"]
    rt = payload["routing"]
    rb = payload["rebalance"]
    ch = payload["chaos"]
    print(
        f"BENCH_service.json OK (digest {payload['digest']}; "
        f"sharded answers {sh['sharded']['answers_digest']} == single, "
        f"p95 {sh['p95_single']} -> {sh['p95_sharded']} steps; "
        f"routing waste {rt['fanout_waste_unrouted']} -> "
        f"{rt['fanout_waste_routed']}, decision p95 "
        f"{rt['p95_unrouted']} -> {rt['p95_routed']}; "
        f"{len(rb['migrations'])} graphs rebalanced; chaos "
        f"{ch['injected']} faults, {ch['rerouted']} rerouted, "
        f"answers == healthy)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
