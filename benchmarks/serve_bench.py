"""Service load benchmark: closed-loop multi-tenant generation.

Boots ``repro.service`` on a dataset, runs the closed-loop load
generator (each tenant keeps ``--concurrency`` queries in flight over
a size/hardness-stratified stream with isomorphic repeats), and writes
``BENCH_service.json``: throughput in queries per million simulated
steps and per wall-clock second, plus p50/p95/p99 simulated-step
latency and cache/admission counters.

A second section, ``sharding``, runs the same closed-loop workload on
a multi-graph FTV collection twice — single catalog vs ``--shards N``
— and digest-checks that the **answers** (found / embedding counts /
matching graph ids) are bit-for-bit identical while the sharded run's
p95 latency is no worse.  ``results_digest`` covers historical bills
(steps, winners, latencies) and legitimately differs between layouts;
``answers_digest`` is the sharding-invariant one that must match.

Usage::

    PYTHONPATH=src python benchmarks/serve_bench.py            # full
    PYTHONPATH=src python benchmarks/serve_bench.py --quick    # CI smoke

The run is deterministic: the JSON embeds digests that must be
identical across machines for the same arguments.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

if __package__ in (None, ""):  # script invocation: repo-root layout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cli import main as repro_main

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_service.json"


def _bench_serve(out: str, **cli_args) -> dict:
    """One ``repro bench-serve`` run; returns the JSON payload."""
    argv = ["bench-serve", "--out", out]
    for flag, value in cli_args.items():
        argv += [f"--{flag.replace('_', '-')}", str(value)]
    rc = repro_main(argv)
    if rc != 0:
        raise SystemExit(f"bench-serve failed ({rc}): {argv}")
    with open(out) as fh:
        return json.load(fh)


def _sharding_section(args, scale: str, tmpdir: str) -> dict:
    """Single-catalog vs sharded equivalence run on an FTV collection."""
    common = dict(
        dataset=args.shard_dataset,
        scale=scale,
        queries=30 if args.quick else 60,
        tenants=args.tenants,
        workers=args.workers,
        concurrency=2,
        budget=args.budget,
        seed=args.seed,
    )
    single = _bench_serve(f"{tmpdir}/single.json", shards=1, **common)
    sharded = _bench_serve(
        f"{tmpdir}/sharded.json", shards=args.shards, **common
    )
    if single["killed"] or sharded["killed"]:
        # killed answers are execution-dependent (that is why they are
        # never cached); the layout-invariance claim covers completed
        # answers, so the equivalence run must not kill anything
        raise SystemExit(
            f"--budget {args.budget} kills queries "
            f"(single={single['killed']}, sharded={sharded['killed']}); "
            "raise the budget for the sharding equivalence section"
        )
    if single["answers_digest"] != sharded["answers_digest"]:
        raise SystemExit(
            "sharded answers diverged from single-catalog answers: "
            f"{single['answers_digest']} != {sharded['answers_digest']}"
        )
    p95_single = single["latency_steps"]["p95"]
    p95_sharded = sharded["latency_steps"]["p95"]
    if p95_sharded > p95_single:
        raise SystemExit(
            f"sharded p95 regressed: {p95_sharded} > {p95_single}"
        )
    def trim(payload):
        return {
            "answers_digest": payload["answers_digest"],
            "digest": payload["digest"],
            "latency_steps": payload["latency_steps"],
            "throughput": payload["throughput"],
        }
    return {
        "config": {**common, "shards": args.shards},
        "answers_equal": True,
        "p95_single": p95_single,
        "p95_sharded": p95_sharded,
        "p95_speedup": (
            p95_single / p95_sharded if p95_sharded else float("inf")
        ),
        "single": trim(single),
        "sharded": trim(sharded),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny scale, 50 queries (CI smoke)")
    parser.add_argument("--dataset", default="yeast")
    parser.add_argument("--scale", default=None,
                        help="default | tiny (overrides --quick)")
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--concurrency", type=int, default=1)
    parser.add_argument("--budget", type=int, default=200_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--shards", type=int, default=2,
                        help="shard count for the sharding section")
    parser.add_argument("--shard-dataset", default="ppi",
                        help="multi-graph collection for the sharding "
                             "section")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    scale = args.scale or ("tiny" if args.quick else "default")
    queries = args.queries or (50 if args.quick else 200)
    payload = _bench_serve(
        args.out,
        dataset=args.dataset,
        scale=scale,
        queries=queries,
        tenants=args.tenants,
        workers=args.workers,
        concurrency=args.concurrency,
        budget=args.budget,
        seed=args.seed,
    )
    with tempfile.TemporaryDirectory() as tmpdir:
        payload["sharding"] = _sharding_section(args, scale, tmpdir)
    payload["quick"] = args.quick
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)
    # well-formedness gate: the CI smoke job relies on these keys
    for key in ("throughput", "latency_steps", "result_cache", "digest",
                "answers_digest", "sharding"):
        if key not in payload:
            raise SystemExit(f"BENCH_service.json missing {key!r}")
    for pct in ("p50", "p95", "p99"):
        if pct not in (payload["latency_steps"] or {}):
            raise SystemExit(f"latency summary missing {pct!r}")
    sh = payload["sharding"]
    print(
        f"BENCH_service.json OK (digest {payload['digest']}; "
        f"sharded answers {sh['sharded']['answers_digest']} == single, "
        f"p95 {sh['p95_single']} -> {sh['p95_sharded']} steps)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
