"""Service load benchmark: closed-loop multi-tenant generation.

Boots ``repro.service`` on a dataset, runs the closed-loop load
generator (each tenant keeps ``--concurrency`` queries in flight over
a size/hardness-stratified stream with isomorphic repeats), and writes
``BENCH_service.json``: throughput in queries per million simulated
steps and per wall-clock second, plus p50/p95/p99 simulated-step
latency and cache/admission counters.

Usage::

    PYTHONPATH=src python benchmarks/serve_bench.py            # full
    PYTHONPATH=src python benchmarks/serve_bench.py --quick    # CI smoke

The run is deterministic: the JSON embeds a results digest that must be
identical across machines for the same arguments.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __package__ in (None, ""):  # script invocation: repo-root layout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cli import main as repro_main

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_service.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny scale, 50 queries (CI smoke)")
    parser.add_argument("--dataset", default="yeast")
    parser.add_argument("--scale", default=None,
                        help="default | tiny (overrides --quick)")
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--concurrency", type=int, default=1)
    parser.add_argument("--budget", type=int, default=200_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    scale = args.scale or ("tiny" if args.quick else "default")
    queries = args.queries or (50 if args.quick else 200)
    rc = repro_main([
        "bench-serve",
        "--dataset", args.dataset,
        "--scale", scale,
        "--queries", str(queries),
        "--tenants", str(args.tenants),
        "--workers", str(args.workers),
        "--concurrency", str(args.concurrency),
        "--budget", str(args.budget),
        "--seed", str(args.seed),
        "--out", args.out,
    ])
    if rc != 0:
        return rc
    # well-formedness gate: the CI smoke job relies on these keys
    with open(args.out) as fh:
        payload = json.load(fh)
    for key in ("throughput", "latency_steps", "result_cache", "digest"):
        if key not in payload:
            raise SystemExit(f"BENCH_service.json missing {key!r}")
    for pct in ("p50", "p95", "p99"):
        if pct not in (payload["latency_steps"] or {}):
            raise SystemExit(f"latency summary missing {pct!r}")
    print(f"BENCH_service.json OK (digest {payload['digest']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
