"""Quickstart: subgraph matching and the Ψ-framework in five minutes.

Builds a yeast-like stored graph, grows a query from it, answers the
matching problem with each NFV algorithm, and then races rewritings and
algorithms with the Ψ-framework.

Run:  python examples/quickstart.py
"""

from repro.datasets import summarize_graph, yeast_like
from repro.matching import Budget, make_matcher
from repro.psi import PsiNFV, Variant, variants_from_spec
from repro.workload import generate_workload


def main() -> None:
    # ------------------------------------------------------------------
    # 1. a stored graph (stand-in for the paper's yeast dataset)
    # ------------------------------------------------------------------
    graph = yeast_like(n=400, num_labels=30)
    summary = summarize_graph(graph)
    print("stored graph:")
    for name, value in summary.as_rows():
        print(f"  {name:16} {value}")

    # ------------------------------------------------------------------
    # 2. a workload query (random edge growth, as in the paper §3.4)
    # ------------------------------------------------------------------
    [query] = generate_workload([graph], 1, 10, seed=4)
    print(f"\nquery: {query.graph.order} vertices, "
          f"{query.graph.size} edges")

    # ------------------------------------------------------------------
    # 3. one matcher at a time
    # ------------------------------------------------------------------
    budget = Budget(max_steps=500_000)
    print("\nstandalone runs (up to 1000 embeddings):")
    for name in ("GQL", "SPA", "QSI", "VF2"):
        out = make_matcher(name).run(
            graph, query.graph, budget=budget, count_only=True
        )
        status = "killed" if out.killed else "ok"
        print(
            f"  {name:4} {out.num_embeddings:5d} embeddings in "
            f"{out.steps:8d} steps  [{status}]"
        )

    # ------------------------------------------------------------------
    # 4. the Ψ-framework: race rewritings and algorithms
    # ------------------------------------------------------------------
    psi = PsiNFV(graph)
    variants = variants_from_spec(("GQL", "SPA"), ("Orig", "ILF", "DND"))
    result = psi.race(
        query.graph, variants, budget=budget, max_embeddings=1000
    )
    print(
        f"\nPsi race over {len(variants)} variants:\n"
        f"  winner  : {result.winner}\n"
        f"  steps   : {result.steps}\n"
        f"  found   : {result.found} "
        f"({len(result.embeddings)} embeddings returned)"
    )
    print(
        "  total work across variants: "
        f"{result.race.work_steps} steps "
        "(losers are killed at the winner's finish)"
    )


if __name__ == "__main__":
    main()
