"""Learned variant selection — the paper's §9 future work, running.

The paper closes by calling for "machine learning models to predict
which version of our framework (algorithms, rewritings) to employ per
query".  This example trains the bundled :class:`VariantAdvisor` on a
stream of yeast-like queries and shows it racing only its top-2
predicted variants — preserving most of the full race's speed at a
fraction of the total work.

Run:  python examples/learned_advisor.py
"""

from repro.datasets import yeast_like
from repro.matching import Budget
from repro.psi import PsiNFV, Variant, VariantAdvisor, query_features
from repro.rewriting import LabelStats
from repro.workload import generate_workload

PORTFOLIO = tuple(
    Variant(alg, rw)
    for alg in ("GQL", "SPA")
    for rw in ("Orig", "ILF", "DND")
)
BUDGET = Budget(max_steps=150_000)


def main() -> None:
    graph = yeast_like()
    stats = LabelStats.of_graph(graph)
    psi = PsiNFV(graph)
    advisor = VariantAdvisor(PORTFOLIO, neighbors=5)

    train = generate_workload([graph], 12, 12, seed=101)
    test = generate_workload([graph], 6, 12, seed=707)

    print(f"training on {len(train)} queries "
          f"(portfolio: {len(PORTFOLIO)} variants)...")
    for q in train:
        costs = {
            v: psi.run_variant(
                q.graph, v, budget=BUDGET, count_only=True
            ).steps
            for v in PORTFOLIO
        }
        advisor.observe(query_features(q.graph, stats), costs)
    print(f"  leave-one-out top-2 hit rate: "
          f"{advisor.hit_rate(k=2):.0%}\n")

    print("test queries — full race vs advisor-guided top-2 race:")
    print(f"  {'query':12} {'full steps':>10} {'work':>8}   "
          f"{'top2 steps':>10} {'work':>8}  picked")
    for q in test:
        full = psi.race(
            q.graph, PORTFOLIO, budget=BUDGET, count_only=True
        )
        picked = advisor.recommend(
            query_features(q.graph, stats), k=2
        )
        small = psi.race(
            q.graph, picked, budget=BUDGET, count_only=True
        )
        print(
            f"  {q.name:12} {full.steps:>10} "
            f"{full.race.work_steps:>8}   {small.steps:>10} "
            f"{small.race.work_steps:>8}  "
            f"{'/'.join(v.label for v in picked)}"
        )
    print(
        "\nThe top-2 race does a third of the portfolio's parallel "
        "work; when the\npredictor is right its time matches the full "
        "race, and when it is wrong\nthe budget still bounds the loss."
    )


if __name__ == "__main__":
    main()
