"""FTV pipeline on a PPI-like dataset: Grapes, GGSX and Ψ-FTV.

The decision problem: which protein networks contain a given motif?
Builds the PPI-like family dataset, indexes it with Grapes and GGSX,
runs motif queries through filtering + verification, and shows the
Ψ-framework racing rewritings inside the verification stage.

Run:  python examples/protein_motifs.py
"""

from repro.datasets import ppi_like, summarize_collection
from repro.indexing import GGSXIndex, GrapesIndex
from repro.matching import Budget
from repro.psi import OverheadModel, PsiFTV
from repro.workload import generate_workload


def main() -> None:
    graphs = ppi_like(num_graphs=5, avg_nodes=120, num_labels=10)
    summary = summarize_collection(graphs)
    print("PPI-like dataset:")
    for name, value in summary.as_rows():
        print(f"  {name:16} {value}")

    print("\nbuilding indexes (paths up to length 3)...")
    grapes = GrapesIndex(graphs, max_path_length=3, threads=1)
    grapes4 = grapes.with_threads(4)
    ggsx = GGSXIndex(graphs, max_path_length=3)
    print(f"  Grapes trie nodes: {grapes.trie.node_count}")
    print(f"  GGSX   trie nodes: {ggsx.trie.node_count}")

    budget = Budget(max_steps=200_000)
    queries = generate_workload(graphs, 4, 10, seed=21)

    for query in queries:
        print(
            f"\nmotif {query.name} "
            f"(grown from graph {query.source_graph_id}):"
        )
        for index in (grapes, grapes4, ggsx):
            result = index.query(query.graph, budget)
            print(
                f"  {index.method_name:9} candidates="
                f"{result.candidate_ids} matches={result.matching_ids} "
                f"verification steps={result.total_steps}"
            )

        # Psi-FTV: race rewritings inside each pair's verification
        psi = PsiFTV(
            grapes,
            ("ILF", "IND", "DND", "ILF+IND"),
            overhead=OverheadModel(per_variant_steps=32),
        )
        result = psi.query(query.graph, budget)
        total = sum(r.steps for r in result.reports)
        winners = [
            race.winner for race in result.races if race.winner
        ]
        print(
            f"  Psi(Grapes/1 x4 rewritings) matches="
            f"{result.matching_ids} steps={total} "
            f"winners={winners}"
        )


if __name__ == "__main__":
    main()
