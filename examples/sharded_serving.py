"""Sharded serving: one query, N catalog shards, identical answers.

Loads a generated multi-graph FTV collection (the synthetic dataset)
into a 2-shard :class:`repro.service.ShardedCatalog`, serves the same
multi-tenant workload through an unsharded and a sharded service, and
verifies live that the decision answers are bit-for-bit identical
while the sharded layout's tail latency improves.  Everything runs on
virtual time, so every number printed here is deterministic.

Run:  PYTHONPATH=src python examples/sharded_serving.py   (< 10 s)
"""

from repro.service import (
    QueryOptions,
    Service,
    ShardedCatalog,
    run_closed_loop,
)
from repro.workload import default_tenant_mixes, generate_tenant_stream


def build_service(shards: int) -> Service:
    svc = Service(workers=4, shards=shards)
    svc.load_dataset("synthetic", scale="tiny")
    return svc


def main() -> None:
    # ------------------------------------------------------------------
    # 1. a sharded catalog: the generated collection, partitioned
    # ------------------------------------------------------------------
    sharded = build_service(shards=2)
    entry = sharded.catalog.get("synthetic")
    print(f"collection: {len(entry.graphs)} generated graphs, "
          f"{entry.num_shards} shards (size-balanced assignment)")
    for shard, gids in enumerate(entry.assignment):
        edges = sum(entry.graphs[g].size for g in gids)
        print(f"  shard {shard}: graphs {list(gids)}  ({edges} edges)")

    # ------------------------------------------------------------------
    # 2. the same workload through both layouts
    # ------------------------------------------------------------------
    mixes = default_tenant_mixes(3, 10, sizes=(4, 6), repeat_fraction=0.3)
    streams = {
        m.tenant: generate_tenant_stream(entry.graphs, m, seed=17)
        for m in mixes
    }
    options = QueryOptions(rewritings=("Orig", "DND"))
    single_report = run_closed_loop(
        build_service(shards=1), "synthetic", streams, options=options
    )
    sharded_report = run_closed_loop(
        sharded, "synthetic", streams, options=options
    )

    # ------------------------------------------------------------------
    # 3. answers are layout-invariant; latency is not
    # ------------------------------------------------------------------
    assert single_report.answers == sharded_report.answers, "answers diverged!"
    print(f"\nanswers digest (both layouts): {single_report.answers}")
    for name, report in (("single", single_report),
                         ("sharded", sharded_report)):
        lat = report.as_json()["latency_steps"]
        print(f"  {name:8} p50={lat['p50']:5d}  p95={lat['p95']:5d}  "
              f"max={lat['max']:5d} steps")

    # one concrete query, side by side
    fresh = [
        t for t in sharded_report.completed
        if t.result.found and not t.cache_hit and not t.coalesced
    ]
    ticket = fresh[0]
    print(f"\nexample: {ticket.tenant} {ticket.query.name} fanned out to "
          f"{ticket.fanout} shard race(s); matching stored graphs "
          f"{list(ticket.result.matching_ids)} (global ids)")

    # ------------------------------------------------------------------
    # 4. per-shard memory accounting
    # ------------------------------------------------------------------
    report = sharded.catalog.memory_report()
    print(f"\nmemory: {report['total_bytes'] / 1e6:.1f} MB total across "
          f"{report['num_shards']} shards")
    for shard, row in enumerate(report["shards"]):
        print(f"  shard {shard}: {row['total_bytes'] / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
