"""Straggler hunt: find the queries that dominate a workload and rescue
them with rewritings and alternative algorithms.

Reproduces the paper's narrative end to end on a small scale:
observation 1 (stragglers exist), observation 2/4 (isomorphic instances
vary wildly; stragglers have easy counterparts), observation 5
(stragglers are algorithm-specific), and the Ψ-framework punchline.

Run:  python examples/straggler_hunt.py
"""

from repro.datasets import yeast_like
from repro.matching import Budget, make_matcher
from repro.psi import PsiNFV, Variant
from repro.rewriting import ALL_PAPER_REWRITINGS, LabelStats, make_rewriting
from repro.workload import generate_workload

BUDGET_STEPS = 150_000
ALGORITHMS = ("GQL", "SPA", "QSI")


def main() -> None:
    graph = yeast_like()
    stats = LabelStats.of_graph(graph)
    budget = Budget(max_steps=BUDGET_STEPS)
    queries = generate_workload([graph], 10, 20, seed=33)

    matchers = {name: make_matcher(name) for name in ALGORITHMS}
    indexes = {
        name: matchers[name].prepare(graph) for name in ALGORITHMS
    }

    # ------------------------------------------------------------------
    # observation 1: a few queries dominate the workload
    # ------------------------------------------------------------------
    print(f"workload: {len(queries)} 20-edge queries on a yeast-like "
          f"graph; cap {BUDGET_STEPS} steps\n")
    costs = {}
    for q in queries:
        for alg in ALGORITHMS:
            out = matchers[alg].run(
                indexes[alg], q.graph, budget=budget, count_only=True
            )
            costs[(q.name, alg)] = out
    for alg in ALGORITHMS:
        per_query = sorted(
            (costs[(q.name, alg)].steps, q.name) for q in queries
        )
        total = sum(s for s, _ in per_query)
        worst_steps, worst = per_query[-1]
        print(
            f"  {alg}: total {total:>9} steps; worst query {worst} "
            f"takes {100 * worst_steps / total:.0f}% of the workload"
        )

    # ------------------------------------------------------------------
    # observations 2+4: the straggler has easy isomorphic instances
    # ------------------------------------------------------------------
    alg = "QSI"
    straggler = max(
        queries, key=lambda q: costs[(q.name, alg)].steps
    )
    print(
        f"\nstraggler for {alg}: {straggler.name} "
        f"({costs[(straggler.name, alg)].steps} steps"
        f"{', killed' if costs[(straggler.name, alg)].killed else ''})"
    )
    print(f"  rewriting costs under {alg}:")
    for name in ("Orig",) + ALL_PAPER_REWRITINGS:
        rq = make_rewriting(name).apply(straggler.graph, stats)
        out = matchers[alg].run(
            indexes[alg], rq.graph, budget=budget, count_only=True
        )
        tag = "killed" if out.killed else f"{out.steps} steps"
        print(f"    {name:8} {tag}")

    # ------------------------------------------------------------------
    # observation 5: another algorithm may find it easy
    # ------------------------------------------------------------------
    print("  same (original) query under the other algorithms:")
    for other in ALGORITHMS:
        out = costs[(straggler.name, other)]
        tag = "killed" if out.killed else f"{out.steps} steps"
        print(f"    {other:8} {tag}")

    # ------------------------------------------------------------------
    # the Ψ-framework rescues it
    # ------------------------------------------------------------------
    psi = PsiNFV(graph)
    variants = [
        Variant("GQL", "Orig"), Variant("SPA", "Orig"),
        Variant("GQL", "DND"), Variant("SPA", "DND"),
    ]
    result = psi.race(
        straggler.graph, variants, budget=budget, count_only=True
    )
    print(
        f"\nPsi([GQL/SPA]-[Or/DND]) on the straggler: "
        f"winner={result.winner}, {result.steps} steps "
        f"(vs {costs[(straggler.name, alg)].steps} for vanilla {alg})"
    )


if __name__ == "__main__":
    main()
