"""A tour of the paper's query rewritings (reproduces Fig. 5).

Recreates the paper's running example — a 7-vertex query with labels
A, A, A, B, B, C and C against a stored graph where f(A)=20, f(B)=15,
f(C)=10 — prints the node-ID assignment of every rewriting, and then
shows on a real stored graph how the rewritings change VF2's cost while
preserving the answer.

Run:  python examples/rewritings_tour.py
"""

from collections import Counter

from repro.datasets import yeast_like
from repro.graphs import LabeledGraph
from repro.matching import VF2Matcher
from repro.rewriting import (
    ALL_PAPER_REWRITINGS,
    LabelStats,
    make_rewriting,
)
from repro.workload import generate_workload


def fig5_query() -> LabeledGraph:
    """The Fig. 5 example query (structure as drawn in the paper)."""
    g = LabeledGraph(7, ["A", "A", "A", "B", "B", "C", "C"])
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 2)
    g.add_edge(1, 3)
    g.add_edge(2, 4)
    g.add_edge(3, 5)
    g.add_edge(4, 6)
    return g


def main() -> None:
    query = fig5_query()
    stats = LabelStats(Counter({"A": 20, "B": 15, "C": 10}))

    print("Fig. 5 example: stored-graph label frequencies "
          "A=20, B=15, C=10\n")
    print("original query (node id: label/degree):")
    for v in query.vertices():
        print(f"  {v}: {query.label(v)}/{query.degree(v)}")

    for name in ALL_PAPER_REWRITINGS:
        rq = make_rewriting(name).apply(query, stats)
        g = rq.graph
        ordered = ", ".join(
            f"{v}:{g.label(v)}/{g.degree(v)}" for v in g.vertices()
        )
        print(f"\n{name:8} -> {ordered}")
        print(f"{'':8}    perm (old->new): {rq.perm}")

    # ------------------------------------------------------------------
    # effect on a real store: same answer, different cost
    # ------------------------------------------------------------------
    graph = yeast_like(n=400, num_labels=30)
    [wq] = generate_workload([graph], 1, 12, seed=9)
    stats = LabelStats.of_graph(graph)
    matcher = VF2Matcher()
    print("\nVF2 on a yeast-like store, 12-edge workload query:")
    print(f"  {'rewriting':10} {'steps':>9}  embeddings")
    for name in ("Orig",) + ALL_PAPER_REWRITINGS:
        rq = make_rewriting(name).apply(wq.graph, stats)
        out = matcher.run(
            graph, rq.graph, max_embeddings=1000, count_only=True
        )
        print(f"  {name:10} {out.steps:>9}  {out.num_embeddings}")
    print(
        "\nSame answer every time; the cost varies with the node-ID "
        "assignment.\nThat variance is what the Psi-framework races."
    )


if __name__ == "__main__":
    main()
