"""Integration tests for the experiment harness on tiny configurations.

These exercise the full measurement + aggregation pipeline that the
benchmarks run at full scale: every experiment driver must produce a
well-formed table from real measured matrices.
"""

import pytest

from repro.harness import (
    ALL_VARIANT_NAMES,
    FTVExperimentConfig,
    NFVExperimentConfig,
    PSI_FTV_VARIANT_SETS,
    PSI_NFV_MULTIALG_SETS,
    PSI_NFV_REWRITING_SETS,
    Table,
    alt_algorithm_speedup_table,
    band_percentages_table,
    build_ftv_graphs,
    build_nfv_graph,
    grapes_psi_by_size_table,
    killed_pct_table,
    maxmin_table,
    measure_ftv_matrix,
    measure_nfv_matrix,
    psi_multialg_speedup_table,
    psi_race_time,
    psi_speedup_table,
    rewriting_aet_table,
    rewriting_hard_pct_table,
    rewriting_speedup_table,
    size_breakdown_table,
    stragglers_wla_table,
)
from repro.psi import OverheadModel


@pytest.fixture(scope="module")
def nfv_matrix():
    cfg = NFVExperimentConfig.tiny("yeast")
    return measure_nfv_matrix(cfg, scale="tiny")


@pytest.fixture(scope="module")
def ftv_matrix():
    cfg = FTVExperimentConfig.tiny("ppi")
    return measure_ftv_matrix(cfg, scale="tiny")


class TestBuilders:
    def test_nfv_names(self):
        assert build_nfv_graph("yeast", "tiny").order > 0
        with pytest.raises(ValueError):
            build_nfv_graph("mars")
        with pytest.raises(ValueError):
            build_nfv_graph("yeast", "giant")

    def test_ftv_names(self):
        assert len(build_ftv_graphs("ppi", "tiny")) > 0
        with pytest.raises(ValueError):
            build_ftv_graphs("mars")


class TestNFVMatrix:
    def test_complete(self, nfv_matrix):
        m = nfv_matrix
        expected = (
            len(m.queries) * len(m.methods) * len(ALL_VARIANT_NAMES)
        )
        assert len(m.records) == expected

    def test_charged_clamped(self, nfv_matrix):
        m = nfv_matrix
        for u in m.units:
            for alg in m.methods:
                assert m.charged(u, alg, "Orig") >= 1

    def test_unit_sizes(self, nfv_matrix):
        m = nfv_matrix
        assert {m.unit_size(u) for u in m.units} == {4}

    def test_satisfiable_unless_killed(self, nfv_matrix):
        m = nfv_matrix
        for u in m.units:
            rec = m.record(u, "GQL", "Orig")
            assert rec.found or rec.killed


class TestFTVMatrix:
    def test_pairs_and_records(self, ftv_matrix):
        m = ftv_matrix
        assert len(m.pairs) >= len(m.queries)  # source graph at least
        expected = len(m.pairs) * len(m.methods) * len(ALL_VARIANT_NAMES)
        assert len(m.records) == expected

    def test_grapes4_never_slower(self, ftv_matrix):
        m = ftv_matrix
        for u in m.units:
            assert m.charged(u, "Grapes/4", "Orig") <= m.charged(
                u, "Grapes/1", "Orig"
            )

    def test_source_pair_matches(self, ftv_matrix):
        m = ftv_matrix
        for u in m.units:
            qi, gid = m.pairs[u]
            if gid == m.queries[qi].source_graph_id:
                rec = m.record(u, "Grapes/1", "Orig")
                assert rec.found or rec.killed


ALG_SETS = [("pair", ("GQL", "SPA")), ("triple", ("GQL", "SPA", "QSI"))]


class TestDrivers:
    def test_all_nfv_drivers_render(self, nfv_matrix):
        m = nfv_matrix
        tables = [
            stragglers_wla_table(m, "t"),
            band_percentages_table(m, "t"),
            size_breakdown_table(m, "t"),
            maxmin_table(m, "t"),
            rewriting_aet_table(m, "t"),
            rewriting_hard_pct_table(m, "t"),
            rewriting_speedup_table(m, "t"),
            alt_algorithm_speedup_table(m, "t", ALG_SETS),
            psi_speedup_table(m, "t", PSI_NFV_REWRITING_SETS),
            psi_speedup_table(m, "t", PSI_NFV_REWRITING_SETS, mode="wla"),
            psi_multialg_speedup_table(
                m, "t", PSI_NFV_MULTIALG_SETS, baseline="GQL"
            ),
            psi_multialg_speedup_table(
                m, "t", PSI_NFV_MULTIALG_SETS, baseline="SPA", mode="wla"
            ),
        ]
        for t in tables:
            text = t.render()
            assert "t" in text
            assert t.rows

    def test_all_ftv_drivers_render(self, ftv_matrix):
        m = ftv_matrix
        tables = [
            stragglers_wla_table(m, "t"),
            band_percentages_table(m, "t"),
            maxmin_table(m, "t"),
            rewriting_aet_table(m, "t"),
            rewriting_speedup_table(m, "t"),
            psi_speedup_table(m, "t", PSI_FTV_VARIANT_SETS),
            grapes_psi_by_size_table(m, "t"),
        ]
        for t in tables:
            assert t.rows

    def test_killed_pct_table(self, nfv_matrix, ftv_matrix):
        entries = [
            (
                "ppi", "Grapes/4", ftv_matrix,
                [("Grapes/1", rw) for rw in ("ILF", "IND", "DND")],
            ),
            (
                "yeast", "GQL", nfv_matrix,
                [("GQL", "Orig"), ("SPA", "Orig")],
            ),
        ]
        t = killed_pct_table(entries)
        assert len(t.rows) == 2

    def test_psi_race_time_is_min_plus_overhead(self, nfv_matrix):
        m = nfv_matrix
        over = OverheadModel(per_variant_steps=10)
        members = [("GQL", "Orig"), ("SPA", "Orig")]
        for u in m.units:
            t, killed = psi_race_time(m, u, members, over)
            recs = [m.record(u, a, r) for a, r in members]
            if all(r.killed for r in recs):
                assert killed
            else:
                best = min(
                    r.steps for r in recs if not r.killed
                )
                assert t == max(1, best + 20)

    def test_psi_speedup_mode_validation(self, nfv_matrix):
        with pytest.raises(ValueError):
            psi_speedup_table(
                nfv_matrix, "t", PSI_NFV_REWRITING_SETS, mode="avg"
            )
        with pytest.raises(ValueError):
            psi_multialg_speedup_table(
                nfv_matrix, "t", PSI_NFV_MULTIALG_SETS,
                baseline="GQL", mode="avg",
            )


class TestTable:
    def test_row_length_checked(self):
        t = Table("x", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_render_formats(self):
        t = Table("title", ["col"])
        t.add_row(float("nan"))
        t.add_row(1234567.0)
        t.add_row(0.5)
        t.add_note("note text")
        text = t.render()
        assert "-" in text
        assert "1.23e+06" in text
        assert "0.50" in text
        assert "note text" in text

    def test_column_extraction(self):
        t = Table("x", ["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == [2, 4]
