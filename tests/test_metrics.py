"""Tests for the paper's metrics (§3.5)."""

import math

import pytest

from repro.metrics import (
    Band,
    CostRecord,
    Thresholds,
    band_breakdown,
    classify,
    max_min_ratio,
    percentile,
    qla_ratio,
    speedup_values,
    summarize_distribution,
    summarize_latencies,
    wla_ratio,
)

T = Thresholds(easy_steps=100, budget_steps=1000)


def rec(steps, killed=False, found=True):
    return CostRecord(steps=steps, found=found, killed=killed)


class TestClassification:
    def test_bands(self):
        assert classify(rec(50), T) is Band.EASY
        assert classify(rec(100), T) is Band.MID
        assert classify(rec(999), T) is Band.MID
        assert classify(rec(1000, killed=True), T) is Band.HARD

    def test_charged(self):
        assert rec(50).charged(T) == 50
        assert rec(700, killed=True).charged(T) == 1000

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            Thresholds(easy_steps=0, budget_steps=10)
        with pytest.raises(ValueError):
            Thresholds(easy_steps=10, budget_steps=10)


class TestBandBreakdown:
    def test_averages_and_percentages(self):
        records = [rec(10), rec(30), rec(500), rec(1000, killed=True)]
        bd = band_breakdown(records, T)
        assert bd.avg_easy == pytest.approx(20)
        assert bd.avg_mid == pytest.approx(500)
        assert bd.avg_completed == pytest.approx(180)
        assert bd.pct_easy == pytest.approx(50)
        assert bd.pct_mid == pytest.approx(25)
        assert bd.pct_hard == pytest.approx(25)

    def test_empty_band_is_nan(self):
        bd = band_breakdown([rec(10)], T)
        assert math.isnan(bd.avg_mid)
        rows = dict(bd.as_rows())
        assert rows["AET 2''-600'' (steps)"] == "-"

    def test_no_records_rejected(self):
        with pytest.raises(ValueError):
            band_breakdown([], T)


class TestRatios:
    def test_wla_vs_qla_differ(self):
        """The paper's §3.5 point: the two aggregations tell different
        stories on skewed data."""
        baseline = [100.0, 1000.0]
        improved = [1.0, 1000.0]
        # WLA: 1100/1001 ~ 1.1 ; QLA: avg(100, 1) = 50.5
        assert wla_ratio(baseline, improved) == pytest.approx(
            1100 / 1001
        )
        assert qla_ratio(baseline, improved) == pytest.approx(50.5)

    def test_wla_validation(self):
        with pytest.raises(ValueError):
            wla_ratio([], [])
        with pytest.raises(ValueError):
            wla_ratio([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            wla_ratio([1.0], [0.0])

    def test_qla_validation(self):
        with pytest.raises(ValueError):
            qla_ratio([1.0], [0.0])

    def test_max_min(self):
        assert max_min_ratio([2.0, 10.0, 4.0]) == pytest.approx(5.0)
        assert max_min_ratio([3.0]) == 1.0
        with pytest.raises(ValueError):
            max_min_ratio([])
        with pytest.raises(ValueError):
            max_min_ratio([0.0, 1.0])

    def test_speedup_values(self):
        out = speedup_values([10.0, 20.0], [5.0, 20.0])
        assert out == [2.0, 1.0]
        with pytest.raises(ValueError):
            speedup_values([1.0], [0.0])


class TestDistributionSummary:
    def test_stats(self):
        s = summarize_distribution([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)
        assert s.stddev > 0

    def test_single_value(self):
        s = summarize_distribution([7.0])
        assert s.stddev == 0.0
        assert s.median == 7.0

    def test_rows(self):
        rows = dict(summarize_distribution([2.0]).as_rows())
        assert rows["avg"] == "2.00"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_distribution([])


class TestPercentileEdgeCases:
    """Pinned nearest-rank semantics at tiny n (the bench-digest and
    /watch-frame contract — see the :func:`repro.metrics.percentile`
    docstring)."""

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1], -1)
        with pytest.raises(ValueError):
            percentile([1], 100.5)

    def test_single_value_every_q(self):
        # n == 1: rank is ceil(q/100) == 1 for q > 0, and q == 0 is
        # special-cased to the minimum — same element either way
        for q in (0, 1, 50, 95, 99, 100):
            assert percentile([42], q) == 42

    def test_two_values_split_at_50(self):
        # n == 2: rank = ceil(q/50); p50 is the LOWER sample
        assert percentile([10, 20], 0) == 10
        assert percentile([20, 10], 1) == 10
        assert percentile([20, 10], 50) == 10
        assert percentile([10, 20], 50.0001) == 20
        assert percentile([10, 20], 95) == 20
        assert percentile([10, 20], 99) == 20
        assert percentile([10, 20], 100) == 20

    def test_ties_returned_verbatim(self):
        assert percentile([7, 7, 7], 50) == 7
        assert percentile([7, 7, 7], 95) == 7
        # a tie at the rank boundary still yields the tied value
        assert percentile([1, 5, 5, 9], 50) == 5
        assert percentile([1, 5, 5, 9], 75) == 5

    def test_unsorted_input(self):
        values = [30, 10, 50, 20, 40]
        assert percentile(values, 0) == 10
        assert percentile(values, 20) == 10
        assert percentile(values, 50) == 30
        assert percentile(values, 95) == 50
        # input list untouched
        assert values == [30, 10, 50, 20, 40]

    def test_summary_uses_same_definition(self):
        s = summarize_latencies([10, 20]).as_dict()
        assert s == {
            "count": 2,
            "mean": 15,
            "p50": 10,
            "p95": 20,
            "p99": 20,
            "max": 20,
        }
