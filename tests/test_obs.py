"""Observability layer: registry primitives and the stats identity pin.

The load-bearing test here is :class:`TestStatsIdentity` — it re-states
the pre-observability ``Service.stats()`` implementation verbatim
(reading the public attributes directly) and asserts the registry-backed
snapshot is **key-for-key and value-for-value identical** across
unsharded, sharded+routed, and chaos workloads.  That identity is what
keeps every committed BENCH digest byte-stable through this refactor.
"""

import json

import pytest

from repro.harness import build_ftv_graphs
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_property,
)
from repro.service import (
    AdmissionController,
    QueryOptions,
    Rebalancer,
    Service,
    TenantPolicy,
    chaos_plan,
    run_closed_loop,
)
from repro.workload import default_tenant_mixes, generate_tenant_stream

BUDGET = 60_000
FTV_OPTS = QueryOptions(rewritings=("Orig", "DND"))


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------

class TestCounter:
    def test_inc_and_read(self):
        c = Counter()
        assert c.read() == 0
        assert c.inc() == 1
        assert c.inc(4) == 5
        assert c.read() == 5

    def test_value_is_settable(self):
        # the legacy reset idiom: admission.rejected = 0
        c = Counter(9)
        c.value = 0
        assert c.read() == 0

    def test_counter_property_forwards(self):
        class Holder:
            hits = counter_property("_m_hits")

            def __init__(self):
                self._m_hits = Counter()

        h = Holder()
        h.hits += 3
        assert h.hits == 3
        assert h._m_hits.read() == 3
        h.hits = 0
        assert h._m_hits.read() == 0


class TestGauge:
    def test_read_through(self):
        box = {"v": 1}
        g = Gauge(lambda: box["v"])
        assert g.read() == 1
        box["v"] = 7
        assert g.read() == 7


class TestHistogram:
    def test_default_bounds_are_powers_of_two(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == 1
        assert DEFAULT_LATENCY_BUCKETS[-1] == 2 ** 21
        assert all(
            b == 1 << k for k, b in enumerate(DEFAULT_LATENCY_BUCKETS)
        )

    def test_bucketing_at_bounds(self):
        h = Histogram(bounds=(10, 100))
        h.observe(0)    # <= 10
        h.observe(10)   # exactly at a bound lands in that bucket
        h.observe(11)   # (10, 100]
        h.observe(100)
        h.observe(101)  # overflow
        assert h.read() == {
            "bounds": [10, 100],
            "counts": [2, 2, 1],
            "count": 5,
            "sum": 222,
        }

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(1, 1, 2))
        with pytest.raises(ValueError):
            Histogram(bounds=(2, 1))

    def test_deterministic_read(self):
        a, b = Histogram(), Histogram()
        for v in (0, 1, 5, 64, 3_000_000):
            a.observe(v)
            b.observe(v)
        assert a.read() == b.read()
        assert json.dumps(a.read(), sort_keys=True) == json.dumps(
            b.read(), sort_keys=True
        )


class TestRegistry:
    def test_snapshot_sorted_and_read_on_demand(self):
        reg = MetricsRegistry()
        c = reg.counter("z.last")
        reg.gauge("a.first", lambda: c.read() * 2)
        c.inc(3)
        snap = reg.snapshot()
        assert list(snap) == ["a.first", "z.last"]
        assert snap == {"a.first": 6, "z.last": 3}

    def test_collision_checked(self):
        reg = MetricsRegistry()
        reg.counter("dup")
        with pytest.raises(ValueError):
            reg.counter("dup")
        # replace=True is the re-created-component escape hatch
        reg.counter("dup", value=5, replace=True)
        assert reg.value("dup") == 5

    def test_rejects_unreadable_metric(self):
        with pytest.raises(TypeError):
            MetricsRegistry().register("bad", object())

    def test_lookup_surface(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        assert "x" in reg
        assert "y" not in reg
        assert reg.get("x") is c
        assert reg.get("y") is None
        assert reg.names() == ["x"]


# ----------------------------------------------------------------------
# the stats identity pin
# ----------------------------------------------------------------------

def legacy_stats(svc: Service) -> dict:
    """The pre-observability ``Service.stats()``, restated verbatim.

    Reads only public attributes — no registry — so any drift between
    the registry snapshot and the components' own bookkeeping fails the
    identity assertions below.
    """
    from repro.caching import prepare_cache
    from repro.metrics import summarize_latencies

    latency = (
        summarize_latencies(list(svc._latencies)).as_dict()
        if svc._latencies
        else None
    )
    if svc.sharded:
        num_shards = svc.catalog.num_shards
        per_shard = [
            sum(
                svc.dispatcher.pool_work[p]
                for p in svc.catalog.shard_pools(s)
                if p < svc.dispatcher.pools
            )
            for s in range(num_shards)
        ]
        replicas = {
            "counts": [
                len(svc.catalog.replica_ids(s))
                for s in range(num_shards)
            ],
            "live": [
                len(svc.live_replicas(s)) for s in range(num_shards)
            ],
            "states": {
                f"{s}/{r}": state.value
                for (s, r), state in sorted(svc.replica_states.items())
            },
            "killed": svc.replicas_killed,
            "wedged": svc.replicas_wedged,
            "retired": svc.replicas_retired,
        }
    else:
        num_shards = 1
        per_shard = list(svc.dispatcher.pool_work)
        replicas = {
            "counts": [1],
            "live": [1],
            "states": {},
            "killed": 0,
            "wedged": 0,
            "retired": 0,
        }
    return {
        "clock_steps": svc.clock,
        "ticks": svc.dispatcher.ticks,
        "work_steps": svc.dispatcher.work_steps,
        "completed": svc.completed_count,
        "active": svc.dispatcher.active,
        "shards": num_shards,
        "shard_cancelled": svc.shard_cancelled,
        "per_shard_work": per_shard,
        "per_pool_work": list(svc.dispatcher.pool_work),
        "replicas": replicas,
        "faults": {
            "injected": (
                len(svc.faults.applied) if svc.faults is not None else 0
            ),
            "retries": svc.retries,
            "rerouted": svc.rerouted,
            "degraded": svc.degraded,
            "tasks_failed": svc.tasks_failed,
            "noop": svc.faults_noop,
        },
        "fanout_waste": svc.fanout_waste,
        "routing": {
            "enabled": svc.routing,
            "routed": svc.routed_queries,
            "shards_pruned": svc.shards_pruned,
            "waves_skipped": svc.waves_skipped,
            "shard_cancelled": svc.shard_cancelled,
        },
        "latency_steps": latency,
        "admission": svc.admission.stats(),
        "result_cache": svc.cache.as_metrics(),
        "prepare_cache": prepare_cache.stats.as_metrics(),
        "memory": svc.catalog.memory_report(),
    }


@pytest.fixture(scope="module")
def ppi_graphs():
    return build_ftv_graphs("ppi", "tiny")


def ftv_service(shards=1, replicas=1, routing=False, **kw):
    svc = Service(
        workers=4,
        shards=shards,
        replicas=replicas,
        routing=routing,
        admission=AdmissionController(
            default_policy=TenantPolicy(step_budget=BUDGET)
        ),
        **kw,
    )
    svc.load_dataset("ppi", scale="tiny")
    return svc


def ftv_streams(graphs, tenants=2, per_tenant=8, seed=9):
    mixes = default_tenant_mixes(
        tenants, per_tenant, sizes=(4, 6), repeat_fraction=0.3
    )
    return {
        m.tenant: generate_tenant_stream(graphs, m, seed=seed)
        for m in mixes
    }


def assert_stats_identical(svc: Service) -> None:
    want = legacy_stats(svc)
    got = svc.stats()
    assert list(got) == list(want)  # key set AND order
    assert got == want
    # and the whole thing still renders to stable JSON
    assert json.dumps(got, sort_keys=True) == json.dumps(
        want, sort_keys=True
    )


class TestStatsIdentity:
    def test_fresh_service(self, ppi_graphs):
        assert_stats_identical(ftv_service())

    def test_unsharded_run(self, ppi_graphs):
        svc = ftv_service()
        run_closed_loop(
            svc, "ppi", ftv_streams(ppi_graphs), options=FTV_OPTS,
            concurrency=2,
        )
        assert_stats_identical(svc)

    def test_sharded_routed_rebalanced_run(self, ppi_graphs):
        svc = ftv_service(shards=2, replicas=2, routing=True)
        run_closed_loop(
            svc, "ppi", ftv_streams(ppi_graphs), options=FTV_OPTS,
            concurrency=2, rebalancer=Rebalancer(svc, min_window_steps=64),
            rebalance_every=4,
        )
        assert_stats_identical(svc)

    def test_chaos_run(self, ppi_graphs):
        svc = ftv_service(shards=2, replicas=2)
        faults = chaos_plan(1337, num_shards=2, replicas=2, queries=16)
        run_closed_loop(
            svc, "ppi", ftv_streams(ppi_graphs), options=FTV_OPTS,
            concurrency=2, faults=faults,
        )
        assert svc.stats()["faults"]["injected"] > 0
        assert_stats_identical(svc)

    def test_registry_snapshot_superset(self, ppi_graphs):
        """The registry exposes everything stats() serves, plus the
        registry-only series (histogram, trace buffer, routing tables)."""
        svc = ftv_service(shards=2, replicas=2, routing=True)
        run_closed_loop(
            svc, "ppi", ftv_streams(ppi_graphs, per_tenant=4),
            options=FTV_OPTS, concurrency=2,
        )
        snap = svc.metrics.snapshot()
        stats = svc.stats()
        for key in stats:
            assert f"service.{key}" in snap
            assert snap[f"service.{key}"] == stats[key]
        assert list(snap) == sorted(snap)
        hist = snap["service.latency_hist"]
        assert hist["bounds"] == list(DEFAULT_LATENCY_BUCKETS)
        assert hist["count"] == stats["latency_steps"]["count"]
        assert snap["trace.buffer"]["capacity"] == 512
        assert "routing.tables" in snap
        assert "admission.admitted" in snap
        assert "dispatcher.ticks" in snap


class TestLoadReportSnapshot:
    def test_latency_section_comes_from_snapshot(self, ppi_graphs):
        """Satellite: as_json() no longer re-derives latencies by hand —
        but the snapshot value equals the hand derivation exactly."""
        from repro.metrics import summarize_latencies

        svc = ftv_service(shards=2, replicas=2)
        report = run_closed_loop(
            svc, "ppi", ftv_streams(ppi_graphs), options=FTV_OPTS,
            concurrency=2,
        )
        payload = report.as_json()
        assert payload["latency_steps"] == report.service_stats[
            "latency_steps"
        ]
        by_hand = summarize_latencies(
            [t.latency or 0 for t in report.completed]
        ).as_dict()
        assert payload["latency_steps"] == by_hand
