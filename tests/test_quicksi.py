"""QuickSI-specific tests: QI-sequence structure and ordering."""

import random

from repro.graphs import LabeledGraph, gnm_graph, uniform_labels
from repro.matching import GraphIndex, QuickSIMatcher, build_qi_sequence

from .conftest import random_query_from, triangle_with_tail


def _index():
    rng = random.Random(3)
    g = gnm_graph(
        25, 50, uniform_labels(25, ["A", "B", "C"], rng), rng
    )
    return GraphIndex(g), g


class TestQISequence:
    def test_covers_all_vertices_once(self):
        ix, g = _index()
        q = random_query_from(g, 6, 2)
        seq = build_qi_sequence(ix, q)
        vertices = [e.vertex for e in seq]
        assert sorted(vertices) == list(q.vertices())

    def test_root_has_no_parent(self):
        ix, g = _index()
        q = random_query_from(g, 5, 4)
        seq = build_qi_sequence(ix, q)
        assert seq[0].parent is None

    def test_parents_precede_children(self):
        ix, g = _index()
        q = random_query_from(g, 7, 6)
        seq = build_qi_sequence(ix, q)
        seen = set()
        for entry in seq:
            if entry.parent is not None:
                assert entry.parent in seen
            for b in entry.back_edges:
                assert b in seen
            seen.add(entry.vertex)

    def test_tree_plus_back_edges_cover_query_edges(self):
        ix, g = _index()
        q = random_query_from(g, 6, 8)
        seq = build_qi_sequence(ix, q)
        covered = set()
        for entry in seq:
            if entry.parent is not None:
                covered.add(
                    (min(entry.vertex, entry.parent),
                     max(entry.vertex, entry.parent))
                )
            for b in entry.back_edges:
                covered.add(
                    (min(entry.vertex, b), max(entry.vertex, b))
                )
        assert covered == set(q.edges())

    def test_root_prefers_infrequent_label(self):
        g = LabeledGraph.from_edges(
            ["A", "A", "A", "B"], [(0, 1), (1, 2), (2, 3)]
        )
        ix = GraphIndex(g)
        q = LabeledGraph.from_edges(["A", "B"], [(0, 1)])
        seq = build_qi_sequence(ix, q)
        # label B occurs once in the store, A three times
        assert q.label(seq[0].vertex) == "B"

    def test_disconnected_query_handled(self):
        ix, g = _index()
        q = LabeledGraph(4, ["A", "B", "A", "C"])
        q.add_edge(0, 1)
        q.add_edge(2, 3)
        seq = build_qi_sequence(ix, q)
        assert sorted(e.vertex for e in seq) == [0, 1, 2, 3]
        # two tree roots
        assert sum(1 for e in seq if e.parent is None) == 2


class TestMatching:
    def test_matches_triangle_tail(self):
        g = triangle_with_tail()
        q = LabeledGraph.from_edges(["B", "C"], [(0, 1)])
        out = QuickSIMatcher().run(g, q, max_embeddings=10)
        assert out.num_embeddings == 1

    def test_degree_filter_applies(self):
        # hub query vertex cannot map to a degree-1 store vertex
        g = LabeledGraph.from_edges(
            ["A", "B", "B", "B"], [(0, 1), (0, 2), (0, 3)]
        )
        q = LabeledGraph.from_edges(["A", "B", "B"], [(0, 1), (0, 2)])
        out = QuickSIMatcher().run(g, q, max_embeddings=100)
        assert all(emb[0] == 0 for emb in out.embeddings)
