"""Tests for canonical query forms (the result-cache key)."""

import random

import pytest

from repro.graphs import LabeledGraph, gnm_graph, uniform_labels
from repro.graphs.isomorphism import are_isomorphic
from repro.service.canon import canonical_query_key
from repro.workload import extract_query, permuted_instance


def _random_graph(seed, n=10, m=18, labels=("A", "B", "C")):
    rng = random.Random(seed)
    return gnm_graph(n, m, uniform_labels(n, list(labels), rng), rng)


class TestInvariance:
    def test_identity(self):
        g = _random_graph(1)
        assert canonical_query_key(g) == canonical_query_key(g)

    @pytest.mark.parametrize("seed", range(8))
    def test_permutation_invariance(self, seed):
        g = _random_graph(seed)
        rng = random.Random(seed + 100)
        twin = permuted_instance(g, rng)
        assert are_isomorphic(g, twin)
        assert canonical_query_key(g) == canonical_query_key(twin)

    def test_many_permutations_one_key(self):
        g = _random_graph(3, n=8, m=12)
        rng = random.Random(9)
        keys = {
            canonical_query_key(permuted_instance(g, rng))
            for _ in range(12)
        }
        assert len(keys) == 1

    def test_workload_queries_canonicalize(self, small_store):
        # the actual query shapes the service will see
        for seed in range(6):
            q = extract_query(small_store, 8, random.Random(seed))
            rng = random.Random(seed + 50)
            twin = permuted_instance(q, rng)
            key = canonical_query_key(q)
            assert key is not None
            assert key == canonical_query_key(twin)


class TestDiscrimination:
    def test_different_structure(self):
        path = LabeledGraph(3, ["A", "A", "A"])
        path.add_edge(0, 1)
        path.add_edge(1, 2)
        tri = LabeledGraph(3, ["A", "A", "A"])
        tri.add_edge(0, 1)
        tri.add_edge(1, 2)
        tri.add_edge(0, 2)
        assert canonical_query_key(path) != canonical_query_key(tri)

    def test_label_aware(self):
        g1 = LabeledGraph(2, ["A", "B"])
        g1.add_edge(0, 1)
        g2 = LabeledGraph(2, ["A", "A"])
        g2.add_edge(0, 1)
        assert canonical_query_key(g1) != canonical_query_key(g2)

    def test_label_placement_aware(self):
        # same label multiset, different placement on a path
        g1 = LabeledGraph(3, ["A", "B", "A"])
        g1.add_edge(0, 1)
        g1.add_edge(1, 2)
        g2 = LabeledGraph(3, ["A", "A", "B"])
        g2.add_edge(0, 1)
        g2.add_edge(1, 2)
        assert canonical_query_key(g1) != canonical_query_key(g2)

    def test_non_isomorphic_same_invariants(self):
        # 6-cycle vs two triangles: same degree/label statistics
        cycle = LabeledGraph(6, ["A"] * 6)
        for i in range(6):
            cycle.add_edge(i, (i + 1) % 6)
        triangles = LabeledGraph(6, ["A"] * 6)
        for base in (0, 3):
            triangles.add_edge(base, base + 1)
            triangles.add_edge(base + 1, base + 2)
            triangles.add_edge(base, base + 2)
        assert not are_isomorphic(cycle, triangles)
        k1 = canonical_query_key(cycle)
        k2 = canonical_query_key(triangles)
        assert k1 is not None and k2 is not None
        assert k1 != k2


class TestGuards:
    def test_empty_graph(self):
        g = LabeledGraph(0, [])
        assert canonical_query_key(g) is not None

    def test_singleton(self):
        g = LabeledGraph(1, ["A"])
        assert canonical_query_key(g) is not None

    def test_branch_budget_returns_none(self):
        # an unlabelled cycle forces branching; budget 0 must bail out
        cycle = LabeledGraph(8, ["A"] * 8)
        for i in range(8):
            cycle.add_edge(i, (i + 1) % 8)
        assert canonical_query_key(cycle, max_branches=0) is None
        assert canonical_query_key(cycle) is not None
