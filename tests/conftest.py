"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs import LabeledGraph, gnm_graph, uniform_labels
from repro.workload import extract_query


def canonical_embeddings(embeddings):
    """Order-independent canonical form of an embedding set."""
    return sorted(tuple(sorted(e.items())) for e in embeddings)


def random_query_from(graph, num_edges, seed):
    """A connected query grown from ``graph`` (always satisfiable)."""
    return extract_query(graph, num_edges, random.Random(seed))


def triangle_with_tail():
    """A 4-vertex labeled graph: triangle A-B-C plus a tail A-D."""
    g = LabeledGraph(4, ["A", "B", "C", "D"], name="triangle_tail")
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(0, 2)
    g.add_edge(0, 3)
    return g


@pytest.fixture(scope="session")
def small_store():
    """A 40-vertex random stored graph with 3 labels (session-wide)."""
    rng = random.Random(7)
    return gnm_graph(
        40, 90, uniform_labels(40, ["A", "B", "C"], rng), rng, name="store"
    )


@pytest.fixture(scope="session")
def medium_store():
    """A 80-vertex random stored graph with 4 labels (session-wide)."""
    rng = random.Random(11)
    return gnm_graph(
        80, 200, uniform_labels(80, ["A", "B", "C", "D"], rng), rng,
        name="medium",
    )
