"""Tests for admission control: queues, caps, fair share."""

import pytest

from repro.graphs import LabeledGraph
from repro.service import AdmissionController, TenantPolicy, TicketState


def q(name="q"):
    g = LabeledGraph(2, ["A", "B"], name=name)
    g.add_edge(0, 1)
    return g


class TestPolicies:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantPolicy(max_in_flight=0)
        with pytest.raises(ValueError):
            TenantPolicy(step_budget=0)
        with pytest.raises(ValueError):
            TenantPolicy(weight=0)

    def test_default_and_override(self):
        adm = AdmissionController(
            default_policy=TenantPolicy(step_budget=100)
        )
        adm.set_policy("vip", TenantPolicy(step_budget=999))
        assert adm.policy("anon").step_budget == 100
        assert adm.policy("vip").step_budget == 999

    def test_budget_from_policy(self):
        adm = AdmissionController(
            default_policy=TenantPolicy(step_budget=123)
        )
        t = adm.submit("a", "ds", q(), now=0)
        assert t.budget_steps == 123
        t2 = adm.submit("a", "ds", q(), now=0, budget_steps=55)
        assert t2.budget_steps == 55


class TestQueueing:
    def test_reject_on_full_queue(self):
        adm = AdmissionController(
            default_policy=TenantPolicy(max_queued=2)
        )
        tickets = [adm.submit("a", "ds", q(), now=0) for _ in range(3)]
        states = [t.state for t in tickets]
        assert states.count(TicketState.REJECTED) == 1
        assert adm.rejected == 1
        rejected = tickets[-1]
        assert "queue full" in rejected.reject_reason
        assert rejected.latency == 0

    def test_in_flight_cap(self):
        adm = AdmissionController(
            default_policy=TenantPolicy(max_in_flight=1)
        )
        adm.submit("a", "ds", q(), now=0)
        adm.submit("a", "ds", q(), now=0)
        first = adm.next_ticket()
        assert first is not None
        assert first.state is TicketState.RUNNING
        # cap of 1: second query must wait
        assert adm.next_ticket() is None
        adm.on_complete(first)
        assert adm.next_ticket() is not None

    def test_queued_and_in_flight_counters(self):
        adm = AdmissionController()
        adm.submit("a", "ds", q(), now=0)
        adm.submit("b", "ds", q(), now=0)
        assert adm.queued() == 2
        adm.next_ticket()
        assert adm.queued() == 1
        assert adm.in_flight() == 1


class TestFairShare:
    def test_least_charged_tenant_first(self):
        adm = AdmissionController()
        adm.submit("a", "ds", q(), now=0)
        adm.submit("b", "ds", q(), now=0)
        adm.charge("a", 1000)  # a already consumed a lot
        nxt = adm.next_ticket()
        assert nxt.tenant == "b"

    def test_weighted_share(self):
        adm = AdmissionController()
        adm.set_policy("heavy", TenantPolicy(weight=10.0))
        adm.set_policy("light", TenantPolicy(weight=1.0))
        adm.submit("heavy", "ds", q(), now=0)
        adm.submit("light", "ds", q(), now=0)
        adm.charge("heavy", 500)
        adm.charge("light", 500)
        # heavy's virtual time is 50, light's 500: heavy goes first
        assert adm.next_ticket().tenant == "heavy"

    def test_tie_breaks_by_registration_order(self):
        adm = AdmissionController()
        adm.submit("zeta", "ds", q(), now=0)
        adm.submit("alpha", "ds", q(), now=0)
        # equal charges: first-registered wins, not alphabetical
        assert adm.next_ticket().tenant == "zeta"

    def test_stats_shape(self):
        adm = AdmissionController()
        adm.submit("a", "ds", q(), now=0)
        adm.next_ticket()
        adm.charge("a", 42)
        s = adm.stats()
        assert s["admitted"] == 1
        assert s["charged_steps"]["a"] == 42
