"""Tests for query rewritings (ILF/IND/DND/combos) and label stats."""

import random

import pytest

from repro.graphs import LabeledGraph
from repro.rewriting import (
    ALL_PAPER_REWRITINGS,
    LabelStats,
    RandomRewriting,
    available_rewritings,
    make_rewriting,
)

from .conftest import random_query_from, triangle_with_tail


def _stats():
    # stored-graph label frequencies: A=20, B=15, C=10 (the paper's
    # Fig. 5 example)
    from collections import Counter

    return LabelStats(Counter({"A": 20, "B": 15, "C": 10}))


def _fig5_query():
    """The paper's Fig. 5 example query: labels A,A,A,B,B,C,C."""
    g = LabeledGraph(7, ["A", "A", "A", "B", "B", "C", "C"])
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 2)
    g.add_edge(1, 3)
    g.add_edge(2, 4)
    g.add_edge(3, 5)
    g.add_edge(4, 6)
    return g


class TestLabelStats:
    def test_of_graph(self):
        stats = LabelStats.of_graph(triangle_with_tail())
        assert stats.frequency("A") == 1
        assert stats.frequency("missing") == 0

    def test_of_collection(self):
        g = triangle_with_tail()
        stats = LabelStats.of_collection([g, g])
        assert stats.frequency("A") == 2
        assert len(stats) == 4


class TestPermutationValidity:
    @pytest.mark.parametrize("name", ("Orig",) + ALL_PAPER_REWRITINGS)
    def test_valid_permutation(self, name):
        q = _fig5_query()
        perm = make_rewriting(name).permutation(q, _stats())
        assert sorted(perm) == list(range(q.order))

    @pytest.mark.parametrize("name", ALL_PAPER_REWRITINGS + ("RND3",))
    def test_produces_isomorphic_graph(self, name):
        q = _fig5_query()
        rq = make_rewriting(name).apply(q, _stats())
        assert rq.graph.degree_label_signature() == (
            q.degree_label_signature()
        )
        assert rq.graph.size == q.size

    def test_orig_is_identity(self):
        q = _fig5_query()
        rq = make_rewriting("Orig").apply(q, _stats())
        assert rq.graph.same_labeled_structure(q)
        assert rq.perm == tuple(q.vertices())


class TestOrderingProperties:
    def test_ilf_orders_by_label_frequency(self):
        q = _fig5_query()
        rq = make_rewriting("ILF").apply(q, _stats())
        g = rq.graph
        freqs = [
            _stats().frequency(g.label(v)) for v in g.vertices()
        ]
        assert freqs == sorted(freqs)
        # C (freq 10) vertices first, A (freq 20) last
        assert g.label(0) == "C"
        assert g.label(6) == "A"

    def test_ind_orders_by_increasing_degree(self):
        q = _fig5_query()
        rq = make_rewriting("IND").apply(q, LabelStats.of_graph(q))
        g = rq.graph
        degrees = [g.degree(v) for v in g.vertices()]
        assert degrees == sorted(degrees)

    def test_dnd_orders_by_decreasing_degree(self):
        q = _fig5_query()
        rq = make_rewriting("DND").apply(q, LabelStats.of_graph(q))
        g = rq.graph
        degrees = [g.degree(v) for v in g.vertices()]
        assert degrees == sorted(degrees, reverse=True)

    def test_ilf_ind_breaks_ties_by_degree(self):
        q = _fig5_query()
        stats = _stats()
        rq = make_rewriting("ILF+IND").apply(q, stats)
        g = rq.graph
        keys = [
            (stats.frequency(g.label(v)), g.degree(v))
            for v in g.vertices()
        ]
        assert keys == sorted(keys)

    def test_ilf_dnd_breaks_ties_by_decreasing_degree(self):
        q = _fig5_query()
        stats = _stats()
        rq = make_rewriting("ILF+DND").apply(q, stats)
        g = rq.graph
        keys = [
            (stats.frequency(g.label(v)), -g.degree(v))
            for v in g.vertices()
        ]
        assert keys == sorted(keys)


class TestRandomRewriting:
    def test_deterministic_given_seed(self):
        q = _fig5_query()
        a = RandomRewriting(3).permutation(q, _stats())
        b = RandomRewriting(3).permutation(q, _stats())
        assert a == b

    def test_different_seeds_differ(self):
        q = _fig5_query()
        perms = {
            RandomRewriting(s).permutation(q, _stats()) for s in range(6)
        }
        assert len(perms) > 1

    def test_make_rewriting_rnd_names(self):
        r = make_rewriting("RND4")
        assert isinstance(r, RandomRewriting)
        assert r.seed == 4


class TestEmbeddingTranslation:
    def test_translate_round_trip(self, small_store):
        from repro.matching import VF2Matcher

        from .conftest import canonical_embeddings

        q = random_query_from(small_store, 5, 3)
        stats = LabelStats.of_graph(small_store)
        rq = make_rewriting("ILF+DND").apply(q, stats)
        orig = VF2Matcher().run(small_store, q, max_embeddings=10**6)
        rew = VF2Matcher().run(
            small_store, rq.graph, max_embeddings=10**6
        )
        translated = [
            rq.translate_embedding(e) for e in rew.embeddings
        ]
        assert canonical_embeddings(translated) == canonical_embeddings(
            orig.embeddings
        )


class TestRegistry:
    def test_available(self):
        names = available_rewritings()
        for n in ("Orig",) + ALL_PAPER_REWRITINGS:
            assert n in names

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_rewriting("XYZ")

    def test_rng_tie_breaking_produces_variants(self):
        q = _fig5_query()
        stats = _stats()
        perms = set()
        for seed in range(8):
            perms.add(
                make_rewriting("ILF").permutation(
                    q, stats, random.Random(seed)
                )
            )
        # ties among same-frequency labels leave room for variation
        assert len(perms) > 1
        # ...but every variant is still a valid ILF ordering
        for perm in perms:
            g = q.permuted(perm)
            freqs = [stats.frequency(g.label(v)) for v in g.vertices()]
            assert freqs == sorted(freqs)
