"""Tests for FTV machinery: path census, tries, Grapes, GGSX."""

import random

import pytest

from repro.datasets import ppi_like
from repro.graphs import LabeledGraph, gnm_graph, uniform_labels
from repro.indexing import (
    GGSXIndex,
    GrapesIndex,
    PathTrie,
    SuffixTrie,
    canonical_sequence,
    label_path_census,
)
from repro.matching import Budget, VF2Matcher
from repro.workload import extract_query


def _collection():
    return ppi_like(num_graphs=3, avg_nodes=60, num_labels=8, seed=5)


class TestCensus:
    def test_canonical_direction(self):
        assert canonical_sequence(("B", "A")) == ("A", "B")
        assert canonical_sequence(("A", "B")) == ("A", "B")
        assert canonical_sequence(("A",)) == ("A",)

    def test_single_edge_graph(self):
        g = LabeledGraph.from_edges(["A", "B"], [(0, 1)])
        census = label_path_census(g, 2)
        assert census.counts[("A",)] == 1
        assert census.counts[("B",)] == 1
        # the edge is found from both directions
        assert census.counts[("A", "B")] == 2

    def test_path_graph_counts(self):
        g = LabeledGraph.from_edges(
            ["A", "B", "A"], [(0, 1), (1, 2)]
        )
        census = label_path_census(g, 2)
        assert census.counts[("A", "B")] == 4  # two edges, two directions
        assert census.counts[("A", "B", "A")] == 2

    def test_max_length_zero_is_label_count(self):
        g = LabeledGraph.from_edges(["A", "A", "B"], [(0, 1), (1, 2)])
        census = label_path_census(g, 0)
        assert census.counts == {("A",): 2, ("B",): 1}

    def test_locations_cover_path_vertices(self):
        g = LabeledGraph.from_edges(
            ["A", "B", "C"], [(0, 1), (1, 2)]
        )
        census = label_path_census(g, 2, with_locations=True)
        key = canonical_sequence(("A", "B", "C"))
        assert census.locations[key] == frozenset({0, 1, 2})

    def test_negative_length_rejected(self):
        g = LabeledGraph.from_edges(["A", "B"], [(0, 1)])
        with pytest.raises(ValueError):
            label_path_census(g, -1)

    def test_census_invariant_under_permutation(self):
        rng = random.Random(1)
        g = gnm_graph(
            15, 30, uniform_labels(15, ["A", "B"], rng), rng
        )
        perm = list(g.vertices())
        rng.shuffle(perm)
        c1 = label_path_census(g, 3)
        c2 = label_path_census(g.permuted(perm), 3)
        assert c1.counts == c2.counts


class TestTries:
    def test_path_trie_lookup(self):
        t = PathTrie()
        t.insert(("A", "B"), 0, 3)
        t.insert(("A", "B"), 1, 1)
        postings = t.lookup(("A", "B"))
        assert postings[0].count == 3
        assert postings[1].count == 1
        assert t.lookup(("B",)) == {}

    def test_path_trie_merge(self):
        t = PathTrie()
        t.insert(("A",), 0, 2, frozenset({1}))
        t.insert(("A",), 0, 3, frozenset({2}))
        posting = t.lookup(("A",))[0]
        assert posting.count == 5
        assert posting.locations == frozenset({1, 2})

    def test_path_trie_iter_features(self):
        t = PathTrie()
        t.insert(("A", "B"), 0, 1)
        t.insert(("C",), 0, 1)
        assert set(t.iter_features()) == {("A", "B"), ("C",)}

    def test_suffix_trie_indexes_suffixes(self):
        t = SuffixTrie()
        t.insert(("A", "B", "C"), 0, 1)
        assert t.contains(("A", "B", "C"))
        assert t.contains(("B", "C"))
        assert t.contains(("C",))
        assert not t.contains(("A", "C"))

    def test_node_count_grows(self):
        t = PathTrie()
        assert t.node_count == 0
        t.insert(("A", "B"), 0, 1)
        assert t.node_count == 2


class TestGrapes:
    @pytest.fixture(scope="class")
    def setup(self):
        graphs = _collection()
        index = GrapesIndex(graphs, max_path_length=2, threads=1)
        return graphs, index

    def test_source_graph_always_candidate(self, setup):
        """No false dismissals: the graph a query was grown from must
        survive filtering."""
        graphs, index = setup
        for seed in range(6):
            rng = random.Random(seed)
            gid = rng.randrange(len(graphs))
            q = extract_query(graphs[gid], 5, rng)
            assert gid in index.filter(q)

    def test_verification_agrees_with_direct_vf2(self, setup):
        graphs, index = setup
        rng = random.Random(9)
        q = extract_query(graphs[1], 5, rng)
        report = index.verify(q, 1, Budget(max_steps=10**6))
        direct = VF2Matcher().decide(graphs[1], q)
        assert report.matched == direct.found

    def test_query_returns_source_graph(self, setup):
        graphs, index = setup
        rng = random.Random(13)
        q = extract_query(graphs[2], 4, rng)
        result = index.query(q, Budget(max_steps=10**6))
        assert 2 in result.matching_ids
        assert result.total_steps >= 0

    def test_with_threads_shares_index(self, setup):
        _, index = setup
        g4 = index.with_threads(4)
        assert g4.trie is index.trie
        assert g4.threads == 4
        assert g4.method_name == "Grapes/4"
        assert index.threads == 1

    def test_multithreaded_never_slower(self, setup):
        """Per-pair simulated time with 4 workers is <= sequential."""
        graphs, index = setup
        g4 = index.with_threads(4)
        rng = random.Random(21)
        q = extract_query(graphs[0], 6, rng)
        budget = Budget(max_steps=10**6)
        t1 = index.verify(q, 0, budget)
        t4 = g4.verify(q, 0, budget)
        assert t4.steps <= t1.steps
        assert t1.matched == t4.matched

    def test_root_slices_partition(self, setup):
        graphs, index = setup
        rng = random.Random(25)
        q = extract_query(graphs[0], 4, rng)
        comps = index.relevant_components(q, 0)
        assert comps  # source graph must have relevant components
        from repro.matching import GraphIndex

        comp_index = GraphIndex(comps[0][0])
        slices = index.root_slices(comp_index, q, num_slices=3)
        flat = [v for s in slices for v in s]
        assert flat == list(comp_index.candidates_by_label(q.label(0)))

    def test_thread_validation(self):
        graphs = _collection()
        with pytest.raises(ValueError):
            GrapesIndex(graphs, threads=0)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            GrapesIndex([])


class TestGGSX:
    @pytest.fixture(scope="class")
    def setup(self):
        graphs = _collection()
        return graphs, GGSXIndex(graphs, max_path_length=2)

    def test_source_graph_always_candidate(self, setup):
        graphs, index = setup
        for seed in range(6):
            rng = random.Random(seed)
            gid = rng.randrange(len(graphs))
            q = extract_query(graphs[gid], 5, rng)
            assert gid in index.filter(q)

    def test_candidates_superset_of_grapes(self, setup):
        """GGSX's suffix-accumulated counts under-prune relative to
        Grapes' exact counts."""
        graphs, ggsx = setup
        grapes = GrapesIndex(graphs, max_path_length=2)
        for seed in range(5):
            rng = random.Random(100 + seed)
            q = extract_query(graphs[0], 5, rng)
            assert set(grapes.filter(q)) <= set(ggsx.filter(q))

    def test_verify_whole_graph(self, setup):
        graphs, index = setup
        rng = random.Random(31)
        q = extract_query(graphs[1], 5, rng)
        report = index.verify(q, 1, Budget(max_steps=10**6))
        assert report.matched
        assert report.components_tried == 1

    def test_budget_kill(self, setup):
        graphs, index = setup
        rng = random.Random(37)
        q = extract_query(graphs[0], 6, rng)
        report = index.verify(q, 0, Budget(max_steps=3))
        assert report.killed
        assert report.charged_steps(Budget(max_steps=3)) == 3
