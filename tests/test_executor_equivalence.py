"""Equivalence proofs for the batched/quantum fast path.

The perf rework (bitmask kernels, batched step yields, quantum race
scheduling) must not move a single number: the step-count execution
model is the reproduction's clock.  These tests check, over a corpus of
random query/graph pairs, that

* ``interleaved_race`` returns identical winners, steps and
  ``per_variant_steps`` for every scheduling quantum;
* batched ``drive()`` matches unbatched step totals and kill behavior
  exactly, including at budget boundaries.
"""

import random

import pytest

from repro.graphs import gnm_graph, uniform_labels
from repro.matching import Budget, make_matcher
from repro.matching.engine import MatchOutcome, drive
from repro.psi import OverheadModel, interleaved_race
from repro.workload import extract_query

RACE_ALGOS = ("VF2", "QSI", "GQL", "SPA")
ALL_ALGOS = RACE_ALGOS + ("ULL", "TUR", "REF")
QUANTA = (1, 7, 64)


def corpus():
    """Random (stored graph, query) pairs spanning sizes and labels."""
    cases = []
    for seed in range(6):
        rng = random.Random(seed)
        n = 30 + 12 * (seed % 3)
        labels = uniform_labels(n, ["A", "B", "C"][: 2 + seed % 2], rng)
        g = gnm_graph(n, int(n * 2.5), labels, rng)
        q = extract_query(g, 4 + seed % 3, random.Random(seed + 100))
        cases.append((g, q))
    return cases


def unbatch(gen):
    """Expand int batch yields into single-step yields (the seed shape)."""
    try:
        while True:
            try:
                inc = next(gen)
            except StopIteration as stop:
                return stop.value
            for _ in range(1 if inc is None else inc):
                yield
    finally:
        gen.close()


def race_signature(race):
    return (
        race.winner,
        race.steps,
        race.found,
        race.killed,
        dict(race.per_variant_steps),
    )


class TestQuantumEquivalence:
    @pytest.mark.parametrize("budget_steps", [None, 300, 5000])
    def test_all_quanta_identical(self, budget_steps):
        budget = (
            Budget(max_steps=budget_steps) if budget_steps else None
        )
        for g, q in corpus():
            outcomes = []
            for quantum in QUANTA:
                engines = {}
                for name in RACE_ALGOS:
                    m = make_matcher(name)
                    engines[name] = m.engine(
                        m.prepare(g), q, max_embeddings=5
                    )
                race = interleaved_race(
                    engines,
                    budget=budget,
                    overhead=OverheadModel(
                        base_steps=3, per_variant_steps=2
                    ),
                    quantum=quantum,
                )
                outcomes.append(race_signature(race))
            assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_quantum_matches_unbatched_round_robin(self):
        """Quantum K racing batched engines == 1-step racing the seed
        (unbatched) shape of the same engines."""
        for g, q in corpus():
            def engines(wrap):
                out = {}
                for name in RACE_ALGOS:
                    m = make_matcher(name)
                    gen = m.engine(m.prepare(g), q, max_embeddings=5)
                    out[name] = unbatch(gen) if wrap else gen
                return out

            fast = interleaved_race(engines(False), quantum=64)
            slow = interleaved_race(engines(True), quantum=1)
            assert race_signature(fast) == race_signature(slow)

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ValueError):
            interleaved_race(
                {"a": iter([None])}, quantum=0
            )


class TestBatchedDriveEquivalence:
    def test_totals_match_unbatched(self):
        for g, q in corpus():
            for name in ALL_ALGOS:
                m = make_matcher(name)
                idx = m.prepare(g)
                batched = drive(m.engine(idx, q, max_embeddings=20))
                plain = drive(
                    unbatch(m.engine(idx, q, max_embeddings=20))
                )
                assert batched.steps == plain.steps, name
                assert batched.found == plain.found, name
                assert (
                    batched.num_embeddings == plain.num_embeddings
                ), name

    def test_kill_behavior_at_budget_boundaries(self):
        g, q = corpus()[0]
        for name in ALL_ALGOS:
            m = make_matcher(name)
            idx = m.prepare(g)
            total = drive(m.engine(idx, q, max_embeddings=20)).steps
            if total == 0:
                continue
            for cap in {1, max(1, total // 2), total - 1, total,
                        total + 1}:
                if cap < 1:
                    continue
                budget = Budget(max_steps=cap)
                batched = drive(
                    m.engine(idx, q, max_embeddings=20), budget
                )
                plain = drive(
                    unbatch(m.engine(idx, q, max_embeddings=20)),
                    budget,
                )
                assert batched.killed == plain.killed, (name, cap)
                assert batched.steps == plain.steps, (name, cap)

    def test_synthetic_batches_clamped_to_budget(self):
        def batches(seq):
            for inc in seq:
                yield inc
            return MatchOutcome(found=True, exhausted=True)

        # crossing the boundary mid-batch kills at exactly the budget
        out = drive(batches([7, 7]), Budget(max_steps=10))
        assert out.killed and out.steps == 10
        # landing exactly on the boundary kills too (seed convention:
        # the engine did not return before the budget expired)
        out = drive(batches([5, 5]), Budget(max_steps=10))
        assert out.killed and out.steps == 10
        # finishing under budget completes with exact totals
        out = drive(batches([5, 4]), Budget(max_steps=10))
        assert not out.killed and out.steps == 9 and out.found

    def test_mixed_none_and_int_yields(self):
        def mixed():
            yield
            yield 3
            yield None
            yield 2
            return MatchOutcome(found=True, exhausted=True)

        out = drive(mixed())
        assert out.steps == 7 and out.found
