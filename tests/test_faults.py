"""Fault-injection drills: the failure model's digest-equality claim.

The load-bearing invariant (ISSUE 6 acceptance): chaos changes *where
and when* work happens, never *what is answered* — a replica kill,
pool wedge, or mid-flight task failure reroutes legs onto surviving
replicas, and ``answers_digest`` over budget-completed queries is
bit-for-bit the healthy run's.  Drills cover kill-before-admission,
kill-mid-flight, kill during a hedged decision wave, kill around a
quiesce-point rebalance, retry exhaustion, full-shard blackouts (the
degrade-to-refusal path), and digest-verified recovery via
``add_replica``.
"""

import pytest

from repro.service import (
    AdmissionController,
    FaultEvent,
    FaultInjector,
    QueryOptions,
    Rebalancer,
    ReplicaState,
    Service,
    TenantPolicy,
    TicketState,
    chaos_plan,
    run_closed_loop,
)
from repro.harness import build_ftv_graphs
from repro.workload import default_tenant_mixes, generate_tenant_stream

BUDGET = 60_000
FTV_OPTS = QueryOptions(rewritings=("Orig", "DND"))
DEC_OPTS = QueryOptions(rewritings=("Orig", "DND"), decision_only=True)


@pytest.fixture(scope="module")
def ppi_graphs():
    return build_ftv_graphs("ppi", "tiny")


def ftv_service(shards=2, replicas=2, routing=False, **kw):
    svc = Service(
        workers=4,
        shards=shards,
        replicas=replicas,
        routing=routing,
        admission=AdmissionController(
            default_policy=TenantPolicy(step_budget=BUDGET)
        ),
        **kw,
    )
    svc.load_dataset("ppi", scale="tiny")
    return svc


def ftv_streams(graphs, tenants=2, per_tenant=8, seed=9, repeat=0.3):
    mixes = default_tenant_mixes(
        tenants, per_tenant, sizes=(4, 6), repeat_fraction=repeat
    )
    return {
        m.tenant: generate_tenant_stream(graphs, m, seed=seed)
        for m in mixes
    }


def run(graphs, faults=None, options=FTV_OPTS, service=None, **loop_kw):
    svc = service if service is not None else ftv_service()
    report = run_closed_loop(
        svc, "ppi", ftv_streams(graphs), options=options,
        concurrency=2, faults=faults, **loop_kw,
    )
    return svc, report


def kill_each_shard(at=3, shards=2):
    """The acceptance drill: kill the busiest replica of every shard
    mid-run (completion-count thresholds so the timing is scale-free)."""
    return FaultInjector([
        FaultEvent(at=at + s, kind="kill", shard=s, replica=-1,
                   unit="completions", seq=s)
        for s in range(shards)
    ])


@pytest.fixture(scope="module")
def healthy(ppi_graphs):
    """Baseline reports: unsharded truth + healthy replicated run."""
    single = Service(
        workers=4,
        admission=AdmissionController(
            default_policy=TenantPolicy(step_budget=BUDGET)
        ),
    )
    single.load_dataset("ppi", scale="tiny")
    base = run_closed_loop(
        single, "ppi", ftv_streams(ppi_graphs), options=FTV_OPTS,
        concurrency=2,
    )
    _, replicated = run(ppi_graphs)
    assert replicated.answers == base.answers
    return base


# ----------------------------------------------------------------------
# plan machinery
# ----------------------------------------------------------------------

class TestFaultEvent:
    def test_validates_kind_unit_threshold(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(at=1, kind="meteor")
        with pytest.raises(ValueError, match="unit"):
            FaultEvent(at=1, kind="kill", unit="wall")
        with pytest.raises(ValueError, match=">= 0"):
            FaultEvent(at=-1, kind="kill")
        with pytest.raises(ValueError, match="ticks"):
            FaultEvent(at=1, kind="wedge", shard=0, replica=0)

    def test_as_dict_round_trips_fields(self):
        e = FaultEvent(at=7, kind="wedge", shard=1, replica=0,
                       ticks=3, unit="completions", seq=2)
        assert e.as_dict() == {
            "at": 7, "unit": "completions", "kind": "wedge",
            "shard": 1, "replica": 0, "ticks": 3,
        }


class TestFaultInjector:
    def test_due_fires_once_in_seq_order(self):
        a = FaultEvent(at=5, kind="kill", shard=0, seq=1)
        b = FaultEvent(at=5, kind="kill", shard=1, seq=0)
        c = FaultEvent(at=9, kind="fail_task", seq=2)
        inj = FaultInjector([a, b, c])
        assert inj.due(clock=4, completions=0) == []
        fired = inj.due(clock=6, completions=0)
        assert fired == [b, a]  # same threshold: plan order wins
        assert inj.due(clock=6, completions=0) == []
        assert inj.due(clock=100, completions=0) == [c]
        assert inj.pending == ()
        assert inj.applied == [b, a, c]

    def test_completion_unit_ignores_clock(self):
        e = FaultEvent(at=3, kind="kill", shard=0, unit="completions")
        inj = FaultInjector([e])
        assert inj.due(clock=10_000, completions=2) == []
        assert inj.due(clock=0, completions=3) == [e]

    def test_summary_counts(self):
        inj = FaultInjector([
            FaultEvent(at=1, kind="kill", shard=0),
            FaultEvent(at=99, kind="fail_task", seq=1),
        ])
        inj.due(clock=1, completions=0)
        s = inj.summary()
        assert s["planned"] == 2
        assert s["pending"] == 1
        assert [e["kind"] for e in s["applied"]] == ["kill"]


class TestChaosPlan:
    def test_seed_deterministic(self):
        a = chaos_plan(1337, num_shards=2, replicas=2, queries=30)
        b = chaos_plan(1337, num_shards=2, replicas=2, queries=30)
        assert a.pending == b.pending
        c = chaos_plan(7, num_shards=2, replicas=2, queries=30)
        assert a.pending != c.pending

    def test_kills_every_shard(self):
        inj = chaos_plan(1, num_shards=3, replicas=2, queries=30)
        kills = [e for e in inj.pending if e.kind == "kill"]
        assert sorted(e.shard for e in kills) == [0, 1, 2]
        assert all(e.replica == -1 for e in kills)

    def test_horizon_schedules_on_clock(self):
        inj = chaos_plan(1, num_shards=2, replicas=2, horizon=10_000)
        assert all(e.unit == "clock" for e in inj.pending)
        inj = chaos_plan(1, num_shards=2, replicas=2, queries=40)
        assert all(e.unit == "completions" for e in inj.pending)
        with pytest.raises(ValueError, match="horizon"):
            chaos_plan(1, num_shards=2, replicas=2)


# ----------------------------------------------------------------------
# kill drills
# ----------------------------------------------------------------------

class TestKillDrills:
    def test_kill_before_admission(self, ppi_graphs, healthy):
        """A replica dead before any query arrives is simply never
        placed on; answers are the healthy answers."""
        svc = ftv_service()
        svc.kill_replica(0, 0)
        svc.kill_replica(1, 1)
        _, report = run(ppi_graphs, service=svc)
        assert report.answers == healthy.answers
        assert svc.replica_state(0, 0) is ReplicaState.DEAD
        assert svc.rerouted == 0  # nothing was in flight to lose
        assert all(t.done for t in report.tickets)

    def test_kill_mid_flight_reroutes_and_answers_hold(
        self, ppi_graphs, healthy
    ):
        """The acceptance drill: 2 shards x 2 replicas, busiest replica
        of each shard killed mid-flight — every lost leg re-admitted,
        answers bit-for-bit healthy, zero lost tickets."""
        svc, report = run(ppi_graphs, faults=kill_each_shard())
        assert report.answers == healthy.answers
        assert report.chaos["rerouted"] >= 1
        assert report.chaos["lost"] == 0
        assert report.chaos["degraded"] == 0
        assert svc.replicas_killed == 2
        assert all(
            t.retries <= svc.max_retries for t in report.tickets
        )
        assert sum(
            1 for t in report.completed if t.result.killed
        ) == 0

    def test_killed_replica_gets_no_new_work(self, ppi_graphs):
        svc, _ = run(ppi_graphs, faults=kill_each_shard())
        dead = [
            (s, r)
            for (s, r), st in svc.replica_states.items()
            if st is ReplicaState.DEAD
        ]
        assert len(dead) == 2
        # a dead replica leaves the serving set; its pool is retained
        # for bill attribution but placements never choose it again
        for s, r in dead:
            assert r not in svc.catalog.replica_ids(s)
            assert svc._place(s) != (svc.catalog.pool_index(s, r), r)

    def test_blackout_degrades_then_recovery_restores(
        self, ppi_graphs, healthy
    ):
        """Shard loses every replica: affected tickets refuse loudly
        (REJECTED + degraded + retry_after), nothing hangs; a fresh
        replica restores service with healthy answers — the
        digest-verified recovery path."""
        svc = ftv_service()
        svc.kill_replica(0, 0)
        svc.kill_replica(0, 1)
        assert svc.live_replicas(0) == []
        q = ftv_streams(ppi_graphs)["tenant0"][0].query.graph
        ticket = svc.submit("ppi", q, options=FTV_OPTS)
        svc.run_until_idle()
        assert ticket.state is TicketState.REJECTED
        assert ticket.degraded
        assert "degraded" in ticket.reject_reason
        assert ticket.retry_after is not None
        assert ticket.retry_after > ticket.submit_time
        assert svc.degraded == 1
        # recovery: a new warm replica brings the shard back
        replica = svc.add_replica(0)
        assert svc.live_replicas(0) == [replica]
        _, report = run(ppi_graphs, service=svc)
        assert report.answers == healthy.answers

    def test_retry_exhaustion_degrades_not_loops(self, ppi_graphs):
        """max_retries=0: the first reroute attempt exhausts the retry
        budget and the ticket degrades instead of looping."""
        svc = ftv_service(max_retries=0)
        _, report = run(
            ppi_graphs, faults=kill_each_shard(), service=svc
        )
        assert svc.degraded >= 1
        assert report.chaos["lost"] == 0  # refused, never stranded
        degraded = [t for t in report.tickets if t.degraded]
        assert degraded
        assert all(
            t.state is TicketState.REJECTED and
            t.retry_after is not None
            for t in degraded
        )

    def test_coalesced_follower_degrades_with_leader(self, ppi_graphs):
        svc = ftv_service()
        q = ftv_streams(ppi_graphs)["tenant0"][0].query.graph
        leader = svc.submit("ppi", q, options=FTV_OPTS)
        follower = svc.submit("ppi", q, options=FTV_OPTS)
        assert follower.coalesced
        svc.kill_replica(0, 0)
        svc.kill_replica(0, 1)
        svc.run_until_idle()
        assert leader.state is TicketState.REJECTED and leader.degraded
        assert follower.state is TicketState.REJECTED
        assert follower.degraded
        assert follower.retry_after == leader.retry_after


# ----------------------------------------------------------------------
# wedge + task-failure drills
# ----------------------------------------------------------------------

class TestWedgeDrill:
    def test_wedge_stalls_then_recovers(self, ppi_graphs, healthy):
        inj = FaultInjector([
            FaultEvent(at=2, kind="wedge", shard=0, replica=0,
                       ticks=4, unit="completions"),
        ])
        svc, report = run(ppi_graphs, faults=inj)
        assert report.answers == healthy.answers
        assert svc.replicas_wedged == 1
        # the wedge expired: the replica is LIVE again (state entry
        # dropped — LIVE is the default)
        assert svc.replica_state(0, 0) is ReplicaState.LIVE
        assert not svc._suspect_until
        assert report.chaos["lost"] == 0

    def test_wedge_unknown_replica_is_noop(self, ppi_graphs):
        svc = ftv_service()
        svc.wedge_replica(0, 99, ticks=3)
        assert svc.faults_noop == 1
        assert svc.replica_state(0, 99) is ReplicaState.LIVE


class TestFailTaskDrill:
    def test_fail_task_restarts_leg(self, ppi_graphs, healthy):
        inj = FaultInjector([
            FaultEvent(at=2, kind="fail_task", unit="completions"),
        ])
        svc, report = run(ppi_graphs, faults=inj)
        assert report.answers == healthy.answers
        assert svc.tasks_failed == 1
        assert svc.retries >= 1
        assert report.chaos["lost"] == 0
        assert report.chaos["degraded"] == 0

    def test_fail_task_with_nothing_active_is_noop(self, ppi_graphs):
        svc = ftv_service()
        svc._fail_one_task()
        assert svc.faults_noop == 1
        assert svc.tasks_failed == 0


# ----------------------------------------------------------------------
# interaction drills: hedged waves, quiesce rebalance, determinism
# ----------------------------------------------------------------------

class TestInteractionDrills:
    def test_kill_during_hedged_decision_wave(self, ppi_graphs):
        """Routed decision queries stage shards in waves; a kill while
        waves are in flight must not change any existence answer."""
        base_svc = ftv_service(replicas=1, routing=True)
        base = run_closed_loop(
            base_svc, "ppi", ftv_streams(ppi_graphs),
            options=DEC_OPTS, concurrency=2,
        )
        svc = ftv_service(routing=True)
        report = run_closed_loop(
            svc, "ppi", ftv_streams(ppi_graphs), options=DEC_OPTS,
            concurrency=2, faults=kill_each_shard(at=2),
        )
        assert report.decisions == base.decisions
        assert report.chaos["lost"] == 0
        assert report.chaos["degraded"] == 0

    def test_kill_around_quiesce_rebalance(self, ppi_graphs, healthy):
        """Chaos and online rebalancing compose: migrations at quiesce
        points plus mid-flight kills still answer healthy."""
        svc = ftv_service(assignment="hash")
        reb = Rebalancer(
            svc, min_window_steps=64, skew_threshold=1.0
        )
        report = run_closed_loop(
            svc, "ppi", ftv_streams(ppi_graphs), options=FTV_OPTS,
            concurrency=2, rebalancer=reb, rebalance_every=4,
            faults=kill_each_shard(at=4),
        )
        assert report.answers == healthy.answers
        assert report.chaos["lost"] == 0
        assert svc.replicas_killed == 2

    def test_chaos_run_is_deterministic(self, ppi_graphs):
        """Two identical chaos runs agree on the *full* digest — bills,
        latencies, reroutes and all — not just on answers."""
        def chaos_run():
            return run(ppi_graphs, faults=kill_each_shard())[1]

        a, b = chaos_run(), chaos_run()
        assert a.digest == b.digest
        assert a.chaos["rerouted"] == b.chaos["rerouted"]
        assert a.chaos["retries"] == b.chaos["retries"]

    def test_chaos_plan_end_to_end(self, ppi_graphs, healthy):
        """The CLI-shaped drill: a seeded chaos_plan (kills + wedge +
        task failure) against the replicated layout."""
        inj = chaos_plan(1337, num_shards=2, replicas=2, queries=16)
        svc, report = run(ppi_graphs, faults=inj)
        assert report.answers == healthy.answers
        assert report.chaos["injected"] == 4
        assert report.chaos["lost"] == 0
        assert not inj.pending


# ----------------------------------------------------------------------
# stats + replica scaling surface
# ----------------------------------------------------------------------

class TestStatsAndScaling:
    def test_stats_report_replicas_and_faults(self, ppi_graphs):
        svc, report = run(ppi_graphs, faults=kill_each_shard())
        stats = svc.stats()
        assert stats["shards"] == 2
        rep = stats["replicas"]
        assert rep["killed"] == 2
        assert sum(rep["counts"]) == 2  # one survivor per shard
        assert len(stats["per_pool_work"]) == 4
        assert len(stats["per_shard_work"]) == 2
        # per-shard keeps shard semantics: dead pools' history included
        assert sum(stats["per_pool_work"]) == sum(
            stats["per_shard_work"]
        )
        faults = stats["faults"]
        assert faults["injected"] == 2
        assert faults["rerouted"] == report.chaos["rerouted"]

    def test_retire_requires_quiesce_and_spares_last(self, ppi_graphs):
        svc = ftv_service()
        q = ftv_streams(ppi_graphs)["tenant0"][0].query.graph
        svc.submit("ppi", q, options=FTV_OPTS)
        with pytest.raises(RuntimeError, match="quiesce"):
            svc.retire_replica(0)
        svc.run_until_idle()
        assert svc.retire_replica(0) == 1
        assert svc.retire_replica(0) is None  # never the last live
        assert svc.replica_state(0, 1) is ReplicaState.RETIRED

    def test_rebalancer_degenerate_topologies_noop(self):
        """Satellite: unsharded and single-shard services make every
        check a counted no-op, never an exception."""
        flat = Service(workers=4)
        flat.load_dataset("ppi", scale="tiny")
        reb = Rebalancer(flat, min_window_steps=1)
        assert reb.maybe_rebalance() == []
        assert reb.degenerate == 1
        one = Service(workers=4, shards=1, replicas=2)
        one.load_dataset("ppi", scale="tiny")
        reb1 = Rebalancer(one, min_window_steps=1)
        assert reb1.maybe_rebalance() == []
        assert reb1.degenerate == 1
        assert reb1.summary()["degenerate_checks"] == 1

    def test_replica_scaling_grows_hot_shrinks_cold(self, ppi_graphs):
        """Loose thresholds so any skew scales: the hottest shard gains
        a replica, and a later idle check can retire surplus ones."""
        svc = ftv_service(replicas=1)
        reb = Rebalancer(
            svc, min_window_steps=16, skew_threshold=1_000_000.0,
            replica_scaling=True, grow_threshold=1.01,
            shrink_threshold=0.99,
        )
        run_closed_loop(
            svc, "ppi", ftv_streams(ppi_graphs), options=FTV_OPTS,
            concurrency=2, rebalancer=reb, rebalance_every=4,
        )
        assert reb.replicas_grown >= 1
        grown = [
            c for c in reb.replica_changes if c["action"] == "grow"
        ]
        assert grown
        shard = grown[0]["shard"]
        assert len(svc.catalog.replica_ids(shard)) >= 2
        # and the scaled layout still answers like day one
        q = ftv_streams(ppi_graphs, seed=11)["tenant0"][0].query.graph
        t = svc.submit("ppi", q, options=FTV_OPTS)
        svc.run_until_idle()
        single = Service(workers=4)
        single.load_dataset("ppi", scale="tiny")
        solo = single.submit("ppi", q, options=FTV_OPTS)
        single.run_until_idle()
        assert t.result.matching_ids == solo.result.matching_ids
