"""sPath-specific tests: distance signatures and path covers."""

import random

import pytest

from repro.graphs import LabeledGraph, gnm_graph, uniform_labels
from repro.matching import SPathIndex, SPathMatcher, distance_signature

from .conftest import random_query_from


def _path_graph():
    # A - B - C - D  (a labeled path)
    return LabeledGraph.from_edges(
        ["A", "B", "C", "D"], [(0, 1), (1, 2), (2, 3)]
    )


class TestDistanceSignature:
    def test_layers(self):
        g = _path_graph()
        sig = distance_signature(g, 0, radius=3)
        assert sig[0] == {"B": 1}
        assert sig[1] == {"C": 1}
        assert sig[2] == {"D": 1}

    def test_radius_truncates(self):
        g = _path_graph()
        sig = distance_signature(g, 0, radius=2)
        assert len(sig) == 2
        assert sig[1] == {"C": 1}

    def test_counts_multiplicity(self):
        g = LabeledGraph.from_edges(
            ["A", "B", "B"], [(0, 1), (0, 2)]
        )
        sig = distance_signature(g, 0, radius=1)
        assert sig[0] == {"B": 2}


class TestPathCover:
    def _cover(self, query, matcher=None):
        matcher = matcher or SPathMatcher()
        cand_size = [1] * query.order
        return matcher._path_cover(query, cand_size)

    def test_covers_all_edges(self, small_store):
        query = random_query_from(small_store, 7, 3)
        paths = self._cover(query)
        covered = set()
        for p in paths:
            for a, b in zip(p, p[1:]):
                covered.add((min(a, b), max(a, b)))
        assert covered == set(query.edges())

    def test_paths_respect_max_length(self, small_store):
        query = random_query_from(small_store, 8, 11)
        matcher = SPathMatcher(max_path_length=2)
        paths = self._cover(query, matcher)
        assert all(len(p) - 1 <= 2 for p in paths)

    def test_paths_are_walks_in_query(self, small_store):
        query = random_query_from(small_store, 6, 19)
        for p in self._cover(query):
            for a, b in zip(p, p[1:]):
                assert query.has_edge(a, b)


class TestFiltering:
    def test_signature_filter_sound(self, small_store):
        """sPath must never lose embeddings to its distance filter —
        covered broadly by agreement tests; pinned here with radius 4."""
        from repro.matching import make_matcher

        from .conftest import canonical_embeddings

        query = random_query_from(small_store, 5, 29)
        ref = make_matcher("REF").run(
            small_store, query, max_embeddings=10**6
        )
        out = SPathMatcher(radius=4).run(
            small_store, query, max_embeddings=10**6
        )
        assert canonical_embeddings(out.embeddings) == (
            canonical_embeddings(ref.embeddings)
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SPathMatcher(radius=0)
        with pytest.raises(ValueError):
            SPathMatcher(max_path_length=0)

    def test_prepare_returns_spath_index(self, small_store):
        ix = SPathMatcher(radius=2).prepare(small_store)
        assert isinstance(ix, SPathIndex)
        assert ix.radius == 2

    def test_rebuilds_plain_index(self, small_store):
        from repro.matching import GraphIndex

        query = random_query_from(small_store, 4, 7)
        out = SPathMatcher().run(
            GraphIndex(small_store), query, max_embeddings=5
        )
        assert out.found
