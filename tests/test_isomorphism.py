"""Tests for exact labeled-graph isomorphism."""

import random

import pytest

from repro.graphs import (
    LabeledGraph,
    are_isomorphic,
    gnm_graph,
    isomorphism_invariant_key,
    uniform_labels,
)

from .conftest import triangle_with_tail


class TestPositive:
    def test_identical_graphs(self):
        assert are_isomorphic(
            triangle_with_tail(), triangle_with_tail()
        )

    def test_permuted_graphs(self):
        g = triangle_with_tail()
        for seed in range(10):
            perm = list(g.vertices())
            random.Random(seed).shuffle(perm)
            assert are_isomorphic(g, g.permuted(perm))

    def test_random_permuted_graphs(self):
        rng = random.Random(3)
        g = gnm_graph(
            18, 40, uniform_labels(18, ["A", "B"], rng), rng
        )
        perm = list(g.vertices())
        rng.shuffle(perm)
        assert are_isomorphic(g, g.permuted(perm))

    def test_empty_graphs(self):
        assert are_isomorphic(LabeledGraph(0, []), LabeledGraph(0, []))

    def test_regular_same_label_graphs(self):
        """Hard case for invariants: two 6-cycles are isomorphic."""
        c1 = LabeledGraph.from_edges(
            ["A"] * 6, [(i, (i + 1) % 6) for i in range(6)]
        )
        perm = [3, 5, 1, 0, 4, 2]
        assert are_isomorphic(c1, c1.permuted(perm))


class TestNegative:
    def test_different_orders(self):
        assert not are_isomorphic(
            LabeledGraph(1, ["A"]), LabeledGraph(2, ["A", "A"])
        )

    def test_different_labels(self):
        a = LabeledGraph.from_edges(["A", "B"], [(0, 1)])
        b = LabeledGraph.from_edges(["A", "C"], [(0, 1)])
        assert not are_isomorphic(a, b)

    def test_same_invariants_different_structure(self):
        """C6 vs two C3s: same label/degree multiset, not isomorphic."""
        c6 = LabeledGraph.from_edges(
            ["A"] * 6, [(i, (i + 1) % 6) for i in range(6)]
        )
        c3c3 = LabeledGraph.from_edges(
            ["A"] * 6,
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        )
        assert not are_isomorphic(c6, c3c3)

    def test_different_edge_placement(self):
        # path A-B-A-B vs star: same degree sequence? no — use a case
        # with equal degree sequences but different wiring
        p4 = LabeledGraph.from_edges(
            ["A", "B", "A", "B"], [(0, 1), (1, 2), (2, 3)]
        )
        # A-B edge swapped to make labels attach differently
        other = LabeledGraph.from_edges(
            ["A", "B", "A", "B"], [(0, 1), (0, 3), (2, 3)]
        )
        # p4 has degree-2 vertices labeled B,A; other has A? compare
        assert are_isomorphic(p4, other) == (
            isomorphism_invariant_key(p4)
            == isomorphism_invariant_key(other)
            and are_isomorphic(p4, other)
        )


class TestInvariantKey:
    def test_equal_for_isomorphic(self):
        g = triangle_with_tail()
        perm = [2, 0, 3, 1]
        assert isomorphism_invariant_key(g) == (
            isomorphism_invariant_key(g.permuted(perm))
        )

    def test_differs_on_size(self):
        a = LabeledGraph.from_edges(["A", "A"], [(0, 1)])
        b = LabeledGraph(2, ["A", "A"])
        assert isomorphism_invariant_key(a) != (
            isomorphism_invariant_key(b)
        )

    def test_hashable(self):
        key = isomorphism_invariant_key(triangle_with_tail())
        assert hash(key) == hash(key)
