"""Sharded catalog + fan-out/merge serving tests.

The load-bearing claim (ISSUE 4 acceptance): sharded serving returns
bit-for-bit identical decision answers and cache-visible results to the
single-catalog path — `found`, `num_embeddings`, and global
`matching_ids` never depend on the shard layout — while bills (steps,
winners, latencies) are historical and may differ.
"""

import pytest

from repro.harness import build_ftv_graphs, build_nfv_graph
from repro.graphs import LabeledGraph
from repro.service import (
    AdmissionController,
    QueryOptions,
    Service,
    ShardedCatalog,
    TenantPolicy,
    TicketState,
    answers_digest,
    assign_shards,
    merge_shard_outcomes,
    run_closed_loop,
)
from repro.psi.executors import RaceOutcome
from repro.matching import MatchOutcome
from repro.workload import default_tenant_mixes, generate_tenant_stream

BUDGET = 60_000
FTV_OPTS = QueryOptions(rewritings=("Orig", "DND"))


@pytest.fixture(scope="module")
def ppi_graphs():
    return build_ftv_graphs("ppi", "tiny")


def ftv_service(shards, dataset="ppi", **service_kw):
    svc = Service(
        workers=4,
        shards=shards,
        admission=AdmissionController(
            default_policy=TenantPolicy(step_budget=BUDGET)
        ),
        **service_kw,
    )
    svc.load_dataset(dataset, scale="tiny")
    return svc


def ftv_streams(graphs, tenants=2, per_tenant=6, seed=9, repeat=0.3):
    mixes = default_tenant_mixes(
        tenants, per_tenant, sizes=(4, 6), repeat_fraction=repeat
    )
    return {
        m.tenant: generate_tenant_stream(graphs, m, seed=seed)
        for m in mixes
    }


class TestAssignShards:
    def test_hash_round_robin(self, ppi_graphs):
        assignment = assign_shards(ppi_graphs, 2, "hash")
        assert assignment == ((0, 2), (1,))

    def test_size_balanced_covers_all_once(self, ppi_graphs):
        assignment = assign_shards(ppi_graphs, 2, "size_balanced")
        flat = sorted(g for ids in assignment for g in ids)
        assert flat == list(range(len(ppi_graphs)))
        # each shard tuple ascending
        for ids in assignment:
            assert list(ids) == sorted(ids)

    def test_size_balanced_balances_edges(self):
        graphs = build_ftv_graphs("synthetic", "tiny")
        assignment = assign_shards(graphs, 2, "size_balanced")
        loads = [
            sum(graphs[g].size for g in ids) for ids in assignment
        ]
        # LPT greedy: no shard holds more than the other plus the
        # largest single graph
        assert abs(loads[0] - loads[1]) <= max(g.size for g in graphs)

    def test_empty_shards_when_more_shards_than_graphs(self, ppi_graphs):
        assignment = assign_shards(ppi_graphs, 5, "hash")
        assert sum(1 for ids in assignment if not ids) == 2

    def test_deterministic(self, ppi_graphs):
        a = assign_shards(ppi_graphs, 3, "size_balanced")
        b = assign_shards(ppi_graphs, 3, "size_balanced")
        assert a == b

    def test_unknown_strategy(self, ppi_graphs):
        with pytest.raises(ValueError, match="strategy"):
            assign_shards(ppi_graphs, 2, "random")


class TestShardedCatalog:
    def test_load_partitions_and_warms(self, ppi_graphs):
        cat = ShardedCatalog(num_shards=2)
        entry = cat.load("ppi", scale="tiny")
        assert entry.kind == "ftv"
        assert entry.involved_shards() == (0, 1)
        total = sum(len(ids) for ids in entry.assignment)
        assert total == len(ppi_graphs)
        for shard in entry.involved_shards():
            sub = entry.shard_entry(shard)
            assert sub.ftv_index is not None
            assert len(sub.graphs) == len(entry.shard_ids(shard))

    def test_load_idempotent_and_conflicts(self):
        cat = ShardedCatalog(num_shards=2)
        a = cat.load("ppi", scale="tiny")
        assert cat.load("ppi", scale="tiny") is a
        with pytest.raises(ValueError, match="already loaded"):
            cat.load("ppi", scale="default")

    def test_nfv_lives_on_one_home_shard(self):
        cat = ShardedCatalog(num_shards=3)
        entry = cat.load("yeast", scale="tiny")
        assert entry.kind == "nfv"
        assert entry.involved_shards() == (entry.home_shard,)
        assert entry.psi is not None
        assert sum(len(ids) for ids in entry.assignment) == 1

    def test_unknown_dataset(self):
        cat = ShardedCatalog(num_shards=2)
        with pytest.raises(ValueError, match="unknown dataset"):
            cat.load("nope")
        with pytest.raises(KeyError):
            cat.get("ppi")

    def test_memory_report_aggregates(self):
        cat = ShardedCatalog(num_shards=2)
        cat.load("ppi", scale="tiny")
        report = cat.memory_report()
        assert report["num_shards"] == 2
        assert len(report["shards"]) == 2
        assert report["total_bytes"] == sum(
            r["total_bytes"] for r in report["shards"]
        )
        assert report["datasets"]["ppi"]["graphs_per_shard"] == [1, 2]

    def test_watermark_evicted_shard_reregisters(self):
        """Per-shard eviction is transparent: reload-on-access."""
        cat = ShardedCatalog(num_shards=2, max_bytes=2)  # 1 byte/shard
        entry = cat.load("ppi", scale="tiny")
        # the watermark is far below any entry: loading "synthetic"
        # evicts the ppi partition on every shard it lands on
        cat.load("synthetic", scale="tiny")
        evicted_shards = [
            s
            for s in entry.involved_shards()
            if "ppi" not in cat.shards[s].datasets()
        ]
        assert evicted_shards, "watermark never evicted anything"
        before = cat.reloads
        sub = cat.shard_entry("ppi", evicted_shards[0])
        assert sub.ftv_index is not None
        assert cat.reloads == before + 1
        assert cat.memory_report()["evictions"] >= len(evicted_shards)

    def test_unload_is_final(self):
        cat = ShardedCatalog(num_shards=2)
        cat.load("ppi", scale="tiny")
        cat.unload("ppi")
        with pytest.raises(KeyError):
            cat.get("ppi")

    def test_reassign_rolls_back_on_failed_reregister(self):
        """A re-register failure mid-reassign must not leave a
        half-applied assignment: the catalog restores the prior
        layout, bumps the routing epoch, and keeps serving."""
        cat = ShardedCatalog(num_shards=2)
        entry = cat.load("ppi", scale="tiny")
        before = entry.assignment
        epoch = entry.router.epoch
        new = [list(ids) for ids in before]
        # move one graph each way so BOTH shards change (two
        # re-register calls; the second one will blow up)
        a, b = new[0][-1], new[1][-1]
        new[0].remove(a); new[1].append(a)
        new[1].remove(b); new[0].append(b)
        real = cat._register_shard
        calls = {"n": 0}

        def flaky(entry, shard):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("index build died")
            return real(entry, shard)

        cat._register_shard = flaky
        with pytest.raises(RuntimeError, match="index build died"):
            cat.reassign("ppi", new)
        cat._register_shard = real
        assert entry.assignment == before
        assert cat.rollbacks == 1
        assert cat.reassignments == 0
        assert cat.migrated_graphs == 0
        assert entry.router.epoch > epoch  # stale plans invalidated
        # both shards serve the *old* partitions again
        for shard in (0, 1):
            sub = entry.shard_entry(shard)
            assert len(sub.graphs) == len(before[shard])


class TestMergeOutcomes:
    @staticmethod
    def outcome(found, ids, steps, killed=False, winner="w",
                num_embeddings=None):
        match = MatchOutcome(
            found=found,
            num_embeddings=(
                len(ids) if num_embeddings is None else num_embeddings
            ),
        )
        match.matching_ids = tuple(ids)
        return RaceOutcome(
            winner=winner,
            outcome=match,
            steps=steps,
            found=found,
            killed=killed,
            overhead_steps=4,
            per_variant_steps={"v": steps},
        )

    def test_single_identity_shard_passes_through(self):
        race = self.outcome(True, (0, 2), 100)
        merged = merge_shard_outcomes({0: race}, {0: None})
        assert merged is race

    def test_multi_shard_union_sorted_global(self):
        merged = merge_shard_outcomes(
            {
                0: self.outcome(True, (0, 1), 50, winner="a"),
                1: self.outcome(True, (0,), 80, winner="b"),
            },
            {0: (0, 2), 1: (1,)},
        )
        assert merged.found
        assert merged.outcome.matching_ids == (0, 1, 2)
        assert merged.outcome.num_embeddings == 3
        # deciding shard: lowest-indexed found shard
        assert merged.winner == "a"
        assert merged.steps == 50
        assert merged.per_variant_steps == {"v": 130}

    def test_all_miss_takes_slowest_shard_time(self):
        merged = merge_shard_outcomes(
            {
                0: self.outcome(False, (), 30, winner="a"),
                1: self.outcome(False, (), 90, winner="b"),
            },
            {0: (0,), 1: (1,)},
        )
        assert not merged.found
        assert merged.outcome.matching_ids == ()
        assert merged.steps == 90 and merged.winner == "b"

    def test_killed_shard_taints_merge(self):
        merged = merge_shard_outcomes(
            {
                0: self.outcome(False, (), 30),
                1: self.outcome(False, (), 90, killed=True),
            },
            {0: (0,), 1: (1,)},
        )
        assert merged.killed

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            merge_shard_outcomes({}, {})


def answers_of(report):
    return sorted(
        (
            t.tenant,
            t.query.name,
            t.result.found,
            t.result.num_embeddings,
            tuple(t.result.matching_ids),
        )
        for t in report.completed
    )


class TestShardedEquivalence:
    """The acceptance test: answers never depend on the shard layout."""

    @pytest.mark.parametrize("shards", [2, 3])
    def test_ftv_answers_bit_for_bit(self, ppi_graphs, shards):
        streams = ftv_streams(ppi_graphs)
        single = run_closed_loop(
            ftv_service(1), "ppi", streams, options=FTV_OPTS
        )
        sharded = run_closed_loop(
            ftv_service(shards), "ppi", streams, options=FTV_OPTS
        )
        assert answers_of(single) == answers_of(sharded)
        assert single.answers == sharded.answers
        assert not any(t.result.killed for t in sharded.completed)

    def test_sharded_answers_match_raw_index(self, ppi_graphs):
        """Global matching ids agree with the unsharded Grapes index."""
        svc = ftv_service(2)
        reference = ftv_service(1).catalog.get("ppi").ftv_index
        mixes = default_tenant_mixes(1, 4, sizes=(4,), repeat_fraction=0.0)
        stream = generate_tenant_stream(
            ppi_graphs, mixes[0], seed=11
        )
        for mq in stream:
            t = svc.submit("ppi", mq.query.graph, options=FTV_OPTS)
            svc.run_until_idle()
            assert list(t.result.matching_ids) == (
                reference.query(mq.query.graph).matching_ids
            )

    def test_sharded_run_deterministic(self, ppi_graphs):
        streams = ftv_streams(ppi_graphs)
        digests = {
            run_closed_loop(
                ftv_service(2), "ppi", streams, options=FTV_OPTS
            ).digest
            for _ in range(2)
        }
        assert len(digests) == 1

    def test_empty_shard_is_skipped(self, ppi_graphs):
        """More shards than graphs: empty shards get no races."""
        svc = ftv_service(5)  # tiny ppi has 3 graphs
        entry = svc.catalog.get("ppi")
        assert len(entry.involved_shards()) == 3
        streams = ftv_streams(ppi_graphs, tenants=1, per_tenant=4)
        single = run_closed_loop(
            ftv_service(1), "ppi", streams, options=FTV_OPTS
        )
        sharded = run_closed_loop(svc, "ppi", streams, options=FTV_OPTS)
        assert answers_of(single) == answers_of(sharded)
        done = [t for t in sharded.completed if not t.cache_hit]
        assert all(0 < t.fanout <= 3 for t in done)

    def test_all_shards_miss(self, ppi_graphs):
        """A query matching nothing completes found=False everywhere."""
        alien = LabeledGraph.from_edges(
            ["ZZZ", "ZZZ", "ZZZ"], [(0, 1), (1, 2)], name="alien"
        )
        results = []
        for shards in (1, 2, 3):
            svc = ftv_service(shards)
            t = svc.submit("ppi", alien, options=FTV_OPTS)
            svc.run_until_idle()
            assert t.state is TicketState.DONE
            results.append(
                (t.result.found, t.result.num_embeddings,
                 tuple(t.result.matching_ids))
            )
        assert results == [(False, 0, ())] * 3

    def test_tight_budget_scopes_the_invariance_claim(self, ppi_graphs):
        """Killed answers are execution-dependent; completed ones not.

        Each shard race carries its own kill cap, so under a starving
        budget *which* queries die may differ between layouts.  The
        invariant that must survive: any query completed (not killed)
        in both layouts has identical answers, merged race time never
        exceeds the budget, and nothing killed reaches the cache.
        """
        budget = 40
        streams = ftv_streams(ppi_graphs, tenants=1, per_tenant=8,
                              repeat=0.0)

        def run(shards):
            svc = Service(
                workers=4,
                shards=shards,
                admission=AdmissionController(
                    default_policy=TenantPolicy(step_budget=budget)
                ),
            )
            svc.load_dataset("ppi", scale="tiny")
            return svc, run_closed_loop(
                svc, "ppi", streams, options=FTV_OPTS
            )

        svc1, single = run(1)
        svc2, sharded = run(2)
        assert any(t.result.killed for t in single.completed)
        by_name = lambda rep: {
            t.query.name: t.result for t in rep.completed
        }
        r1, r2 = by_name(single), by_name(sharded)
        completed_both = [
            n for n in r1
            if not r1[n].killed and not r2[n].killed
        ]
        assert completed_both, "budget killed everything; test is vacuous"
        for name in completed_both:
            assert (
                r1[name].found,
                r1[name].num_embeddings,
                tuple(r1[name].matching_ids),
            ) == (
                r2[name].found,
                r2[name].num_embeddings,
                tuple(r2[name].matching_ids),
            )
        # the budget stays a cap on merged race *time* in any layout
        for rep in (single, sharded):
            for t in rep.completed:
                if not t.cache_hit and not t.coalesced:
                    assert t.result.steps <= budget + 8  # + overhead
        assert len(svc1.cache) == len(svc2.cache)
        for svc in (svc1, svc2):
            assert all(
                not t.result.killed
                for t in (single.completed + sharded.completed)
                if t.cache_hit
            )

    def test_nfv_single_home_shard_answers(self):
        """NFV datasets serve whole from one shard, answers unchanged."""
        store = build_nfv_graph("yeast", "tiny")
        mixes = default_tenant_mixes(2, 5, sizes=(4, 6), repeat_fraction=0.3)
        streams = {
            m.tenant: generate_tenant_stream([store], m, seed=42)
            for m in mixes
        }
        opts = QueryOptions()
        single = run_closed_loop(
            ftv_service(1, dataset="yeast"), "yeast", streams, options=opts
        )
        sharded = run_closed_loop(
            ftv_service(4, dataset="yeast"), "yeast", streams, options=opts
        )
        assert single.answers == sharded.answers
        # one home shard => every served ticket fanned out to 1 race
        served = [
            t for t in sharded.completed
            if not t.cache_hit and not t.coalesced
        ]
        assert served and all(t.fanout == 1 for t in served)


class TestDecisionShortCircuit:
    def test_first_true_cancels_siblings(self, ppi_graphs):
        opts = QueryOptions(
            rewritings=("Orig", "DND"), decision_only=True
        )
        streams = ftv_streams(ppi_graphs, tenants=1, per_tenant=8,
                              repeat=0.0)
        single = run_closed_loop(
            ftv_service(1), "ppi", streams, options=opts
        )
        svc = ftv_service(3)
        sharded = run_closed_loop(svc, "ppi", streams, options=opts)
        # the decision (found) is layout-invariant even when siblings
        # are cancelled mid-race
        assert (
            sorted((t.query.name, t.result.found)
                   for t in single.completed)
            == sorted((t.query.name, t.result.found)
                      for t in sharded.completed)
        )
        # workload queries are grown from stored graphs, so matches
        # exist and at least one fan-out was settled by its first shard
        assert svc.shard_cancelled > 0
        assert svc.stats()["shard_cancelled"] == svc.shard_cancelled

    def test_decision_mode_has_distinct_cache_keys(self, ppi_graphs):
        """A decision-only witness answer must never serve a full query."""
        svc = ftv_service(2)
        [mq] = generate_tenant_stream(
            ppi_graphs,
            default_tenant_mixes(1, 1, sizes=(4,), repeat_fraction=0.0)[0],
            seed=3,
        )
        t1 = svc.submit(
            "ppi", mq.query.graph,
            options=QueryOptions(rewritings=("Orig",), decision_only=True),
        )
        svc.run_until_idle()
        t2 = svc.submit(
            "ppi", mq.query.graph,
            options=QueryOptions(rewritings=("Orig",)),
        )
        svc.run_until_idle()
        assert not t2.cache_hit
        assert len(t2.result.matching_ids) >= len(t1.result.matching_ids)


class TestShardedServiceIntegration:
    def test_cache_shared_between_layouts(self, ppi_graphs):
        """Sharded and unsharded serving share one result cache."""
        cat1 = ftv_service(1)
        [mq] = generate_tenant_stream(
            ppi_graphs,
            default_tenant_mixes(1, 1, sizes=(6,), repeat_fraction=0.0)[0],
            seed=21,
        )
        fresh = cat1.submit("ppi", mq.query.graph, options=FTV_OPTS)
        cat1.run_until_idle()
        # hand the unsharded service's cache to a sharded service: the
        # canonical key must hit because the context excludes layout
        sharded = ftv_service(2, cache=cat1.cache)
        hit = sharded.submit("ppi", mq.query.graph, options=FTV_OPTS)
        assert hit.cache_hit
        assert hit.result.matching_ids == fresh.result.matching_ids

    def test_coalescing_across_sharded_ticket(self, ppi_graphs):
        svc = ftv_service(2)
        [mq] = generate_tenant_stream(
            ppi_graphs,
            default_tenant_mixes(1, 1, sizes=(6,), repeat_fraction=0.0)[0],
            seed=13,
        )
        leader = svc.submit("ppi", mq.query.graph, options=FTV_OPTS)
        follower = svc.submit("ppi", mq.query.graph, options=FTV_OPTS)
        assert follower.coalesced
        svc.run_until_idle()
        assert leader.state is TicketState.DONE
        assert follower.state is TicketState.DONE
        assert follower.result.coalesced
        assert (
            follower.result.matching_ids == leader.result.matching_ids
        )
        assert follower.finish_time == leader.finish_time

    def test_admission_charges_merged_ticket_once(self, ppi_graphs):
        """One fan-out occupies one in-flight slot, not one per shard."""
        svc = ftv_service(3)
        policy = svc.admission.policy("public")
        streams = ftv_streams(ppi_graphs, tenants=1, per_tenant=6,
                              repeat=0.0)
        max_seen = 0
        pending = list(streams["tenant0"])
        for mq in pending:
            svc.submit("ppi", mq.query.graph, options=FTV_OPTS)
        while not svc.idle:
            svc.pump()
            max_seen = max(max_seen, svc.admission.in_flight("public"))
        assert 0 < max_seen <= policy.max_in_flight

    def test_eviction_on_one_shard_mid_flight(self, ppi_graphs):
        """A shard partition evicted between queries reloads silently."""
        catalog = ShardedCatalog(num_shards=2, max_bytes=2)
        svc = Service(
            workers=4,
            catalog=catalog,
            admission=AdmissionController(
                default_policy=TenantPolicy(step_budget=BUDGET)
            ),
        )
        svc.load_dataset("ppi", scale="tiny")
        streams = ftv_streams(ppi_graphs, tenants=1, per_tenant=3,
                              repeat=0.0)
        queries = list(streams["tenant0"])
        first = svc.submit("ppi", queries[0].query.graph, options=FTV_OPTS)
        # in flight: start the race, then evict ppi's partitions by
        # loading another dataset under the starvation watermark
        svc.pump()
        svc.load_dataset("synthetic", scale="tiny")
        evicted = [
            s for s in range(2) if "ppi" not in catalog.shards[s].datasets()
        ]
        assert evicted
        svc.run_until_idle()
        assert first.state is TicketState.DONE  # old engines finish fine
        # subsequent queries transparently re-register the partition
        later = svc.submit("ppi", queries[1].query.graph, options=FTV_OPTS)
        svc.run_until_idle()
        assert later.state is TicketState.DONE
        assert svc.catalog.memory_report()["reloads"] > 0
        # answers still correct after the reload
        reference = ftv_service(1).catalog.get("ppi").ftv_index
        assert list(later.result.matching_ids) == (
            reference.query(queries[1].query.graph).matching_ids
        )

    def test_sharded_stats_shape(self, ppi_graphs):
        svc = ftv_service(2)
        run_closed_loop(
            svc, "ppi", ftv_streams(ppi_graphs), options=FTV_OPTS
        )
        s = svc.stats()
        assert s["shards"] == 2
        assert s["completed"] > 0
        assert s["memory"]["total_bytes"] > 0
        assert s["memory"]["num_shards"] == 2

    def test_shards_conflicting_catalog_rejected(self):
        with pytest.raises(ValueError, match="conflicts"):
            Service(
                catalog=ShardedCatalog(num_shards=2),
                shards=3,
            )
        with pytest.raises(ValueError, match="shards"):
            Service(shards=0)

    def test_answers_digest_ignores_bills(self, ppi_graphs):
        """answers_digest is latency/steps-blind; results_digest is not."""
        streams = ftv_streams(ppi_graphs)
        single = run_closed_loop(
            ftv_service(1), "ppi", streams, options=FTV_OPTS
        )
        sharded = run_closed_loop(
            ftv_service(3), "ppi", streams, options=FTV_OPTS
        )
        assert single.answers == sharded.answers
        assert answers_digest(single.completed) == single.answers
