"""The versioned artifact store: crash-safe persistence of warmed
catalog state, checksum-verified restore, and corruption recovery.

The contracts under test, in dependency order:

* **Blob layer** — content-addressed, checksummed, atomically written:
  a torn write leaves no blob behind, a flipped bit or truncation is
  detected on read, detected corruption is quarantined (moved aside),
  never silently served.
* **Manifest layer** — version checked before checksum (skew is
  diagnosed as skew, not staleness), torn manifest writes leave the
  store indistinguishable from no store.
* **Digest identity** — a service cold-booted from the store serves
  byte-for-bit the same results (``results_digest``,
  ``answers_digest``, and the same stats key set) as a fresh
  in-process warm, across unsharded, sharded+routed, and replicated
  layouts.
* **Corruption matrix** — every :class:`StoreFaultInjector` class is
  detected on load and degrades to a per-graph rebuild whose digests
  equal the healthy run's.
* **Elastic drill** — ``Service.add_replica`` under live chaos load
  boots newcomers from the store with zero lost tickets, digest-equal
  to a healthy never-persisted run.
"""

import json
import os

import pytest

from repro.harness import build_ftv_graphs
from repro.service import (
    AdmissionController,
    FaultEvent,
    FaultInjector,
    QueryOptions,
    Service,
    TenantPolicy,
    run_closed_loop,
)
from repro.service.catalog import DatasetCatalog
from repro.service.faults import StoreFaultInjector
from repro.service.sharding import ShardedCatalog
from repro.store import (
    BlobCorrupt,
    BlobMissing,
    BlobRef,
    BlobStore,
    Manifest,
    ManifestError,
    StoreMissing,
    StoreReader,
    StoreVersionSkew,
    StoreWriter,
    atomic_write_bytes,
    load_manifest,
    sha256_hex,
    write_manifest,
)
from repro.workload import default_tenant_mixes, generate_tenant_stream

BUDGET = 60_000
FTV_OPTS = QueryOptions(rewritings=("Orig", "DND"))


@pytest.fixture(scope="module")
def ppi_graphs():
    return build_ftv_graphs("ppi", "tiny")


def ftv_service(shards=1, replicas=1, routing=False, store=None, **kw):
    svc = Service(
        workers=4,
        shards=shards,
        replicas=replicas,
        routing=routing,
        admission=AdmissionController(
            default_policy=TenantPolicy(step_budget=BUDGET)
        ),
        store=store,
        **kw,
    )
    svc.load_dataset("ppi", scale="tiny")
    return svc


def ftv_streams(graphs, tenants=2, per_tenant=8, seed=9):
    mixes = default_tenant_mixes(
        tenants, per_tenant, sizes=(4, 6), repeat_fraction=0.3
    )
    return {
        m.tenant: generate_tenant_stream(graphs, m, seed=seed)
        for m in mixes
    }


def run_workload(svc, graphs, **kw):
    return run_closed_loop(
        svc, "ppi", ftv_streams(graphs), options=FTV_OPTS,
        concurrency=2, **kw,
    )


def warm_store(tmp_path, shards=1, replicas=1, name="ppi", scale="tiny"):
    """Warm a catalog of the given layout and persist it."""
    if shards > 1 or replicas > 1:
        catalog = ShardedCatalog(num_shards=shards, replicas=replicas)
    else:
        catalog = DatasetCatalog()
    catalog.load(name, scale=scale)
    root = str(tmp_path / "store")
    summary = StoreWriter(root).write_catalog(catalog)
    return root, catalog, summary


# ----------------------------------------------------------------------
# blob layer
# ----------------------------------------------------------------------

class TestBlobStore:
    def test_put_get_round_trip_and_addressing(self, tmp_path):
        bs = BlobStore(str(tmp_path))
        data = b"some artifact bytes" * 100
        ref = bs.put(data)
        assert ref.address == sha256_hex(data)[: len(ref.address)]
        assert ref.sha256 == sha256_hex(data)
        assert ref.length == len(data)
        assert bs.get(ref) == data
        # content addressing: same bytes -> same blob, no duplicate
        assert bs.put(data).address == ref.address
        assert bs.addresses() == [ref.address]

    def test_atomic_write_leaves_no_tmp_behind(self, tmp_path):
        path = str(tmp_path / "out.bin")
        atomic_write_bytes(path, b"payload")
        assert open(path, "rb").read() == b"payload"
        assert [p for p in os.listdir(tmp_path) if p.startswith(".tmp-")] == []

    def test_torn_write_leaves_no_blob(self, tmp_path):
        bs = BlobStore(str(tmp_path))
        torn = bs.put(b"x" * 1000, fail_after=100)  # simulated crash
        assert bs.addresses() == []  # never published
        with pytest.raises(BlobMissing):
            bs.get(torn)
        # the torn temp file never shadows a later clean write
        ref = bs.put(b"x" * 1000)
        assert bs.get(ref) == b"x" * 1000

    def test_bit_flip_detected_not_served(self, tmp_path):
        bs = BlobStore(str(tmp_path))
        ref = bs.put(b"y" * 512)
        path = bs.path_for(ref.address)
        raw = bytearray(open(path, "rb").read())
        raw[37] ^= 0x01
        open(path, "wb").write(bytes(raw))
        with pytest.raises(BlobCorrupt):
            bs.get(ref)

    def test_truncation_detected_by_length_first(self, tmp_path):
        bs = BlobStore(str(tmp_path))
        ref = bs.put(b"z" * 512)
        path = bs.path_for(ref.address)
        open(path, "wb").write(b"z" * 100)
        with pytest.raises(BlobCorrupt) as exc:
            bs.get(ref)
        assert "length" in str(exc.value)

    def test_missing_blob_raises_blob_missing(self, tmp_path):
        bs = BlobStore(str(tmp_path))
        ref = bs.put(b"gone")
        os.unlink(bs.path_for(ref.address))
        with pytest.raises(BlobMissing):
            bs.get(ref)

    def test_quarantine_moves_aside(self, tmp_path):
        bs = BlobStore(str(tmp_path))
        ref = bs.put(b"bad bytes")
        moved = bs.quarantine(ref.address)
        assert moved is not None and os.path.exists(moved)
        assert not os.path.exists(bs.path_for(ref.address))
        assert bs.addresses() == []

    def test_blob_ref_round_trips(self):
        ref = BlobRef(address="ab" * 8, sha256="cd" * 32, length=42)
        assert BlobRef.from_dict(ref.as_dict()) == ref


# ----------------------------------------------------------------------
# manifest layer
# ----------------------------------------------------------------------

class TestManifest:
    def test_encode_decode_round_trip(self):
        m = Manifest(epoch=3, layout={"sharded": False},
                     datasets={"ppi": {"graphs": {}}})
        again = Manifest.decode(m.encode())
        assert again.epoch == 3
        assert again.layout == {"sharded": False}
        assert again.datasets == {"ppi": {"graphs": {}}}

    def test_version_checked_before_checksum(self):
        m = Manifest(epoch=0, layout={}, datasets={})
        doc = json.loads(m.encode())
        doc["version"] = 99  # stale checksum AND wrong version
        with pytest.raises(StoreVersionSkew) as exc:
            Manifest.decode(json.dumps(doc).encode())
        assert exc.value.found == 99

    def test_stale_body_fails_checksum(self):
        m = Manifest(epoch=0, layout={}, datasets={})
        doc = json.loads(m.encode())
        doc["epoch"] = 7  # edited without refreshing the checksum
        with pytest.raises(ManifestError, match="checksum"):
            Manifest.decode(json.dumps(doc).encode())

    def test_missing_store_is_store_missing(self, tmp_path):
        with pytest.raises(StoreMissing):
            load_manifest(str(tmp_path / "nowhere"))

    def test_torn_manifest_write_reads_as_no_store(self, tmp_path):
        root = str(tmp_path)
        m = Manifest(epoch=0, layout={}, datasets={})
        write_manifest(root, m, fail_after=10)  # simulated crash
        with pytest.raises(StoreMissing):
            load_manifest(root)
        # a reader over the half-written store degrades silently
        reader = StoreReader(root)
        assert reader.manifest is None
        assert not reader.available()

    def test_torn_writer_manifest_means_no_store(self, tmp_path):
        """A crash between blobs and manifest (the writer's last step)
        leaves a store indistinguishable from no store at all."""
        catalog = DatasetCatalog()
        catalog.load("ppi", scale="tiny")
        root = str(tmp_path / "store")
        StoreWriter(root, fail_manifest_after=32).write_catalog(catalog)
        reader = StoreReader(root)
        assert not reader.available()
        # and a service pointed at it just warms fresh, digest-clean
        svc = ftv_service(store=root)
        assert svc.catalog.store.restores == 0


# ----------------------------------------------------------------------
# digest identity: cold boot == fresh warm
# ----------------------------------------------------------------------

class TestColdBootDigests:
    def assert_identical(self, fresh_report, booted_report,
                         fresh_svc, booted_svc):
        assert booted_report.digest == fresh_report.digest
        assert booted_report.answers == fresh_report.answers
        assert (
            sorted(booted_svc.stats().keys())
            == sorted(fresh_svc.stats().keys())
        )

    def test_unsharded(self, ppi_graphs, tmp_path):
        root, _, summary = warm_store(tmp_path)
        assert summary["blobs"] >= 2  # graphs + index
        fresh = ftv_service()
        booted = ftv_service(store=root)
        assert booted.catalog.store.restores >= 2
        assert booted.catalog.store.rebuilds == 0
        self.assert_identical(
            run_workload(fresh, ppi_graphs),
            run_workload(booted, ppi_graphs),
            fresh, booted,
        )

    def test_sharded_routed(self, ppi_graphs, tmp_path):
        root, _, _ = warm_store(tmp_path, shards=2)
        fresh = ftv_service(shards=2, routing=True)
        booted = ftv_service(shards=2, routing=True, store=root)
        assert booted.catalog.store.restores >= 3  # graphs + 2 indexes
        self.assert_identical(
            run_workload(fresh, ppi_graphs),
            run_workload(booted, ppi_graphs),
            fresh, booted,
        )

    def test_replicated(self, ppi_graphs, tmp_path):
        root, _, _ = warm_store(tmp_path, shards=2, replicas=2)
        fresh = ftv_service(shards=2, replicas=2)
        booted = ftv_service(shards=2, replicas=2, store=root)
        self.assert_identical(
            run_workload(fresh, ppi_graphs),
            run_workload(booted, ppi_graphs),
            fresh, booted,
        )

    def test_restored_warm_state_is_byte_identical(self, tmp_path):
        """Stronger than digests: re-encoding the restored index
        reproduces the persisted blob byte for byte."""
        from repro.store.codec import encode_index

        root, catalog, _ = warm_store(tmp_path)
        restored = DatasetCatalog(store=root)
        restored.load("ppi", scale="tiny")
        original = catalog.get("ppi").ftv_index
        revived = restored.get("ppi").ftv_index
        assert encode_index(revived) == encode_index(original)

    def test_layout_mismatch_falls_back_to_build(
        self, ppi_graphs, tmp_path
    ):
        """An unsharded store cannot boot a sharded catalog — the
        mismatch is counted as a miss and the warm build proceeds."""
        root, _, _ = warm_store(tmp_path)  # unsharded store
        booted = ftv_service(shards=2, store=root)  # sharded boot
        assert booted.catalog.store.restores == 0
        assert booted.catalog.store.misses >= 1
        fresh = ftv_service(shards=2)
        assert (
            run_workload(booted, ppi_graphs).digest
            == run_workload(fresh, ppi_graphs).digest
        )


# ----------------------------------------------------------------------
# corruption matrix
# ----------------------------------------------------------------------

BLOB_FAULTS = ("torn_write", "truncate", "bit_flip", "delete_blob")
MANIFEST_FAULTS = ("version_skew", "stale_manifest")


class TestCorruptionMatrix:
    @pytest.fixture(scope="class")
    def healthy(self, ppi_graphs):
        svc = ftv_service()
        return run_workload(svc, ppi_graphs)

    @pytest.mark.parametrize("kind", BLOB_FAULTS)
    def test_blob_fault_detected_quarantined_rebuilt(
        self, kind, ppi_graphs, tmp_path, healthy
    ):
        root, _, _ = warm_store(tmp_path)
        StoreFaultInjector(root, seed=0).inject(kind)
        svc = ftv_service(store=root)
        reader = svc.catalog.store
        assert reader.corrupt_detected >= 1, kind
        assert reader.rebuilds >= 1, kind
        if kind != "delete_blob":  # nothing left to move aside
            assert reader.quarantined >= 1, kind
            quarantine = os.path.join(root, "quarantine")
            assert os.listdir(quarantine), kind
        assert reader.events, kind
        report = run_workload(svc, ppi_graphs)
        assert report.digest == healthy.digest, kind
        assert report.answers == healthy.answers, kind

    @pytest.mark.parametrize("kind", MANIFEST_FAULTS)
    def test_manifest_fault_quarantines_manifest(
        self, kind, ppi_graphs, tmp_path, healthy
    ):
        root, _, _ = warm_store(tmp_path)
        StoreFaultInjector(root, seed=0).inject(kind)
        svc = ftv_service(store=root)
        reader = svc.catalog.store
        assert reader.corrupt_detected >= 1, kind
        assert not reader.available()  # store reads as absent
        assert reader.restores == 0
        report = run_workload(svc, ppi_graphs)
        assert report.digest == healthy.digest, kind

    def test_duplicate_manifest_is_harmless(
        self, ppi_graphs, tmp_path, healthy
    ):
        """A crashed writer's leftover temp manifest is ignored by
        design: the atomic-rename protocol means only the real
        MANIFEST.json is ever read."""
        root, _, _ = warm_store(tmp_path)
        StoreFaultInjector(root, seed=0).inject("duplicate_manifest")
        svc = ftv_service(store=root)
        reader = svc.catalog.store
        assert reader.corrupt_detected == 0
        assert reader.restores >= 2
        assert run_workload(svc, ppi_graphs).digest == healthy.digest

    def test_every_fault_class_is_exercised(self):
        assert set(BLOB_FAULTS) | set(MANIFEST_FAULTS) | {
            "duplicate_manifest"
        } == set(StoreFaultInjector.CORRUPTIONS)

    def test_corrupt_graphs_blob_still_restores_shard_indexes(
        self, tmp_path
    ):
        """Sharded layout, graphs blob corrupt, index blobs intact:
        graphs rebuild from their deterministic recipe (same label
        codes), so the per-shard index blobs stay valid and restore."""
        root, _, _ = warm_store(tmp_path, shards=2)
        rec = StoreReader(root).dataset_record("ppi")
        graphs_addr = rec["graphs"]["address"]
        inj = StoreFaultInjector(root, seed=0)
        idx = [
            i for i, p in enumerate(inj.blob_paths())
            if graphs_addr in p
        ][0]
        inj.bit_flip(index=idx)
        svc = ftv_service(shards=2, store=root)
        reader = svc.catalog.store
        assert reader.corrupt_detected == 1
        assert reader.rebuilds == 1  # the graphs
        assert reader.restores == 2  # both shard indexes, from blobs


# ----------------------------------------------------------------------
# the elastic drill: add_replica under chaos boots from the store
# ----------------------------------------------------------------------

class TestElasticDrill:
    def test_regrow_under_chaos_digest_equals_healthy(
        self, ppi_graphs, tmp_path
    ):
        healthy = run_workload(
            ftv_service(shards=2, replicas=2), ppi_graphs
        )
        root, _, _ = warm_store(tmp_path, shards=2, replicas=2)
        svc = ftv_service(shards=2, replicas=2, store=root)
        faults = FaultInjector([
            FaultEvent(at=3 + s, kind="kill", shard=s, replica=-1,
                       unit="completions", seq=s)
            for s in range(2)
        ])
        report = run_workload(
            svc, ppi_graphs, faults=faults, regrow=True
        )
        assert report.chaos["lost"] == 0
        assert report.answers == healthy.answers
        regrown = report.store["regrown"]
        assert len(regrown) == 2  # one per killed replica
        assert all(r["from_store"] for r in regrown)
        # each boot left a synthetic negative-id trace
        for i in range(len(regrown)):
            trace = svc.trace(-(i + 1))
            assert trace is not None and trace.done
            boot = trace.find("store_boot")
            assert boot and boot[0].attrs["restores"] >= 1

    def test_add_replica_prefers_store_over_donor(self, tmp_path):
        """The elastic contract: even with a warm donor sibling, a
        store-backed add_replica restores from disk."""
        root, _, _ = warm_store(tmp_path, shards=2)
        catalog = ShardedCatalog(num_shards=2, store=root)
        catalog.load("ppi", scale="tiny")
        before = catalog.store.restores
        catalog.add_replica(0)
        assert catalog.store.restores == before + 1

    def test_add_replica_without_store_shares_donor_warm(self):
        catalog = ShardedCatalog(num_shards=2)
        catalog.load("ppi", scale="tiny")
        catalog.add_replica(0)  # no store: donor adoption, no error

    def test_service_store_metrics_surface(self, tmp_path):
        root, _, _ = warm_store(tmp_path)
        svc = ftv_service(store=root)
        metrics = svc.store_metrics()
        assert metrics["restores"] >= 2
        snapshot = dict(svc.metrics.snapshot())
        assert snapshot["store.restores"] == metrics["restores"]
        assert ftv_service().store_metrics() == {}

    def test_memory_report_carries_store_section(self, tmp_path):
        root, _, _ = warm_store(tmp_path)
        catalog = DatasetCatalog(store=root)
        catalog.load("ppi", scale="tiny")
        assert "store" in catalog.memory_report()


# ----------------------------------------------------------------------
# writer behavior
# ----------------------------------------------------------------------

class TestWriter:
    def test_epoch_bumps_on_rewrite(self, tmp_path):
        root, catalog, first = warm_store(tmp_path)
        assert first["epoch"] == 0
        second = StoreWriter(root).write_catalog(catalog)
        assert second["epoch"] == 1
        assert StoreReader(root).manifest.epoch == 1

    def test_registered_datasets_are_skipped(self, tmp_path, ppi_graphs):
        catalog = DatasetCatalog()
        catalog.load("ppi", scale="tiny")
        catalog.register(
            "adhoc", list(ppi_graphs), kind="ftv", ftv_method="Grapes"
        )
        summary = StoreWriter(str(tmp_path / "s")).write_catalog(
            catalog
        )
        assert summary["skipped_registered"] == ["adhoc"]
        assert summary["datasets"] == ["ppi"]

    def test_verify_all_reports_clean_store(self, tmp_path):
        root, _, _ = warm_store(tmp_path)
        report = StoreReader(root).verify_all()
        assert report["manifest"] is True
        assert report["blobs_bad"] == 0
        assert report["blobs_ok"] >= 2
        assert set(report["datasets"]) == {"ppi"}
