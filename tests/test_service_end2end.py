"""End-to-end service tests: determinism, caching, fairness, FTV."""

import pytest

from repro.harness import build_ftv_graphs, build_nfv_graph
from repro.matching import Budget
from repro.service import (
    AdmissionController,
    QueryOptions,
    Service,
    TenantPolicy,
    TicketState,
    replay,
    results_digest,
    run_closed_loop,
)
from repro.workload import (
    default_tenant_mixes,
    generate_tenant_stream,
    generate_tenant_streams,
)

OPTS = QueryOptions(algorithms=("GQL", "SPA"), rewritings=("Orig", "DND"))
BUDGET = 60_000


@pytest.fixture(scope="module")
def store():
    return build_nfv_graph("yeast", "tiny")


def make_service(workers=4):
    svc = Service(
        workers=workers,
        admission=AdmissionController(
            default_policy=TenantPolicy(step_budget=BUDGET)
        ),
    )
    svc.load_dataset("yeast", scale="tiny")
    return svc


def streams_for(store, queries_per_tenant=8, tenants=3, seed=42):
    mixes = default_tenant_mixes(
        tenants, queries_per_tenant, sizes=(4, 6, 8), repeat_fraction=0.4
    )
    return {
        m.tenant: generate_tenant_stream([store], m, seed=seed)
        for m in mixes
    }


class TestDeterminism:
    def test_two_runs_identical(self, store):
        """Same winners, step totals, and latencies across fresh runs."""
        reports = []
        for _ in range(2):
            svc = make_service()
            rep = run_closed_loop(
                svc, "yeast", streams_for(store), options=OPTS
            )
            reports.append(rep)
        a, b = reports
        assert a.digest == b.digest
        assert a.virtual_steps == b.virtual_steps
        la = [(t.tenant, t.query.name, t.latency) for t in a.completed]
        lb = [(t.tenant, t.query.name, t.latency) for t in b.completed]
        assert la == lb

    def test_replay_deterministic(self, store):
        mixes = default_tenant_mixes(2, 5, sizes=(4, 6))
        stream = generate_tenant_streams([store], mixes, seed=7)
        digests = set()
        for _ in range(2):
            svc = make_service()
            rep = replay(svc, "yeast", stream, options=OPTS)
            digests.add(rep.digest)
        assert len(digests) == 1


class TestEquivalenceWithPsi:
    def test_service_result_matches_solo_race(self, store):
        """A served query's bill equals PsiNFV.race, concurrency or not."""
        svc = make_service()
        streams = streams_for(store, queries_per_tenant=6)
        rep = run_closed_loop(svc, "yeast", streams, options=OPTS)
        psi = svc.catalog.get("yeast").psi
        variants = OPTS.variants("nfv")
        checked = 0
        for t in rep.completed:
            if t.cache_hit or t.coalesced:
                # both report the leader/original instance's historical
                # race, not a fresh run of this instance
                continue
            ref = psi.race(
                t.query,
                variants,
                budget=Budget(max_steps=BUDGET),
                count_only=True,
            )
            assert t.result.winner == ref.winner
            assert t.result.steps == ref.steps
            assert dict(t.result.per_variant_steps) == (
                ref.race.per_variant_steps
            )
            checked += 1
        assert checked >= 8


class TestResultCaching:
    def test_repeats_hit(self, store):
        svc = make_service()
        rep = run_closed_loop(
            svc, "yeast", streams_for(store), options=OPTS
        )
        cache = rep.as_json()["result_cache"]
        assert cache["hits"] > 0
        hits = [t for t in rep.completed if t.cache_hit]
        assert hits
        for t in hits:
            assert t.latency == 0
            assert t.result.from_cache

    def test_cached_answer_equals_fresh(self, store):
        svc = make_service()
        streams = streams_for(store)
        rep = run_closed_loop(svc, "yeast", streams, options=OPTS)
        fresh = {}
        for t in rep.completed:
            if not t.cache_hit:
                from repro.service.canon import canonical_query_key

                fresh[canonical_query_key(t.query)] = t.result
        for t in rep.completed:
            if t.cache_hit:
                from repro.service.canon import canonical_query_key

                ref = fresh[canonical_query_key(t.query)]
                assert t.result.found == ref.found
                assert t.result.steps == ref.steps
                assert t.result.winner == ref.winner

    def test_killed_results_not_cached(self, store):
        svc = Service(
            workers=4,
            admission=AdmissionController(
                default_policy=TenantPolicy(step_budget=8)
            ),
        )
        svc.load_dataset("yeast", scale="tiny")
        streams = streams_for(store, queries_per_tenant=3)
        rep = run_closed_loop(svc, "yeast", streams, options=OPTS)
        killed = [t for t in rep.completed if t.result.killed]
        assert killed  # an 8-step budget kills everything fresh
        assert rep.as_json()["result_cache"]["hits"] == 0


class TestAdmissionIntegration:
    def test_rejection_surfaces(self, store):
        svc = Service(
            workers=4,
            admission=AdmissionController(
                default_policy=TenantPolicy(
                    max_queued=1, step_budget=BUDGET
                )
            ),
        )
        svc.load_dataset("yeast", scale="tiny")
        mixes = default_tenant_mixes(1, 8, sizes=(6,), repeat_fraction=0.0)
        stream = generate_tenant_streams([store], mixes, seed=3)
        # open-loop replay floods the 1-deep queue
        rep = replay(svc, "yeast", stream, options=OPTS)
        rejected = [
            t for t in rep.tickets if t.state is TicketState.REJECTED
        ]
        assert rejected
        assert all("queue full" in t.reject_reason for t in rejected)

    def test_wide_variant_set_rejected(self, store):
        svc = make_service(workers=2)
        stream = generate_tenant_streams(
            [store],
            default_tenant_mixes(1, 1, sizes=(4,), repeat_fraction=0.0),
            seed=5,
        )
        t = svc.submit(
            "yeast", stream[0].query.graph, options=OPTS
        )  # 4 variants > 2 workers
        assert t.state is TicketState.REJECTED
        assert "worker pool" in t.reject_reason

    def test_fair_share_interleaves_tenants(self, store):
        """A backlogged heavy tenant cannot starve a light one."""
        svc = make_service(workers=4)
        streams = streams_for(store, queries_per_tenant=6, tenants=2)
        rep = run_closed_loop(svc, "yeast", streams, options=OPTS)
        finish_order = [
            t.tenant
            for t in sorted(rep.completed, key=lambda t: t.finish_time)
        ]
        # both tenants appear in the first half of completions
        half = finish_order[: len(finish_order) // 2]
        assert len(set(half)) == 2


class TestServiceStats:
    def test_stats_shape(self, store):
        svc = make_service()
        run_closed_loop(
            svc, "yeast", streams_for(store, queries_per_tenant=3),
            options=OPTS,
        )
        s = svc.stats()
        assert s["completed"] > 0
        assert s["clock_steps"] > 0
        assert s["work_steps"] > 0
        assert s["latency_steps"]["p50"] >= 0
        assert s["result_cache"]["lookups"] > 0
        assert s["prepare_cache"]["hits"] >= 0
        assert s["memory"]["total_bytes"] > 0

    def test_unknown_dataset_submit(self, store):
        svc = make_service()
        with pytest.raises(KeyError):
            svc.submit("human", store)


class TestFTVServing:
    def test_ftv_end_to_end(self):
        graphs = build_ftv_graphs("ppi", "tiny")
        svc = Service(
            workers=4,
            admission=AdmissionController(
                default_policy=TenantPolicy(step_budget=BUDGET)
            ),
        )
        svc.load_dataset("ppi", scale="tiny")
        mixes = default_tenant_mixes(
            2, 4, sizes=(4, 6), repeat_fraction=0.4
        )
        streams = {
            m.tenant: generate_tenant_stream(graphs, m, seed=9)
            for m in mixes
        }
        opts = QueryOptions(rewritings=("Orig", "DND"))
        rep = run_closed_loop(svc, "ppi", streams, options=opts)
        assert len(rep.completed) == 8
        # workload queries are grown from stored graphs: answers exist
        found = [t for t in rep.completed if t.result.found]
        assert found
        for t in found:
            assert t.result.matching_ids
        # determinism
        svc2 = Service(
            workers=4,
            admission=AdmissionController(
                default_policy=TenantPolicy(step_budget=BUDGET)
            ),
        )
        svc2.load_dataset("ppi", scale="tiny")
        rep2 = run_closed_loop(svc2, "ppi", streams, options=opts)
        assert rep.digest == rep2.digest

    def test_ftv_answer_matches_index(self):
        """The service's decision answer agrees with the raw index."""
        graphs = build_ftv_graphs("ppi", "tiny")
        svc = Service(workers=2)
        svc.load_dataset("ppi", scale="tiny")
        mixes = default_tenant_mixes(1, 3, sizes=(4,), repeat_fraction=0.0)
        stream = generate_tenant_streams(graphs, mixes, seed=11)
        opts = QueryOptions(rewritings=("Orig",))
        index = svc.catalog.get("ppi").ftv_index
        for mq in stream:
            t = svc.submit("ppi", mq.query.graph, options=opts)
            svc.run_until_idle()
            ref = index.query(mq.query.graph)
            assert list(t.result.matching_ids) == ref.matching_ids


class TestShardedServing:
    """End-to-end sharded serving (edge cases live in
    tests/test_service_sharding.py)."""

    def test_sharded_ftv_end_to_end_deterministic(self):
        graphs = build_ftv_graphs("ppi", "tiny")
        mixes = default_tenant_mixes(2, 4, sizes=(4, 6), repeat_fraction=0.4)
        streams = {
            m.tenant: generate_tenant_stream(graphs, m, seed=9)
            for m in mixes
        }
        opts = QueryOptions(rewritings=("Orig", "DND"))
        reports = []
        for _ in range(2):
            svc = Service(
                workers=4,
                shards=2,
                admission=AdmissionController(
                    default_policy=TenantPolicy(step_budget=BUDGET)
                ),
            )
            svc.load_dataset("ppi", scale="tiny")
            reports.append(run_closed_loop(svc, "ppi", streams, options=opts))
        a, b = reports
        assert a.digest == b.digest
        assert a.answers == b.answers
        assert len(a.completed) == 8
        found = [t for t in a.completed if t.result.found]
        assert found
        for t in found:
            assert t.result.matching_ids

    def test_sharded_service_unsharded_equivalence(self, store):
        """Answers on an NFV dataset are shard-layout-invariant."""
        streams = streams_for(store, queries_per_tenant=4)
        base = run_closed_loop(
            make_service(), "yeast", streams, options=OPTS
        )
        svc = Service(
            workers=4,
            shards=2,
            admission=AdmissionController(
                default_policy=TenantPolicy(step_budget=BUDGET)
            ),
        )
        svc.load_dataset("yeast", scale="tiny")
        sharded = run_closed_loop(svc, "yeast", streams, options=OPTS)
        assert base.answers == sharded.answers


def test_results_digest_order_independent(store):
    svc = make_service()
    rep = run_closed_loop(
        svc, "yeast", streams_for(store, queries_per_tenant=3),
        options=OPTS,
    )
    shuffled = list(reversed(rep.completed))
    assert results_digest(rep.completed) == results_digest(shuffled)


def test_invalid_budget_rejected_at_submit(store):
    svc = make_service()
    with pytest.raises(ValueError, match="budget_steps"):
        svc.submit("yeast", store, budget_steps=0)
