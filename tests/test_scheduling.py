"""Tests for the deterministic parallel-schedule simulator."""

import pytest

from repro.scheduling import TaskResult, first_match_schedule


def fixed(steps, found=False, killed=False):
    """A task with a precomputed cost, truncated to its allowance."""

    def run(allowance):
        if steps > allowance:
            return TaskResult(steps=allowance, found=False, killed=True)
        return TaskResult(steps=steps, found=found, killed=killed)

    return run


class TestSequential:
    def test_sum_until_first_match(self):
        tasks = [fixed(10), fixed(20, found=True), fixed(99)]
        out = first_match_schedule(tasks, workers=1)
        assert out.found
        assert out.time == 30
        assert out.executed == 2  # third task never starts

    def test_no_match_makespan(self):
        out = first_match_schedule([fixed(10), fixed(5)], workers=1)
        assert not out.found
        assert out.time == 15
        assert not out.killed

    def test_budget_kills(self):
        out = first_match_schedule(
            [fixed(100), fixed(100)], workers=1, budget_steps=150
        )
        assert out.killed
        assert out.time == 150

    def test_match_on_budget_boundary(self):
        out = first_match_schedule(
            [fixed(100, found=True)], workers=1, budget_steps=100
        )
        assert out.found
        assert out.time == 100


class TestParallel:
    def test_race_takes_min(self):
        tasks = [fixed(50, found=True), fixed(10, found=True)]
        out = first_match_schedule(tasks, workers=2)
        assert out.found
        assert out.time == 10

    def test_makespan_without_match(self):
        tasks = [fixed(50), fixed(10), fixed(30)]
        out = first_match_schedule(tasks, workers=2)
        # worker0: 50 ; worker1: 10 + 30 = 40
        assert out.time == 50

    def test_lazy_skips_tasks_after_win(self):
        tasks = [fixed(5, found=True), fixed(100), fixed(100)]
        out = first_match_schedule(tasks, workers=1)
        assert out.executed == 1

    def test_workers_never_hurt(self):
        tasks = [fixed(30), fixed(30), fixed(30), fixed(30, found=True)]
        t1 = first_match_schedule(tasks, workers=1).time
        t4 = first_match_schedule(tasks, workers=4).time
        assert t4 <= t1

    def test_later_finish_not_preferred(self):
        # first task finds at 100, second (same worker start 0 on w2)
        # finds at 20: winner is the earliest finish
        tasks = [fixed(100, found=True), fixed(20, found=True)]
        out = first_match_schedule(tasks, workers=2)
        assert out.time == 20

    def test_allowance_respects_earlier_win(self):
        calls = []

        def probe(allowance):
            calls.append(allowance)
            return TaskResult(steps=min(allowance, 1000), found=False,
                              killed=allowance < 1000)

        tasks = [fixed(10, found=True), probe]
        first_match_schedule(tasks, workers=2, budget_steps=500)
        # the probe may run at most until the winner's finish time
        assert calls == [10]


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            first_match_schedule([fixed(1)], workers=0)

    def test_empty_tasks(self):
        out = first_match_schedule([], workers=2)
        assert out.time == 0
        assert not out.found
        assert not out.killed
