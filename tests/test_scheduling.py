"""Tests for the deterministic parallel-schedule simulator."""

import pytest

from repro.scheduling import (
    FairShareLedger,
    ScheduleOutcome,
    TaskResult,
    first_match_schedule,
)


def fixed(steps, found=False, killed=False):
    """A task with a precomputed cost, truncated to its allowance."""

    def run(allowance):
        if steps > allowance:
            return TaskResult(steps=allowance, found=False, killed=True)
        return TaskResult(steps=steps, found=found, killed=killed)

    return run


class TestSequential:
    def test_sum_until_first_match(self):
        tasks = [fixed(10), fixed(20, found=True), fixed(99)]
        out = first_match_schedule(tasks, workers=1)
        assert out.found
        assert out.time == 30
        assert out.executed == 2  # third task never starts

    def test_no_match_makespan(self):
        out = first_match_schedule([fixed(10), fixed(5)], workers=1)
        assert not out.found
        assert out.time == 15
        assert not out.killed

    def test_budget_kills(self):
        out = first_match_schedule(
            [fixed(100), fixed(100)], workers=1, budget_steps=150
        )
        assert out.killed
        assert out.time == 150

    def test_match_on_budget_boundary(self):
        out = first_match_schedule(
            [fixed(100, found=True)], workers=1, budget_steps=100
        )
        assert out.found
        assert out.time == 100


class TestParallel:
    def test_race_takes_min(self):
        tasks = [fixed(50, found=True), fixed(10, found=True)]
        out = first_match_schedule(tasks, workers=2)
        assert out.found
        assert out.time == 10

    def test_makespan_without_match(self):
        tasks = [fixed(50), fixed(10), fixed(30)]
        out = first_match_schedule(tasks, workers=2)
        # worker0: 50 ; worker1: 10 + 30 = 40
        assert out.time == 50

    def test_lazy_skips_tasks_after_win(self):
        tasks = [fixed(5, found=True), fixed(100), fixed(100)]
        out = first_match_schedule(tasks, workers=1)
        assert out.executed == 1

    def test_workers_never_hurt(self):
        tasks = [fixed(30), fixed(30), fixed(30), fixed(30, found=True)]
        t1 = first_match_schedule(tasks, workers=1).time
        t4 = first_match_schedule(tasks, workers=4).time
        assert t4 <= t1

    def test_later_finish_not_preferred(self):
        # first task finds at 100, second (same worker start 0 on w2)
        # finds at 20: winner is the earliest finish
        tasks = [fixed(100, found=True), fixed(20, found=True)]
        out = first_match_schedule(tasks, workers=2)
        assert out.time == 20

    def test_allowance_respects_earlier_win(self):
        calls = []

        def probe(allowance):
            calls.append(allowance)
            return TaskResult(steps=min(allowance, 1000), found=False,
                              killed=allowance < 1000)

        tasks = [fixed(10, found=True), probe]
        first_match_schedule(tasks, workers=2, budget_steps=500)
        # the probe may run at most until the winner's finish time
        assert calls == [10]


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            first_match_schedule([fixed(1)], workers=0)

    def test_empty_tasks(self):
        out = first_match_schedule([], workers=2)
        assert out.time == 0
        assert not out.found
        assert not out.killed


class TestRaceEquivalence:
    """``workers >= len(tasks)`` must behave as a Ψ race: every task
    starts at time 0 and the earliest match finish wins."""

    def test_time_is_min_matching_task(self):
        costs = [50, 20, 35]
        tasks = [fixed(c, found=True) for c in costs]
        for workers in (3, 4, 10):
            out = first_match_schedule(tasks, workers=workers)
            assert out.found
            assert out.time == min(costs)

    def test_no_match_time_is_max(self):
        costs = [50, 20, 35]
        tasks = [fixed(c) for c in costs]
        for workers in (3, 7):
            out = first_match_schedule(tasks, workers=workers)
            assert not out.found
            assert out.time == max(costs)

    def test_extra_workers_change_nothing(self):
        tasks = [fixed(40), fixed(25, found=True), fixed(60, found=True)]
        base = first_match_schedule(tasks, workers=3)
        more = first_match_schedule(tasks, workers=30)
        assert (base.time, base.found, base.killed) == (
            more.time, more.found, more.killed
        )

    def test_all_tasks_executed_when_racing(self):
        # with one worker a match stops later tasks from starting;
        # with enough workers they all start at time 0 and execute
        tasks = [fixed(5, found=True), fixed(100), fixed(100)]
        out = first_match_schedule(tasks, workers=3)
        assert out.executed == 3


class TestBudgetEdges:
    def test_zero_allowance_task_never_starts(self):
        # budget equal to the first task's cost: the second task's
        # start time equals the cap, so it must not execute at all
        calls = []

        def probe(allowance):
            calls.append(allowance)
            return TaskResult(steps=1, found=False)

        out = first_match_schedule(
            [fixed(100), probe], workers=1, budget_steps=100
        )
        assert calls == []
        assert out.executed == 1
        assert not out.killed  # first task finished exactly at the cap

    def test_exhausted_budget_kills_mid_task(self):
        out = first_match_schedule(
            [fixed(70), fixed(70)], workers=1, budget_steps=100
        )
        assert out.killed
        assert out.time == 100
        # the second task was truncated to its 30-step allowance
        assert out.task_results[1].steps == 30
        assert out.task_results[1].killed

    def test_match_after_budget_does_not_count(self):
        out = first_match_schedule(
            [fixed(100, found=True)], workers=1, budget_steps=60
        )
        assert not out.found
        assert out.killed
        assert out.time == 60

    def test_budget_one(self):
        out = first_match_schedule(
            [fixed(1, found=True)], workers=1, budget_steps=1
        )
        assert out.found
        assert out.time == 1


class TestTieBreaking:
    def test_equal_finish_prefers_declaration_order(self):
        # both find at t=10 on different workers; winner time is 10
        # regardless, and the outcome is stable across repeats
        tasks = [fixed(10, found=True), fixed(10, found=True)]
        outs = [
            first_match_schedule(tasks, workers=2) for _ in range(3)
        ]
        assert all(o.time == 10 and o.found for o in outs)
        assert all(o.executed == outs[0].executed for o in outs)

    def test_worker_assignment_deterministic(self):
        # equal free times: lowest worker id gets the task, so the
        # makespan is reproducible
        tasks = [fixed(10), fixed(10), fixed(10)]
        times = {
            first_match_schedule(tasks, workers=2).time
            for _ in range(3)
        }
        assert times == {20}


class TestFairShareLedger:
    def test_pick_least_charged(self):
        ledger = FairShareLedger()
        ledger.charge("a", 100)
        ledger.charge("b", 10)
        assert ledger.pick(["a", "b"]) == "b"

    def test_weights_divide_charges(self):
        ledger = FairShareLedger()
        ledger.register("heavy", weight=10.0)
        ledger.register("light", weight=1.0)
        ledger.charge("heavy", 500)
        ledger.charge("light", 100)
        # 500/10=50 < 100/1: heavy is owed service
        assert ledger.pick(["light", "heavy"]) == "heavy"

    def test_tie_breaks_by_registration(self):
        ledger = FairShareLedger()
        ledger.register("z")
        ledger.register("a")
        assert ledger.pick(["a", "z"]) == "z"

    def test_charge_accepts_cost_algebra_types(self):
        ledger = FairShareLedger()
        ledger.charge("a", TaskResult(steps=7, found=False))
        out = first_match_schedule([fixed(5)], workers=1)
        assert isinstance(out, ScheduleOutcome)
        ledger.charge("a", out)
        assert ledger.charged("a") == 12

    def test_validation(self):
        ledger = FairShareLedger()
        with pytest.raises(ValueError):
            ledger.register("a", weight=0)
        with pytest.raises(ValueError):
            ledger.charge("a", -1)

    def test_empty_pick(self):
        assert FairShareLedger().pick([]) is None

    def test_snapshot(self):
        ledger = FairShareLedger()
        ledger.charge("a", 3)
        assert ledger.snapshot() == {"a": 3}
