"""Tests for the query workload generator (paper §3.4)."""

import random

import pytest

from repro.graphs import GraphError, LabeledGraph, gnm_graph, uniform_labels
from repro.matching import VF2Matcher
from repro.workload import extract_query, generate_workload


def _store(seed=1, n=30, m=60):
    rng = random.Random(seed)
    return gnm_graph(n, m, uniform_labels(n, ["A", "B", "C"], rng), rng)


class TestExtractQuery:
    def test_requested_size(self):
        g = _store()
        q = extract_query(g, 7, random.Random(2))
        assert q.size == 7

    def test_connected(self):
        g = _store()
        for seed in range(8):
            q = extract_query(g, 6, random.Random(seed))
            assert q.is_connected()

    def test_query_always_satisfiable(self):
        """Queries are subgraphs of the store: an embedding must exist
        (this is what makes killed queries true stragglers)."""
        g = _store()
        for seed in range(6):
            q = extract_query(g, 5, random.Random(seed))
            out = VF2Matcher().decide(g, q)
            assert out.found

    def test_deterministic(self):
        g = _store()
        a = extract_query(g, 6, random.Random(5))
        b = extract_query(g, 6, random.Random(5))
        assert a.same_labeled_structure(b)

    def test_zero_edges_rejected(self):
        g = _store()
        with pytest.raises(GraphError):
            extract_query(g, 0, random.Random(1))

    def test_oversized_rejected(self):
        g = LabeledGraph.from_edges(["A", "B"], [(0, 1)])
        with pytest.raises(GraphError):
            extract_query(g, 5, random.Random(1))

    def test_small_component_exhausted(self):
        g = LabeledGraph(4, ["A", "B", "C", "D"])
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        # any seed vertex sits in a 1-edge component; asking for 2 edges
        # must raise
        with pytest.raises(GraphError):
            extract_query(g, 2, random.Random(0))


class TestGenerateWorkload:
    def test_counts_and_sizes(self):
        g = _store()
        queries = generate_workload([g], 10, 5, seed=3)
        assert len(queries) == 10
        assert all(q.graph.size == 5 for q in queries)
        assert all(q.num_edges == 5 for q in queries)

    def test_multi_graph_sources_recorded(self):
        graphs = [_store(seed=s) for s in range(3)]
        queries = generate_workload(graphs, 12, 4, seed=9)
        sources = {q.source_graph_id for q in queries}
        assert sources <= {0, 1, 2}
        assert len(sources) > 1

    def test_deterministic(self):
        g = _store()
        a = generate_workload([g], 5, 4, seed=11)
        b = generate_workload([g], 5, 4, seed=11)
        for x, y in zip(a, b):
            assert x.graph.same_labeled_structure(y.graph)

    def test_empty_dataset_rejected(self):
        with pytest.raises(GraphError):
            generate_workload([], 5, 4)

    def test_impossible_size_raises(self):
        g = LabeledGraph.from_edges(["A", "B"], [(0, 1)])
        with pytest.raises(GraphError):
            generate_workload([g], 2, 4, seed=1)

    def test_query_names_unique(self):
        g = _store()
        queries = generate_workload([g], 8, 4, seed=13)
        names = {q.name for q in queries}
        assert len(names) == 8


class TestTenantMixes:
    def _graphs(self):
        return [_store(seed=3, n=40, m=90)]

    def _mix(self, **kw):
        from repro.workload import TenantMix

        defaults = dict(
            tenant="t0", sizes=(4, 6), count=10, repeat_fraction=0.4
        )
        defaults.update(kw)
        return TenantMix(**defaults)

    def test_stream_deterministic(self):
        from repro.workload import generate_tenant_stream

        graphs = self._graphs()
        a = generate_tenant_stream(graphs, self._mix(), seed=5)
        b = generate_tenant_stream(graphs, self._mix(), seed=5)
        assert len(a) == len(b) == 10
        for x, y in zip(a, b):
            assert x.tenant == y.tenant
            assert x.is_repeat == y.is_repeat
            assert x.query.graph.same_labeled_structure(y.query.graph)

    def test_sizes_stratified(self):
        from repro.workload import generate_tenant_stream

        stream = generate_tenant_stream(
            self._graphs(), self._mix(repeat_fraction=0.0), seed=7
        )
        sizes = {mq.query.graph.size for mq in stream}
        assert sizes == {4, 6}

    def test_repeats_are_isomorphic_copies(self):
        from repro.graphs.isomorphism import are_isomorphic
        from repro.workload import generate_tenant_stream

        stream = generate_tenant_stream(
            self._graphs(), self._mix(count=20), seed=9
        )
        repeats = [mq for mq in stream if mq.is_repeat]
        assert repeats  # 40% repeat rate over 20 queries
        for rep in repeats:
            twins = [
                mq
                for mq in stream
                if not mq.is_repeat
                and mq.query.graph.size == rep.query.graph.size
                and are_isomorphic(mq.query.graph, rep.query.graph)
            ]
            assert twins, f"repeat {rep.query.name} has no original"

    def test_interleaved_streams_round_robin(self):
        from repro.workload import (
            TenantMix,
            generate_tenant_streams,
        )

        graphs = self._graphs()
        mixes = [
            TenantMix(tenant="a", sizes=(4,), count=3),
            TenantMix(tenant="b", sizes=(4,), count=2),
        ]
        merged = generate_tenant_streams(graphs, mixes, seed=1)
        assert [mq.tenant for mq in merged] == ["a", "b", "a", "b", "a"]

    def test_default_mixes_heterogeneous(self):
        from repro.workload import default_tenant_mixes

        mixes = default_tenant_mixes(3, 5, sizes=(4, 6, 8))
        assert len(mixes) == 3
        assert {m.tenant for m in mixes} == {
            "tenant0", "tenant1", "tenant2"
        }
        # staggered strata: tenants start at different sizes
        assert mixes[0].sizes[0] != mixes[1].sizes[0]

    def test_mix_validation(self):
        from repro.workload import TenantMix

        with pytest.raises(GraphError):
            TenantMix(tenant="t", sizes=(), count=1)
        with pytest.raises(GraphError):
            TenantMix(tenant="t", sizes=(4,), count=0)
        with pytest.raises(GraphError):
            TenantMix(
                tenant="t", sizes=(4,), count=1, repeat_fraction=1.0
            )
        with pytest.raises(GraphError):
            TenantMix(tenant="t", sizes=(4,), count=1, weight=0.0)

    def test_permuted_instance_isomorphic(self):
        import random as _random

        from repro.graphs.isomorphism import are_isomorphic
        from repro.workload import extract_query, permuted_instance

        g = self._graphs()[0]
        q = extract_query(g, 6, _random.Random(3))
        twin = permuted_instance(q, _random.Random(4))
        assert are_isomorphic(q, twin)

    def test_duplicate_sizes_supported(self):
        from repro.workload import generate_tenant_stream

        stream = generate_tenant_stream(
            self._graphs(),
            self._mix(sizes=(4, 4, 6), count=9, repeat_fraction=0.0),
            seed=2,
        )
        assert len(stream) == 9
        sizes = [mq.query.graph.size for mq in stream]
        assert sizes.count(4) == 6 and sizes.count(6) == 3
