"""Tests for the query workload generator (paper §3.4)."""

import random

import pytest

from repro.graphs import GraphError, LabeledGraph, gnm_graph, uniform_labels
from repro.matching import VF2Matcher
from repro.workload import extract_query, generate_workload


def _store(seed=1, n=30, m=60):
    rng = random.Random(seed)
    return gnm_graph(n, m, uniform_labels(n, ["A", "B", "C"], rng), rng)


class TestExtractQuery:
    def test_requested_size(self):
        g = _store()
        q = extract_query(g, 7, random.Random(2))
        assert q.size == 7

    def test_connected(self):
        g = _store()
        for seed in range(8):
            q = extract_query(g, 6, random.Random(seed))
            assert q.is_connected()

    def test_query_always_satisfiable(self):
        """Queries are subgraphs of the store: an embedding must exist
        (this is what makes killed queries true stragglers)."""
        g = _store()
        for seed in range(6):
            q = extract_query(g, 5, random.Random(seed))
            out = VF2Matcher().decide(g, q)
            assert out.found

    def test_deterministic(self):
        g = _store()
        a = extract_query(g, 6, random.Random(5))
        b = extract_query(g, 6, random.Random(5))
        assert a.same_labeled_structure(b)

    def test_zero_edges_rejected(self):
        g = _store()
        with pytest.raises(GraphError):
            extract_query(g, 0, random.Random(1))

    def test_oversized_rejected(self):
        g = LabeledGraph.from_edges(["A", "B"], [(0, 1)])
        with pytest.raises(GraphError):
            extract_query(g, 5, random.Random(1))

    def test_small_component_exhausted(self):
        g = LabeledGraph(4, ["A", "B", "C", "D"])
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        # any seed vertex sits in a 1-edge component; asking for 2 edges
        # must raise
        with pytest.raises(GraphError):
            extract_query(g, 2, random.Random(0))


class TestGenerateWorkload:
    def test_counts_and_sizes(self):
        g = _store()
        queries = generate_workload([g], 10, 5, seed=3)
        assert len(queries) == 10
        assert all(q.graph.size == 5 for q in queries)
        assert all(q.num_edges == 5 for q in queries)

    def test_multi_graph_sources_recorded(self):
        graphs = [_store(seed=s) for s in range(3)]
        queries = generate_workload(graphs, 12, 4, seed=9)
        sources = {q.source_graph_id for q in queries}
        assert sources <= {0, 1, 2}
        assert len(sources) > 1

    def test_deterministic(self):
        g = _store()
        a = generate_workload([g], 5, 4, seed=11)
        b = generate_workload([g], 5, 4, seed=11)
        for x, y in zip(a, b):
            assert x.graph.same_labeled_structure(y.graph)

    def test_empty_dataset_rejected(self):
        with pytest.raises(GraphError):
            generate_workload([], 5, 4)

    def test_impossible_size_raises(self):
        g = LabeledGraph.from_edges(["A", "B"], [(0, 1)])
        with pytest.raises(GraphError):
            generate_workload([g], 2, 4, seed=1)

    def test_query_names_unique(self):
        g = _store()
        queries = generate_workload([g], 8, 4, seed=13)
        names = {q.name for q in queries}
        assert len(names) == 8
