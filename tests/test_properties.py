"""Property-based tests (hypothesis) on core invariants.

Strategy: generate small random labeled stores and connected queries
grown from them, then assert the library's fundamental contracts:

* node-ID permutation yields isomorphic graphs (invariants preserved);
* every matcher agrees with brute force on found/count;
* rewritings are valid permutations and preserve answers;
* the path census is permutation-invariant and prefix-closed;
* race outcomes equal the per-variant minimum.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.graphs import LabeledGraph
from repro.indexing import label_path_census
from repro.matching import make_matcher
from repro.psi import AttemptCost, OverheadModel, race_from_costs
from repro.rewriting import ALL_PAPER_REWRITINGS, LabelStats, make_rewriting
from repro.workload import extract_query

from .conftest import canonical_embeddings

ALGORITHMS = ("VF2", "QSI", "GQL", "SPA", "ULL", "TUR")


@st.composite
def stores(draw, max_nodes=14):
    """A small connected labeled graph."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    labels = draw(
        st.lists(
            st.sampled_from(["A", "B", "C"]), min_size=n, max_size=n
        )
    )
    g = LabeledGraph(n, labels)
    # random spanning tree for connectivity
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        g.add_edge(order[i], order[rng.randrange(i)])
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


@st.composite
def store_and_query(draw):
    g = draw(stores())
    max_edges = min(5, g.size)
    k = draw(st.integers(min_value=1, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    q = extract_query(g, k, random.Random(seed))
    return g, q


@st.composite
def permutations_of(draw, n):
    perm = list(range(n))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    random.Random(seed).shuffle(perm)
    return perm


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_permutation_preserves_invariants(data):
    g = data.draw(stores())
    perm = data.draw(permutations_of(g.order))
    h = g.permuted(perm)
    assert h.order == g.order
    assert h.size == g.size
    assert h.degree_label_signature() == g.degree_label_signature()
    assert sorted(map(len, h.connected_components())) == sorted(
        map(len, g.connected_components())
    )


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_all_matchers_agree_with_brute_force(data):
    g, q = data.draw(store_and_query())
    ref = make_matcher("REF").run(g, q, max_embeddings=10**6)
    base = canonical_embeddings(ref.embeddings)
    for alg in ALGORITHMS:
        out = make_matcher(alg).run(g, q, max_embeddings=10**6)
        assert out.found == ref.found
        assert canonical_embeddings(out.embeddings) == base


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_matching_invariant_under_store_permutation(data):
    """Permuting the *stored graph* relabels embeddings but preserves
    their count — the decision answer is representation-independent."""
    g, q = data.draw(store_and_query())
    perm = data.draw(permutations_of(g.order))
    h = g.permuted(perm)
    a = make_matcher("VF2").run(g, q, max_embeddings=10**6)
    b = make_matcher("VF2").run(h, q, max_embeddings=10**6)
    assert a.num_embeddings == b.num_embeddings


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_rewritings_are_valid_and_answer_preserving(data):
    g, q = data.draw(store_and_query())
    stats = LabelStats.of_graph(g)
    expected = make_matcher("VF2").run(g, q, max_embeddings=10**6)
    for name in ("Orig",) + ALL_PAPER_REWRITINGS:
        rq = make_rewriting(name).apply(q, stats)
        assert sorted(rq.perm) == list(range(q.order))
        out = make_matcher("VF2").run(
            g, rq.graph, max_embeddings=10**6
        )
        assert out.num_embeddings == expected.num_embeddings
        translated = [
            rq.translate_embedding(e) for e in out.embeddings
        ]
        assert canonical_embeddings(translated) == (
            canonical_embeddings(expected.embeddings)
        )


@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_census_permutation_invariant(data):
    g = data.draw(stores(max_nodes=10))
    perm = data.draw(permutations_of(g.order))
    a = label_path_census(g, 3)
    b = label_path_census(g.permuted(perm), 3)
    assert a.counts == b.counts


@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_census_query_counts_dominated_by_store(data):
    """Soundness of FTV count pruning: a subgraph's census counts never
    exceed its supergraph's."""
    g, q = data.draw(store_and_query())
    qc = label_path_census(q, 2)
    gc = label_path_census(g, 2)
    for seq, needed in qc.counts.items():
        assert gc.counts.get(seq, 0) >= needed


@given(
    costs=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=10**6),
            st.booleans(),
            st.booleans(),
        ),
        min_size=1,
        max_size=6,
    ),
    overhead=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=60, deadline=None)
def test_race_from_costs_is_min_of_completions(costs, overhead):
    table = {
        i: AttemptCost(steps=s, found=f and not k, killed=k)
        for i, (s, f, k) in enumerate(costs)
    }
    race = race_from_costs(
        table,
        budget_steps=10**6,
        overhead=OverheadModel(per_variant_steps=overhead),
    )
    completing = [c for c in table.values() if not c.killed]
    if completing:
        assert not race.killed
        assert race.steps == (
            min(c.steps for c in completing) + overhead * len(table)
        )
    else:
        assert race.killed
        assert race.steps == 10**6 + overhead * len(table)
