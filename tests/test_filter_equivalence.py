"""Equivalence proofs for the filter-phase fast path.

The filter rework (interned feature codes, bitset posting lists,
memoized query censuses, plan-seeded racing, request coalescing) must
not move a single number — mirroring ``test_executor_equivalence.py``
for the execution fast path.  These tests check, over corpora of random
collections and queries, that

* the int-coded census partitions paths into exactly the classes of
  the label-space reference census, with identical counts;
* ``GrapesIndex.filter`` / ``GGSXIndex.filter`` (bitwise-AND folds over
  threshold masks) return exactly the reference filter's candidate
  sets — sorted and duplicate-free regardless of posting order;
* the census memo (per instance and per canonical form) never changes
  a filter or relevant-components answer;
* plan-seeded races are bit-for-bit the interleaved race of the seeded
  variant subset, and coalesced followers inherit their leader's race
  verbatim;
* catalog watermark eviction unloads LRU datasets through the
  PrepareCache eviction counters.
"""

import random
import weakref

import pytest

from repro.caching import prepare_cache
from repro.datasets import ppi_like
from repro.graphs import LabeledGraph
from repro.indexing import (
    GGSXIndex,
    GrapesIndex,
    PathTrie,
    SuffixTrie,
    coded_path_census,
    label_path_census,
)
from repro.matching import Budget
from repro.workload import extract_query, permuted_instance


def collection(seed=5, num_graphs=5, avg_nodes=50, num_labels=8):
    return ppi_like(
        num_graphs=num_graphs,
        avg_nodes=avg_nodes,
        num_labels=num_labels,
        seed=seed,
    )


def query_corpus(graphs, n=12, twins=True):
    """Random queries, half followed by a permuted isomorphic twin."""
    queries = []
    for seed in range(n):
        rng = random.Random(seed)
        gid = rng.randrange(len(graphs))
        q = extract_query(graphs[gid], 3 + seed % 5, rng)
        queries.append(q)
        if twins and seed % 2 == 0:
            queries.append(
                permuted_instance(q, random.Random(1000 + seed))
            )
    # a query whose labels the collection has never seen
    alien = LabeledGraph.from_edges(
        ["<alien>", "<alien>", "<ghost>"], [(0, 1), (1, 2)]
    )
    queries.append(alien)
    return queries


class TestCensusEquivalence:
    def test_coded_census_matches_reference_classes(self):
        graphs = collection()
        index = GrapesIndex(graphs, max_path_length=2)
        for g in graphs + query_corpus(graphs, n=6, twins=False):
            ref = label_path_census(g, 2)
            codes = index.interner.encode_vertices(g.labels)
            fast = coded_path_census(g, 2, codes)
            assert sum(ref.counts.values()) == sum(fast.counts.values())
            # label-known classes map 1:1 with identical counts
            for seq, count in ref.counts.items():
                coded = index.interner.encode_sequence(seq)
                if coded is not None:
                    assert fast.counts[coded] == count

    def test_locations_match_reference(self):
        graphs = collection(seed=9, num_graphs=3)
        index = GrapesIndex(graphs, max_path_length=2)
        g = graphs[0]
        ref = label_path_census(g, 2, with_locations=True)
        codes = index.interner.encode_vertices(g.labels)
        fast = coded_path_census(g, 2, codes, with_locations=True)
        for seq, locs in ref.locations.items():
            coded = index.interner.encode_sequence(seq)
            assert fast.locations[coded] == locs

    def test_unknown_labels_get_fresh_negative_codes(self):
        graphs = collection(num_graphs=2)
        index = GrapesIndex(graphs, max_path_length=2)
        codes = index.interner.encode_vertices(["<alien>", "<ghost>"])
        assert all(c < 0 for c in codes)
        assert codes[0] != codes[1]
        assert index.interner.encode_sequence(("<alien>",)) is None


class TestFilterEquivalence:
    @pytest.mark.parametrize("length", [1, 2, 3])
    def test_bitset_equals_reference(self, length):
        graphs = collection()
        for index in (
            GrapesIndex(graphs, max_path_length=length),
            GGSXIndex(graphs, max_path_length=length),
        ):
            for q in query_corpus(graphs):
                fast = index.filter(q)
                ref = index.filter_reference(q)
                assert fast == ref, (index.method_name, q.name)

    def test_sorted_and_duplicate_free(self):
        graphs = collection(seed=2)
        index = GrapesIndex(graphs, max_path_length=2)
        for q in query_corpus(graphs):
            out = index.filter(q)
            assert out == sorted(set(out))

    def test_warm_sealing_does_not_change_answers(self):
        graphs = collection(seed=3)
        lazy = GGSXIndex(graphs, max_path_length=2)
        warm = GGSXIndex(graphs, max_path_length=2)
        warm.warm()
        for q in query_corpus(graphs, n=6):
            assert lazy.filter(q) == warm.filter(q)

    def test_source_graph_survives(self):
        graphs = collection(seed=4)
        index = GrapesIndex(graphs, max_path_length=2)
        for seed in range(6):
            rng = random.Random(seed)
            gid = rng.randrange(len(graphs))
            q = extract_query(graphs[gid], 5, rng)
            assert gid in index.filter(q)


def seed_ftv_filter(trie_cls, graphs, query, max_length):
    """The pre-fast-path pipeline, verbatim, in label space.

    Builds the trie on raw label sequences (no interning) and filters
    with the seed's posting-dict set algebra — the ground truth the
    coded pipeline must reproduce bit for bit.  Direction matters for
    :class:`SuffixTrie` (it inserts suffixes of the canonical
    representative), which is exactly what this guards.
    """
    trie = trie_cls()
    for gid, g in enumerate(graphs):
        census = label_path_census(g, max_length)
        for seq, count in census.counts.items():
            trie.insert(seq, gid, count)
    census = label_path_census(query, max_length)
    alive = None
    for seq, needed in census.counts.items():
        ok = {
            gid
            for gid, p in trie.lookup(seq).items()
            if p.count >= needed
        }
        alive = ok if alive is None else (alive & ok)
        if not alive:
            return []
    return sorted(alive) if alive else []


class TestLabelOrderEquivalence:
    """Int labels sort differently by repr (repr(10) < repr(2)): the
    interner must stay order-preserving or GGSX's suffix accumulation
    picks different canonical representatives than the label-space
    seed and the candidate sets silently diverge."""

    def _int_labeled(self, trial, labels=(2, 10, 3)):
        from repro.graphs import gnm_graph, uniform_labels

        rng = random.Random(trial)
        graphs = [
            gnm_graph(12, 18, uniform_labels(12, list(labels), rng), rng)
            for _ in range(4)
        ]
        qrng = random.Random(1000 + trial)
        query = extract_query(graphs[qrng.randrange(4)], 4, qrng)
        return graphs, query

    # configurations proven to diverge under a repr-sorted interner
    # (candidate sets differed from the label-space seed's)
    DIVERGENT = [(45, 3), (51, 3), (110, 2), (113, 3), (115, 3)]

    @pytest.mark.parametrize("trial,length", DIVERGENT)
    def test_ggsx_matches_label_space_seed(self, trial, length):
        from repro.indexing.trie import SuffixTrie

        graphs, q = self._int_labeled(trial)
        index = GGSXIndex(graphs, max_path_length=length)
        expected = seed_ftv_filter(SuffixTrie, graphs, q, length)
        assert index.filter(q) == expected

    @pytest.mark.parametrize("trial", [45, 51, 110, 113])
    def test_grapes_matches_label_space_seed(self, trial):
        graphs, q = self._int_labeled(trial)
        index = GrapesIndex(graphs, max_path_length=3)
        expected = seed_ftv_filter(PathTrie, graphs, q, 3)
        assert index.filter(q) == expected


class TestPostingDeterminism:
    """Satellite: candidates are sorted/dup-free for any posting order."""

    @pytest.mark.parametrize("trie_cls", [PathTrie, SuffixTrie])
    def test_mask_ge_independent_of_insertion_order(self, trie_cls):
        rng = random.Random(7)
        postings = [
            (seq, gid, count)
            for seq in [(0,), (1,), (0, 1), (1, 2, 1)]
            for gid, count in [(0, 2), (5, 1), (3, 4), (63, 7), (17, 2)]
        ]
        reference = None
        for _ in range(5):
            rng.shuffle(postings)
            trie = trie_cls()
            for seq, gid, count in postings:
                trie.insert(seq, gid, count)
            probes = {
                (seq, needed): trie.mask_ge(seq, needed)
                for seq, _, _ in postings
                for needed in (1, 2, 4, 8)
            }
            if reference is None:
                reference = probes
            else:
                assert probes == reference

    def test_mask_bits_are_sorted_ids(self):
        trie = PathTrie()
        for gid in (63, 0, 17, 4):
            trie.insert((1, 2), gid, 3)
        mask = trie.mask_ge((1, 2), 2)
        ids = []
        while mask:
            low = mask & -mask
            ids.append(low.bit_length() - 1)
            mask ^= low
        assert ids == [0, 4, 17, 63]

    def test_insert_after_seal_invalidates(self):
        trie = PathTrie()
        trie.insert((1,), 0, 2)
        assert trie.mask_ge((1,), 1) == 1  # seals lazily
        trie.insert((1,), 1, 5)
        assert trie.mask_ge((1,), 1) == 0b11
        assert trie.mask_ge((1,), 3) == 0b10
        assert trie.mask_ge((1,), 6) == 0


class TestCensusMemo:
    def test_same_instance_reuses_census(self):
        graphs = collection(seed=6, num_graphs=3)
        index = GrapesIndex(graphs, max_path_length=2)
        q = extract_query(graphs[0], 5, random.Random(1))
        before = prepare_cache.stats.hits
        index.filter(q)
        index.filter(q)
        index.relevant_components(q, 0)
        assert prepare_cache.stats.hits >= before + 2

    def test_isomorphic_twin_shares_census(self):
        graphs = collection(seed=6, num_graphs=3)
        index = GrapesIndex(graphs, max_path_length=2)
        q = extract_query(graphs[1], 6, random.Random(2))
        twin = permuted_instance(q, random.Random(3))
        index.filter(q)
        hits = index.census_stats.hits
        assert index.filter(twin) == index.filter_reference(twin)
        assert index.census_stats.hits == hits + 1
        metrics = index.census_cache_metrics()
        assert metrics["hits"] == index.census_stats.hits
        assert 0.0 < metrics["hit_rate"] <= 1.0

    @staticmethod
    def _cycle(n):
        g = LabeledGraph(n, ["A"] * n)
        for i in range(n):
            g.add_edge(i, (i + 1) % n)
        return g

    @staticmethod
    def _path(n):
        g = LabeledGraph(n, ["A"] * n)
        for i in range(n - 1):
            g.add_edge(i, i + 1)
        return g

    @pytest.mark.parametrize("cls", [GrapesIndex, GGSXIndex])
    def test_mutated_stashed_query_never_poisons(self, cls):
        """A client mutating a query after filtering must not let its
        stale census promote under the mutated graph's canonical key."""
        graphs = [self._cycle(6), self._path(6)]
        index = cls(graphs, max_path_length=2)
        # promote the cycle class to canonical keying first, so later
        # cycle queries consult the canonical-form census cache
        index.filter(self._cycle(6))
        index.filter(self._cycle(6))
        q = self._path(6)
        index.filter(q)  # census stashed for this shape
        q.add_edge(0, 5)  # q is now a 6-cycle
        # the next path query triggers promotion of the stash — which
        # must be forfeited, or the stale path census would be filed
        # under the *cycle* canonical key of the mutated graph
        index.filter(self._path(6))
        for probe in (self._cycle(6), self._path(6)):
            assert index.filter(probe) == index.filter_reference(probe)

    def test_stash_does_not_pin_query_graphs(self):
        import gc

        graphs = collection(seed=11, num_graphs=3)
        index = GrapesIndex(graphs, max_path_length=2)
        q = extract_query(graphs[0], 5, random.Random(9))
        twin1 = permuted_instance(q, random.Random(10))
        twin2 = permuted_instance(q, random.Random(11))
        index.filter(q)
        ref = weakref.ref(q)
        del q
        gc.collect()
        assert ref() is None, "stash must not keep the query alive"
        # dead stash forfeits promotion; the class still converges to
        # canonical sharing via the next instance
        assert index.filter(twin1) == index.filter_reference(twin1)
        hits = index.census_stats.hits
        assert index.filter(twin2) == index.filter_reference(twin2)
        assert index.census_stats.hits == hits + 1

    def test_memoized_verify_matches_reference_components(self):
        graphs = collection(seed=8, num_graphs=3)
        index = GrapesIndex(graphs, max_path_length=2)
        q = extract_query(graphs[0], 5, random.Random(4))
        twin = permuted_instance(q, random.Random(5))
        budget = Budget(max_steps=10**6)
        for query in (q, twin, q):
            report = index.verify(query, 0, budget)
            assert report.matched


class TestPlanSeededRaces:
    @pytest.fixture(scope="class")
    def served(self):
        from repro.harness import build_nfv_graph
        from repro.service import (
            AdmissionController,
            QueryOptions,
            Service,
            TenantPolicy,
        )

        store = build_nfv_graph("yeast", "tiny")
        opts = QueryOptions(
            algorithms=("GQL", "SPA"), rewritings=("Orig", "DND")
        )
        svc = Service(
            workers=4,
            plan_seeding=True,
            admission=AdmissionController(
                default_policy=TenantPolicy(step_budget=60_000)
            ),
        )
        svc.load_dataset("yeast", scale="tiny")
        return store, opts, svc

    def _near_miss(self, svc, store, opts, seed, budget):
        """Warm the plan cache, then submit a twin under a new budget."""
        q = extract_query(store, 6, random.Random(seed))
        twin = permuted_instance(q, random.Random(seed + 77))
        svc.submit("yeast", q, options=opts)
        svc.run_until_idle()
        ticket = svc.submit(
            "yeast", twin, options=opts, budget_steps=budget
        )
        svc.run_until_idle()
        return twin, ticket

    def test_seeded_race_is_winner_plus_challenger(self, served):
        store, opts, svc = served
        _, ticket = self._near_miss(svc, store, opts, seed=1, budget=50_000)
        assert ticket.plan_seeded and not ticket.cache_hit
        assert len(dict(ticket.result.per_variant_steps)) == 2

    def test_seeded_race_bit_for_bit_vs_interleaved(self, served):
        """Seeding changes race membership, never race mechanics."""
        store, opts, svc = served
        psi = svc.catalog.get("yeast").psi
        for seed in range(2, 6):
            twin, ticket = self._near_miss(
                svc, store, opts, seed=seed, budget=50_000
            )
            assert ticket.plan_seeded
            pair = tuple(v for v, _ in ticket.result.per_variant_steps)
            ref = psi.race(
                twin,
                pair,
                budget=Budget(max_steps=50_000),
                max_embeddings=opts.max_embeddings,
                count_only=opts.count_only,
            )
            assert ticket.result.winner == ref.winner
            assert ticket.result.steps == ref.steps
            assert dict(ticket.result.per_variant_steps) == (
                ref.race.per_variant_steps
            )

    def test_seeded_answer_matches_full_race_answer(self, served):
        """found/num_embeddings are decision answers: subset-invariant."""
        store, opts, svc = served
        psi = svc.catalog.get("yeast").psi
        twin, ticket = self._near_miss(svc, store, opts, seed=6, budget=50_000)
        full = psi.race(
            twin,
            opts.variants("nfv"),
            budget=Budget(max_steps=50_000),
            max_embeddings=opts.max_embeddings,
            count_only=opts.count_only,
        )
        assert ticket.result.found == full.found

    def test_plan_metrics_surface(self, served):
        _, _, svc = served
        metrics = svc.cache.as_metrics()
        assert metrics["plan_hits"] > 0
        assert metrics["plan_entries"] > 0
        assert svc.admission.stats()["plan_seeded"] > 0


class TestCoalescing:
    def _service(self, **kw):
        from repro.service import (
            AdmissionController,
            Service,
            TenantPolicy,
        )

        svc = Service(
            workers=4,
            admission=AdmissionController(
                default_policy=TenantPolicy(step_budget=60_000)
            ),
            **kw,
        )
        svc.load_dataset("yeast", scale="tiny")
        return svc

    @pytest.fixture(scope="class")
    def store(self):
        from repro.harness import build_nfv_graph

        return build_nfv_graph("yeast", "tiny")

    @pytest.fixture(scope="class")
    def opts(self):
        from repro.service import QueryOptions

        return QueryOptions(
            algorithms=("GQL", "SPA"), rewritings=("Orig", "DND")
        )

    def test_follower_inherits_leader_race(self, store, opts):
        svc = self._service()
        q = extract_query(store, 6, random.Random(1))
        twin = permuted_instance(q, random.Random(2))
        leader = svc.submit("yeast", q, tenant="a", options=opts)
        follower = svc.submit("yeast", twin, tenant="b", options=opts)
        assert follower.coalesced and not leader.coalesced
        done = svc.run_until_idle()
        assert follower in done and leader in done
        assert follower.result.coalesced
        assert follower.result.steps == leader.result.steps
        assert follower.result.winner == leader.result.winner
        assert follower.result.found == leader.result.found
        assert dict(follower.result.per_variant_steps) == dict(
            leader.result.per_variant_steps
        )
        assert svc.admission.stats()["coalesced"] == 1

    def test_disabled_coalescing_races_twice(self, store, opts):
        svc = self._service(coalesce=False)
        q = extract_query(store, 6, random.Random(3))
        twin = permuted_instance(q, random.Random(4))
        t1 = svc.submit("yeast", q, options=opts)
        t2 = svc.submit("yeast", twin, options=opts)
        assert not t2.coalesced
        svc.run_until_idle()
        assert svc.admission.stats()["coalesced"] == 0
        assert svc.admission.stats()["admitted"] == 2

    def test_different_budgets_do_not_coalesce(self, store, opts):
        svc = self._service()
        q = extract_query(store, 6, random.Random(5))
        twin = permuted_instance(q, random.Random(6))
        svc.submit("yeast", q, options=opts, budget_steps=60_000)
        t2 = svc.submit("yeast", twin, options=opts, budget_steps=50_000)
        assert not t2.coalesced  # context differs: not the same race
        svc.run_until_idle()

    def test_coalesce_backlog_is_bounded(self, store, opts):
        """Followers count against max_queued: identical-query floods
        shed instead of accumulating unbounded ticket state."""
        from repro.service import (
            AdmissionController,
            Service,
            TenantPolicy,
            TicketState,
        )

        svc = Service(
            workers=4,
            admission=AdmissionController(
                default_policy=TenantPolicy(
                    max_queued=2, step_budget=60_000
                )
            ),
        )
        svc.load_dataset("yeast", scale="tiny")
        q = extract_query(store, 6, random.Random(8))
        leader = svc.submit("yeast", q, options=opts)
        followers = [
            svc.submit(
                "yeast",
                permuted_instance(q, random.Random(100 + i)),
                options=opts,
            )
            for i in range(4)
        ]
        attached = [t for t in followers if t.coalesced]
        shed = [t for t in followers if t.state is TicketState.REJECTED]
        assert len(attached) == 2  # the max_queued allowance
        assert len(shed) == 2
        assert all("coalesce backlog" in t.reject_reason for t in shed)
        svc.run_until_idle()
        assert all(t.done for t in [leader] + attached)
        # resolved followers release their backlog slots
        late = svc.submit(
            "yeast",
            permuted_instance(q, random.Random(999)),
            options=opts,
        )
        assert late.cache_hit  # leader's result is cached by now

    def test_coalesced_run_is_deterministic(self, store, opts):
        from repro.service import results_digest

        digests = []
        for _ in range(2):
            svc = self._service()
            q = extract_query(store, 6, random.Random(7))
            tickets = [
                svc.submit(
                    "yeast",
                    permuted_instance(q, random.Random(i)),
                    tenant=f"t{i % 3}",
                    options=opts,
                )
                for i in range(6)
            ]
            svc.run_until_idle()
            assert all(t.done for t in tickets)
            digests.append(results_digest(tickets))
        assert digests[0] == digests[1]


class TestCatalogEviction:
    def test_watermark_evicts_lru(self):
        from repro.service import DatasetCatalog

        cat = DatasetCatalog(max_bytes=1)
        cat.load("yeast", scale="tiny", algorithms=("GQL",))
        before = prepare_cache.stats.evictions
        cat.load("ppi", scale="tiny")
        assert cat.datasets() == ["ppi"]  # newest load is protected
        assert cat.evicted == ["yeast"]
        assert cat.evictions == 1
        assert prepare_cache.stats.evictions > before
        report = cat.memory_report()
        assert report["watermark_bytes"] == 1
        assert report["evictions"] == 1
        assert report["evicted"] == ["yeast"]

    def test_watermark_evicted_dataset_reloads_on_demand(self):
        from repro.service import DatasetCatalog

        cat = DatasetCatalog(max_bytes=1)
        cat.load("yeast", scale="tiny", algorithms=("GQL",))
        cat.load("ppi", scale="tiny")  # evicts yeast
        assert cat.evicted == ["yeast"]
        # eviction trades latency for memory — it must not turn a
        # still-configured dataset into an error
        entry = cat.get("yeast")
        assert entry.name == "yeast"
        assert entry.load_config[0] == "tiny"
        assert cat.reloads == 1
        assert cat.memory_report()["reloads"] == 1

    def test_explicit_unload_stays_final(self):
        import pytest as _pytest

        from repro.service import DatasetCatalog

        cat = DatasetCatalog(max_bytes=1)
        cat.load("yeast", scale="tiny", algorithms=("GQL",))
        cat.unload("yeast")
        with _pytest.raises(KeyError):
            cat.get("yeast")

    def test_no_watermark_no_eviction(self):
        from repro.service import DatasetCatalog

        cat = DatasetCatalog()
        cat.load("yeast", scale="tiny", algorithms=("GQL",))
        cat.load("ppi", scale="tiny")
        assert cat.datasets() == ["ppi", "yeast"]
        assert cat.evictions == 0

    def test_access_refreshes_lru_rank(self):
        from repro.service import DatasetCatalog

        # generous watermark: both fit until the third arrives
        cat = DatasetCatalog(max_bytes=1)
        cat.load("yeast", scale="tiny", algorithms=("GQL",))
        assert cat.datasets() == ["yeast"]  # sole entry is protected
        cat.get("yeast")  # touch: yeast is now most recent
        cat.load("human", scale="tiny", algorithms=("GQL",))
        # yeast was LRU anyway; with only two entries the non-protected
        # one goes — the protected (just-loaded) entry always survives
        assert "human" in cat.datasets()

    def test_invalid_watermark_rejected(self):
        from repro.service import DatasetCatalog

        with pytest.raises(ValueError):
            DatasetCatalog(max_bytes=0)

    def test_ftv_warmup_reported(self):
        from repro.service import DatasetCatalog

        cat = DatasetCatalog()
        entry = cat.load("ppi", scale="tiny")
        assert entry.warm_stats["sealed_nodes"] > 0
        report = entry.memory_report()
        assert report["ftv_warm"]["sealed_nodes"] > 0
        assert "census_cache" in report
