"""The declarative scenario harness: schema, runner, expect blocks.

Three layers under test:

* ``repro.scenarios.yamlite`` — the strict YAML-subset parser the
  configs are written in (round-trips, loud rejections);
* ``repro.scenarios.config`` — schema validation with full dotted
  error paths, cross-section rules, lossless to_dict/from_dict;
* ``repro.scenarios.runner`` + the committed ``scenarios/*.yaml``
  matrix — every config runs in-process (plus the siblings its
  ``expect`` block names) and every assertion must hold, which is the
  same check CI's scenario-matrix job performs via
  ``repro scenario verify scenarios``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.scenarios import (
    ScenarioConfig,
    ScenarioConfigError,
    ScenarioError,
    ScenarioResult,
    dumps,
    evaluate_expect,
    load_scenario_dir,
    load_scenario_file,
    loads,
    random_scenario,
    run_with_siblings,
    verify_scenarios,
)
from repro.scenarios.config import STORE_CORRUPTIONS
from repro.scenarios.yamlite import YamliteError

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "scenarios"

# collection-time load: parses 14 small files, runs nothing
SCENARIO_NAMES = sorted(load_scenario_dir(SCENARIO_DIR))


# ----------------------------------------------------------------------
# yamlite: the strict YAML subset
# ----------------------------------------------------------------------

class TestYamlite:
    def test_scalars(self):
        doc = loads(
            "a: 1\n"
            "b: 2.5\n"
            "c: true\n"
            "d: false\n"
            "e: null\n"
            "f: ~\n"
            "g: bare_string\n"
            "h: 'quoted: string'\n"
            'i: "also quoted"\n'
            "j: 200_000\n"
        )
        assert doc == {
            "a": 1, "b": 2.5, "c": True, "d": False, "e": None,
            "f": None, "g": "bare_string", "h": "quoted: string",
            "i": "also quoted", "j": 200_000,
        }

    def test_nesting_lists_and_comments(self):
        doc = loads(
            "top: 1  # trailing comment\n"
            "# full-line comment\n"
            "section:\n"
            "  inline: [4, 8, 12]\n"
            "  block:\n"
            "    - alpha\n"
            "    - beta\n"
            "  deeper:\n"
            "    leaf: ok\n"
        )
        assert doc["section"]["inline"] == [4, 8, 12]
        assert doc["section"]["block"] == ["alpha", "beta"]
        assert doc["section"]["deeper"]["leaf"] == "ok"

    @pytest.mark.parametrize("text, fragment", [
        ("", "empty document"),
        ("  indented: 1\n", "column 0"),
        ("a: 1\na: 2\n", "duplicate key"),
        ("a:\n", "no value"),
        ("a: 'unterminated\n", "unterminated"),
        ("a: [1, 2\n", "unterminated inline list"),
        ("a: [1, , 2]\n", "empty inline list element"),
        ("a: 1\n\tb: 2\n", "tabs"),
        ("a: &anchor\n", "unsupported YAML construct"),
        ("a: |\n  block\n", "unsupported YAML construct"),
        ("a: 1\n  stray: 2\n", "unexpected indent under scalar"),
        ("a:\n  - 1\n  b: 2\n", "mapping key inside a list"),
        ("a:\n  -\n", "nested list blocks"),
        ("a:\n  - k: v\n", "mappings inside lists"),
        ("- just\n- a list\n", "top level must be a mapping"),
    ])
    def test_rejections_carry_line_numbers(self, text, fragment):
        with pytest.raises(YamliteError, match=fragment) as err:
            loads(text)
        assert err.value.line >= 1

    def test_dumps_round_trip(self):
        doc = {
            "name": "x",
            "flag": True,
            "nothing": None,
            "nested": {"sizes": [4, 8], "ratio": 0.5},
            "text": "needs quoting: yes",
        }
        assert loads(dumps(doc)) == doc


# ----------------------------------------------------------------------
# schema: dotted paths, cross-section rules, round trips
# ----------------------------------------------------------------------

def minimal(**overrides) -> dict:
    data = {"name": "probe", "dataset": "ppi", "scale": "tiny"}
    data.update(overrides)
    return data


class TestSchemaRejections:
    @pytest.mark.parametrize("data, path", [
        (minimal(topology={"replica": 2}), "topology.replica"),
        (minimal(workload={"querys": 5}), "workload.querys"),
        (minimal(engine={"wokers": 4}), "engine.wokers"),
        (minimal(faults={"chaos_seed": 7}), "faults.chaos_seed"),
        (minimal(persistence={"stored": True}), "persistence.stored"),
        (minimal(expect={"answer_digest": "aa"}), "expect.answer_digest"),
        (minimal(unknown_top=1), "unknown_top"),
    ])
    def test_unknown_keys_fail_with_full_dotted_path(self, data, path):
        with pytest.raises(ScenarioConfigError) as err:
            ScenarioConfig.from_dict(data)
        assert err.value.path == path
        assert "unknown key" in str(err.value)

    @pytest.mark.parametrize("data, path, fragment", [
        (minimal(name="Bad Name"), "name", "malformed"),
        (minimal(dataset="nope"), "dataset", "one of"),
        (minimal(workload={"queries": 0}), "workload.queries", ">= 1"),
        (minimal(workload={"queries": True}), "workload.queries",
         "integer"),
        (minimal(workload={"sizes": []}), "workload.sizes", "empty"),
        (minimal(workload={"sizes": [4, 0]}), "workload.sizes[1]",
         ">= 1"),
        (minimal(workload={"repeat_fraction": 1.5}),
         "workload.repeat_fraction", "< 1.0"),
        (minimal(engine={"rewritings": []}), "engine.rewritings",
         "empty"),
        (minimal(topology={"assignment": "roulette"}),
         "topology.assignment", "one of"),
        (minimal(faults={"store_corruption": ["rust"]}),
         "faults.store_corruption[0]", "one of"),
        (minimal(expect={"answers_digest": "xyz"}),
         "expect.answers_digest", "malformed"),
        (minimal(expect={"lost": -1}), "expect.lost", ">= 0"),
    ])
    def test_bad_values_fail_with_dotted_path(self, data, path, fragment):
        with pytest.raises(ScenarioConfigError) as err:
            ScenarioConfig.from_dict(data)
        assert err.value.path == path
        assert fragment in str(err.value)

    @pytest.mark.parametrize("data, path", [
        (minimal(faults={"chaos": True}), "faults.chaos"),
        (minimal(faults={"store_corruption": ["bit_flip"]}),
         "faults.store_corruption"),
        (minimal(topology={"rebalance": True}), "topology.rebalance"),
        (minimal(topology={"rebalance_every": 5}),
         "topology.rebalance_every"),
        (minimal(persistence={"regrow": True}), "persistence.regrow"),
        (minimal(engine={"workers": 1}), "engine.workers"),
        (minimal(expect={"answers_match": ["probe"]}), "expect"),
        (minimal(
            workload={"decision_only": True},
            expect={"answers_match": ["other"]},
        ), "expect.answers_match"),
        (minimal(dataset="yeast", mutations={"count": 3}),
         "mutations.count"),
        (minimal(mutations={"journal": True}), "mutations.journal"),
        (minimal(mutations={"count": 3, "crash_replay": True}),
         "mutations.crash_replay"),
        (minimal(mutations={
            "count": 3, "journal": True,
            "corrupt": ["journal_bit_flip"],
        }), "mutations.corrupt"),
        (minimal(mutations={"count": 3}, persistence={"regrow": True}),
         "persistence.regrow"),
        (minimal(mutations={"count": 3}, expect={"replay_match": True}),
         "expect"),
        (minimal(
            mutations={
                "count": 3, "journal": True, "crash_replay": True,
                "corrupt": ["journal_torn_tail"],
            },
            expect={"replay_match": True},
        ), "expect.replay_match"),
        (minimal(expect={"mutations_applied": 3}),
         "expect.mutations_applied"),
        (minimal(
            mutations={"count": 3, "verify_oracle": False},
            expect={"oracle_mismatches": 0},
        ), "expect.oracle_mismatches"),
    ])
    def test_cross_section_rules(self, data, path):
        with pytest.raises(ScenarioConfigError) as err:
            ScenarioConfig.from_dict(data)
        assert err.value.path == path

    def test_store_corruption_taxonomy_matches_injector(self):
        from repro.service.faults import StoreFaultInjector

        assert set(STORE_CORRUPTIONS) <= set(StoreFaultInjector.CORRUPTIONS)

    def test_journal_corruption_taxonomy_matches_injector(self):
        from repro.scenarios.config import JOURNAL_CORRUPTIONS
        from repro.service.faults import StoreFaultInjector

        assert set(JOURNAL_CORRUPTIONS) <= set(
            StoreFaultInjector.JOURNAL_CORRUPTIONS
        )


class TestRoundTrip:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_committed_configs_round_trip(self, name):
        cfg = load_scenario_dir(SCENARIO_DIR)[name]
        assert ScenarioConfig.from_dict(cfg.to_dict()) == cfg
        # and through the YAML emitter too
        assert ScenarioConfig.from_dict(loads(dumps(cfg.to_dict()))) == cfg

    @pytest.mark.parametrize("seed", range(10))
    def test_fuzz_configs_round_trip(self, seed):
        cfg = random_scenario(seed)
        assert ScenarioConfig.from_dict(cfg.to_dict()) == cfg

    def test_to_dict_is_fully_populated(self):
        data = ScenarioConfig.from_dict(minimal()).to_dict()
        assert data["workload"]["queries"] == 30
        assert data["engine"]["rewritings"] == ["Orig", "DND"]
        assert data["topology"]["routing"] is True
        assert data["persistence"] == {"store": False, "regrow": False}
        # optional exact counts are dropped when unasserted
        assert "lost" not in data["expect"]

    def test_load_rejects_duplicate_names(self, tmp_path):
        for fname in ("a.yaml", "b.yaml"):
            (tmp_path / fname).write_text(
                "name: clone\ndataset: ppi\nscale: tiny\n"
            )
        with pytest.raises(ScenarioConfigError, match="duplicate"):
            load_scenario_dir(tmp_path)

    def test_load_rejects_dangling_sibling(self, tmp_path):
        (tmp_path / "a.yaml").write_text(
            "name: lonely\ndataset: ppi\nscale: tiny\n"
            "expect:\n  answers_match: [ghost]\n"
        )
        with pytest.raises(ScenarioConfigError, match="ghost"):
            load_scenario_dir(tmp_path)

    def test_file_error_carries_path_and_line(self, tmp_path):
        bad = tmp_path / "bad.yaml"
        bad.write_text("name: [broken\n")
        with pytest.raises(ScenarioConfigError) as err:
            load_scenario_file(bad)
        assert err.value.path == f"{bad}:1"


# ----------------------------------------------------------------------
# expect evaluation (synthetic results, no service runs)
# ----------------------------------------------------------------------

def result(name="probe", **overrides) -> ScenarioResult:
    base = dict(
        name=name, answers_digest="aa" * 8, decisions_digest="bb" * 8,
        results_digest="cc" * 8, completed=4, killed=0, lost=0,
        degraded=0, injected=0, retries=0, rerouted=0, migrations=0,
        rebalances=0, regrown=0, fanout_waste=100, cache_hits=0,
        restores=0, rebuilds=0, corrupt_detected=0, quarantined=0,
        virtual_steps=64, per_shard_work=[], latency={"p95": 10},
        stats_digest="dd" * 8,
    )
    base.update(overrides)
    return ScenarioResult(**base)


class TestEvaluateExpect:
    def config(self, **expect) -> ScenarioConfig:
        return ScenarioConfig.from_dict(minimal(expect=expect))

    def test_clean_block_passes(self):
        cfg = self.config(lost=0, answers_digest="aa" * 8)
        assert evaluate_expect(cfg, result(), {}) == []

    def test_digest_mismatch(self):
        cfg = self.config(answers_digest="ee" * 8)
        fails = evaluate_expect(cfg, result(), {})
        assert len(fails) == 1
        assert "expect.answers_digest" in fails[0]

    def test_exact_counts_and_floors(self):
        cfg = self.config(lost=0, killed=0, rerouted_min=2, corrupt_min=1)
        fails = evaluate_expect(
            cfg, result(lost=1, rerouted=1, corrupt_detected=0), {}
        )
        assert [f.split(": ")[1] for f in fails] == [
            "expect.lost", "expect.rerouted_min", "expect.corrupt_min",
        ]

    def test_sibling_comparisons(self):
        cfg = ScenarioConfig.from_dict(minimal(expect={
            "answers_match": ["other"],
            "waste_below": "other",
            "p95_within": "other",
        }))
        siblings = {"other": result("other", fanout_waste=200)}
        assert evaluate_expect(cfg, result(), siblings) == []
        worse = result(
            answers_digest="ee" * 8, fanout_waste=300,
            latency={"p95": 99},
        )
        fails = evaluate_expect(cfg, worse, siblings)
        assert len(fails) == 3

    def test_missing_sibling_is_a_failure(self):
        cfg = ScenarioConfig.from_dict(
            minimal(expect={"answers_match": ["ghost"]})
        )
        fails = evaluate_expect(cfg, result(), {})
        assert "ghost" in fails[0] and "not run" in fails[0]


# ----------------------------------------------------------------------
# the committed matrix (runs every scenario once, in-process)
# ----------------------------------------------------------------------

@pytest.fixture(scope="session")
def matrix():
    """Run every committed scenario exactly once for the whole session
    — the same sweep ``repro scenario verify scenarios`` performs."""
    configs = load_scenario_dir(SCENARIO_DIR)
    results, failures = verify_scenarios(configs)
    return configs, results, failures


class TestScenarioMatrix:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_expect_block_holds(self, matrix, name):
        configs, results, _ = matrix
        fails = evaluate_expect(configs[name], results[name], results)
        assert fails == [], "\n".join(fails)

    def test_whole_matrix_conforms(self, matrix):
        _, results, failures = matrix
        assert failures == []
        assert sorted(results) == SCENARIO_NAMES

    def test_layout_invariance_family_shares_one_digest(self, matrix):
        # the metamorphic core: every full-answer ppi scenario, whatever
        # its topology/fault/store axis, lands on the anchor digest
        configs, results, _ = matrix
        digests = {
            results[n].answers_digest
            for n, cfg in configs.items()
            if cfg.dataset == "ppi" and not cfg.workload.decision_only
        }
        assert digests == {results["baseline-single"].answers_digest}

    def test_run_with_siblings_pulls_transitive_closure(self, matrix):
        configs, _, _ = matrix
        results = run_with_siblings(configs, ["store-corrupt-bitflip"])
        # bitflip -> store-coldboot -> replicated-healthy -> baseline
        assert sorted(results) == [
            "baseline-single", "replicated-healthy", "store-coldboot",
            "store-corrupt-bitflip",
        ]

    def test_run_with_siblings_rejects_unknown_target(self, matrix):
        configs, _, _ = matrix
        with pytest.raises(ScenarioError, match="ghost"):
            run_with_siblings(configs, ["ghost"])

    def test_unbuildable_scenario_raises_scenario_error(self):
        # valid schema (names are free-form there), but the engine
        # rejects the unknown rewriting when it resolves variants
        cfg = ScenarioConfig.from_dict(minimal(
            engine={"rewritings": ["Orig", "NoSuchRewriting"]},
        ))
        from repro.scenarios import ScenarioRunner

        with pytest.raises(ScenarioError, match="cannot run"):
            ScenarioRunner().run(cfg)
