"""Tests for cost-matrix persistence and table export."""

import json

import pytest

from repro.harness import (
    FTVExperimentConfig,
    NFVExperimentConfig,
    Table,
    load_matrix,
    measure_ftv_matrix,
    measure_nfv_matrix,
    save_matrix,
    stragglers_wla_table,
    table_to_json,
)


@pytest.fixture(scope="module")
def nfv_matrix():
    cfg = NFVExperimentConfig.tiny("yeast")
    return measure_nfv_matrix(cfg, scale="tiny")


@pytest.fixture(scope="module")
def ftv_matrix():
    cfg = FTVExperimentConfig.tiny("ppi")
    return measure_ftv_matrix(cfg, scale="tiny")


class TestMatrixRoundTrip:
    def test_nfv_round_trip(self, nfv_matrix, tmp_path):
        path = tmp_path / "nfv.json"
        save_matrix(path, nfv_matrix)
        loaded = load_matrix(path)
        assert loaded.dataset == nfv_matrix.dataset
        assert loaded.methods == nfv_matrix.methods
        assert loaded.records == {
            k: v for k, v in nfv_matrix.records.items()
        }
        assert len(loaded.queries) == len(nfv_matrix.queries)
        # drivers behave identically on the reloaded matrix
        a = stragglers_wla_table(nfv_matrix, "t").render()
        b = stragglers_wla_table(loaded, "t").render()
        assert a == b

    def test_ftv_round_trip(self, ftv_matrix, tmp_path):
        path = tmp_path / "ftv.json"
        save_matrix(path, ftv_matrix)
        loaded = load_matrix(path)
        assert loaded.pairs == ftv_matrix.pairs
        assert loaded.records == ftv_matrix.records
        assert loaded.thresholds == ftv_matrix.thresholds

    def test_queries_survive(self, nfv_matrix, tmp_path):
        path = tmp_path / "m.json"
        save_matrix(path, nfv_matrix)
        loaded = load_matrix(path)
        for orig, back in zip(nfv_matrix.queries, loaded.queries):
            assert back.graph.same_labeled_structure(orig.graph)
            assert back.num_edges == orig.num_edges

    def test_version_check(self, nfv_matrix, tmp_path):
        path = tmp_path / "m.json"
        save_matrix(path, nfv_matrix)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_matrix(path)

    def test_kind_check(self, nfv_matrix, tmp_path):
        path = tmp_path / "m.json"
        save_matrix(path, nfv_matrix)
        payload = json.loads(path.read_text())
        payload["kind"] = "weird"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_matrix(path)


class TestTableExport:
    def test_table_to_json(self):
        t = Table("title", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_note("n")
        payload = json.loads(table_to_json(t))
        assert payload["title"] == "title"
        assert payload["rows"] == [[1, 2.5]]
        assert payload["notes"] == ["n"]
