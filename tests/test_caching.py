"""Tests for the isomorphism-aware query cache (iGQ-style layer)."""

import random

import pytest

from repro.caching import CachedFTVIndex, PrepareCache, QueryCache
from repro.datasets import ppi_like
from repro.graphs import LabeledGraph
from repro.indexing import GrapesIndex
from repro.matching import Budget, make_matcher
from repro.workload import extract_query


@pytest.fixture(scope="module")
def setup():
    graphs = ppi_like(num_graphs=3, avg_nodes=60, num_labels=8, seed=5)
    index = GrapesIndex(graphs, max_path_length=2, threads=1)
    return graphs, index


class TestQueryCache:
    def test_miss_then_hit(self, setup):
        graphs, _ = setup
        q = extract_query(graphs[0], 4, random.Random(1))
        cache = QueryCache()
        assert cache.lookup(q) is None
        cache.store(q, "answer")
        assert cache.lookup(q) == "answer"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_isomorphic_twin_hits(self, setup):
        graphs, _ = setup
        q = extract_query(graphs[0], 5, random.Random(2))
        cache = QueryCache()
        cache.store(q, 42)
        perm = list(q.vertices())
        random.Random(9).shuffle(perm)
        assert cache.lookup(q.permuted(perm)) == 42

    def test_non_isomorphic_does_not_hit(self, setup):
        graphs, _ = setup
        q1 = extract_query(graphs[0], 4, random.Random(3))
        q2 = extract_query(graphs[1], 5, random.Random(4))
        cache = QueryCache()
        cache.store(q1, "a")
        assert cache.lookup(q2) is None

    def test_store_refreshes_value(self, setup):
        graphs, _ = setup
        q = extract_query(graphs[0], 4, random.Random(5))
        cache = QueryCache()
        cache.store(q, 1)
        cache.store(q, 2)
        assert cache.lookup(q) == 2
        assert len(cache) == 1

    def test_lru_eviction(self, setup):
        graphs, _ = setup
        cache = QueryCache(capacity=2)
        queries = [
            extract_query(graphs[0], 3 + k, random.Random(10 + k))
            for k in range(3)
        ]
        for i, q in enumerate(queries):
            cache.store(q, i)
        assert len(cache) <= 2
        assert cache.stats.evictions >= 1
        # the oldest entry is gone
        assert cache.lookup(queries[0]) is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QueryCache(capacity=0)


class TestCachedFTVIndex:
    def test_repeat_query_served_from_cache(self, setup):
        graphs, index = setup
        cached = CachedFTVIndex(index)
        q = extract_query(graphs[1], 5, random.Random(6))
        budget = Budget(max_steps=10**6)
        first = cached.query(q, budget)
        assert cached.cache.stats.misses == 1
        # an isomorphic twin: answered without touching the index
        perm = list(q.vertices())
        random.Random(7).shuffle(perm)
        second = cached.query(q.permuted(perm), budget)
        assert cached.cache.stats.hits == 1
        assert second.matching_ids == first.matching_ids
        assert second.candidate_ids == first.candidate_ids

    def test_killed_results_not_cached(self, setup):
        graphs, index = setup
        cached = CachedFTVIndex(index)
        q = extract_query(graphs[0], 6, random.Random(8))
        cached.query(q, Budget(max_steps=2))
        # nothing cached: a re-query is a miss again
        cached.query(q, Budget(max_steps=2))
        assert cached.cache.stats.hits == 0


def small_graph():
    g = LabeledGraph(3, ["A", "B", "A"])
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    return g


class TestPrepareCache:
    def test_repeated_prepare_is_memoized(self):
        g = small_graph()
        m = make_matcher("GQL")
        assert m.prepare(g) is m.prepare(g)
        # a different matcher config sharing the index shape also hits
        assert make_matcher("GQL").prepare(g) is m.prepare(g)

    def test_distinct_graphs_distinct_indexes(self):
        m = make_matcher("VF2")
        assert m.prepare(small_graph()) is not m.prepare(small_graph())

    def test_cache_false_builds_fresh(self):
        g = small_graph()
        m = make_matcher("SPA")
        assert m.prepare(g) is not m.prepare(g, cache=False)

    def test_mutated_graph_reindexed(self):
        g = LabeledGraph(4, ["A", "B", "A", "B"])
        g.add_edge(0, 1)
        m = make_matcher("QSI")
        stale = m.prepare(g)
        g.add_edge(2, 3)
        fresh = m.prepare(g)
        assert fresh is not stale
        assert fresh.degrees == (1, 1, 1, 1)

    def test_spa_radius_in_key(self):
        from repro.matching.spath import SPathMatcher

        g = small_graph()
        assert (
            SPathMatcher(radius=2).prepare(g)
            is not SPathMatcher(radius=3).prepare(g)
        )

    def test_stats_and_clear(self):
        cache = PrepareCache()
        g = small_graph()
        built = []
        cache.get(g, ("k",), lambda: built.append(1) or "idx")
        cache.get(g, ("k",), lambda: built.append(1) or "idx")
        assert len(built) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        cache.clear()
        cache.get(g, ("k",), lambda: built.append(1) or "idx")
        assert len(built) == 2

    def test_entries_and_eviction_counters(self):
        cache = PrepareCache()
        g = small_graph()
        h = small_graph()
        cache.get(g, ("k",), lambda: "idx")
        cache.get(h, ("k",), lambda: "idx")
        cache.get(g, ("k2",), lambda: "idx2")
        assert cache.entries == 3
        cache.clear()
        assert cache.entries == 0
        assert cache.stats.evictions == 3
        # rebuilt after clear: a fresh miss, counters keep history
        cache.get(g, ("k",), lambda: "idx")
        assert cache.stats.misses == 4
        assert cache.entries == 1

    def test_as_metrics(self):
        cache = PrepareCache()
        g = small_graph()
        cache.get(g, ("k",), lambda: "idx")
        cache.get(g, ("k",), lambda: "idx")
        m = cache.stats.as_metrics()
        assert m == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "lookups": 2,
            "hit_rate": 0.5,
        }
        prefixed = cache.stats.as_metrics(prefix="prepare_")
        assert prefixed["prepare_hits"] == 1
