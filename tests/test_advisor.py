"""Tests for the per-query variant advisor (paper §9 future work)."""

import math
import random

import pytest

from repro.graphs import gnm_graph, uniform_labels
from repro.psi import Variant, VariantAdvisor, query_features
from repro.rewriting import LabelStats
from repro.workload import extract_query

PORTFOLIO = (
    Variant("GQL", "Orig"),
    Variant("SPA", "Orig"),
    Variant("GQL", "DND"),
    Variant("SPA", "DND"),
)


def _features(seed=1, edges=5):
    rng = random.Random(seed)
    g = gnm_graph(
        30, 70, uniform_labels(30, ["A", "B", "C"], rng), rng
    )
    q = extract_query(g, edges, rng)
    return query_features(q, LabelStats.of_graph(g))


class TestQueryFeatures:
    def test_vector_shape_and_ranges(self):
        f = _features()
        assert len(f) == 10
        vertices, edges, density, avg_deg = f[0], f[1], f[2], f[3]
        assert vertices >= 2
        assert edges == 5
        assert 0 < density <= 1
        assert avg_deg > 0
        path_likeness = f[-1]
        assert 0 <= path_likeness <= 1

    def test_deterministic(self):
        assert _features(3) == _features(3)


class TestAdvisor:
    def test_needs_portfolio(self):
        with pytest.raises(ValueError):
            VariantAdvisor(())
        with pytest.raises(ValueError):
            VariantAdvisor(PORTFOLIO, neighbors=0)

    def test_cold_start_returns_prefix(self):
        advisor = VariantAdvisor(PORTFOLIO)
        rec = advisor.recommend(_features(), k=2)
        assert rec == PORTFOLIO[:2]

    def test_k_clamped_to_portfolio(self):
        advisor = VariantAdvisor(PORTFOLIO)
        rec = advisor.recommend(_features(), k=99)
        assert len(rec) == len(PORTFOLIO)

    def test_k_validation(self):
        advisor = VariantAdvisor(PORTFOLIO)
        with pytest.raises(ValueError):
            advisor.recommend(_features(), k=0)

    def test_rejects_unknown_variants(self):
        advisor = VariantAdvisor(PORTFOLIO)
        with pytest.raises(ValueError):
            advisor.observe(_features(), {Variant("ULL", "Orig"): 10})

    def test_learns_a_consistent_winner(self):
        """If one variant always wins, it must top recommendations."""
        advisor = VariantAdvisor(PORTFOLIO, neighbors=3)
        winner = PORTFOLIO[2]
        for seed in range(8):
            costs = {
                v: (10 if v == winner else 1000) for v in PORTFOLIO
            }
            advisor.observe(_features(seed), costs)
        rec = advisor.recommend(_features(99), k=1)
        assert rec == (winner,)
        assert advisor.observations == 8

    def test_feature_conditional_learning(self):
        """Winner depends on a feature: the advisor should follow it."""
        advisor = VariantAdvisor(PORTFOLIO, neighbors=3)
        small, big = PORTFOLIO[0], PORTFOLIO[3]
        for seed in range(6):
            f_small = _features(seed, edges=3)
            advisor.observe(
                f_small,
                {v: (5 if v == small else 500) for v in PORTFOLIO},
            )
            f_big = _features(seed, edges=9)
            advisor.observe(
                f_big,
                {v: (5 if v == big else 500) for v in PORTFOLIO},
            )
        assert advisor.recommend(_features(50, edges=3), k=1) == (small,)
        assert advisor.recommend(_features(50, edges=9), k=1) == (big,)

    def test_hit_rate(self):
        advisor = VariantAdvisor(PORTFOLIO, neighbors=3)
        assert math.isnan(advisor.hit_rate())
        winner = PORTFOLIO[1]
        for seed in range(6):
            advisor.observe(
                _features(seed),
                {v: (1 if v == winner else 100) for v in PORTFOLIO},
            )
        assert advisor.hit_rate(k=1) == 1.0
        # hit_rate must not consume history
        assert advisor.observations == 6
