"""Cross-algorithm agreement: every matcher must find the same answers.

The brute-force :class:`ReferenceMatcher` is ground truth.  On dozens of
random (stored graph, query) pairs spanning several structural regimes,
all five production matchers must return exactly the same embedding
sets, the same decision answers, and respect the embedding cap.
"""

import random

import pytest

from repro.graphs import (
    LabeledGraph,
    gnm_graph,
    powerlaw_graph,
    sparse_tree_like_graph,
    uniform_labels,
    zipf_labels,
)
from repro.matching import Budget, make_matcher

from .conftest import canonical_embeddings, random_query_from

ALGORITHMS = ("VF2", "QSI", "GQL", "SPA", "ULL", "TUR")


def _stores():
    rng = random.Random(99)
    return [
        gnm_graph(
            35, 80, uniform_labels(35, ["A", "B", "C"], rng), rng,
            name="gnm",
        ),
        powerlaw_graph(
            40, 3, zipf_labels(40, ["A", "B", "C", "D"], rng), rng,
            name="pl",
        ),
        sparse_tree_like_graph(
            50, 0.3, zipf_labels(50, ["A", "B"], rng, 1.4), rng,
            name="tree",
        ),
    ]


STORES = _stores()


@pytest.mark.parametrize("alg", ALGORITHMS)
@pytest.mark.parametrize("store_idx", range(len(STORES)))
@pytest.mark.parametrize("qseed", [0, 1, 2, 3])
def test_full_embedding_agreement(alg, store_idx, qseed):
    store = STORES[store_idx]
    query = random_query_from(store, 4 + qseed, 1000 + qseed)
    ref = make_matcher("REF").run(store, query, max_embeddings=10**6)
    out = make_matcher(alg).run(store, query, max_embeddings=10**6)
    assert out.found == ref.found
    assert canonical_embeddings(out.embeddings) == canonical_embeddings(
        ref.embeddings
    )
    assert out.exhausted


@pytest.mark.parametrize("alg", ALGORITHMS)
def test_embeddings_are_valid(alg, small_store):
    query = random_query_from(small_store, 5, 77)
    out = make_matcher(alg).run(small_store, query, max_embeddings=50)
    for emb in out.embeddings:
        # injective
        assert len(set(emb.values())) == len(emb)
        # label-preserving
        for qu, gv in emb.items():
            assert query.label(qu) == small_store.label(gv)
        # edge-preserving
        for u, v in query.edges():
            assert small_store.has_edge(emb[u], emb[v])


@pytest.mark.parametrize("alg", ALGORITHMS)
def test_embedding_cap_respected(alg, small_store):
    query = random_query_from(small_store, 3, 5)
    out = make_matcher(alg).run(small_store, query, max_embeddings=3)
    assert out.num_embeddings <= 3
    assert out.found


@pytest.mark.parametrize("alg", ALGORITHMS)
def test_count_only_counts_without_storing(alg, small_store):
    query = random_query_from(small_store, 4, 9)
    full = make_matcher(alg).run(small_store, query, max_embeddings=10**6)
    counted = make_matcher(alg).run(
        small_store, query, max_embeddings=10**6, count_only=True
    )
    assert counted.embeddings == []
    assert counted.num_embeddings == full.num_embeddings


@pytest.mark.parametrize("alg", ALGORITHMS)
def test_unsatisfiable_query_refuted(alg, small_store):
    # a label absent from the store can never match
    query = LabeledGraph.from_edges(["A", "ZZZ"], [(0, 1)])
    out = make_matcher(alg).run(small_store, query)
    assert not out.found
    assert out.exhausted


@pytest.mark.parametrize("alg", ALGORITHMS)
def test_budget_kill_reported(alg, medium_store):
    query = random_query_from(medium_store, 8, 3)
    out = make_matcher(alg).run(
        medium_store, query, budget=Budget(max_steps=5)
    )
    # 5 steps cannot finish anything on an 80-vertex store
    assert out.killed
    assert not out.exhausted
    assert out.steps == 5


@pytest.mark.parametrize("alg", ALGORITHMS)
def test_determinism(alg, small_store):
    query = random_query_from(small_store, 5, 13)
    a = make_matcher(alg).run(small_store, query, max_embeddings=10**4)
    b = make_matcher(alg).run(small_store, query, max_embeddings=10**4)
    assert a.steps == b.steps
    assert canonical_embeddings(a.embeddings) == canonical_embeddings(
        b.embeddings
    )


def test_isomorphic_instances_same_answer(small_store):
    """Rewritten (permuted) queries must yield the same decision and the
    same translated embeddings — only the cost may differ."""
    query = random_query_from(small_store, 5, 21)
    perm = list(query.vertices())
    random.Random(4).shuffle(perm)
    permuted = query.permuted(perm)
    for alg in ALGORITHMS:
        a = make_matcher(alg).run(small_store, query, max_embeddings=10**6)
        b = make_matcher(alg).run(
            small_store, permuted, max_embeddings=10**6
        )
        translated = [
            {orig: emb[perm[orig]] for orig in query.vertices()}
            for emb in b.embeddings
        ]
        assert canonical_embeddings(a.embeddings) == canonical_embeddings(
            translated
        )


def test_registry_rejects_unknown():
    with pytest.raises(KeyError):
        make_matcher("NOPE")


def test_registry_lists_algorithms():
    from repro.matching import available_matchers

    names = available_matchers()
    for alg in ALGORITHMS:
        assert alg in names
