"""The write-ahead mutation journal: frames, recovery, fault classes.

The journal's contract is byte-level: every record is one
self-delimiting checksummed frame, appends are flush+fsync before the
caller may acknowledge, and :meth:`MutationJournal.recover` salvages
the longest valid prefix of a damaged file — truncating the rest into
``quarantine/`` as evidence, never deleting it.  Every corruption
class :class:`~repro.service.faults.StoreFaultInjector` can inject
must be detected (or proven harmless, for the truncate-to-empty case
where the bytes are simply gone *loudly*).
"""

from __future__ import annotations

import os

import pytest

from repro.service.faults import StoreFaultInjector
from repro.store.journal import (
    JOURNAL_NAME,
    JournalCorrupt,
    JournalCrash,
    JournalRecord,
    MutationJournal,
    encode_record,
)


def rec(seq: int, op: str = "add_graph", **kw) -> JournalRecord:
    kw.setdefault("graph_json", '{"name":"g"}' if op == "add_graph" else None)
    return JournalRecord(
        seq=seq, epoch=0, op=op, dataset="ppi", graph_id=seq, **kw
    )


@pytest.fixture
def journal(tmp_path):
    return MutationJournal(str(tmp_path))


def filled(journal: MutationJournal, n: int = 4) -> MutationJournal:
    for i in range(n):
        journal.append(rec(i))
    return journal


# ----------------------------------------------------------------------
# frames + append/checkpoint basics
# ----------------------------------------------------------------------

class TestFrames:
    def test_round_trip(self, journal):
        records = [
            rec(0),
            rec(1, op="remove_graph", graph_json=None),
            rec(2, shard=1),
        ]
        for r in records:
            journal.append(r)
        assert journal.records() == records
        assert journal.appended == 3

    def test_frame_is_self_delimiting_text_line(self):
        frame = encode_record(rec(7))
        assert frame.startswith(b"RJL1 ")
        assert frame.endswith(b"\n")
        # header declares the payload length in hex
        declared = int(frame.split(b" ")[1], 16)
        assert len(frame) == len(b"RJL1 ") + 8 + 1 + 16 + 1 + declared + 1

    def test_record_validates_op_and_seq(self):
        with pytest.raises(ValueError, match="unknown mutation op"):
            JournalRecord(seq=0, epoch=0, op="rename", dataset="d",
                          graph_id=0)
        with pytest.raises(ValueError, match="seq"):
            JournalRecord(seq=-1, epoch=0, op="add_graph", dataset="d",
                          graph_id=0)

    def test_empty_and_missing_journal(self, journal):
        assert journal.records() == []
        assert journal.tail_seq() == -1
        assert journal.pending_count() == 0

    def test_tail_seq_tracks_appends(self, journal):
        filled(journal, 3)
        assert journal.tail_seq() == 2
        assert journal.pending_count() == 3

    def test_checkpoint_truncates_and_counts(self, journal):
        filled(journal, 3)
        released = journal.checkpoint()
        assert released > 0
        assert journal.records() == []
        assert journal.checkpoints == 1
        assert os.path.getsize(journal.path) == 0


# ----------------------------------------------------------------------
# recovery: salvage the valid prefix, quarantine the rest
# ----------------------------------------------------------------------

class TestRecovery:
    def test_clean_journal_recovers_everything(self, journal):
        filled(journal, 4)
        report = journal.recover()
        assert len(report.records) == 4
        assert report.detected == []
        assert report.truncated_bytes == 0
        assert report.quarantined is None

    def test_torn_tail_truncates_and_quarantines(self, journal):
        filled(journal, 4)
        size = os.path.getsize(journal.path)
        with open(journal.path, "rb+") as fh:
            fh.truncate(size - 9)
        report = journal.recover()
        assert len(report.records) == 3
        assert any("corrupt_frame" in d for d in report.detected)
        assert report.truncated_bytes > 0
        assert report.quarantined and os.path.exists(report.quarantined)
        # the file itself is repaired: a strict read now succeeds
        assert len(journal.records()) == 3

    def test_identical_duplicate_is_dropped_not_fatal(self, journal):
        filled(journal, 3)
        with open(journal.path, "ab") as fh:
            fh.write(encode_record(rec(2)))
        report = journal.recover()
        assert len(report.records) == 3
        assert report.duplicates_dropped == 1
        assert "duplicate_record" in report.detected
        assert report.truncated_bytes == 0

    def test_conflicting_duplicate_ends_the_prefix(self, journal):
        filled(journal, 3)
        with open(journal.path, "ab") as fh:
            fh.write(encode_record(rec(2, op="remove_graph",
                                       graph_json=None)))
        report = journal.recover()
        assert len(report.records) == 3
        assert "duplicate_seq_conflict" in report.detected
        assert report.quarantined is not None

    def test_seq_regression_ends_the_prefix(self, journal):
        filled(journal, 3)
        with open(journal.path, "ab") as fh:
            fh.write(encode_record(rec(1)))
        report = journal.recover()
        assert len(report.records) == 3
        assert "reordered_records" in report.detected
        assert report.quarantined is not None

    def test_recovery_is_idempotent(self, journal):
        filled(journal, 4)
        with open(journal.path, "ab") as fh:
            fh.write(b"RJL1 garbage")
        first = journal.recover()
        assert first.truncated_bytes > 0
        second = journal.recover()
        assert second.truncated_bytes == 0
        assert second.detected == []
        assert len(second.records) == len(first.records)

    def test_strict_read_refuses_what_recover_repairs(self, journal):
        filled(journal, 2)
        with open(journal.path, "ab") as fh:
            fh.write(encode_record(rec(0)))
        with pytest.raises(JournalCorrupt):
            journal.records()


# ----------------------------------------------------------------------
# the crash-injection hook
# ----------------------------------------------------------------------

class TestCrashHook:
    def test_fail_after_leaves_a_real_torn_tail(self, journal):
        journal.append(rec(0))
        with pytest.raises(JournalCrash):
            journal.append(rec(1), fail_after=10)
        # the torn bytes really reached disk...
        assert os.path.getsize(journal.path) > len(encode_record(rec(0)))
        # ...and recovery cuts them back off
        report = journal.recover()
        assert [r.seq for r in report.records] == [0]
        assert report.quarantined is not None

    def test_fail_after_full_frame_still_dies_pre_ack(self, journal):
        frame = encode_record(rec(0))
        with pytest.raises(JournalCrash):
            journal.append(rec(0), fail_after=len(frame))
        # the whole record landed: replay can restore what the crashed
        # process never got to acknowledge
        assert [r.seq for r in journal.recover().records] == [0]


# ----------------------------------------------------------------------
# injected corruption classes (the recovery matrix rows)
# ----------------------------------------------------------------------

class TestInjectedCorruptions:
    @pytest.fixture
    def injector(self, tmp_path, journal):
        filled(journal, 4)
        return StoreFaultInjector(str(tmp_path), seed=5)

    @pytest.mark.parametrize("kind", StoreFaultInjector.JOURNAL_CORRUPTIONS)
    def test_every_class_is_detected_or_harmless(
        self, kind, journal, injector
    ):
        injector.inject(kind)
        report = journal.recover()
        if kind == "journal_truncate":
            # the bytes are gone, loudly: an empty-but-valid journal
            assert report.records == []
            assert report.detected == []
        elif kind == "journal_duplicate_record":
            # a retried append: applied once, never truncated
            assert len(report.records) == 4
            assert report.duplicates_dropped == 1
            assert "duplicate_record" in report.detected
        else:
            assert report.detected, kind
            assert report.quarantined is not None
            assert len(report.records) < 4
        if kind == "journal_duplicate_record":
            # the redundant frame stays on disk (it is valid bytes);
            # a second recovery pass sees exactly the same picture
            again = journal.recover()
            assert [r.seq for r in again.records] == [
                r.seq for r in report.records
            ]
        else:
            # whatever was cut, the repaired file now reads strictly
            journal.records()

    def test_quarantine_preserves_the_evidence(self, journal, injector):
        before = journal._raw()
        injector.journal_torn_tail()
        damaged = journal._raw()
        report = journal.recover()
        with open(report.quarantined, "rb") as fh:
            tail = fh.read()
        # repaired prefix + quarantined tail == the damaged file
        assert journal._raw() + tail == damaged
        assert len(damaged) < len(before)

    def test_reorder_needs_two_records(self, tmp_path):
        journal = MutationJournal(str(tmp_path / "solo"))
        journal.append(rec(0))
        injector = StoreFaultInjector(str(tmp_path / "solo"))
        with pytest.raises(ValueError, match="fewer than two"):
            injector.journal_reorder_records()

    def test_injector_refuses_missing_journal(self, tmp_path):
        injector = StoreFaultInjector(str(tmp_path / "empty"))
        with pytest.raises(ValueError, match="no journal"):
            injector.journal_torn_tail()

    def test_quarantine_lives_beside_the_journal(self, journal, injector):
        injector.journal_bit_flip(bit=100)
        report = journal.recover()
        assert report.quarantined is not None
        assert os.path.dirname(
            report.quarantined
        ).endswith("quarantine")
