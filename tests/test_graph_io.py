"""Unit tests for graph serialization (GFU, edge list, JSON)."""

import pytest

from repro.graphs import (
    GraphError,
    LabeledGraph,
    dumps_edge_list,
    dumps_gfu,
    graph_from_json,
    graph_to_json,
    loads_edge_list,
    loads_gfu,
    read_gfu,
    write_gfu,
)

from .conftest import triangle_with_tail


class TestGFU:
    def test_round_trip_single(self):
        g = triangle_with_tail()
        [h] = loads_gfu(dumps_gfu([g]))
        assert h.same_labeled_structure(g)
        assert h.name == g.name

    def test_round_trip_collection(self):
        g1 = triangle_with_tail()
        g2 = LabeledGraph.from_edges(["X", "Y"], [(0, 1)], name="tiny")
        out = loads_gfu(dumps_gfu([g1, g2]))
        assert len(out) == 2
        assert out[1].name == "tiny"
        assert out[1].label(0) == "X"

    def test_empty_collection(self):
        assert dumps_gfu([]) == ""
        assert loads_gfu("") == []

    def test_missing_header_rejected(self):
        with pytest.raises(GraphError):
            loads_gfu("2\nA\nB\n0\n")

    def test_bad_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            loads_gfu("#g\nnope\n")

    def test_truncated_labels_rejected(self):
        with pytest.raises(GraphError):
            loads_gfu("#g\n3\nA\nB\n")

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "data.gfu"
        graphs = [triangle_with_tail()]
        write_gfu(path, graphs)
        [h] = read_gfu(path)
        assert h.same_labeled_structure(graphs[0])


class TestEdgeList:
    def test_round_trip(self):
        g = triangle_with_tail()
        h = loads_edge_list(dumps_edge_list(g))
        assert h.same_labeled_structure(g)

    def test_comments_and_blanks_ignored(self):
        text = "t g 0 0\n% comment\n\nv 0 A\nv 1 B\ne 0 1\n"
        g = loads_edge_list(text)
        assert g.order == 2
        assert g.has_edge(0, 1)

    def test_duplicate_vertex_rejected(self):
        with pytest.raises(GraphError):
            loads_edge_list("v 0 A\nv 0 B\n")

    def test_sparse_ids_rejected(self):
        with pytest.raises(GraphError):
            loads_edge_list("v 0 A\nv 2 B\ne 0 2\n")

    def test_unknown_line_kind_rejected(self):
        with pytest.raises(GraphError):
            loads_edge_list("x 1 2\n")


class TestJSON:
    def test_round_trip_with_edge_labels(self):
        g = LabeledGraph(3, ["A", "B", "C"], name="j")
        g.add_edge(0, 1, label="x")
        g.add_edge(1, 2)
        h = graph_from_json(graph_to_json(g))
        assert h.same_labeled_structure(g)
        assert h.name == "j"
        assert h.edge_label(0, 1) == "x"
        assert h.edge_label(1, 2) is None

    def test_json_deterministic(self):
        g = triangle_with_tail()
        assert graph_to_json(g) == graph_to_json(triangle_with_tail())
