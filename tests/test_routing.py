"""Shard-routing soundness: sketches, pruned/ordered fan-out, rebalance.

The load-bearing claim (ISSUE 5 acceptance): sketch routing changes
*where work happens*, never *what is answered* — ``answers_digest`` is
bit-for-bit invariant across {1 shard, N shards unrouted, N shards
routed, N shards post-rebalance} in full mode, and ``decisions_digest``
is invariant in decision mode (where witness subsets legitimately
differ).  The sketch tests are adversarial on purpose: forced bucket
collisions, labels the collection has never seen, NFV home shards, and
evictions mid-flight must all leave pruning sound.
"""

import pytest

from repro.graphs import LabeledGraph
from repro.harness import build_ftv_graphs
from repro.indexing import GrapesIndex
from repro.indexing.sketch import (
    SKETCH_TIERS,
    FeatureSketch,
    bucket_of,
    tier_index,
)
from repro.scheduling import skew_ratio
from repro.service import (
    AdmissionController,
    QueryOptions,
    Rebalancer,
    Service,
    ShardedCatalog,
    TenantPolicy,
    answers_digest,
    decisions_digest,
    run_closed_loop,
)
from repro.workload import default_tenant_mixes, generate_tenant_stream

BUDGET = 60_000
FTV_OPTS = QueryOptions(rewritings=("Orig", "DND"))
DEC_OPTS = QueryOptions(rewritings=("Orig", "DND"), decision_only=True)


@pytest.fixture(scope="module")
def ppi_graphs():
    return build_ftv_graphs("ppi", "tiny")


def ftv_service(shards, routing, dataset="ppi", **kw):
    svc = Service(
        workers=4,
        shards=shards,
        routing=routing,
        admission=AdmissionController(
            default_policy=TenantPolicy(step_budget=BUDGET)
        ),
        **kw,
    )
    svc.load_dataset(dataset, scale="tiny")
    return svc


def ftv_streams(graphs, tenants=2, per_tenant=8, seed=9, repeat=0.3):
    mixes = default_tenant_mixes(
        tenants, per_tenant, sizes=(4, 6), repeat_fraction=repeat
    )
    return {
        m.tenant: generate_tenant_stream(graphs, m, seed=seed)
        for m in mixes
    }


def run(shards, routing, graphs, options=FTV_OPTS, seed=9, **kw):
    svc = ftv_service(shards, routing, **kw)
    report = run_closed_loop(
        svc, "ppi", ftv_streams(graphs, seed=seed), options=options,
        concurrency=2,
    )
    return svc, report


# ----------------------------------------------------------------------
# sketch unit behaviour
# ----------------------------------------------------------------------

class TestSketch:
    def test_tier_index_tiers(self):
        assert tier_index(1) == 0
        assert tier_index(2) == 1
        assert tier_index(3) == 1
        assert tier_index(4) == 2
        # beyond the top tier: saturates instead of overflowing
        assert tier_index(10**9) == len(SKETCH_TIERS) - 1
        with pytest.raises(ValueError):
            tier_index(0)

    def test_bucket_of_deterministic_and_bounded(self):
        seqs = [(0,), (1, 2, 3), (-1,), (5, 5), (2, 1)]
        for seq in seqs:
            b = bucket_of(seq, 64)
            assert 0 <= b < 64
            assert b == bucket_of(seq, 64)
        # direction matters pre-canonicalisation: the census always
        # hands the sketch canonical sequences, so this is fine
        assert bucket_of((0,), 1) == 0

    def test_from_postings_sets_downward_closed_masks(self):
        class P:
            def __init__(self, count):
                self.count = count

        sketch = FeatureSketch.from_postings(
            [((0,), {0: P(5)})], recode={0: 0}, graph_count=1,
            num_buckets=4,
        )
        mask = sketch.buckets[bucket_of((0,), 4)]
        # max count 5 -> tiers 1, 2, 4 set; 8 clear
        assert mask == 0b111
        assert sketch.admits({(0,): 1})
        assert sketch.admits({(0,): 4})
        # needing 5 probes tier 4 (largest tier <= 5): may-admit
        assert sketch.admits({(0,): 5})
        # needing 8 probes tier 8: provably absent
        assert not sketch.admits({(0,): 8})
        assert sketch.score({(0,): 8}) is None

    def test_score_margins_order_richer_shards_first(self):
        class P:
            def __init__(self, count):
                self.count = count

        rich = FeatureSketch.from_postings(
            [((0,), {0: P(16)})], recode={0: 0}, graph_count=1,
            num_buckets=4,
        )
        poor = FeatureSketch.from_postings(
            [((0,), {0: P(2)})], recode={0: 0}, graph_count=1,
            num_buckets=4,
        )
        counts = {(0,): 2}
        assert rich.score(counts) > poor.score(counts)


# ----------------------------------------------------------------------
# soundness against the real filters
# ----------------------------------------------------------------------

class TestSketchSoundness:
    @pytest.mark.parametrize("num_buckets", [1, 2, 256])
    def test_prune_implies_empty_filter(self, ppi_graphs, num_buckets):
        """A sketch veto must always mean an empty candidate set.

        ``num_buckets=1`` forces *every* feature code to collide —
        the adversarial case: collisions may only weaken pruning
        (set spurious bits), never produce a wrong veto.
        """
        cat = ShardedCatalog(num_shards=2)
        entry = cat.load("ppi", scale="tiny")
        router = entry.router
        router.num_buckets = num_buckets
        for shard in entry.involved_shards():
            router.refresh(
                shard, entry.shard_entry(shard).ftv_index
            )
        streams = ftv_streams(ppi_graphs, per_tenant=10)
        queries = [
            mq.query.graph for s in streams.values() for mq in s
        ]
        vetoes = 0
        for query in queries:
            counts = router.query_census(query).counts
            for shard in entry.involved_shards():
                sketch = router.sketches[shard]
                if sketch.score(counts) is None:
                    vetoes += 1
                    index = entry.shard_entry(shard).ftv_index
                    assert index.filter(query) == []
        # with one bucket the sketch may veto nothing; with many it
        # may too on this tiny, feature-dense collection — either way
        # every veto that did happen was proven above
        assert vetoes >= 0

    def test_unknown_label_routes_to_single_witness_shard(self, ppi_graphs):
        """Query labels the collection never saw prune every shard."""
        cat = ShardedCatalog(num_shards=2)
        entry = cat.load("ppi", scale="tiny")
        q = LabeledGraph(3, ["ALIEN-0", "ALIEN-1", "ALIEN-2"])
        q.add_edge(0, 1)
        q.add_edge(1, 2)
        plan = entry.router.plan(q, entry.involved_shards())
        assert plan.width == 1
        assert plan.order == (entry.involved_shards()[0],)
        assert set(plan.pruned) == set(entry.involved_shards()[1:])
        # and the witness shard's filter is indeed empty
        index = entry.shard_entry(plan.order[0]).ftv_index
        assert index.filter(q) == []

    def test_high_multiplicity_feature_prunes_soundly(self, ppi_graphs):
        """A census demanding impossible counts vetoes every shard."""
        cat = ShardedCatalog(num_shards=2)
        entry = cat.load("ppi", scale="tiny")
        label = ppi_graphs[0].label(0)
        # a star of one label: the centre vertex yields paths with
        # multiplicities real shards cannot reach
        n = 9
        q = LabeledGraph(n, [label] * n)
        for v in range(1, n):
            q.add_edge(0, v)
        plan = entry.router.plan(q, entry.involved_shards())
        for shard in plan.pruned:
            index = entry.shard_entry(shard).ftv_index
            assert index.filter(q) == []

    def test_nfv_entries_are_never_routed(self):
        svc = Service(workers=4, shards=3, routing=True)
        svc.load_dataset("yeast", scale="tiny")
        entry = svc.catalog.get("yeast")
        assert entry.router is None
        assert len(entry.involved_shards()) == 1
        graphs = entry.graphs
        streams = ftv_streams(graphs, per_tenant=4)
        report = run_closed_loop(
            svc, "yeast", streams, options=QueryOptions(), concurrency=1
        )
        assert svc.routed_queries == 0
        assert all(t.fanout <= 1 for t in report.completed)


# ----------------------------------------------------------------------
# service-level digest invariance
# ----------------------------------------------------------------------

class TestRoutedServing:
    def test_full_mode_answers_invariant_across_layouts(self, ppi_graphs):
        _, r1 = run(1, False, ppi_graphs)
        _, r2u = run(2, False, ppi_graphs)
        _, r2r = run(2, True, ppi_graphs)
        _, r3r = run(3, True, ppi_graphs)
        assert r1.answers == r2u.answers == r2r.answers == r3r.answers
        assert r1.decisions == r2r.decisions

    def test_decision_mode_found_invariant(self, ppi_graphs):
        _, d1 = run(1, False, ppi_graphs, options=DEC_OPTS)
        _, d2u = run(2, False, ppi_graphs, options=DEC_OPTS)
        svc, d2r = run(2, True, ppi_graphs, options=DEC_OPTS)
        assert d1.decisions == d2u.decisions == d2r.decisions
        # staged waves actually deferred sibling work, and the routed
        # run never wastes more fanned steps than the unrouted one
        assert svc.waves_skipped > 0
        assert svc.fanout_waste <= d2u.service_stats["fanout_waste"]

    def test_routed_run_deterministic(self, ppi_graphs):
        _, a = run(2, True, ppi_graphs, options=DEC_OPTS)
        _, b = run(2, True, ppi_graphs, options=DEC_OPTS)
        assert a.digest == b.digest
        assert a.answers == b.answers

    def test_routing_off_is_bit_for_bit_unrouted(self, ppi_graphs):
        """`routing=False` must reproduce the PR 4 fan-out exactly —
        including bills and latencies, not just answers."""
        _, off = run(2, False, ppi_graphs)
        svc = ftv_service(2, False)
        assert svc.routing is False
        _, off2 = run(2, False, ppi_graphs)
        assert off.digest == off2.digest

    def test_pruned_shards_never_race(self, ppi_graphs):
        svc = ftv_service(2, True)
        q = LabeledGraph(2, ["ALIEN-A", "ALIEN-B"])
        q.add_edge(0, 1)
        ticket = svc.submit("ppi", q, options=FTV_OPTS)
        svc.run_until_idle()
        assert ticket.result.found is False
        assert ticket.fanout == 1
        assert ticket.pruned == 1
        assert svc.shards_pruned == 1

    def test_eviction_then_reroute_mid_service(self, ppi_graphs):
        """A watermark-evicted shard partition transparently re-registers
        (and re-folds its sketch) when a routed query lands on it."""
        svc = ftv_service(2, True)
        cat = svc.catalog
        entry = cat.get("ppi")
        epoch_before = entry.router.epoch
        # evict shard 0's partition behind the catalog's back
        cat.shards[0]._evict("ppi")
        streams = ftv_streams(ppi_graphs)
        report = run_closed_loop(
            svc, "ppi", streams, options=FTV_OPTS, concurrency=2
        )
        _, clean = run(2, True, ppi_graphs, seed=9)
        assert report.answers == clean.answers
        # eviction reloads refresh sketches without bumping the epoch
        # (the assignment never changed)
        assert entry.router.epoch == epoch_before
        assert cat.reloads >= 1

    def test_missing_sketch_fails_closed(self, ppi_graphs):
        """A shard without a sketch must race, never be pruned —
        pruning is only ever justified by an explicit veto."""
        cat = ShardedCatalog(num_shards=2)
        entry = cat.load("ppi", scale="tiny")
        entry.router.sketches.pop(0)
        q = ftv_streams(ppi_graphs)["tenant0"][0].query.graph
        plan = entry.router.plan(q, entry.involved_shards())
        assert 0 in plan.order
        assert 0 not in plan.pruned

    def test_reassign_mid_wave_raises(self, ppi_graphs):
        """A rebalance violating the quiesce contract while waves are
        in flight fails loudly instead of racing the wrong layout."""
        from repro.service.service import _FanoutState

        svc = ftv_service(2, True)
        entry = svc.catalog.get("ppi")
        q = ftv_streams(ppi_graphs)["tenant0"][0].query.graph
        ticket = svc.submit("ppi", q, options=DEC_OPTS)
        assert not ticket.done  # queued: _open holds the ticket
        # a deferred wave planned at the current epoch...
        state = _FanoutState(
            pending=set(),
            outcomes={},
            id_maps={},
            cancelled=[],
            waves=[(1,)],
            epoch=entry.router.epoch,
        )
        # ...must refuse to launch once the layout moved under it
        entry.router.bump()
        with pytest.raises(RuntimeError, match="quiesce"):
            svc._advance_wave(ticket.id, state)

    def test_coalescing_still_works_routed(self, ppi_graphs):
        svc = ftv_service(2, True)
        [mq] = ftv_streams(ppi_graphs, tenants=1, per_tenant=1)[
            "tenant0"
        ][:1]
        a = svc.submit("ppi", mq.query.graph, options=DEC_OPTS)
        b = svc.submit("ppi", mq.query.graph, options=DEC_OPTS)
        svc.run_until_idle()
        assert b.result.coalesced
        assert a.result.found == b.result.found


# ----------------------------------------------------------------------
# rebalancing
# ----------------------------------------------------------------------

class TestRebalance:
    def test_skew_ratio(self):
        assert skew_ratio([]) == 1.0
        assert skew_ratio([0, 0]) == 1.0
        assert skew_ratio([5, 5]) == 1.0
        assert skew_ratio([10, 5]) == 2.0
        assert skew_ratio([10, 0]) == float("inf")
        with pytest.raises(ValueError):
            skew_ratio([-1, 2])

    def test_reassign_moves_graphs_and_bumps_epoch(self, ppi_graphs):
        cat = ShardedCatalog(num_shards=2, assignment="hash")
        entry = cat.load("ppi", scale="tiny")
        before = entry.assignment
        epoch = entry.router.epoch
        new = [list(ids) for ids in before]
        gid = new[0][-1]
        new[0].remove(gid)
        new[1].append(gid)
        changed = cat.reassign("ppi", new)
        assert set(changed) == {0, 1}
        assert entry.assignment != before
        assert entry.router.epoch == epoch + 1
        assert cat.reassignments == 1
        assert cat.migrated_graphs == 1
        # both shards re-registered with matching graph counts
        for shard in (0, 1):
            sub = entry.shard_entry(shard)
            assert len(sub.graphs) == len(entry.assignment[shard])

    def test_reassign_validates(self, ppi_graphs):
        cat = ShardedCatalog(num_shards=2)
        entry = cat.load("ppi", scale="tiny")
        with pytest.raises(ValueError, match="cover every graph"):
            cat.reassign("ppi", [(0,), (1,)])
        with pytest.raises(ValueError, match="shards"):
            cat.reassign("ppi", [(0, 1, 2)])
        assert cat.reassign("ppi", entry.assignment) == ()
        svc = Service(workers=4, shards=2)
        svc.load_dataset("yeast", scale="tiny")
        with pytest.raises(ValueError, match="home shard"):
            svc.catalog.reassign("yeast", [(0,), ()])

    def test_cli_rebalance_flag_validation(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="rebalance-every"):
            main(
                "serve --dataset ppi --scale tiny --queries 2 "
                "--shards 2 --rebalance --rebalance-every -1".split()
            )
        with pytest.raises(SystemExit, match="needs --rebalance"):
            main(
                "serve --dataset ppi --scale tiny --queries 2 "
                "--shards 2 --rebalance-every 5".split()
            )
        with pytest.raises(SystemExit, match="shards"):
            main(
                "serve --dataset ppi --scale tiny --queries 2 "
                "--rebalance".split()
            )

    def test_rebalancer_requires_quiesce(self, ppi_graphs):
        svc = ftv_service(2, False)
        reb = Rebalancer(svc, min_window_steps=1)
        [mq] = ftv_streams(ppi_graphs, tenants=1, per_tenant=1)[
            "tenant0"
        ][:1]
        svc.submit("ppi", mq.query.graph, options=FTV_OPTS)
        # queued but not yet pumped: mid-flight, no quiesce, no action
        assert not svc.idle
        assert reb.maybe_rebalance() == []
        svc.run_until_idle()
        assert svc.idle

    def test_rebalanced_answers_invariant(self, ppi_graphs):
        _, base = run(1, False, ppi_graphs)
        svc = ftv_service(2, False, assignment="hash")
        reb = Rebalancer(svc, min_window_steps=64, skew_threshold=1.0)
        report = run_closed_loop(
            svc,
            "ppi",
            ftv_streams(ppi_graphs),
            options=FTV_OPTS,
            concurrency=2,
            rebalancer=reb,
            rebalance_every=4,
        )
        assert report.answers == base.answers
        assert reb.rebalances >= 1
        assert reb.migrations
        assert svc.catalog.reassignments >= 1
        # migrated layout still answers correctly after the run too
        q = ftv_streams(ppi_graphs, seed=11)["tenant0"][0].query.graph
        sharded = svc.submit("ppi", q, options=FTV_OPTS)
        svc.run_until_idle()
        single = Service(workers=4)
        single.load_dataset("ppi", scale="tiny")
        solo = single.submit("ppi", q, options=FTV_OPTS)
        single.run_until_idle()
        assert sharded.result.found == solo.result.found
        assert (
            sharded.result.matching_ids == solo.result.matching_ids
        )

    def test_rebalance_plus_routing_invariant(self, ppi_graphs):
        _, base = run(1, False, ppi_graphs)
        svc = ftv_service(2, True, assignment="hash")
        reb = Rebalancer(svc, min_window_steps=64, skew_threshold=1.0)
        report = run_closed_loop(
            svc,
            "ppi",
            ftv_streams(ppi_graphs),
            options=FTV_OPTS,
            concurrency=2,
            rebalancer=reb,
            rebalance_every=4,
        )
        assert report.answers == base.answers


# ----------------------------------------------------------------------
# prepare-cache metrics truthfulness (satellite)
# ----------------------------------------------------------------------

class TestPrepareCacheTruthfulness:
    def test_served_reuse_registers_as_hits(self):
        """Catalog-warmed indexes must show up as prepare-cache hits
        when serving reuses them — the '0 hits despite warm indexes'
        bench metric was lying."""
        from repro.caching import prepare_cache

        svc = Service(workers=4)
        svc.load_dataset("yeast", scale="tiny")
        hits_before = prepare_cache.stats.hits
        graphs = svc.catalog.get("yeast").graphs
        streams = ftv_streams(graphs, tenants=1, per_tenant=3, repeat=0.0)
        run_closed_loop(
            svc, "yeast", streams, options=QueryOptions(), concurrency=1
        )
        assert prepare_cache.stats.hits > hits_before

    def test_ftv_graph_index_reuse_registers(self, ppi_graphs):
        from repro.caching import prepare_cache

        index = GrapesIndex(list(ppi_graphs), max_path_length=2)
        misses_before = prepare_cache.stats.misses
        a = index.graph_index(0)
        hits_before = prepare_cache.stats.hits
        b = index.graph_index(0)
        assert a is b
        assert prepare_cache.stats.misses > misses_before
        assert prepare_cache.stats.hits > hits_before
