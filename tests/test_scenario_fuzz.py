"""Property-based determinism fuzz: random configs, identical reruns.

Fifty seeded :func:`repro.scenarios.fuzz.random_scenario` configs
sweep the axis cross product (shards x replicas x routing x coalesce,
plus chaos, decision mode, rebalance, plan seeding, tenant counts).
Each config runs **twice in the same process**; the two
:class:`ScenarioResult` snapshots must be bit-identical — digests,
counters, latency summary, and the full service-stats digest.  That
is the strongest determinism claim the serving stack makes, and the
one the scenario matrix's pinned digests depend on.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    ScenarioConfig,
    ScenarioRunner,
    random_scenario,
)

SEEDS = range(50)


def test_generator_is_a_pure_function_of_the_seed():
    for seed in (0, 17, 49):
        assert random_scenario(seed) == random_scenario(seed)


def test_generator_covers_the_axis_cross_product():
    configs = [random_scenario(seed) for seed in SEEDS]
    assert {c.topology.shards for c in configs} >= {1, 2, 3}
    assert {c.topology.replicas for c in configs} == {1, 2}
    assert {c.topology.routing for c in configs} == {True, False}
    assert {c.engine.coalesce for c in configs} == {True, False}
    assert {c.faults.chaos for c in configs} == {True, False}
    assert {c.workload.decision_only for c in configs} == {True, False}
    assert len({c.name for c in configs}) == len(configs)
    mutated = [c for c in configs if c.mutations.count]
    assert mutated and len(mutated) < len(configs)
    assert any(c.mutations.journal for c in mutated)
    assert any(c.mutations.crash_replay for c in mutated)


@pytest.mark.parametrize("seed", SEEDS)
def test_scenario_runs_are_deterministic(seed):
    cfg = random_scenario(seed)
    # the generator only emits schema-valid configs: the round trip
    # re-validates every section
    assert ScenarioConfig.from_dict(cfg.to_dict()) == cfg
    runner = ScenarioRunner()
    first = runner.run(cfg)
    second = runner.run(cfg)
    assert first.fingerprint() == second.fingerprint()
    assert first.stats_digest == second.stats_digest
    assert first.as_dict() == second.as_dict()
    assert first.lost == 0
