"""Front-door tests: socket-served runs equal in-process runs.

A :class:`~repro.obs.server.BackgroundFrontDoor` serves a real TCP
socket on a daemon thread; an :class:`~repro.obs.client.ObsClient`
drives it query-by-query.  The load-bearing assertion is equivalence:
a workload submitted over the socket produces byte-for-byte the same
answers, step bills, and deterministic stats as the same workload run
in-process — the wall-clock front door adds zero perturbation to the
virtual-clock core.
"""

import pytest

from repro.harness import build_ftv_graphs
from repro.obs.client import ObsClient, query_payload
from repro.obs.server import BackgroundFrontDoor
from repro.service import (
    AdmissionController,
    QueryOptions,
    Service,
    TenantPolicy,
)
from repro.workload import default_tenant_mixes, generate_tenant_stream

BUDGET = 60_000
FTV_OPTS = {"rewritings": ["Orig", "DND"]}

#: stats keys that are pure functions of the submission history (the
#: socket run and the in-process run must agree on every one)
DETERMINISTIC_KEYS = (
    "clock_steps", "ticks", "work_steps", "completed", "active",
    "shards", "shard_cancelled", "per_shard_work", "per_pool_work",
    "replicas", "faults", "fanout_waste", "routing", "latency_steps",
    "admission",
)


@pytest.fixture(scope="module")
def ppi_graphs():
    return build_ftv_graphs("ppi", "tiny")


def ftv_service(shards=2, replicas=2, **kw):
    svc = Service(
        workers=4,
        shards=shards,
        replicas=replicas,
        admission=AdmissionController(
            default_policy=TenantPolicy(step_budget=BUDGET)
        ),
        **kw,
    )
    svc.load_dataset("ppi", scale="tiny")
    return svc


def workload(graphs, per_tenant=6, seed=9):
    mixes = default_tenant_mixes(
        2, per_tenant, sizes=(4, 6), repeat_fraction=0.3
    )
    out = []
    for mix in mixes:
        for mq in generate_tenant_stream(graphs, mix, seed=seed):
            out.append((mix.tenant, mq.query.graph))
    return out


@pytest.fixture(scope="module")
def door(ppi_graphs):
    with BackgroundFrontDoor(ftv_service()) as running:
        yield running


@pytest.fixture(scope="module")
def client(door):
    host, port = door.address
    return ObsClient(host, port)


class TestEndpoints:
    def test_healthz_and_unknown_route(self, client):
        status, payload, _ = client.request("GET", "/healthz")
        assert (status, payload) == (200, {"ok": True})
        status, payload, _ = client.request("GET", "/nope")
        assert status == 404

    def test_stats_schema(self, client):
        payload = client.stats()
        assert set(payload) == {"clock", "stats", "registry"}
        stats = payload["stats"]
        assert list(stats)[:4] == [
            "clock_steps", "ticks", "work_steps", "completed",
        ]
        registry = payload["registry"]
        assert list(registry) == sorted(registry)
        assert registry["service.completed"] == stats["completed"]
        assert "service.latency_hist" in registry
        assert "trace.buffer" in registry

    def test_trace_endpoint(self, client, ppi_graphs):
        tenant, graph = workload(ppi_graphs)[0]
        status, payload, _ = client.submit(
            "ppi", graph, tenant=tenant, options=FTV_OPTS
        )
        assert status == 200
        ticket_id = payload["ticket_id"]
        status, trace = client.trace(ticket_id)
        assert status == 200
        assert trace["ticket_id"] == ticket_id
        assert trace["done"] is True
        names = [s["name"] for s in trace["spans"]]
        assert names[0] == "ticket"
        assert "leg" in names
        assert all(s["end"] is not None for s in trace["spans"])
        assert trace["tree"]["name"] == "ticket"
        assert trace["tree"]["children"]

    def test_trace_errors(self, client):
        assert client.trace(999_999)[0] == 404
        status, _, _ = client.request("GET", "/trace/xyz")
        assert status == 400

    def test_bad_query_payload(self, client):
        status, _, _ = client.request(
            "POST", "/query", body={"tenant": "t0"}
        )
        assert status == 400

    def test_unknown_dataset_404(self, client, ppi_graphs):
        _, graph = workload(ppi_graphs)[0]
        status, payload, _ = client.submit("nope", graph)
        assert status == 404
        assert "unknown dataset" in payload["error"]

    def test_watch_frames(self, client):
        frames = list(client.watch(frames=2, interval=0.05))
        assert len(frames) == 2
        assert [f["seq"] for f in frames] == [0, 1]
        for frame in frames:
            assert {
                "clock", "completed", "delta_completed",
                "latency_steps", "per_shard_work", "fanout_waste",
                "cache_hit_rate", "replicas_live", "queued", "active",
                "degraded", "retries", "throughput_qps",
                "mutations_applied", "mutations_pending",
                "journal_lag", "collection_epoch",
            } <= set(frame)


class TestSocketEqualsInProcess:
    def test_workload_equivalence(self, ppi_graphs):
        """The same workload, once over the socket and once in-process:
        identical answers, bills, latencies, and deterministic stats."""
        queries = workload(ppi_graphs)
        local = ftv_service()
        options = QueryOptions(rewritings=("Orig", "DND"))
        local_results = []
        for tenant, graph in queries:
            ticket = local.submit("ppi", graph, tenant, options)
            local.run_until_idle()
            r = ticket.result
            local_results.append((
                r.found, r.steps, r.winner_label, ticket.latency,
                sorted(r.matching_ids),
            ))

        with BackgroundFrontDoor(ftv_service()) as door:
            client = ObsClient(*door.address)
            remote_results = []
            for tenant, graph in queries:
                status, payload, _ = client.submit(
                    "ppi", graph, tenant=tenant, options=FTV_OPTS
                )
                assert status == 200
                r = payload["result"]
                remote_results.append((
                    r["found"], r["steps"], r["winner"],
                    payload["latency_steps"],
                    sorted(r["matching_ids"]),
                ))
            remote_stats = client.stats()["stats"]

        assert remote_results == local_results
        local_stats = local.stats()
        for key in DETERMINISTIC_KEYS:
            assert remote_stats[key] == local_stats[key], key

    def test_coalescing_is_off_path_serially(self, ppi_graphs):
        """Serial socket submits never coalesce (each completes before
        the next arrives) — they hit the result cache instead."""
        _, graph = workload(ppi_graphs)[0]
        with BackgroundFrontDoor(ftv_service()) as door:
            client = ObsClient(*door.address)
            first = client.submit("ppi", graph, options=FTV_OPTS)
            second = client.submit("ppi", graph, options=FTV_OPTS)
        assert first[1]["result"]["from_cache"] is False
        assert second[1]["result"]["from_cache"] is True


class TestRejectionMapping:
    def test_degraded_maps_to_429_with_retry_after(self, ppi_graphs):
        svc = ftv_service()
        svc.kill_replica(0, 0)
        svc.kill_replica(0, 1)  # shard 0 blackout
        _, graph = workload(ppi_graphs)[0]
        with BackgroundFrontDoor(svc) as door:
            client = ObsClient(*door.address)
            status, payload, headers = client.submit(
                "ppi", graph, options=FTV_OPTS
            )
        assert status == 429
        assert payload["state"] == "rejected"
        assert payload["degraded"] is True
        assert payload["retry_after_steps"] is not None
        assert int(headers["retry-after"]) >= 1

    def test_plain_rejection_maps_to_400(self, ppi_graphs):
        svc = Service(
            workers=1,
            admission=AdmissionController(
                default_policy=TenantPolicy(step_budget=BUDGET)
            ),
        )
        svc.load_dataset("ppi", scale="tiny")
        _, graph = workload(ppi_graphs)[0]
        with BackgroundFrontDoor(svc) as door:
            client = ObsClient(*door.address)
            # 2-wide race on a 1-worker pool: admission refuses outright
            status, payload, headers = client.submit(
                "ppi", graph, options=FTV_OPTS
            )
        assert status == 400
        assert payload["state"] == "rejected"
        assert payload["retry_after_steps"] is None
        assert "retry-after" not in headers


def test_query_payload_round_trip(ppi_graphs):
    import json

    from repro.graphs.io import graph_from_json

    _, graph = workload(ppi_graphs)[0]
    rebuilt = graph_from_json(json.dumps(query_payload(graph)))
    assert rebuilt.name == graph.name
    assert list(rebuilt.labels) == list(graph.labels)
    assert sorted(rebuilt.edges()) == sorted(graph.edges())
