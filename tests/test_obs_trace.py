"""Trace completeness: every terminal ticket state yields a closed,
orphan-free span tree — including under chaos.

The defensive contract: ``TicketTrace.finish`` force-closes any span
the instrumentation forgot, stamping it ``auto_closed`` — so a passing
suite here proves the instrumentation closed every span *itself*, on
every code path, and the runtime never holds an open trace for a
terminal ticket.
"""

import json

import pytest

from repro.harness import build_ftv_graphs
from repro.obs import Tracer
from repro.service import (
    AdmissionController,
    FaultEvent,
    FaultInjector,
    QueryOptions,
    Service,
    TenantPolicy,
    TicketState,
    chaos_plan,
    run_closed_loop,
)
from repro.workload import default_tenant_mixes, generate_tenant_stream

BUDGET = 60_000
FTV_OPTS = QueryOptions(rewritings=("Orig", "DND"))


@pytest.fixture(scope="module")
def ppi_graphs():
    return build_ftv_graphs("ppi", "tiny")


def ftv_service(shards=2, replicas=2, **kw):
    svc = Service(
        workers=4,
        shards=shards,
        replicas=replicas,
        admission=AdmissionController(
            default_policy=TenantPolicy(step_budget=BUDGET)
        ),
        **kw,
    )
    svc.load_dataset("ppi", scale="tiny")
    return svc


def ftv_streams(graphs, tenants=2, per_tenant=8, seed=9):
    mixes = default_tenant_mixes(
        tenants, per_tenant, sizes=(4, 6), repeat_fraction=0.3
    )
    return {
        m.tenant: generate_tenant_stream(graphs, m, seed=seed)
        for m in mixes
    }


def a_query(graphs, seed=9, index=0):
    return ftv_streams(graphs, seed=seed)["tenant0"][index].query.graph


def assert_complete(trace):
    """The span-tree invariants every terminal ticket must satisfy."""
    assert trace is not None
    assert trace.done
    root = trace.root
    assert root.name == "ticket"
    assert root.closed
    ids = {s.span_id for s in trace.spans}
    for span in trace.spans:
        assert span.closed, f"open span {span.name}#{span.span_id}"
        assert "auto_closed" not in span.attrs, (
            f"instrumentation forgot to close {span.name}#{span.span_id}"
        )
        assert span.end >= span.start
        if span.span_id != trace.ROOT:
            assert span.parent_id in ids, f"orphan span {span.span_id}"
            assert span.parent_id != span.span_id
    # the whole tree is reachable from the root
    tree = trace.span_tree()
    seen = []

    def walk(node):
        seen.append(node["span_id"])
        for kid in node.get("children", ()):
            walk(kid)

    walk(tree)
    assert sorted(seen) == sorted(ids)


# ----------------------------------------------------------------------
# tracer unit behavior
# ----------------------------------------------------------------------

class TestTracerRing:
    def test_eviction_and_noop_after(self):
        tr = Tracer(capacity=2)
        tr.start(1, 0)
        tr.start(2, 0)
        tr.start(3, 0)  # evicts ticket 1
        assert tr.get(1) is None
        assert tr.dropped == 1
        # post-eviction operations are silent no-ops
        assert tr.begin(1, "leg", 5) is None
        tr.end(1, 0, 5)
        tr.finish(1, 5)
        assert tr.as_metrics() == {
            "tickets": 2, "dropped": 1, "capacity": 2,
        }

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_export_jsonl(self, tmp_path):
        tr = Tracer()
        tr.start(7, 0, tenant="t0")
        span = tr.begin(7, "leg", 1, shard=0)
        tr.end(7, span, 4, found=True)
        tr.finish(7, 5, state="done")
        dest = tmp_path / "traces.jsonl"
        assert tr.export_jsonl(str(dest)) == 1
        lines = dest.read_text().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["ticket_id"] == 7
        assert payload["done"] is True
        assert [s["name"] for s in payload["spans"]] == ["ticket", "leg"]

    def test_eviction_mid_flight_keeps_nooping(self):
        """A trace evicted while its spans are still open must stay a
        no-op target: later begins/ends/events/finishes land nowhere,
        raise nothing, and never resurrect the evicted ticket."""
        tr = Tracer(capacity=2)
        tr.start(1, 0)
        leg = tr.begin(1, "leg", 1, shard=0)  # ticket 1 is mid-flight
        assert leg is not None
        tr.start(2, 0)
        tr.start(3, 0)  # capacity boundary: evicts in-flight ticket 1
        assert tr.get(1) is None
        assert tr.dropped == 1
        # the whole span lifecycle keeps no-op'ing on the evicted id
        tr.end(1, leg, 5, found=True)
        assert tr.begin(1, "retry", 6) is None
        assert tr.event(1, "fault_kill", 6) is None
        tr.finish(1, 7, state="done")
        assert tr.get(1) is None
        assert sorted(t.ticket_id for t in tr.traces()) == [2, 3]
        # survivors are untouched by the evicted ticket's operations
        assert all(len(t.spans) == 1 for t in tr.traces())

    def test_exactly_at_capacity_keeps_all(self):
        tr = Tracer(capacity=3)
        for tid in (1, 2, 3):
            tr.start(tid, 0)
        assert tr.dropped == 0
        assert sorted(t.ticket_id for t in tr.traces()) == [1, 2, 3]

    def test_service_trace_returns_none_not_keyerror(self, ppi_graphs):
        """``Service.trace`` on an evicted or never-issued ticket id is
        None — callers (the /trace endpoint's 404 path) rely on it."""
        svc = ftv_service(shards=1, replicas=1, trace_capacity=1)
        tickets = []
        for seed in (9, 11):
            t = svc.submit(
                "ppi", a_query(ppi_graphs, seed=seed), options=FTV_OPTS
            )
            svc.run_until_idle()
            tickets.append(t)
        assert svc.trace(tickets[0].id) is None  # evicted by capacity=1
        assert svc.trace(tickets[1].id) is not None
        assert svc.trace(999_999) is None  # never issued
        assert svc.trace(-999) is None  # synthetic range, never started

    def test_service_ring_is_bounded(self, ppi_graphs):
        svc = ftv_service(shards=1, replicas=1, trace_capacity=4)
        run_closed_loop(
            svc, "ppi", ftv_streams(ppi_graphs), options=FTV_OPTS,
            concurrency=2,
        )
        metrics = svc.tracer.as_metrics()
        assert metrics["tickets"] == 4
        assert metrics["dropped"] > 0
        for trace in svc.tracer.traces():
            assert_complete(trace)


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------

class TestJsonlRoundTrip:
    def test_span_tree_survives_export_import(
        self, ppi_graphs, tmp_path
    ):
        """Exported JSONL rebuilds byte-identical span trees via
        ``TicketTrace.from_dict`` — ids, parents, clocks, attrs, and
        tree shape all survive."""
        from repro.obs import TicketTrace

        svc = ftv_service()
        run_closed_loop(
            svc, "ppi", ftv_streams(ppi_graphs), options=FTV_OPTS,
            concurrency=2,
        )
        dest = tmp_path / "traces.jsonl"
        count = svc.export_traces(str(dest))
        lines = dest.read_text().splitlines()
        assert count == len(lines) > 0
        originals = {t.ticket_id: t for t in svc.tracer.traces()}
        for line in lines:
            doc = json.loads(line)
            revived = TicketTrace.from_dict(doc)
            original = originals[revived.ticket_id]
            assert revived.as_dict() == original.as_dict()
            assert revived.span_tree() == original.span_tree()
            assert revived.done == original.done

    def test_open_spans_survive_round_trip(self):
        """A still-open trace round-trips too: open spans stay open
        (``done`` False) and the revived trace can keep growing with
        fresh, non-colliding span ids."""
        from repro.obs import TicketTrace

        tr = Tracer()
        tr.start(5, 0, tenant="t0")
        leg = tr.begin(5, "leg", 1, shard=1)
        tr.event(5, "fault_kill", 2, parent=leg)
        original = tr.get(5)
        assert not original.done
        revived = TicketTrace.from_dict(original.as_dict())
        assert revived.as_dict() == original.as_dict()
        assert not revived.done
        # the revived trace is live: ids continue past the imported max
        new_span = revived.begin("retry", 3)
        assert new_span == max(s.span_id for s in original.spans) + 1
        revived.end(leg, 4)
        revived.finish(5)
        assert revived.done


# ----------------------------------------------------------------------
# terminal states
# ----------------------------------------------------------------------

class TestTerminalStates:
    def test_done_sharded(self, ppi_graphs):
        svc = ftv_service()
        t = svc.submit("ppi", a_query(ppi_graphs), options=FTV_OPTS)
        svc.run_until_idle()
        assert t.state is TicketState.DONE
        trace = svc.trace(t.id)
        assert_complete(trace)
        assert trace.root.attrs["state"] == "done"
        legs = trace.find("leg")
        assert len(legs) == 2  # one per shard
        assert {leg.attrs["shard"] for leg in legs} == {0, 1}
        assert all("replica" in leg.attrs for leg in legs)
        assert trace.find("queue") and trace.find("dispatch")
        assert trace.find("merge")

    def test_done_unsharded(self, ppi_graphs):
        svc = ftv_service(shards=1, replicas=1)
        t = svc.submit("ppi", a_query(ppi_graphs), options=FTV_OPTS)
        svc.run_until_idle()
        assert t.state is TicketState.DONE
        trace = svc.trace(t.id)
        assert_complete(trace)
        assert len(trace.find("leg")) == 1

    def test_cache_hit(self, ppi_graphs):
        svc = ftv_service()
        q = a_query(ppi_graphs)
        svc.submit("ppi", q, options=FTV_OPTS)
        svc.run_until_idle()
        hit = svc.submit("ppi", q, options=FTV_OPTS)
        assert hit.state is TicketState.DONE and hit.cache_hit
        trace = svc.trace(hit.id)
        assert_complete(trace)
        assert trace.find("cache_hit")
        assert trace.root.attrs["cache_hit"] is True
        assert not trace.find("leg")  # never dispatched

    def test_queue_full_rejected(self, ppi_graphs):
        svc = ftv_service(shards=1, replicas=1)
        svc.admission.set_policy(
            "cramped",
            TenantPolicy(max_in_flight=1, max_queued=0,
                         step_budget=BUDGET),
        )
        q1, q2 = a_query(ppi_graphs, index=0), a_query(
            ppi_graphs, seed=11, index=1
        )
        svc.submit("ppi", q1, tenant="cramped", options=FTV_OPTS)
        t = svc.submit("ppi", q2, tenant="cramped", options=FTV_OPTS)
        assert t.state is TicketState.REJECTED
        trace = svc.trace(t.id)
        assert_complete(trace)
        assert trace.root.attrs["state"] == "rejected"
        assert trace.root.attrs["reason"]
        svc.run_until_idle()

    def test_variant_width_rejected(self, ppi_graphs):
        svc = Service(
            workers=1,
            admission=AdmissionController(
                default_policy=TenantPolicy(step_budget=BUDGET)
            ),
        )
        svc.load_dataset("ppi", scale="tiny")
        t = svc.submit(
            "ppi", a_query(ppi_graphs), options=FTV_OPTS
        )  # 2-wide race, 1 worker
        assert t.state is TicketState.REJECTED
        trace = svc.trace(t.id)
        assert_complete(trace)
        assert trace.root.attrs["state"] == "rejected"

    def test_blackout_degraded(self, ppi_graphs):
        svc = ftv_service()
        svc.kill_replica(0, 0)
        svc.kill_replica(0, 1)
        t = svc.submit("ppi", a_query(ppi_graphs), options=FTV_OPTS)
        svc.run_until_idle()
        assert t.state is TicketState.REJECTED and t.degraded
        trace = svc.trace(t.id)
        assert_complete(trace)
        assert trace.root.attrs["state"] == "rejected"
        assert trace.root.attrs["degraded"] is True
        assert trace.root.attrs["retry_after"] == t.retry_after
        assert trace.find("degraded")

    def test_retry_exhausted_degraded(self, ppi_graphs):
        svc = ftv_service(max_retries=0)
        faults = FaultInjector([
            FaultEvent(at=3 + s, kind="kill", shard=s, replica=-1,
                       unit="completions", seq=s)
            for s in range(2)
        ])
        report = run_closed_loop(
            svc, "ppi", ftv_streams(ppi_graphs), options=FTV_OPTS,
            concurrency=2, faults=faults,
        )
        degraded = [t for t in report.tickets if t.degraded]
        assert degraded
        for t in degraded:
            trace = svc.trace(t.id)
            assert_complete(trace)
            assert trace.root.attrs["state"] == "rejected"
            assert trace.find("retry") or trace.find("degraded")

    def test_coalesced_follower(self, ppi_graphs):
        svc = ftv_service()
        q = a_query(ppi_graphs)
        leader = svc.submit("ppi", q, options=FTV_OPTS)
        follower = svc.submit("ppi", q, options=FTV_OPTS)
        assert follower.coalesced
        svc.run_until_idle()
        assert follower.state is TicketState.DONE
        trace = svc.trace(follower.id)
        assert_complete(trace)
        assert trace.find("coalesce_attach")
        attrs = trace.root.attrs
        assert attrs["state"] == "done"
        assert attrs["coalesced"] is True
        # the follower's trace names its leader
        result_events = trace.find("coalesced_result")
        assert result_events
        assert result_events[0].attrs["leader"] == leader.id
        assert not trace.find("leg")  # the leader ran the legs


# ----------------------------------------------------------------------
# chaos
# ----------------------------------------------------------------------

class TestChaosTraces:
    def test_all_tickets_complete_under_chaos_plan(self, ppi_graphs):
        svc = ftv_service()
        faults = chaos_plan(1337, num_shards=2, replicas=2, queries=16)
        report = run_closed_loop(
            svc, "ppi", ftv_streams(ppi_graphs), options=FTV_OPTS,
            concurrency=2, faults=faults,
        )
        assert svc.stats()["faults"]["injected"] > 0
        for t in report.tickets:
            assert_complete(svc.trace(t.id))

    def test_fault_touched_ticket_shows_kill_and_retry(self, ppi_graphs):
        """The acceptance drill's trace: a mid-flight kill leaves a
        fault_kill event, a lost leg, a retry, and a recovered leg."""
        svc = ftv_service()
        faults = FaultInjector([
            FaultEvent(at=3 + s, kind="kill", shard=s, replica=-1,
                       unit="completions", seq=s)
            for s in range(2)
        ])
        report = run_closed_loop(
            svc, "ppi", ftv_streams(ppi_graphs), options=FTV_OPTS,
            concurrency=2, faults=faults,
        )
        assert svc.rerouted >= 1
        touched = [
            t for t in report.completed
            if t.retries > 0 and svc.trace(t.id) is not None
        ]
        assert touched
        saw_recovery = False
        for t in touched:
            trace = svc.trace(t.id)
            assert_complete(trace)
            assert trace.find("fault_kill")
            retries = trace.find("retry")
            assert retries
            lost = [
                leg for leg in trace.find("leg")
                if leg.attrs.get("outcome") == "lost"
            ]
            recovered = [
                leg for leg in trace.find("leg")
                if "retry" in leg.attrs and "outcome" not in leg.attrs
            ]
            if lost and recovered:
                saw_recovery = True
        assert saw_recovery
