"""Documentation reference checker: no dangling paths or symbols.

`docs/*.md` and `README.md` point into the tree with
``path/to/file.py:Symbol.sub`` references.  This suite fails on any
reference to a file that does not exist or a symbol that is not
defined in it — which is what keeps the architecture docs honest as
the code moves.  The CI ``docs`` job runs exactly this file.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]

DOC_FILES = sorted(
    list((REPO / "docs").glob("*.md")) + [REPO / "README.md"]
)

#: a repo path, optionally followed by :Symbol(.sub)* for .py files
REF = re.compile(
    r"\b((?:src|tests|benchmarks|examples|docs)/[A-Za-z0-9_*./\-]+)"
    r"(?::([A-Za-z_][A-Za-z0-9_.]*))?"
)


def references():
    out = []
    for doc in DOC_FILES:
        for match in REF.finditer(doc.read_text()):
            path, symbol = match.group(1), match.group(2)
            while path and path[-1] in ".,;:)'":
                path = path[:-1]
            out.append((doc.name, path, symbol))
    return out


REFS = references()


def test_docs_reference_the_tree_at_all():
    """The checker has teeth only if the docs actually use paths."""
    assert len(REFS) > 40
    assert any(sym for _, _, sym in REFS), "no path:Symbol references"


@pytest.mark.parametrize(
    "doc,path,symbol",
    REFS,
    ids=[f"{d}::{p}" + (f":{s}" if s else "") for d, p, s in REFS],
)
def test_reference_resolves(doc, path, symbol):
    if "*" in path:
        assert list(REPO.glob(path)), f"{doc}: glob {path} matches nothing"
        return
    target = REPO / path
    if path.endswith("/"):
        assert target.is_dir(), f"{doc}: dangling directory {path}"
        return
    assert target.exists(), f"{doc}: dangling reference {path}"
    if symbol is None:
        return
    assert path.endswith(".py"), f"{doc}: symbol on non-python {path}"
    source = target.read_text()
    for part in symbol.split("."):
        defined = re.search(
            rf"(?:^|\s)(?:class|def)\s+{re.escape(part)}\b"
            rf"|^{re.escape(part)}\s*[:=]",
            source,
            re.MULTILINE,
        )
        assert defined, f"{doc}: {path} does not define {part!r}"
