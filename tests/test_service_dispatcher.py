"""Tests for the deterministic concurrent dispatcher.

The load-bearing property: a race driven through :class:`RaceTask` —
alone or interleaved with arbitrary other races — produces bit-for-bit
the outcome of :func:`repro.psi.executors.interleaved_race`.
"""

import random

import pytest

from repro.harness import build_nfv_graph
from repro.matching import Budget
from repro.psi import PsiNFV, Variant, interleaved_race
from repro.service import Dispatcher, RaceTask
from repro.workload import extract_query

VARIANTS = (
    Variant("GQL", "Orig"),
    Variant("SPA", "Orig"),
    Variant("GQL", "DND"),
)


@pytest.fixture(scope="module")
def store():
    return build_nfv_graph("yeast", "tiny")


@pytest.fixture(scope="module")
def psi(store):
    return PsiNFV(store)


def engines_for(psi, query, variants=VARIANTS):
    return {
        v: psi.matcher(v.algorithm).engine(
            psi.prepared(v.algorithm),
            psi.rewritten(query, v.rewriting).graph,
            max_embeddings=1000,
            count_only=True,
        )
        for v in variants
    }


def assert_same_outcome(a, b):
    assert a.winner == b.winner
    assert a.steps == b.steps
    assert a.found == b.found
    assert a.killed == b.killed
    assert a.per_variant_steps == b.per_variant_steps


class TestRaceTaskEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_standalone_matches_interleaved_race(self, psi, store, seed):
        query = extract_query(store, 6, random.Random(seed))
        budget = Budget(max_steps=50_000)
        ref = interleaved_race(
            engines_for(psi, query), budget=budget
        )
        task = RaceTask(engines_for(psi, query), budget=budget)
        out = task.run_to_completion()
        assert_same_outcome(out, ref)

    def test_budget_kill(self, psi, store):
        query = extract_query(store, 8, random.Random(3))
        budget = Budget(max_steps=50)
        ref = interleaved_race(engines_for(psi, query), budget=budget)
        task = RaceTask(engines_for(psi, query), budget=budget)
        out = task.run_to_completion()
        assert_same_outcome(out, ref)
        if ref.killed:
            assert out.winner is None

    def test_quantum_independent(self, psi, store):
        query = extract_query(store, 6, random.Random(4))
        budget = Budget(max_steps=50_000)
        outs = []
        for quantum in (1, 7, 64, 1024):
            task = RaceTask(
                engines_for(psi, query), budget=budget, quantum=quantum
            )
            outs.append(task.run_to_completion())
        for out in outs[1:]:
            assert_same_outcome(out, outs[0])


class TestDispatcher:
    def test_concurrency_does_not_change_results(self, psi, store):
        """Ten interleaved races == ten solo races, query by query."""
        queries = [
            extract_query(store, 5, random.Random(s)) for s in range(10)
        ]
        budget = Budget(max_steps=50_000)
        refs = [
            interleaved_race(engines_for(psi, q), budget=budget)
            for q in queries
        ]
        disp = Dispatcher(workers=6)
        done = {}
        for i, q in enumerate(queries):
            disp.admit(i, RaceTask(engines_for(psi, q), budget=budget))
        while disp.active:
            for token, _, outcome in disp.tick(sorted(range(10))):
                if outcome is not None:
                    done[token] = outcome
        assert len(done) == 10
        for i, ref in enumerate(refs):
            assert_same_outcome(done[i], ref)

    def test_bounded_pool_limits_per_tick_work(self, psi, store):
        query = extract_query(store, 5, random.Random(11))
        disp = Dispatcher(workers=3)
        budget = Budget(max_steps=50_000)
        # each race is 3-wide: only one can run per tick
        disp.admit("a", RaceTask(engines_for(psi, query), budget=budget))
        q2 = extract_query(store, 5, random.Random(12))
        disp.admit("b", RaceTask(engines_for(psi, q2), budget=budget))
        events = disp.tick(["a", "b"])
        ran = [tok for tok, _, _ in events]
        assert ran == ["a"]  # b did not fit this tick

    def test_priority_order_respected(self, psi, store):
        query = extract_query(store, 5, random.Random(13))
        disp = Dispatcher(workers=3)
        budget = Budget(max_steps=50_000)
        disp.admit("a", RaceTask(engines_for(psi, query), budget=budget))
        q2 = extract_query(store, 5, random.Random(14))
        disp.admit("b", RaceTask(engines_for(psi, q2), budget=budget))
        events = disp.tick(["b", "a"])
        assert [tok for tok, _, _ in events] == ["b"]

    def test_too_wide_race_rejected(self, psi, store):
        query = extract_query(store, 5, random.Random(15))
        disp = Dispatcher(workers=2)
        with pytest.raises(ValueError, match="workers"):
            disp.admit(
                "a",
                RaceTask(
                    engines_for(psi, query),
                    budget=Budget(max_steps=1000),
                ),
            )

    def test_clock_advances_per_tick(self, psi, store):
        disp = Dispatcher(workers=4, quantum=32)
        query = extract_query(store, 4, random.Random(16))
        disp.admit(0, RaceTask(
            engines_for(psi, query), budget=Budget(max_steps=1000)
        ))
        disp.tick([0])
        assert disp.clock == 32
        assert disp.ticks == 1

    def test_cancel(self, psi, store):
        disp = Dispatcher(workers=4)
        query = extract_query(store, 4, random.Random(17))
        disp.admit(0, RaceTask(
            engines_for(psi, query), budget=Budget(max_steps=1000)
        ))
        disp.cancel(0)
        assert disp.active == 0
