"""Unit tests for the LabeledGraph substrate."""

import pytest

from repro.graphs import GraphError, LabeledGraph

from .conftest import triangle_with_tail


class TestConstruction:
    def test_empty_graph(self):
        g = LabeledGraph(0, [])
        assert g.order == 0
        assert g.size == 0

    def test_label_count_mismatch(self):
        with pytest.raises(GraphError):
            LabeledGraph(3, ["A", "B"])

    def test_negative_order(self):
        with pytest.raises(GraphError):
            LabeledGraph(-1, [])

    def test_from_edges(self):
        g = LabeledGraph.from_edges(["A", "B", "C"], [(0, 1), (1, 2)])
        assert g.size == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(2, 1)
        assert not g.has_edge(0, 2)

    def test_rejects_self_loop(self):
        g = LabeledGraph(2, ["A", "B"])
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_rejects_duplicate_edge(self):
        g = LabeledGraph(2, ["A", "B"])
        g.add_edge(0, 1)
        with pytest.raises(GraphError):
            g.add_edge(1, 0)

    def test_rejects_out_of_range_edge(self):
        g = LabeledGraph(2, ["A", "B"])
        with pytest.raises(GraphError):
            g.add_edge(0, 2)

    def test_edge_labels(self):
        g = LabeledGraph(2, ["A", "B"])
        g.add_edge(0, 1, label="bond")
        assert g.edge_label(0, 1) == "bond"
        assert g.edge_label(1, 0) == "bond"

    def test_unlabeled_edge_label_is_none(self):
        g = LabeledGraph(2, ["A", "B"])
        g.add_edge(0, 1)
        assert g.edge_label(0, 1) is None


class TestAccessors:
    def test_neighbors_sorted(self):
        g = LabeledGraph(4, list("ABCD"))
        g.add_edge(3, 0)
        g.add_edge(1, 0)
        g.add_edge(2, 0)
        assert g.neighbors(0) == (1, 2, 3)

    def test_degree(self):
        g = triangle_with_tail()
        assert g.degree(0) == 3
        assert g.degree(3) == 1

    def test_edges_iteration_sorted_unique(self):
        g = triangle_with_tail()
        assert list(g.edges()) == [(0, 1), (0, 2), (0, 3), (1, 2)]

    def test_label_frequencies(self):
        g = LabeledGraph(4, ["A", "A", "B", "C"])
        freq = g.label_frequencies()
        assert freq["A"] == 2
        assert freq["B"] == 1

    def test_density_and_average_degree(self):
        g = triangle_with_tail()
        assert g.density() == pytest.approx(4 / 6)
        assert g.average_degree() == pytest.approx(2.0)

    def test_density_of_trivial_graphs(self):
        assert LabeledGraph(0, []).density() == 0.0
        assert LabeledGraph(1, ["A"]).density() == 0.0

    def test_vertices_with_label(self):
        g = LabeledGraph(4, ["A", "B", "A", "C"])
        assert g.vertices_with_label("A") == (0, 2)
        assert g.vertices_with_label("Z") == ()

    def test_neighbor_set(self):
        g = triangle_with_tail()
        assert g.neighbor_set(0) == frozenset({1, 2, 3})


class TestPermutation:
    def test_identity_permutation(self):
        g = triangle_with_tail()
        h = g.permuted([0, 1, 2, 3])
        assert h.same_labeled_structure(g)

    def test_swap_permutation_moves_labels_and_edges(self):
        g = LabeledGraph.from_edges(["A", "B"], [(0, 1)])
        h = g.permuted([1, 0])
        assert h.label(0) == "B"
        assert h.label(1) == "A"
        assert h.has_edge(0, 1)

    def test_invalid_permutation_rejected(self):
        g = triangle_with_tail()
        with pytest.raises(GraphError):
            g.permuted([0, 0, 1, 2])

    def test_permutation_preserves_signature(self):
        g = triangle_with_tail()
        h = g.permuted([3, 1, 0, 2])
        assert (
            h.degree_label_signature() == g.degree_label_signature()
        )

    def test_permutation_preserves_edge_labels(self):
        g = LabeledGraph(3, ["A", "B", "C"])
        g.add_edge(0, 1, label="x")
        g.add_edge(1, 2, label="y")
        h = g.permuted([2, 0, 1])
        assert h.edge_label(2, 0) == "x"
        assert h.edge_label(0, 1) == "y"


class TestStructure:
    def test_connected_components_single(self):
        g = triangle_with_tail()
        assert g.connected_components() == [[0, 1, 2, 3]]
        assert g.is_connected()

    def test_connected_components_multiple(self):
        g = LabeledGraph(5, list("AAABB"))
        g.add_edge(0, 1)
        g.add_edge(3, 4)
        comps = g.connected_components()
        assert comps == [[0, 1], [2], [3, 4]]
        assert not g.is_connected()

    def test_induced_subgraph(self):
        g = triangle_with_tail()
        sub, mapping = g.induced_subgraph([0, 1, 2])
        assert sub.order == 3
        assert sub.size == 3  # the triangle
        assert mapping == {0: 0, 1: 1, 2: 2}

    def test_induced_subgraph_relabels(self):
        g = triangle_with_tail()
        sub, mapping = g.induced_subgraph([3, 0])
        assert sub.order == 2
        assert sub.size == 1
        assert sub.label(0) == "D"
        assert sub.label(1) == "A"
        assert mapping == {3: 0, 0: 1}

    def test_induced_subgraph_duplicate_rejected(self):
        g = triangle_with_tail()
        with pytest.raises(GraphError):
            g.induced_subgraph([0, 0])

    def test_bfs_order(self):
        g = LabeledGraph(4, list("AAAA"))
        g.add_edge(0, 2)
        g.add_edge(0, 3)
        g.add_edge(3, 1)
        assert g.bfs_order(0) == [0, 2, 3, 1]

    def test_same_labeled_structure_detects_differences(self):
        g = triangle_with_tail()
        h = triangle_with_tail()
        assert g.same_labeled_structure(h)
        other = LabeledGraph(4, ["A", "B", "C", "E"])
        other.add_edge(0, 1)
        assert not g.same_labeled_structure(other)
