"""Unit tests for the matcher engine framework (budgets, outcomes)."""

import time

import pytest

from repro.graphs import LabeledGraph
from repro.matching import (
    Budget,
    GraphIndex,
    MatchOutcome,
    VF2Matcher,
    drive,
)

from .conftest import triangle_with_tail


class TestBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(max_steps=0)
        with pytest.raises(ValueError):
            Budget(timeout_s=-1)

    def test_unlimited(self):
        b = Budget.unlimited()
        assert b.max_steps is None
        assert b.timeout_s is None


class TestDrive:
    @staticmethod
    def _fixed_engine(n, outcome):
        def gen():
            for _ in range(n):
                yield
            return outcome
        return gen()

    def test_completes_and_counts_steps(self):
        out = drive(self._fixed_engine(17, MatchOutcome(found=True)))
        assert out.steps == 17
        assert out.found
        assert not out.killed

    def test_budget_kills(self):
        out = drive(
            self._fixed_engine(1000, MatchOutcome(found=True)),
            Budget(max_steps=10),
        )
        assert out.killed
        assert not out.found
        assert out.steps == 10

    def test_exact_budget_boundary(self):
        # finishing on the same step the budget would expire counts as
        # killed only if the engine did not return first
        out = drive(
            self._fixed_engine(9, MatchOutcome(found=True)),
            Budget(max_steps=10),
        )
        assert not out.killed
        assert out.steps == 9

    def test_timeout_kills(self):
        def slow():
            while True:
                time.sleep(0.001)
                yield

        out = drive(slow(), Budget(timeout_s=0.05, check_every=8))
        assert out.killed

    def test_charged_steps_convention(self):
        budget = Budget(max_steps=100)
        killed = MatchOutcome(killed=True, steps=100)
        done = MatchOutcome(found=True, steps=7)
        assert killed.charged_steps(budget) == 100
        assert done.charged_steps(budget) == 7
        assert killed.charged_steps(None) == 100


class TestGraphIndex:
    def test_label_index(self):
        g = LabeledGraph(4, ["A", "B", "A", "C"])
        ix = GraphIndex(g)
        assert ix.candidates_by_label("A") == (0, 2)
        assert ix.candidates_by_label("missing") == ()
        assert ix.label_frequencies["A"] == 2

    def test_degrees(self):
        ix = GraphIndex(triangle_with_tail())
        assert ix.degrees == (3, 2, 2, 1)

    def test_edge_frequency(self):
        g = LabeledGraph(4, ["A", "B", "A", "B"])
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        g.add_edge(0, 2)
        ix = GraphIndex(g)
        assert ix.edge_frequency("A", "B") == 2
        assert ix.edge_frequency("B", "A") == 2
        assert ix.edge_frequency("A", "A") == 1
        assert ix.edge_frequency("B", "B") == 0


class TestMatcherAPI:
    def test_run_accepts_graph_or_index(self):
        g = triangle_with_tail()
        q = LabeledGraph.from_edges(["A", "B"], [(0, 1)])
        m = VF2Matcher()
        out1 = m.run(g, q)
        out2 = m.run(m.prepare(g), q)
        assert out1.num_embeddings == out2.num_embeddings

    def test_decide_stops_at_first(self):
        g = triangle_with_tail()
        q = LabeledGraph.from_edges(["A", "B"], [(0, 1)])
        out = VF2Matcher().decide(g, q)
        assert out.found
        assert out.num_embeddings == 1

    def test_empty_query_rejected(self):
        g = triangle_with_tail()
        with pytest.raises(ValueError):
            VF2Matcher().run(g, LabeledGraph(0, []))

    def test_outcome_algorithm_name(self):
        g = triangle_with_tail()
        q = LabeledGraph.from_edges(["A", "B"], [(0, 1)])
        assert VF2Matcher().run(g, q).algorithm == "VF2"
