"""Tests for the Ψ-framework: executors, NFV and FTV frontends."""

import pytest

from repro.datasets import ppi_like
from repro.indexing import GrapesIndex
from repro.matching import Budget, MatchOutcome
from repro.psi import (
    AttemptCost,
    OverheadModel,
    PsiFTV,
    PsiNFV,
    Variant,
    interleaved_race,
    race_from_costs,
    threaded_race,
    variants_from_spec,
)
from repro.workload import extract_query

from .conftest import canonical_embeddings, random_query_from
import random


def fixed_engine(n, found):
    def gen():
        for _ in range(n):
            yield
        return MatchOutcome(found=found, exhausted=True)
    return gen


class TestVariants:
    def test_label(self):
        assert Variant("GQL", "ILF").label == "GQL-ILF"

    def test_cross_product(self):
        vs = variants_from_spec(("GQL", "SPA"), ("Orig", "DND"))
        assert len(vs) == 4
        assert vs[0] == Variant("GQL", "Orig")
        assert vs[-1] == Variant("SPA", "DND")


class TestInterleavedRace:
    def test_winner_is_fewest_steps(self):
        race = interleaved_race(
            {"slow": fixed_engine(50, True)(),
             "fast": fixed_engine(10, True)()}
        )
        assert race.winner == "fast"
        assert race.steps == 10
        assert race.found

    def test_tie_breaks_by_declaration_order(self):
        race = interleaved_race(
            {"a": fixed_engine(10, True)(),
             "b": fixed_engine(10, True)()}
        )
        assert race.winner == "a"

    def test_budget_kills_all(self):
        race = interleaved_race(
            {"x": fixed_engine(100, True)(),
             "y": fixed_engine(100, True)()},
            budget=Budget(max_steps=20),
        )
        assert race.killed
        assert race.winner is None
        assert race.steps == 20

    def test_overhead_charged(self):
        race = interleaved_race(
            {"a": fixed_engine(10, True)()},
            overhead=OverheadModel(base_steps=5, per_variant_steps=3),
        )
        assert race.overhead_steps == 8
        assert race.steps == 18

    def test_losers_charged_at_most_winner_steps(self):
        race = interleaved_race(
            {"fast": fixed_engine(10, True)(),
             "slow": fixed_engine(10**6, True)()}
        )
        assert race.per_variant_steps["slow"] <= 11
        assert race.work_steps <= 21

    def test_unfound_finisher_still_wins(self):
        """A variant that exhausts (decision: no) finishes the race."""
        race = interleaved_race(
            {"no": fixed_engine(5, False)(),
             "yes": fixed_engine(50, True)()}
        )
        assert race.winner == "no"
        assert not race.found

    def test_empty_race_rejected(self):
        with pytest.raises(ValueError):
            interleaved_race({})


class TestThreadedRace:
    def test_same_answer_as_interleaved(self):
        factories = {
            "fast": fixed_engine(10, True),
            "slow": fixed_engine(10000, True),
        }
        race = threaded_race(factories, check_every=16)
        assert race.found
        assert race.outcome is not None

    def test_budget_kills(self):
        race = threaded_race(
            {"x": fixed_engine(10**6, True)},
            budget=Budget(max_steps=100),
            check_every=16,
        )
        assert race.killed


class TestRaceFromCosts:
    def test_min_completing_wins(self):
        race = race_from_costs(
            {
                "a": AttemptCost(steps=50, found=True, killed=False),
                "b": AttemptCost(steps=10, found=True, killed=False),
                "c": AttemptCost(steps=5, found=False, killed=True),
            },
            budget_steps=100,
        )
        assert race.winner == "b"
        assert race.steps == 10

    def test_all_killed(self):
        race = race_from_costs(
            {
                "a": AttemptCost(steps=100, found=False, killed=True),
            },
            budget_steps=100,
        )
        assert race.killed
        assert race.steps == 100

    def test_overhead(self):
        race = race_from_costs(
            {"a": AttemptCost(steps=10, found=True, killed=False)},
            overhead=OverheadModel(per_variant_steps=7),
        )
        assert race.steps == 17

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            race_from_costs({})


class TestPsiNFV:
    def test_race_matches_direct_run(self, small_store):
        psi = PsiNFV(small_store)
        query = random_query_from(small_store, 5, 3)
        variants = [
            Variant("GQL", "Orig"),
            Variant("SPA", "ILF"),
            Variant("VF2", "DND"),
        ]
        result = psi.race(query, variants, max_embeddings=10**6)
        assert result.found
        direct = psi.matcher("VF2").run(
            small_store, query, max_embeddings=10**6
        )
        assert canonical_embeddings(result.embeddings) == (
            canonical_embeddings(direct.embeddings)
        )

    def test_race_steps_equal_best_variant(self, small_store):
        psi = PsiNFV(small_store)
        query = random_query_from(small_store, 5, 7)
        variants = [Variant("GQL", "Orig"), Variant("SPA", "Orig")]
        costs = {
            v: psi.run_variant(query, v, max_embeddings=1)
            for v in variants
        }
        result = psi.race(query, variants, max_embeddings=1)
        assert result.steps == min(c.steps for c in costs.values())

    def test_threaded_executor_same_decision(self, small_store):
        psi = PsiNFV(small_store)
        query = random_query_from(small_store, 4, 11)
        variants = [Variant("GQL", "Orig"), Variant("VF2", "ILF")]
        a = psi.race(query, variants, max_embeddings=1)
        b = psi.race(
            query, variants, max_embeddings=1, executor="threaded"
        )
        assert a.found == b.found

    def test_unknown_executor_rejected(self, small_store):
        psi = PsiNFV(small_store)
        query = random_query_from(small_store, 4, 11)
        with pytest.raises(ValueError):
            psi.race(query, [Variant("GQL", "Orig")], executor="magic")

    def test_empty_variants_rejected(self, small_store):
        psi = PsiNFV(small_store)
        query = random_query_from(small_store, 4, 11)
        with pytest.raises(ValueError):
            psi.race(query, [])

    def test_rewritten_cache_resets_per_query(self, small_store):
        psi = PsiNFV(small_store)
        q1 = random_query_from(small_store, 4, 1)
        q2 = random_query_from(small_store, 4, 2)
        r1 = psi.rewritten(q1, "ILF")
        r2 = psi.rewritten(q2, "ILF")
        assert r1.graph.order == q1.order
        assert r2.graph.order == q2.order


class TestPsiFTV:
    @pytest.fixture(scope="class")
    def setup(self):
        graphs = ppi_like(num_graphs=3, avg_nodes=60, num_labels=8, seed=5)
        index = GrapesIndex(graphs, max_path_length=2, threads=1)
        return graphs, index

    def test_race_equals_best_rewriting(self, setup):
        graphs, index = setup
        psi = PsiFTV(
            index, ("ILF", "IND", "DND"), overhead=OverheadModel.free()
        )
        rng = random.Random(3)
        q = extract_query(graphs[0], 5, rng)
        budget = Budget(max_steps=10**6)
        report, race = psi.verify(q, 0, budget)
        # compare to standalone verifications of each rewriting
        best = min(
            index.verify(rq.graph, 0, budget).steps
            for rq in psi.rewritten_queries(q, 0).values()
        )
        assert report.steps == best
        assert report.matched

    def test_query_finds_source(self, setup):
        graphs, index = setup
        psi = PsiFTV(index, ("ILF", "DND"))
        rng = random.Random(5)
        q = extract_query(graphs[1], 4, rng)
        result = psi.query(q, Budget(max_steps=10**6))
        assert 1 in result.matching_ids
        assert len(result.races) == len(result.candidate_ids)

    def test_needs_rewritings(self, setup):
        _, index = setup
        with pytest.raises(ValueError):
            PsiFTV(index, ())

    def test_collection_stats_mode(self, setup):
        graphs, index = setup
        psi = PsiFTV(index, ("ILF",), per_graph_stats=False)
        rng = random.Random(7)
        q = extract_query(graphs[0], 4, rng)
        rqs = psi.rewritten_queries(q, 0)
        assert "ILF" in rqs
