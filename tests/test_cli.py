"""Tests for the command-line interface."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO = Path(__file__).resolve().parent.parent


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestDatasets:
    def test_summaries(self, capsys):
        code, out = run_cli(capsys, "datasets", "--scale", "tiny")
        assert code == 0
        assert "yeast" in out
        assert "ppi" in out
        assert "Avg degree" in out


class TestWorkload:
    def test_table_output(self, capsys):
        code, out = run_cli(
            capsys, "workload", "--dataset", "yeast",
            "--scale", "tiny", "--size", "5", "--count", "3",
        )
        assert code == 0
        assert out.count("q0") == 3

    def test_gfu_export(self, capsys, tmp_path):
        path = tmp_path / "queries.gfu"
        code, out = run_cli(
            capsys, "workload", "--dataset", "yeast",
            "--scale", "tiny", "--size", "4", "--count", "2",
            "--out", str(path),
        )
        assert code == 0
        from repro.graphs import read_gfu

        queries = read_gfu(path)
        assert len(queries) == 2
        assert all(q.size == 4 for q in queries)

    def test_ftv_dataset_source(self, capsys):
        code, out = run_cli(
            capsys, "workload", "--dataset", "ppi",
            "--scale", "tiny", "--size", "4", "--count", "2",
        )
        assert code == 0


class TestMatch:
    def test_match_reports_outcome(self, capsys):
        code, out = run_cli(
            capsys, "match", "--dataset", "yeast", "--scale", "tiny",
            "--size", "5", "--algorithm", "GQL",
        )
        assert code == 0
        assert "embeddings in" in out
        assert "completed" in out or "killed" in out


class TestRace:
    def test_race_prints_winner(self, capsys):
        code, out = run_cli(
            capsys, "race", "--dataset", "yeast", "--scale", "tiny",
            "--size", "5", "--algorithms", "GQL,SPA",
            "--rewritings", "Orig,ILF",
        )
        assert code == 0
        assert "<- winner" in out
        assert "race time" in out

    def test_race_rejects_ftv_dataset(self):
        with pytest.raises(SystemExit):
            main([
                "race", "--dataset", "ppi", "--scale", "tiny",
            ])


class TestExperiment:
    @pytest.mark.parametrize("name", ["fig2", "fig8", "fig13"])
    def test_nfv_experiments(self, capsys, name):
        code, out = run_cli(
            capsys, "experiment", "--name", name, "--scale", "tiny",
        )
        assert code == 0
        assert "yeast" in out

    @pytest.mark.parametrize("name", ["fig1", "fig7", "fig12"])
    def test_ftv_experiments(self, capsys, name):
        code, out = run_cli(
            capsys, "experiment", "--name", name, "--scale", "tiny",
        )
        assert code == 0
        assert "ppi" in out

    def test_dataset_family_mismatch(self):
        with pytest.raises(SystemExit):
            main([
                "experiment", "--name", "fig2", "--dataset", "ppi",
                "--scale", "tiny",
            ])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["experiment", "--name", "fig99"]
            )


class TestAnalyze:
    def test_analyze_prints_overlap_and_diagnoses(self, capsys):
        code, out = run_cli(
            capsys, "analyze", "--dataset", "yeast", "--scale", "tiny",
        )
        assert code == 0
        assert "hard-set overlap" in out
        assert "winner attribution" in out
        assert "worst unit for" in out

    def test_analyze_rejects_ftv(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "--dataset", "ppi"])


class TestServe:
    SERVE_ARGS = (
        "--dataset", "yeast", "--scale", "tiny",
        "--queries", "12", "--tenants", "2", "--budget", "60000",
    )

    def test_serve_summary(self, capsys):
        code, out = run_cli(capsys, "serve", *self.SERVE_ARGS)
        assert code == 0
        assert "tenant0" in out and "tenant1" in out
        assert "latency (steps)" in out
        assert "result cache" in out
        assert "results digest" in out

    def test_serve_deterministic(self, capsys):
        digests = set()
        for _ in range(2):
            _, out = run_cli(capsys, "serve", *self.SERVE_ARGS)
            digests.add(
                [ln for ln in out.splitlines() if "digest" in ln][-1]
            )
        assert len(digests) == 1

    def test_serve_verbose(self, capsys):
        code, out = run_cli(
            capsys, "serve", *self.SERVE_ARGS, "--verbose"
        )
        assert code == 0
        assert " in " in out  # per-query lines present

    def test_bench_serve_writes_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_service.json"
        code, out = run_cli(
            capsys, "bench-serve", *self.SERVE_ARGS,
            "--out", str(out_path),
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["bench"] == "service"
        assert payload["throughput"]["queries"] > 0
        for pct in ("p50", "p95", "p99"):
            assert pct in payload["latency_steps"]
        assert payload["result_cache"]["lookups"] > 0
        assert payload["config"]["dataset"] == "yeast"

    def test_serve_validates_tenant_count(self, capsys):
        with pytest.raises(SystemExit, match="tenants"):
            main([
                "serve", "--dataset", "yeast", "--scale", "tiny",
                "--queries", "4", "--tenants", "0",
            ])

    def test_serve_clamps_tenants_to_queries(self, capsys):
        code, out = run_cli(
            capsys, "serve", "--dataset", "yeast", "--scale", "tiny",
            "--queries", "2", "--tenants", "5", "--budget", "60000",
        )
        assert code == 0
        assert "2 queries" in out
        assert "tenant2" not in out

    def test_serve_validates_worker_pool(self, capsys):
        with pytest.raises(SystemExit, match="workers"):
            main([
                "serve", "--dataset", "yeast", "--scale", "tiny",
                "--queries", "4", "--workers", "0",
            ])
        # a race wider than the pool is a config error, not 100% rejects
        with pytest.raises(SystemExit, match="variants wide"):
            main([
                "serve", "--dataset", "yeast", "--scale", "tiny",
                "--queries", "4", "--workers", "2",
            ])

    def test_serve_validates_concurrency(self, capsys):
        with pytest.raises(SystemExit, match="concurrency"):
            main([
                "serve", "--dataset", "yeast", "--scale", "tiny",
                "--queries", "4", "--concurrency", "0",
            ])


QUICK_SCENARIO = (
    "name: quick\n"
    "dataset: ppi\n"
    "scale: tiny\n"
    "workload:\n"
    "  queries: 4\n"
    "  tenants: 1\n"
    "  budget: 60000\n"
)


class TestScenario:
    """The ``repro scenario`` surface.

    Error paths run as real subprocesses: the contract under test is
    the *process* one — non-zero exit codes plus a one-line
    diagnostic on stderr — which in-process ``main()`` calls cannot
    fully pin down.
    """

    def scenario_cli(self, *argv):
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "scenario", *argv],
            capture_output=True, text=True, env=env, cwd=REPO,
        )

    def test_list_committed_matrix(self, capsys):
        code, out = run_cli(
            capsys, "scenario", "list", str(REPO / "scenarios")
        )
        assert code == 0
        assert "baseline-single" in out
        assert "replicated-chaos" in out

    def test_run_evaluates_sibling_expects(self, capsys):
        code, out = run_cli(
            capsys, "scenario", "run", "shard2-unrouted",
            "--dir", str(REPO / "scenarios"),
        )
        assert code == 0
        # the sibling named by answers_match runs too
        assert "baseline-single" in out
        assert "0 expect failure(s)" in out

    def test_missing_directory_exits_2(self):
        proc = self.scenario_cli("verify", "/no/such/dir")
        assert proc.returncode == 2
        diagnostic = proc.stderr.strip().splitlines()
        assert len(diagnostic) == 1
        assert diagnostic[0].startswith("scenario: ")
        assert "not a scenario directory" in diagnostic[0]

    def test_malformed_yaml_exits_2(self, tmp_path):
        (tmp_path / "bad.yaml").write_text("name: [broken\n")
        proc = self.scenario_cli("verify", str(tmp_path))
        assert proc.returncode == 2
        diagnostic = proc.stderr.strip().splitlines()
        assert len(diagnostic) == 1
        assert "bad.yaml:1" in diagnostic[0]

    def test_unknown_key_exits_2_with_dotted_path(self, tmp_path):
        (tmp_path / "probe.yaml").write_text(
            QUICK_SCENARIO + "topology:\n  replica: 2\n"
        )
        proc = self.scenario_cli("verify", str(tmp_path))
        assert proc.returncode == 2
        assert "topology.replica: unknown key" in proc.stderr

    def test_failed_expect_exits_1(self, tmp_path):
        (tmp_path / "quick.yaml").write_text(
            QUICK_SCENARIO
            + "expect:\n  answers_digest: \"00000000000000aa\"\n"
        )
        proc = self.scenario_cli("verify", str(tmp_path))
        assert proc.returncode == 1
        fails = [
            ln for ln in proc.stderr.splitlines()
            if ln.startswith("FAIL ")
        ]
        assert len(fails) == 1
        assert "expect.answers_digest" in fails[0]
        assert "1 expect failure(s)" in proc.stdout

    def test_unknown_scenario_name_exits_2(self, tmp_path):
        (tmp_path / "quick.yaml").write_text(QUICK_SCENARIO)
        proc = self.scenario_cli(
            "run", "ghost", "--dir", str(tmp_path)
        )
        assert proc.returncode == 2
        assert "ghost" in proc.stderr
