"""GraphQL-specific tests: signatures, pseudo-iso refinement, plans."""

import random

import pytest

from repro.graphs import LabeledGraph, gnm_graph, uniform_labels
from repro.matching import GraphQLIndex, GraphQLMatcher

from .conftest import canonical_embeddings, random_query_from


def test_signature_contents():
    g = LabeledGraph.from_edges(
        ["A", "B", "B", "C"], [(0, 1), (0, 2), (0, 3)]
    )
    ix = GraphQLIndex(g)
    assert ix.signatures[0] == {"B": 2, "C": 1}
    assert ix.signatures[3] == {"A": 1}


def test_signature_filter_prunes():
    """A query vertex needing two B-neighbours cannot match a store
    vertex with only one."""
    g = LabeledGraph.from_edges(
        ["A", "B", "A", "B", "B"], [(0, 1), (2, 3), (2, 4)]
    )
    q = LabeledGraph.from_edges(["A", "B", "B"], [(0, 1), (0, 2)])
    out = GraphQLMatcher().run(g, q, max_embeddings=100)
    assert out.found
    assert all(emb[0] == 2 for emb in out.embeddings)


def test_pseudo_iso_requires_distinct_neighbours():
    """Two same-label query neighbours need two distinct store
    neighbours — the bipartite test must catch the single-neighbour
    impostor."""
    g = LabeledGraph.from_edges(
        # vertex 0: one B neighbour; vertex 3: two B neighbours
        ["A", "B", "A", "B", "B"],
        [(0, 1), (2, 3), (2, 4)],
    )
    q = LabeledGraph.from_edges(["A", "B", "B"], [(0, 1), (0, 2)])
    matcher = GraphQLMatcher(refine_level=2)
    out = matcher.run(g, q, max_embeddings=100)
    assert all(emb[0] == 2 for emb in out.embeddings)


def test_refine_level_zero_still_correct(small_store):
    query = random_query_from(small_store, 5, 31)
    lazy = GraphQLMatcher(refine_level=0).run(
        small_store, query, max_embeddings=10**6
    )
    eager = GraphQLMatcher(refine_level=4).run(
        small_store, query, max_embeddings=10**6
    )
    assert canonical_embeddings(lazy.embeddings) == canonical_embeddings(
        eager.embeddings
    )


def test_more_refinement_never_increases_join_answer(small_store):
    """Refinement prunes candidates; answers must be unchanged while
    steps may shift."""
    query = random_query_from(small_store, 6, 37)
    out0 = GraphQLMatcher(refine_level=0).run(
        small_store, query, max_embeddings=10**6
    )
    out4 = GraphQLMatcher(refine_level=4).run(
        small_store, query, max_embeddings=10**6
    )
    assert out0.num_embeddings == out4.num_embeddings


def test_invalid_refine_level():
    with pytest.raises(ValueError):
        GraphQLMatcher(refine_level=-1)


def test_prepare_returns_graphql_index(small_store):
    assert isinstance(GraphQLMatcher().prepare(small_store), GraphQLIndex)


def test_accepts_plain_graph_index(small_store):
    """Engine upgrades a plain GraphIndex transparently."""
    from repro.matching import GraphIndex

    query = random_query_from(small_store, 4, 5)
    plain = GraphIndex(small_store)
    out = GraphQLMatcher().run(plain, query, max_embeddings=10)
    assert out.found
