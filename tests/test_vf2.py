"""VF2-specific tests: pruning soundness, ID sensitivity, root slicing."""

import random

import pytest

from repro.graphs import LabeledGraph, gnm_graph, uniform_labels
from repro.matching import GraphIndex, VF2Matcher, drive, make_matcher

from .conftest import canonical_embeddings, random_query_from


def test_finds_triangle():
    g = LabeledGraph.from_edges(
        ["A", "A", "A", "A"], [(0, 1), (1, 2), (0, 2), (2, 3)]
    )
    q = LabeledGraph.from_edges(["A", "A", "A"], [(0, 1), (1, 2), (0, 2)])
    out = VF2Matcher().run(g, q, max_embeddings=100)
    # the triangle {0,1,2} has 3! automorphic embeddings
    assert out.num_embeddings == 6


def test_non_induced_semantics():
    """A path query must match inside a triangle (non-induced sub-iso)."""
    g = LabeledGraph.from_edges(["A", "A", "A"], [(0, 1), (1, 2), (0, 2)])
    q = LabeledGraph.from_edges(["A", "A", "A"], [(0, 1), (1, 2)])
    out = VF2Matcher().run(g, q, max_embeddings=100)
    assert out.found
    assert out.num_embeddings == 6  # 3 choices of middle x 2 directions


def test_label_mismatch_pruned_immediately():
    g = LabeledGraph.from_edges(["A", "B"], [(0, 1)])
    q = LabeledGraph.from_edges(["A", "C"], [(0, 1)])
    out = VF2Matcher().run(g, q)
    assert not out.found
    assert out.exhausted


def test_query_larger_than_graph_refuted_for_free():
    g = LabeledGraph.from_edges(["A", "B"], [(0, 1)])
    q = LabeledGraph.from_edges(
        ["A", "B", "A"], [(0, 1), (1, 2), (0, 2)]
    )
    out = VF2Matcher().run(g, q)
    assert not out.found
    assert out.steps == 0


def test_node_id_order_changes_cost(small_store):
    """The reproduction's central lever: permuting query IDs changes the
    VF2 step count (while preserving the answer)."""
    query = random_query_from(small_store, 6, 3)
    costs = set()
    for seed in range(12):
        perm = list(query.vertices())
        random.Random(seed).shuffle(perm)
        out = VF2Matcher().run(
            small_store, query.permuted(perm), max_embeddings=1
        )
        costs.add(out.steps)
    assert len(costs) > 1


class TestRootSlicing:
    """Grapes' parallelisation contract: slicing the root candidates
    partitions the search exactly."""

    def _setup(self):
        rng = random.Random(17)
        g = gnm_graph(
            30, 70, uniform_labels(30, ["A", "B"], rng), rng
        )
        q = random_query_from(g, 5, 23)
        return g, q

    def test_slices_cover_full_search(self):
        g, q = self._setup()
        m = VF2Matcher()
        ix = m.prepare(g)
        full = m.run(ix, q, max_embeddings=10**6)
        roots = ix.candidates_by_label(q.label(0))
        half = len(roots) // 2
        parts = [roots[:half], roots[half:]]
        embeddings = []
        total_steps = 0
        for part in parts:
            gen = m.engine(
                ix, q, max_embeddings=10**6, root_candidates=tuple(part)
            )
            out = drive(gen)
            embeddings.extend(out.embeddings)
            total_steps += out.steps
        assert canonical_embeddings(embeddings) == canonical_embeddings(
            full.embeddings
        )
        assert total_steps == full.steps

    def test_empty_slice_is_cheap(self):
        g, q = self._setup()
        m = VF2Matcher()
        ix = m.prepare(g)
        gen = m.engine(ix, q, max_embeddings=1, root_candidates=())
        out = drive(gen)
        assert not out.found
        assert out.steps == 0

    def test_root_filter_ignores_wrong_labels(self):
        g, q = self._setup()
        m = VF2Matcher()
        ix = m.prepare(g)
        # pass every vertex: label filtering inside must keep it sound
        gen = m.engine(
            ix, q, max_embeddings=10**6,
            root_candidates=tuple(g.vertices()),
        )
        out = drive(gen)
        ref = m.run(ix, q, max_embeddings=10**6)
        assert canonical_embeddings(out.embeddings) == (
            canonical_embeddings(ref.embeddings)
        )


def test_lookahead_never_false_dismisses(medium_store):
    """VF2 with pruning finds exactly what brute force finds (already
    covered by agreement tests; this pins a larger store)."""
    query = random_query_from(medium_store, 6, 41)
    ref = make_matcher("REF").run(medium_store, query, max_embeddings=10**6)
    out = VF2Matcher().run(medium_store, query, max_embeddings=10**6)
    assert canonical_embeddings(out.embeddings) == canonical_embeddings(
        ref.embeddings
    )


class TestSelectionPolicies:
    def test_all_policies_agree_on_answers(self, small_store):
        from repro.matching import SELECTION_POLICIES

        query = random_query_from(small_store, 6, 51)
        base = None
        for policy in SELECTION_POLICIES:
            out = VF2Matcher(selection=policy).run(
                small_store, query, max_embeddings=10**6
            )
            embs = canonical_embeddings(out.embeddings)
            if base is None:
                base = embs
            assert embs == base

    def test_policies_change_cost(self, medium_store):
        from repro.matching import SELECTION_POLICIES

        query = random_query_from(medium_store, 8, 61)
        steps = {
            policy: VF2Matcher(selection=policy)
            .run(medium_store, query, max_embeddings=1)
            .steps
            for policy in SELECTION_POLICIES
        }
        assert len(set(steps.values())) > 1

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            VF2Matcher(selection="alphabetical")

    def test_policy_reflected_in_name(self):
        assert VF2Matcher().name == "VF2"
        assert VF2Matcher(selection="rarity").name == "VF2[rarity]"
