"""Unit tests for the random graph generators."""

import random

import pytest

from repro.graphs import (
    GraphError,
    disjoint_union,
    gnm_graph,
    mutate_graph,
    powerlaw_graph,
    sparse_tree_like_graph,
    uniform_labels,
    zipf_labels,
)


class TestLabels:
    def test_uniform_labels_length_and_alphabet(self):
        rng = random.Random(1)
        labels = uniform_labels(100, ["A", "B"], rng)
        assert len(labels) == 100
        assert set(labels) <= {"A", "B"}

    def test_uniform_labels_empty_alphabet(self):
        with pytest.raises(GraphError):
            uniform_labels(5, [], random.Random(1))

    def test_zipf_labels_skewed(self):
        rng = random.Random(2)
        labels = zipf_labels(2000, ["L0", "L1", "L2", "L3"], rng, 1.5)
        counts = {lab: labels.count(lab) for lab in set(labels)}
        assert counts["L0"] > counts.get("L3", 0)

    def test_zipf_labels_empty_alphabet(self):
        with pytest.raises(GraphError):
            zipf_labels(5, [], random.Random(1))

    def test_label_generators_deterministic(self):
        a = uniform_labels(50, ["A", "B"], random.Random(3))
        b = uniform_labels(50, ["A", "B"], random.Random(3))
        assert a == b


class TestGnm:
    def test_exact_counts(self):
        rng = random.Random(1)
        g = gnm_graph(20, 40, uniform_labels(20, ["A"], rng), rng)
        assert g.order == 20
        assert g.size == 40

    def test_connected(self):
        rng = random.Random(2)
        g = gnm_graph(30, 35, uniform_labels(30, ["A"], rng), rng)
        assert g.is_connected()

    def test_too_many_edges_rejected(self):
        rng = random.Random(1)
        with pytest.raises(GraphError):
            gnm_graph(4, 10, ["A"] * 4, rng)

    def test_too_few_edges_rejected(self):
        rng = random.Random(1)
        with pytest.raises(GraphError):
            gnm_graph(10, 5, ["A"] * 10, rng)

    def test_deterministic(self):
        def build(seed):
            rng = random.Random(seed)
            return gnm_graph(15, 30, ["A"] * 15, rng)

        assert build(5).same_labeled_structure(build(5))


class TestPowerlaw:
    def test_order_and_connectivity(self):
        rng = random.Random(3)
        g = powerlaw_graph(60, 3, uniform_labels(60, ["A", "B"], rng), rng)
        assert g.order == 60
        assert g.is_connected()

    def test_heavy_tail(self):
        rng = random.Random(4)
        g = powerlaw_graph(300, 2, ["A"] * 300, rng)
        degrees = sorted(g.degree(v) for v in g.vertices())
        # the max degree should far exceed the median in a BA graph
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]

    def test_parameter_validation(self):
        rng = random.Random(1)
        with pytest.raises(GraphError):
            powerlaw_graph(5, 0, ["A"] * 5, rng)
        with pytest.raises(GraphError):
            powerlaw_graph(3, 3, ["A"] * 3, rng)


class TestSparseTreeLike:
    def test_connected_and_sparse(self):
        rng = random.Random(5)
        g = sparse_tree_like_graph(200, 0.4, ["A"] * 200, rng)
        assert g.is_connected()
        assert g.size < 2 * g.order

    def test_zero_extra_edges_is_tree(self):
        rng = random.Random(6)
        g = sparse_tree_like_graph(50, 0.0, ["A"] * 50, rng)
        assert g.size == 49

    def test_negative_fraction_rejected(self):
        with pytest.raises(GraphError):
            sparse_tree_like_graph(10, -0.1, ["A"] * 10, random.Random(1))


class TestDisjointUnion:
    def test_union_counts(self):
        rng = random.Random(7)
        a = gnm_graph(10, 15, ["A"] * 10, rng)
        b = gnm_graph(8, 10, ["B"] * 8, rng)
        u = disjoint_union([a, b])
        assert u.order == 18
        assert u.size == 25
        assert len(u.connected_components()) == 2

    def test_union_preserves_labels(self):
        rng = random.Random(8)
        a = gnm_graph(5, 6, ["A"] * 5, rng)
        b = gnm_graph(5, 6, ["B"] * 5, rng)
        u = disjoint_union([a, b])
        assert u.label(0) == "A"
        assert u.label(5) == "B"

    def test_union_of_one(self):
        rng = random.Random(9)
        a = gnm_graph(5, 6, ["A"] * 5, rng)
        u = disjoint_union([a])
        assert u.same_labeled_structure(a)


class TestMutate:
    def test_preserves_order_and_size(self):
        rng = random.Random(10)
        g = gnm_graph(30, 60, uniform_labels(30, ["A", "B"], rng), rng)
        m = mutate_graph(g, rng, 0.2, 0.2, ["A", "B"])
        assert m.order == g.order
        assert m.size == g.size

    def test_zero_mutation_is_copy(self):
        rng = random.Random(11)
        g = gnm_graph(20, 40, uniform_labels(20, ["A", "B"], rng), rng)
        m = mutate_graph(g, rng, 0.0, 0.0)
        assert m.same_labeled_structure(g)

    def test_mutation_changes_something(self):
        rng = random.Random(12)
        g = gnm_graph(40, 100, uniform_labels(40, ["A", "B"], rng), rng)
        m = mutate_graph(g, rng, 0.4, 0.4, ["A", "B"])
        assert not m.same_labeled_structure(g)

    def test_invalid_fraction_rejected(self):
        rng = random.Random(1)
        g = gnm_graph(5, 6, ["A"] * 5, rng)
        with pytest.raises(GraphError):
            mutate_graph(g, rng, 1.5, 0.0)
