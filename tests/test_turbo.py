"""TurboISO-specific tests: regions, start vertex, pruning."""

import random

import pytest

from repro.graphs import LabeledGraph, gnm_graph, uniform_labels
from repro.matching import TurboISOMatcher, make_matcher

from .conftest import canonical_embeddings, random_query_from


def test_registered():
    assert isinstance(make_matcher("TUR"), TurboISOMatcher)


def test_simple_match():
    g = LabeledGraph.from_edges(
        ["A", "B", "C", "B"], [(0, 1), (1, 2), (2, 3)]
    )
    q = LabeledGraph.from_edges(["B", "C"], [(0, 1)])
    out = TurboISOMatcher().run(g, q, max_embeddings=10)
    assert out.num_embeddings == 2  # both Bs flank the C


def test_region_pruning_skips_dead_roots():
    """Roots whose region lacks a required label are pruned without
    entering the join search."""
    # two stars: one A-hub with B leaves, one A-hub with C leaves
    g = LabeledGraph(6, ["A", "B", "B", "A", "C", "C"])
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(3, 4)
    g.add_edge(3, 5)
    q = LabeledGraph.from_edges(["A", "C"], [(0, 1)])
    out = TurboISOMatcher().run(g, q, max_embeddings=10)
    assert out.num_embeddings == 2
    # the A-with-B-leaves region must have been rejected cheaply: the
    # total cost stays below a handful of steps per stored vertex
    assert out.steps < 20


def test_agreement_on_dense_store(medium_store):
    query = random_query_from(medium_store, 7, 19)
    ref = make_matcher("REF").run(
        medium_store, query, max_embeddings=10**6
    )
    out = TurboISOMatcher().run(
        medium_store, query, max_embeddings=10**6
    )
    assert canonical_embeddings(out.embeddings) == (
        canonical_embeddings(ref.embeddings)
    )


def test_disconnected_query(small_store):
    q = LabeledGraph(3, [small_store.label(0), "A", "B"])
    q.add_edge(1, 2)
    ref = make_matcher("REF").run(small_store, q, max_embeddings=10**6)
    out = TurboISOMatcher().run(small_store, q, max_embeddings=10**6)
    assert out.num_embeddings == ref.num_embeddings


def test_cost_profile_differs_from_vf2(medium_store):
    """TurboISO must be a genuinely *different* portfolio member: over a
    set of queries its costs differ from VF2's (in either direction)."""
    diffs = 0
    for seed in range(6):
        query = random_query_from(medium_store, 7, 300 + seed)
        a = make_matcher("VF2").run(
            medium_store, query, max_embeddings=1
        )
        b = make_matcher("TUR").run(
            medium_store, query, max_embeddings=1
        )
        if a.steps != b.steps:
            diffs += 1
    assert diffs >= 3


def test_empty_query_rejected(small_store):
    with pytest.raises(ValueError):
        TurboISOMatcher().run(small_store, LabeledGraph(0, []))
