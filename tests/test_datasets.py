"""Unit tests for the paper-dataset stand-ins (Tables 1-2 regimes)."""

import pytest

from repro.datasets import (
    graphgen_like,
    human_like,
    ppi_like,
    summarize_collection,
    summarize_graph,
    wordnet_like,
    yeast_like,
)


class TestNFVDatasets:
    def test_yeast_regime(self):
        g = yeast_like(n=300, num_labels=30)
        assert g.order == 300
        assert g.is_connected()
        # sparse power-law: avg degree near the paper's 8
        assert 4 <= g.average_degree() <= 12
        assert len(g.distinct_labels()) > 10

    def test_human_denser_than_yeast(self):
        y = yeast_like(n=300, num_labels=30)
        h = human_like(n=300, num_labels=12)
        assert h.average_degree() > y.average_degree()

    def test_wordnet_near_tree_few_labels(self):
        g = wordnet_like(n=500)
        assert g.is_connected()
        assert g.average_degree() < 4
        assert len(g.distinct_labels()) <= 5

    def test_wordnet_label_skew(self):
        g = wordnet_like(n=2000)
        freqs = sorted(g.label_frequencies().values(), reverse=True)
        # the paper stresses wordnet's "highly skewed" label frequencies
        assert freqs[0] > 5 * freqs[-1]

    def test_determinism(self):
        assert yeast_like(n=200).same_labeled_structure(yeast_like(n=200))

    def test_custom_seed_changes_graph(self):
        a = yeast_like(n=200, seed=1)
        b = yeast_like(n=200, seed=2)
        assert not a.same_labeled_structure(b)


class TestFTVDatasets:
    def test_ppi_graphs_disconnected(self):
        graphs = ppi_like(num_graphs=4, avg_nodes=90, num_labels=8)
        assert len(graphs) == 4
        # Table 1: all PPI graphs are disconnected (module unions)
        assert all(len(g.connected_components()) > 1 for g in graphs)

    def test_ppi_family_shares_labels(self):
        graphs = ppi_like(num_graphs=4, avg_nodes=90, num_labels=8)
        alphabet = set()
        for g in graphs:
            alphabet |= g.distinct_labels()
        assert len(alphabet) <= 8

    def test_synthetic_graphs_connected(self):
        graphs = graphgen_like(num_graphs=5, avg_nodes=40, num_labels=5)
        assert all(g.is_connected() for g in graphs)

    def test_synthetic_density_regime(self):
        graphs = graphgen_like(
            num_graphs=5, avg_nodes=50, density=0.12, num_labels=5
        )
        avg_density = sum(g.density() for g in graphs) / len(graphs)
        assert 0.06 <= avg_density <= 0.2

    def test_determinism(self):
        a = ppi_like(num_graphs=3, avg_nodes=60, num_labels=8)
        b = ppi_like(num_graphs=3, avg_nodes=60, num_labels=8)
        for x, y in zip(a, b):
            assert x.same_labeled_structure(y)


class TestSummaries:
    def test_collection_summary(self):
        graphs = graphgen_like(num_graphs=4, avg_nodes=40, num_labels=5)
        s = summarize_collection(graphs)
        assert s.num_graphs == 4
        assert s.num_labels <= 5
        assert s.avg_nodes > 0
        assert s.avg_degree > 0
        rows = s.as_rows()
        assert ("# graphs", "4") in rows

    def test_graph_summary(self):
        g = yeast_like(n=150, num_labels=20)
        s = summarize_graph(g)
        assert s.num_graphs == 1
        assert s.stddev_nodes == 0.0
        assert s.avg_nodes == 150

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            summarize_collection([])
