"""Tests for the post-hoc analysis tools."""

import pytest

from repro.harness import (
    NFVCostMatrix,
    diagnose_straggler,
    hard_overlap_table,
    hard_set,
    winner_attribution_table,
)
from repro.metrics import CostRecord, Thresholds
from repro.workload import Query
from repro.graphs import LabeledGraph


def _query(edges=2):
    g = LabeledGraph.from_edges(
        ["A"] * (edges + 1), [(i, i + 1) for i in range(edges)]
    )
    return Query(graph=g, source_graph_id=0, num_edges=edges, seed=0)


def _matrix():
    """Hand-built 3-query matrix: unit 0 hard for X, unit 1 hard for Y,
    unit 2 easy for both."""
    thresholds = Thresholds(easy_steps=10, budget_steps=100)
    m = NFVCostMatrix(
        dataset="toy",
        thresholds=thresholds,
        queries=[_query(), _query(), _query()],
        methods=("X", "Y"),
        variant_names=("Orig", "ILF"),
    )

    def put(u, meth, var, steps, killed=False):
        m.records[(u, meth, var)] = CostRecord(
            steps=steps, found=not killed, killed=killed
        )

    put(0, "X", "Orig", 100, killed=True)
    put(0, "X", "ILF", 5)
    put(0, "Y", "Orig", 7)
    put(0, "Y", "ILF", 9)
    put(1, "X", "Orig", 4)
    put(1, "X", "ILF", 6)
    put(1, "Y", "Orig", 100, killed=True)
    put(1, "Y", "ILF", 100, killed=True)
    put(2, "X", "Orig", 3)
    put(2, "X", "ILF", 8)
    put(2, "Y", "Orig", 5)
    put(2, "Y", "ILF", 2)
    return m


class TestHardSets:
    def test_hard_set(self):
        m = _matrix()
        assert hard_set(m, "X") == frozenset({0})
        assert hard_set(m, "Y") == frozenset({1})

    def test_overlap_table(self):
        m = _matrix()
        t = hard_overlap_table(m)
        rows = {row[0]: row for row in t.rows}
        # disjoint hard sets: Jaccard 0 across, 1 with self
        assert rows["X"][2] == 1.0  # J vs X
        assert rows["X"][3] == 0.0  # J vs Y
        assert rows["Y"][1] == 1  # |hard|

    def test_empty_hard_sets_overlap_zero(self):
        m = _matrix()
        t = hard_overlap_table(m, variant="ILF")
        rows = {row[0]: row for row in t.rows}
        # X-ILF completes everywhere; Y-ILF killed on unit 1
        assert rows["X"][1] == 0
        assert rows["X"][2] == 0.0  # J(empty, empty) defined as 0


class TestWinnerAttribution:
    def test_wins_counted(self):
        m = _matrix()
        members = [("X", "Orig"), ("Y", "Orig")]
        t = winner_attribution_table(m, members)
        wins = {row[0]: row[1] for row in t.rows}
        # unit 0: Y-Orig (7 < killed); unit 1: X-Orig; unit 2: X-Orig
        assert wins["X-Orig"] == 2
        assert wins["Y-Orig"] == 1

    def test_killed_races_noted(self):
        m = _matrix()
        t = winner_attribution_table(m, [("Y", "ILF")])
        assert any("killed" in n for n in t.notes)


class TestDiagnosis:
    def test_straggler_rescued(self):
        m = _matrix()
        d = diagnose_straggler(m, 0, "X")
        assert d.rescued
        assert d.baseline_steps == 100  # charged at budget
        # cheapest rescuer is X-ILF at 5 steps
        assert d.rescuers[0] == ("X", "ILF", 5)
        assert d.best_speedup == pytest.approx(20.0)
        assert not d.psi_killed

    def test_unrescuable_unit(self):
        m = _matrix()
        # make every attempt on unit 0 killed
        for meth in ("X", "Y"):
            for var in ("Orig", "ILF"):
                m.records[(0, meth, var)] = CostRecord(
                    steps=100, found=False, killed=True
                )
        d = diagnose_straggler(m, 0, "X")
        assert not d.rescued
        assert d.psi_killed
        assert d.best_speedup == 1.0
