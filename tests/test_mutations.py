"""Crash-safe dynamic collections end to end.

Four claims under test:

* **Fencing + lifecycle** — mutations queue until a quiesce point
  (never interleaving with an in-flight fan-out), acknowledge only
  after journal append + catalog apply, and reject with the same
  retry-after vocabulary as degraded queries.
* **Cache epoch-stamping** — a removed graph id can never appear in a
  post-mutation answer, even when the same canonical query was served
  from the result cache moments before the mutation.
* **Layout-invariant incremental maintenance** — an update stream
  driven through unsharded, sharded+routed, and replicated layouts
  matches the rebuild-from-scratch oracle at every quiesce point, and
  all three layouts land on the same final digest.
* **Replay recovery** — a crash between journal append and ack loses
  nothing that was acknowledged and restores exactly once what was
  journaled; replay is idempotent; add→remove→re-add survives a cold
  boot from checkpoint + journal suffix.
"""

from __future__ import annotations

import pytest

from repro.service import QueryOptions, Service
from repro.service.loadgen import (
    collection_digest,
    oracle_digest,
    plan_update_stream,
    run_update_stream,
)
from repro.store.journal import JournalCrash
from repro.workload import (
    default_tenant_mixes,
    generate_tenant_stream,
    generate_workload,
)

OPTS = QueryOptions(rewritings=("Orig", "DND"))


def make_service(shards=1, replicas=1, **kw) -> Service:
    svc = Service(workers=4, shards=shards, replicas=replicas, **kw)
    svc.load_dataset("ppi", scale="tiny")
    return svc


def probe_for(svc: Service, gid: int):
    """A query graph carved out of collection slot ``gid`` — it must
    match that graph positively."""
    graphs = svc.catalog.get("ppi").graphs
    return generate_workload([graphs[gid]], 1, 3, seed=3)[0].graph


def apply_all(svc: Service) -> None:
    svc.pump()
    assert not svc._mutations


# ----------------------------------------------------------------------
# fencing + lifecycle
# ----------------------------------------------------------------------

class TestLifecycle:
    def test_add_then_remove_round_trip(self):
        svc = make_service()
        entry = svc.catalog.get("ppi")
        base = len(entry.graphs)
        newcomer = entry.graphs[1]
        added = svc.add_graph("ppi", newcomer)
        apply_all(svc)
        assert added.applied and added.graph_id == base
        assert base in entry.live_graph_ids()
        removed = svc.remove_graph("ppi", base)
        apply_all(svc)
        assert removed.applied
        assert base not in entry.live_graph_ids()
        assert svc.mutations_applied == 2

    def test_mutation_is_fenced_until_quiesce(self):
        svc = make_service()
        ticket = svc.submit("ppi", probe_for(svc, 0), options=OPTS)
        mutation = svc.remove_graph("ppi", 0)
        while not ticket.done:
            # fenced: never applied while the query holds id maps
            assert mutation.state == "pending"
            svc.pump()
        svc.pump()
        assert mutation.applied

    def test_backlog_rejection_carries_retry_after(self):
        svc = make_service(max_pending_mutations=1)
        g = svc.catalog.get("ppi").graphs[0]
        first = svc.add_graph("ppi", g)
        second = svc.add_graph("ppi", g)
        assert second.rejected
        assert "backlog" in second.reason
        assert second.retry_after is not None
        assert second.retry_after > svc.clock
        apply_all(svc)
        assert first.applied

    @pytest.mark.parametrize("op, kwargs, fragment", [
        ("remove_graph", {"graph_id": 10_000}, "out of range"),
        ("add_graph", {"graph_id": 1}, "is live"),
    ])
    def test_permanent_rejections_have_no_retry_after(
        self, op, kwargs, fragment
    ):
        svc = make_service()
        g = svc.catalog.get("ppi").graphs[0]
        if op == "add_graph":
            kwargs = dict(kwargs, graph=g)
        mutation = svc.submit_mutation("ppi", op, **kwargs)
        svc.pump()
        assert mutation.rejected
        assert fragment in mutation.reason
        assert mutation.retry_after is None

    def test_double_remove_is_rejected(self):
        svc = make_service()
        svc.remove_graph("ppi", 0)
        apply_all(svc)
        again = svc.remove_graph("ppi", 0)
        svc.pump()
        assert again.rejected and "already removed" in again.reason

    def test_mutation_metrics_are_registry_only(self):
        # the legacy stats dict is pinned (tests/test_obs.py); the
        # mutation counters live in the registry namespace instead
        svc = make_service()
        svc.remove_graph("ppi", 0)
        apply_all(svc)
        registry = svc.metrics.snapshot()
        assert registry["mutations.applied"] == 1
        assert registry["mutations.pending"] == 0
        assert registry["journal.lag"] == 0
        assert registry["service.mutations"]["epoch"] >= 1
        assert "mutations" not in svc.stats()


# ----------------------------------------------------------------------
# cache epoch-stamping (the staleness regression)
# ----------------------------------------------------------------------

class TestCacheEpoch:
    def test_removed_id_never_in_post_mutation_answer(self):
        svc = make_service()
        probe = probe_for(svc, 0)
        first = svc.submit("ppi", probe, options=OPTS)
        svc.run_until_idle()
        assert 0 in first.result.matching_ids
        # prove the canonical key is hot: an identical submission is
        # served from the result cache
        cached = svc.submit("ppi", probe, options=OPTS)
        svc.run_until_idle()
        assert cached.result.from_cache
        assert 0 in cached.result.matching_ids
        svc.remove_graph("ppi", 0)
        apply_all(svc)
        # same canonical query, post-mutation epoch: the stale entry
        # must be invisible, and the dead id gone from the answer
        after = svc.submit("ppi", probe, options=OPTS)
        svc.run_until_idle()
        assert not after.result.from_cache
        assert 0 not in after.result.matching_ids

    def test_cache_warms_again_within_an_epoch(self):
        svc = make_service()
        probe = probe_for(svc, 1)
        svc.remove_graph("ppi", 0)
        apply_all(svc)
        svc.submit("ppi", probe, options=OPTS)
        svc.run_until_idle()
        again = svc.submit("ppi", probe, options=OPTS)
        svc.run_until_idle()
        assert again.result.from_cache


# ----------------------------------------------------------------------
# layout-invariant incremental maintenance (the oracle claim)
# ----------------------------------------------------------------------

class TestOracleAcrossLayouts:
    LAYOUTS = {"single": (1, 1), "sharded": (2, 1), "replicated": (2, 2)}

    @pytest.fixture(scope="class")
    def layout_reports(self):
        reports = {}
        for name, (shards, replicas) in self.LAYOUTS.items():
            svc = make_service(shards=shards, replicas=replicas)
            graphs = svc.catalog.get("ppi").graphs
            mixes = default_tenant_mixes(
                2, 5, sizes=(4, 6), repeat_fraction=0.3
            )
            streams = {
                m.tenant: generate_tenant_stream(graphs, m, seed=9)
                for m in mixes
            }
            ops = plan_update_stream(graphs, 8, seed=3)
            reports[name] = run_update_stream(
                svc, "ppi", streams, ops,
                options=OPTS, concurrency=2, mutate_every=4,
            )
        return reports

    @pytest.mark.parametrize("name", sorted(LAYOUTS))
    def test_every_quiesce_point_matches_the_oracle(
        self, layout_reports, name
    ):
        summary = layout_reports[name].mutations
        assert summary["applied"] == 8
        assert summary["rejected"] == 0
        oracle = summary["oracle"]
        assert oracle["checks"] >= 2
        assert oracle["mismatches"] == 0
        for point in oracle["points"]:
            assert point["digest"] == point["oracle"]

    def test_all_layouts_land_on_one_final_digest(self, layout_reports):
        finals = {
            name: report.mutations["oracle"]["points"][-1]["digest"]
            for name, report in layout_reports.items()
        }
        assert len(set(finals.values())) == 1, finals

    def test_no_queries_lost_under_mutation(self, layout_reports):
        for report in layout_reports.values():
            assert all(t.done for t in report.tickets)


# ----------------------------------------------------------------------
# journal replay recovery
# ----------------------------------------------------------------------

class TestReplayRecovery:
    def test_crash_after_full_append_replays_exactly_once(self, tmp_path):
        root = str(tmp_path)
        svc = make_service(journal=root)
        g = svc.catalog.get("ppi").graphs[0]
        base = len(svc.catalog.get("ppi").graphs)
        mutation = svc.add_graph("ppi", g)
        svc.journal_fail_after = 1_000_000  # whole frame lands, then death
        with pytest.raises(JournalCrash):
            svc.pump()
        assert not mutation.applied  # the client was never acknowledged
        # the reborn process: cold boot + replay
        reborn = make_service(journal=root)
        assert reborn.journal_lag() == 1
        reborn.replay_journal()
        assert reborn.mutations_replayed == 1
        assert reborn.journal_lag() == 0
        assert base in reborn.catalog.get("ppi").live_graph_ids()
        # idempotent: a second replay changes nothing
        reborn.replay_journal()
        assert reborn.mutations_replayed == 1

    def test_torn_append_loses_only_the_unacked_mutation(self, tmp_path):
        root = str(tmp_path)
        svc = make_service(journal=root)
        g = svc.catalog.get("ppi").graphs[0]
        acked = svc.add_graph("ppi", g)
        apply_all(svc)
        assert acked.applied
        svc.remove_graph("ppi", 0)
        svc.journal_fail_after = 10  # torn mid-frame
        with pytest.raises(JournalCrash):
            svc.pump()
        reborn = make_service(journal=root)
        report = reborn.replay_journal()
        # the acknowledged add survives; the torn remove is quarantined
        assert reborn.mutations_replayed == 1
        assert report.quarantined is not None
        assert 0 in reborn.catalog.get("ppi").live_graph_ids()

    def test_add_remove_readd_across_cold_boot(self, tmp_path):
        root = str(tmp_path)
        svc = make_service(journal=root)
        entry = svc.catalog.get("ppi")
        base = len(entry.graphs)
        newcomer, replacement = entry.graphs[1], entry.graphs[2]
        svc.add_graph("ppi", newcomer)
        apply_all(svc)
        svc.remove_graph("ppi", base)
        apply_all(svc)
        revived = svc.submit_mutation(
            "ppi", "add_graph", graph=replacement, graph_id=base
        )
        apply_all(svc)
        assert revived.applied
        # checkpoint folds the journal into the manifest...
        summary = svc.checkpoint_store(root)
        assert summary["journal_seq"] == 2
        # ...then two more mutations land after it
        svc.remove_graph("ppi", 0)
        apply_all(svc)
        # cold boot from checkpoint + journal suffix
        reborn = Service(workers=4, store=root, journal=root)
        reborn.load_dataset("ppi", scale="tiny")
        reborn.replay_journal()
        assert reborn.mutations_replayed == 1  # only the post-checkpoint op
        live, live2 = (
            sorted(entry.live_graph_ids()),
            sorted(reborn.catalog.get("ppi").live_graph_ids()),
        )
        assert live == live2
        probes = [
            q.graph
            for q in generate_workload(
                [entry.graphs[g] for g in live], 5, 3, seed=11
            )
        ]
        assert collection_digest(svc, "ppi", probes) == collection_digest(
            reborn, "ppi", probes
        )
        assert collection_digest(
            reborn, "ppi", probes
        ) == oracle_digest(reborn, "ppi", probes)

    def test_replay_requires_a_journal(self):
        svc = make_service()
        with pytest.raises(ValueError, match="no journal"):
            svc.replay_journal()
