"""Tests for the dataset catalog and the result cache."""

import pytest

from repro.service import DatasetCatalog, ResultCache
from repro.service.cache import CachedResult


class TestCatalog:
    def test_load_nfv(self):
        cat = DatasetCatalog()
        entry = cat.load("yeast", scale="tiny", algorithms=("GQL",))
        assert entry.kind == "nfv"
        assert entry.graph.order > 0
        assert entry.psi is not None
        assert cat.datasets() == ["yeast"]

    def test_load_is_idempotent(self):
        cat = DatasetCatalog()
        a = cat.load("yeast", scale="tiny")
        b = cat.load("yeast", scale="tiny")
        assert a is b

    def test_prepared_indexes_warm(self):
        cat = DatasetCatalog()
        entry = cat.load("yeast", scale="tiny", algorithms=("GQL", "SPA"))
        # prepared() must return the already-built index, not rebuild
        assert entry.psi.prepared("GQL") is entry.psi.prepared("GQL")
        memo = entry.graph._index_memo
        assert memo  # warmed at load time

    def test_load_ftv(self):
        cat = DatasetCatalog()
        entry = cat.load("ppi", scale="tiny")
        assert entry.kind == "ftv"
        assert entry.ftv_index is not None
        assert len(entry.graphs) > 1
        with pytest.raises(ValueError):
            entry.graph  # collections have no single graph

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            DatasetCatalog().load("nope")

    def test_get_unloaded(self):
        with pytest.raises(KeyError, match="not loaded"):
            DatasetCatalog().get("yeast")

    def test_unload(self):
        cat = DatasetCatalog()
        cat.load("yeast", scale="tiny")
        cat.unload("yeast")
        assert cat.datasets() == []

    def test_mutation_detected(self):
        cat = DatasetCatalog()
        entry = cat.load("yeast", scale="tiny")
        entry.graph.add_edge(0, entry.graph.order - 1)
        with pytest.raises(RuntimeError, match="mutated"):
            cat.get("yeast")

    def test_memory_report(self):
        cat = DatasetCatalog()
        cat.load("yeast", scale="tiny", algorithms=("GQL",))
        report = cat.memory_report()
        assert report["total_bytes"] > 0
        row = report["datasets"]["yeast"]
        assert row["vertices"] > 0
        assert row["graph_bytes"] > 0
        assert row["prepared_indexes"] > 0


def _result(steps=10, found=True):
    return CachedResult(
        found=found,
        num_embeddings=1,
        steps=steps,
        winner=None,
        per_variant_steps=(),
    )


class TestResultCache:
    def test_lookup_miss_then_hit(self, small_store):
        from repro.workload import extract_query
        import random

        cache = ResultCache(capacity=4)
        q = extract_query(small_store, 5, random.Random(1))
        key = cache.key_for(q, ("ctx",))
        assert cache.lookup(key) is None
        cache.store(key, _result())
        assert cache.lookup(key).steps == 10
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_isomorphic_twin_hits(self, small_store):
        from repro.workload import extract_query, permuted_instance
        import random

        cache = ResultCache()
        q = extract_query(small_store, 6, random.Random(2))
        twin = permuted_instance(q, random.Random(3))
        cache.store(cache.key_for(q, ("ctx",)), _result(steps=77))
        hit = cache.lookup(cache.key_for(twin, ("ctx",)))
        assert hit is not None and hit.steps == 77

    def test_context_separates(self, small_store):
        from repro.workload import extract_query
        import random

        cache = ResultCache()
        q = extract_query(small_store, 5, random.Random(4))
        cache.store(cache.key_for(q, ("a",)), _result())
        assert cache.lookup(cache.key_for(q, ("b",))) is None

    def test_lru_eviction_counts(self):
        from repro.graphs import LabeledGraph

        cache = ResultCache(capacity=2)
        for i in range(3):
            g = LabeledGraph(2, [f"L{i}", f"L{i}"])
            g.add_edge(0, 1)
            cache.store(cache.key_for(g, ("ctx",)), _result(steps=i))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # the first-inserted entry is gone
        g0 = LabeledGraph(2, ["L0", "L0"])
        g0.add_edge(0, 1)
        assert cache.lookup(cache.key_for(g0, ("ctx",))) is None

    def test_uncacheable_counted(self):
        from repro.graphs import LabeledGraph
        from repro.service import canonical_query_key  # noqa: F401

        cycle = LabeledGraph(8, ["A"] * 8)
        for i in range(8):
            cycle.add_edge(i, (i + 1) % 8)
        cache = ResultCache()
        # monkey-free: shrink the canon budget through key_for's canon
        import repro.service.cache as cache_mod

        orig = cache_mod.canonical_query_key
        cache_mod.canonical_query_key = (
            lambda g: orig(g, max_branches=0)
        )
        try:
            assert cache.key_for(cycle, ("ctx",)) is None
        finally:
            cache_mod.canonical_query_key = orig
        assert cache.uncacheable == 1
        assert "uncacheable" in cache.as_metrics()


class TestCatalogReload:
    def test_conflicting_reload_raises(self):
        cat = DatasetCatalog()
        cat.load("yeast", scale="tiny")
        with pytest.raises(ValueError, match="already loaded"):
            cat.load("yeast", scale="default")
        with pytest.raises(ValueError, match="already loaded"):
            cat.load("yeast", scale="tiny", algorithms=("GQL",))
        # unload clears the way for a different configuration
        cat.unload("yeast")
        entry = cat.load("yeast", scale="tiny", algorithms=("GQL",))
        assert entry.prepared_algorithms == ("GQL",)
