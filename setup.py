"""Legacy setup shim: lets `pip install -e .` work on environments
without the `wheel` package (PEP 660 editable builds need bdist_wheel)."""
from setuptools import setup

setup()
