"""A strict stdlib-only parser for the YAML subset scenario configs use.

The container ships no ``pyyaml``; rather than gate the scenario
harness behind an optional dependency, this module parses exactly the
dialect ``scenarios/*.yaml`` is written in — and nothing more:

* mappings nested by consistent space indentation (tabs rejected),
* block lists of scalars (``- item``) and inline lists (``[a, b]``),
* scalars: ints (``_`` separators allowed), floats, ``true``/``false``,
  ``null``/``~``, single- or double-quoted strings, bare strings,
* ``#`` comments outside quotes.

Anything outside the dialect — anchors, block scalars, flow mappings,
multi-line strings, duplicate keys — is a loud :class:`YamliteError`
with the offending line number, never a silent guess.  The strictness
is a feature: a scenario config that does not parse the same way
everywhere cannot pin a digest.

:func:`dumps` emits the same dialect back (``loads(dumps(x)) == x``
for JSON-shaped data), which is what keeps
``ScenarioConfig.to_dict``/``from_dict`` round-trips testable without
a third-party emitter.
"""

from __future__ import annotations

import re

__all__ = ["YamliteError", "loads", "dumps"]


class YamliteError(ValueError):
    """A parse error, carrying the 1-based source line number."""

    def __init__(self, line: int, message: str) -> None:
        self.line = line
        super().__init__(f"line {line}: {message}")


_INT = re.compile(r"^[+-]?\d[\d_]*$")
_FLOAT = re.compile(r"^[+-]?(\d[\d_]*\.\d*|\.\d+|\d[\d_]*)([eE][+-]?\d+)?$")
_BARE_SAFE = re.compile(r"^[A-Za-z_][A-Za-z0-9_./+-]*$")


def _strip_comment(raw: str, line: int) -> str:
    """Cut an unquoted ``#`` comment off ``raw``."""
    quote = ""
    for i, ch in enumerate(raw):
        if quote:
            if ch == quote:
                quote = ""
        elif ch in "'\"":
            quote = ch
        elif ch == "#" and (i == 0 or raw[i - 1] in " \t"):
            return raw[:i]
    if quote:
        raise YamliteError(line, f"unterminated {quote} quote")
    return raw


def _scalar(text: str, line: int):
    text = text.strip()
    if text.startswith(("'", '"')):
        quote = text[0]
        if len(text) < 2 or not text.endswith(quote):
            raise YamliteError(line, f"unterminated {quote} quote")
        inner = text[1:-1]
        if quote in inner:
            raise YamliteError(
                line, f"embedded {quote} quotes are not supported"
            )
        return inner
    if text.startswith("["):
        if not text.endswith("]"):
            raise YamliteError(line, "unterminated inline list")
        body = text[1:-1].strip()
        if not body:
            return []
        return [_scalar(part, line) for part in _split_inline(body, line)]
    if text.startswith(("{", "&", "*", "|", ">", "%", "@")):
        raise YamliteError(
            line, f"unsupported YAML construct {text[0]!r}"
        )
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("null", "~"):
        return None
    if _INT.match(text):
        return int(text)
    if _FLOAT.match(text):
        return float(text)
    return text


def _split_inline(body: str, line: int) -> list[str]:
    """Split an inline list body on commas outside quotes."""
    parts, depth, quote, start = [], 0, "", 0
    for i, ch in enumerate(body):
        if quote:
            if ch == quote:
                quote = ""
        elif ch in "'\"":
            quote = ch
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(body[start:i])
            start = i + 1
    if depth or quote:
        raise YamliteError(line, "malformed inline list")
    parts.append(body[start:])
    if any(not p.strip() for p in parts):
        raise YamliteError(line, "empty inline list element")
    return parts


def _rows(text: str) -> list[tuple[int, int, str]]:
    """(line number, indent, stripped content) per significant line."""
    rows = []
    for no, raw in enumerate(text.splitlines(), 1):
        cut = _strip_comment(raw, no)
        if not cut.strip():
            continue
        indent = len(cut) - len(cut.lstrip(" \t"))
        if "\t" in cut[:indent]:
            raise YamliteError(no, "tabs are not allowed in indentation")
        rows.append((no, indent, cut.strip()))
    return rows


def _parse_block(rows, i: int, indent: int):
    """Parse one block (mapping or list) at exactly ``indent``."""
    no, _, content = rows[i]
    if content == "-" or content.startswith("- "):
        return _parse_list(rows, i, indent)
    return _parse_mapping(rows, i, indent)


def _parse_list(rows, i: int, indent: int):
    items = []
    while i < len(rows) and rows[i][1] == indent:
        no, _, content = rows[i]
        if not (content == "-" or content.startswith("- ")):
            raise YamliteError(
                no, "mapping key inside a list block"
            )
        body = content[1:].strip()
        if not body:
            raise YamliteError(no, "nested list blocks are not supported")
        if ":" in body and _looks_like_key(body):
            raise YamliteError(
                no, "mappings inside lists are not supported"
            )
        items.append(_scalar(body, no))
        i += 1
    if i < len(rows) and rows[i][1] > indent:
        raise YamliteError(rows[i][0], "unexpected indent inside list")
    return items, i


def _looks_like_key(body: str) -> bool:
    head = body.split(":", 1)[0].strip()
    return bool(_BARE_SAFE.match(head)) and not body.startswith(("'", '"'))


def _parse_mapping(rows, i: int, indent: int):
    mapping: dict = {}
    while i < len(rows) and rows[i][1] == indent:
        no, _, content = rows[i]
        if content == "-" or content.startswith("- "):
            raise YamliteError(no, "list item inside a mapping block")
        key, sep, rest = content.partition(":")
        key = key.strip()
        if not sep or not key or not _BARE_SAFE.match(key):
            raise YamliteError(no, f"expected 'key: value', got {content!r}")
        if key in mapping:
            raise YamliteError(no, f"duplicate key {key!r}")
        rest = rest.strip()
        i += 1
        if rest:
            mapping[key] = _scalar(rest, no)
            if i < len(rows) and rows[i][1] > indent:
                raise YamliteError(
                    rows[i][0], f"unexpected indent under scalar {key!r}"
                )
        else:
            if i >= len(rows) or rows[i][1] <= indent:
                raise YamliteError(
                    no, f"key {key!r} has no value (empty blocks are "
                    "not supported)"
                )
            mapping[key], i = _parse_block(rows, i, rows[i][1])
    if i < len(rows) and rows[i][1] > indent:
        raise YamliteError(rows[i][0], "inconsistent indentation")
    return mapping, i


def loads(text: str) -> dict:
    """Parse ``text``; the top level must be a mapping."""
    rows = _rows(text)
    if not rows:
        raise YamliteError(1, "empty document")
    if rows[0][1] != 0:
        raise YamliteError(rows[0][0], "top level must start at column 0")
    value, i = _parse_block(rows, 0, 0)
    if i != len(rows):
        raise YamliteError(rows[i][0], "trailing content")
    if not isinstance(value, dict):
        raise YamliteError(rows[0][0], "top level must be a mapping")
    return value


def _dump_scalar(value) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        if _BARE_SAFE.match(value) and value.lower() not in (
            "true", "false", "null", "~",
        ) and not _INT.match(value) and not _FLOAT.match(value):
            return value
        if '"' in value:
            raise ValueError(f"cannot dump string with quotes: {value!r}")
        return f'"{value}"'
    raise ValueError(f"cannot dump scalar of type {type(value).__name__}")


def _dump_block(value, indent: int, out: list[str]) -> None:
    pad = "  " * indent
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str) or not _BARE_SAFE.match(key):
                raise ValueError(f"cannot dump mapping key {key!r}")
            if isinstance(item, dict):
                if not item:
                    raise ValueError(
                        f"cannot dump empty mapping under {key!r}"
                    )
                out.append(f"{pad}{key}:")
                _dump_block(item, indent + 1, out)
            elif isinstance(item, (list, tuple)):
                rendered = ", ".join(_dump_scalar(v) for v in item)
                out.append(f"{pad}{key}: [{rendered}]")
            else:
                out.append(f"{pad}{key}: {_dump_scalar(item)}")
    else:
        raise ValueError("dumps expects a mapping at every block level")


def dumps(data: dict) -> str:
    """Emit ``data`` (mappings, scalar lists, scalars) as the dialect
    :func:`loads` parses; round-trips bit-for-bit for such data."""
    if not isinstance(data, dict) or not data:
        raise ValueError("dumps expects a non-empty mapping")
    out: list[str] = []
    _dump_block(data, 0, out)
    return "\n".join(out) + "\n"
