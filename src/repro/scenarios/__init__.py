"""Declarative scenario harness: YAML experiment configs + runner.

The serving stack has more configuration axes than the paper did —
shards, replicas, routing, rebalancing, chaos plans, persisted stores,
coalescing, plan seeding — and ``scenarios/*.yaml`` is where a
combination of them becomes a *named, committed, digest-pinned*
experiment instead of a hand-wired flag spelling.  Three layers:

* :mod:`repro.scenarios.yamlite` — the strict stdlib YAML-subset
  parser the configs are written in;
* :mod:`repro.scenarios.config` — the schema
  (:class:`ScenarioConfig` and its section dataclasses), validated
  with full dotted error paths and losslessly round-trippable;
* :mod:`repro.scenarios.runner` — the generic conformance runner
  (:class:`ScenarioRunner` -> :class:`ScenarioResult`) plus the
  ``expect``-block evaluator and the directory-level
  :func:`verify_scenarios` driver CI's scenario-matrix job calls.

``repro scenario list|run|verify`` is the CLI surface
(``src/repro/cli.py:cmd_scenario``); ``docs/SCENARIOS.md`` is the
schema reference.
"""

from .config import (
    EngineSpec,
    ExpectSpec,
    FaultSpec,
    MutationSpec,
    PersistenceSpec,
    ScenarioConfig,
    ScenarioConfigError,
    TopologySpec,
    WorkloadSpec,
    load_scenario_dir,
    load_scenario_file,
)
from .fuzz import random_scenario
from .runner import (
    ScenarioError,
    ScenarioResult,
    ScenarioRunner,
    evaluate_expect,
    run_with_siblings,
    verify_scenarios,
)
from .yamlite import YamliteError, dumps, loads

__all__ = [
    "EngineSpec",
    "ExpectSpec",
    "FaultSpec",
    "MutationSpec",
    "PersistenceSpec",
    "ScenarioConfig",
    "ScenarioConfigError",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioRunner",
    "TopologySpec",
    "WorkloadSpec",
    "YamliteError",
    "dumps",
    "evaluate_expect",
    "load_scenario_dir",
    "load_scenario_file",
    "loads",
    "random_scenario",
    "run_with_siblings",
    "verify_scenarios",
]
