"""Seeded random scenario generation for the determinism fuzz suite.

:func:`random_scenario` maps an integer seed to a *small but varied*
:class:`~repro.scenarios.config.ScenarioConfig` — the cross product
the satellite names (shards x replicas x routing x coalesce, plus
decision mode, plan seeding, chaos, tenant counts) at a query volume
tiny enough that running ~100 of them stays inside a test budget.

Determinism contract: the generator is a pure function of the seed
(one private ``random.Random``), and every config it emits passes
schema validation — so ``tests/test_scenario_fuzz.py`` can run each
config twice and assert identical :meth:`ScenarioResult.fingerprint`
values without ever persisting a YAML file.
"""

from __future__ import annotations

import random

from .config import (
    EngineSpec,
    FaultSpec,
    MutationSpec,
    PersistenceSpec,
    ScenarioConfig,
    TopologySpec,
    WorkloadSpec,
)

__all__ = ["random_scenario"]


def _random_mutations(seed: int, ftv: bool) -> MutationSpec:
    """The mutation arm, drawn from its *own* rng stream so adding it
    left every pre-existing axis draw (and thus every fuzz topology)
    untouched."""
    rng = random.Random(f"scenario-fuzz-mutations:{seed}")
    if not ftv or rng.random() >= 0.35:
        return MutationSpec()
    journal = rng.random() < 0.6
    return MutationSpec(
        count=rng.randint(3, 8),
        batch=rng.randint(1, 3),
        every=rng.choice((3, 6)),
        seed=rng.randint(0, 10_000),
        add_fraction=rng.choice((0.4, 0.6, 0.8)),
        journal=journal,
        crash_replay=journal and rng.random() < 0.4,
    )


def random_scenario(seed: int) -> ScenarioConfig:
    """A small schema-valid scenario, a pure function of ``seed``."""
    rng = random.Random(f"scenario-fuzz:{seed}")
    # FTV collections shard; the NFV single-graph datasets exercise
    # the unsharded algorithm x rewriting race instead
    dataset = rng.choice(("yeast", "ppi", "synthetic"))
    ftv = dataset in ("ppi", "synthetic")
    shards = rng.choice((1, 2, 3)) if ftv else 1
    replicas = rng.choice((1, 2)) if shards > 1 else 1
    chaos = shards >= 2 and replicas >= 2 and rng.random() < 0.5
    decision_only = ftv and rng.random() < 0.3
    rebalance = shards >= 2 and not chaos and rng.random() < 0.25
    sizes = rng.choice(((4, 8), (4, 8, 12), (6,), (8, 4)))
    return ScenarioConfig(
        name=f"fuzz-{seed}",
        dataset=dataset,
        description=f"seeded fuzz scenario {seed}",
        scale="tiny",
        workload=WorkloadSpec(
            queries=rng.randint(6, 12),
            tenants=rng.randint(1, 3),
            sizes=sizes,
            repeat_fraction=rng.choice((0.0, 0.2, 0.35)),
            seed=rng.randint(0, 10_000),
            concurrency=rng.randint(1, 2),
            decision_only=decision_only,
            budget=rng.choice((60_000, 200_000)),
        ),
        engine=EngineSpec(
            workers=4,
            plan_seeding=rng.random() < 0.3,
            coalesce=rng.random() < 0.8,
        ),
        topology=TopologySpec(
            shards=shards,
            replicas=replicas,
            routing=rng.random() < 0.6,
            assignment=rng.choice(("size_balanced", "hash")),
            rebalance=rebalance,
            rebalance_every=3 if rebalance else 0,
        ),
        faults=FaultSpec(
            chaos=chaos,
            seed=rng.randint(0, 10_000),
        ),
        persistence=PersistenceSpec(),
        mutations=_random_mutations(seed, ftv),
    )
