"""The generic conformance runner behind ``repro scenario``.

:class:`ScenarioRunner` turns a :class:`~repro.scenarios.config.
ScenarioConfig` into a live :class:`~repro.service.Service` through the
*same* code path the CLI uses (``src/repro/cli.py:_build_service`` and
friends, via ``ScenarioConfig.to_namespace``), drives it with
:func:`~repro.service.loadgen.run_closed_loop` (or, when the config
has a ``mutations:`` section, :func:`~repro.service.loadgen.
run_update_stream` plus the optional crash-replay drill — corrupt the
journal, reboot cold, replay, compare), and distils the run into a
typed :class:`ScenarioResult` — digests, latency summary, and every
chaos/store/routing/mutation counter the ``expect`` vocabulary can
assert on.

Hermeticity contract: each run clears the process-global prepare
cache first, so a scenario's counters (and therefore its
:meth:`ScenarioResult.fingerprint`) are identical whether it runs
first, last, or twice in one process — the property the fuzz
determinism suite pins.  Store-mode scenarios warm a catalog of the
configured layout, persist it via :class:`repro.store.writer.
StoreWriter` into a throwaway directory, optionally corrupt it
(:class:`repro.service.faults.StoreFaultInjector` classes named by
``faults.store_corruption``), and only then boot the service from the
damaged bytes — the cold-boot drill as data.

:func:`evaluate_expect` checks one scenario's ``expect`` block against
its result and its sibling results; :func:`verify_scenarios` runs a
whole config directory once and evaluates every block — the CI
``scenario-matrix`` job is exactly that call.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import asdict, dataclass, field
from typing import Callable, Mapping, Optional

from .config import ScenarioConfig

__all__ = [
    "ScenarioError",
    "ScenarioResult",
    "ScenarioRunner",
    "evaluate_expect",
    "run_with_siblings",
    "verify_scenarios",
]


class ScenarioError(RuntimeError):
    """A scenario that cannot run (as opposed to one that fails its
    ``expect`` block)."""


@dataclass
class ScenarioResult:
    """Everything one scenario run measured, JSON-ready.

    Every field is a pure function of the config (virtual clock, no
    wall time anywhere), so :meth:`fingerprint` is a determinism
    witness: two runs of the same config must produce the same value.
    """

    name: str
    answers_digest: str
    decisions_digest: str
    results_digest: str
    completed: int
    killed: int
    lost: int
    degraded: int
    injected: int
    retries: int
    rerouted: int
    migrations: int
    rebalances: int
    regrown: int
    fanout_waste: int
    cache_hits: int
    restores: int
    rebuilds: int
    corrupt_detected: int
    quarantined: int
    virtual_steps: int
    per_shard_work: list = field(default_factory=list)
    latency: Optional[dict] = None
    #: sha256[:16] over the full ``Service.stats()`` snapshot — the
    #: whole registry view participates in the determinism claim
    stats_digest: str = ""
    # -- mutation streams (all zero/None on static scenarios) ----------
    mutations_applied: int = 0
    mutations_rejected: int = 0
    oracle_checks: int = 0
    oracle_mismatches: int = 0
    #: crash-replay drill: records re-applied on the cold reboot
    replayed: int = 0
    #: journal defect classes recovery detected before replay
    journal_corrupt_detected: int = 0
    #: replayed collection answers == live collection answers
    #: (None = no drill ran)
    replay_digest_match: Optional[bool] = None

    @property
    def p95(self) -> Optional[int]:
        return self.latency.get("p95") if self.latency else None

    def fingerprint(self) -> str:
        """Digest over every field; equal across identical runs."""
        payload = json.dumps(
            asdict(self), sort_keys=True, default=str
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def as_dict(self) -> dict:
        return asdict(self)


def _stats_digest(stats: dict) -> str:
    """Digest over the stats snapshot minus its approximate parts.

    ``memory`` is sized via ``sys.getsizeof`` and documented as
    approximate — container resize history makes it vary a few bytes
    between otherwise identical runs — so it is the one stats section
    excluded from the determinism claim.
    """
    trimmed = {k: v for k, v in stats.items() if k != "memory"}
    payload = json.dumps(trimmed, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class ScenarioRunner:
    """Build-and-drive one :class:`ScenarioConfig` (see module doc)."""

    def run(self, config: ScenarioConfig) -> ScenarioResult:
        with tempfile.TemporaryDirectory(
            prefix=f"scenario-{config.name}-"
        ) as tmp:
            return self._run_in(config, tmp)

    # -- internals -----------------------------------------------------

    def _run_in(self, config: ScenarioConfig, tmp: str) -> ScenarioResult:
        from ..caching import CacheStats, prepare_cache
        from ..cli import (
            _build_faults,
            _build_rebalancer,
            _build_service,
            _serve_options,
        )
        from ..service import run_closed_loop

        # hermeticity: scenario counters must not depend on what else
        # ran in this process (see module docstring); clear() bills
        # its drops as evictions, so the stats reset must come second
        prepare_cache.clear()
        prepare_cache.stats = CacheStats()
        ns = config.to_namespace()
        if config.persistence.store:
            ns.store = self._warm_store(config, tmp)
        try:
            service, streams = _build_service(ns)
            rebalancer, every = _build_rebalancer(service, ns)
            faults = _build_faults(ns)
            if config.mutations.count:
                report, drill = self._run_mutated(
                    config, ns, tmp, service, streams,
                    options=_serve_options(ns),
                    rebalancer=rebalancer,
                    faults=faults,
                )
            else:
                drill = None
                report = run_closed_loop(
                    service,
                    config.dataset,
                    streams,
                    options=_serve_options(ns),
                    concurrency=config.workload.concurrency,
                    rebalancer=rebalancer,
                    rebalance_every=every,
                    faults=faults,
                    regrow=config.persistence.regrow,
                )
        except (SystemExit, KeyError, ValueError) as exc:
            # the CLI helpers reject with SystemExit; the engine
            # rejects unknown algorithm/rewriting names (free-form in
            # the schema, resolved lazily mid-run) with KeyError or
            # ValueError.  Re-raise all three as a scenario error so
            # callers can render one diagnostic line
            message = (
                exc.args[0] if exc.args else exc
            ) if isinstance(exc, KeyError) else exc
            raise ScenarioError(
                f"scenario {config.name!r} cannot run: {message}"
            ) from exc
        return self._distil(config, service, report, drill)

    def _run_mutated(
        self, config, ns, tmp, service, streams, *,
        options, rebalancer, faults,
    ):
        """Drive the update-stream path (+ the optional crash drill)."""
        from ..service.loadgen import (
            plan_update_stream,
            run_update_stream,
        )

        m = config.mutations
        journal_root = f"{tmp}/journal"
        if m.journal:
            service.attach_journal(journal_root)
        entry = service.catalog.get(config.dataset)
        base = [entry.graphs[g] for g in entry.live_graph_ids()]
        ops = plan_update_stream(
            base, m.count, seed=m.seed, add_fraction=m.add_fraction
        )
        report = run_update_stream(
            service,
            config.dataset,
            streams,
            ops,
            options=options,
            concurrency=config.workload.concurrency,
            mutate_every=m.every,
            batch=m.batch,
            probe_seed=m.seed,
            verify_oracle=m.verify_oracle,
            rebalancer=rebalancer,
            faults=faults,
        )
        drill = None
        if m.crash_replay:
            drill = self._crash_replay(config, ns, journal_root, service)
        return report, drill

    def _crash_replay(self, config, ns, journal_root, live) -> dict:
        """The cold-boot drill: corrupt (optionally), reboot, replay.

        A second service is built from the *same* namespace — the same
        warm store if the scenario has one, the same builders if not —
        so the only state that survives the simulated crash is the
        checkpoint plus the journal.  After replay both services must
        answer an identical probe set identically (unless the journal
        was deliberately corrupted, in which case the drill instead
        counts the defect classes recovery detected + quarantined).
        """
        from ..cli import _build_service
        from ..service.faults import StoreFaultInjector
        from ..service.loadgen import collection_digest
        from ..workload import generate_workload

        m = config.mutations
        if m.corrupt:
            injector = StoreFaultInjector(
                journal_root, seed=config.faults.seed
            )
            for kind in m.corrupt:
                getattr(injector, kind)()
        reborn, _ = _build_service(ns)
        reborn.attach_journal(journal_root)
        recovery = reborn.replay_journal()
        entry = reborn.catalog.get(config.dataset)
        base = [entry.graphs[g] for g in entry.live_graph_ids()]
        probes = [
            q.graph
            for q in generate_workload(base, 6, 3, seed=m.seed + 101)
        ]
        return {
            "replayed": reborn.mutations_replayed,
            "journal_corrupt_detected": len(recovery.detected),
            "replay_digest_match": (
                collection_digest(reborn, config.dataset, probes)
                == collection_digest(live, config.dataset, probes)
            ),
        }

    def _warm_store(self, config: ScenarioConfig, tmp: str) -> str:
        """Warm a catalog of the configured layout, persist it, apply
        the configured corruption classes, return the store dir."""
        from ..harness import NFV_DATASETS
        from ..service.faults import StoreFaultInjector
        from ..store import StoreWriter

        t = config.topology
        if t.shards > 1 or t.replicas > 1:
            from ..service.sharding import ShardedCatalog

            catalog = ShardedCatalog(
                num_shards=t.shards,
                assignment=t.assignment,
                replicas=t.replicas,
            )
        else:
            from ..service.catalog import DatasetCatalog

            catalog = DatasetCatalog()
        catalog.load(
            config.dataset,
            scale=config.scale,
            **(
                {"algorithms": config.engine.algorithms}
                if config.dataset in NFV_DATASETS
                else {}
            ),
        )
        store_dir = f"{tmp}/store"
        StoreWriter(store_dir).write_catalog(catalog)
        if config.faults.store_corruption:
            injector = StoreFaultInjector(
                store_dir, seed=config.faults.seed
            )
            blob_kinds = (
                "torn_write", "truncate", "bit_flip", "delete_blob"
            )
            for i, kind in enumerate(config.faults.store_corruption):
                # blob faults take a victim index (spread over distinct
                # blobs); manifest faults target the one manifest
                if kind in blob_kinds:
                    getattr(injector, kind)(i)
                else:
                    getattr(injector, kind)()
        return store_dir

    def _distil(
        self, config, service, report, drill=None
    ) -> ScenarioResult:
        stats = service.stats()
        store_metrics = service.store_metrics()
        fault_stats = stats.get("faults") or {}
        migrations = report.rebalance.get("migrations") or []
        regrown = (report.store or {}).get("regrown") or []
        mutations = report.mutations or {}
        oracle = mutations.get("oracle") or {}
        drill = drill or {}
        done = report.completed
        return ScenarioResult(
            name=config.name,
            answers_digest=report.answers,
            decisions_digest=report.decisions,
            results_digest=report.digest,
            completed=len(done),
            killed=sum(1 for t in done if t.result.killed),
            lost=sum(1 for t in report.tickets if not t.done),
            degraded=fault_stats.get("degraded", 0),
            injected=fault_stats.get("injected", 0),
            retries=fault_stats.get("retries", 0),
            rerouted=fault_stats.get("rerouted", 0),
            migrations=len(migrations),
            rebalances=report.rebalance.get("rebalances", 0),
            regrown=len(regrown),
            fanout_waste=stats["fanout_waste"],
            cache_hits=stats["result_cache"]["hits"],
            restores=store_metrics.get("restores", 0),
            rebuilds=store_metrics.get("rebuilds", 0),
            corrupt_detected=store_metrics.get("corrupt_detected", 0),
            quarantined=store_metrics.get("quarantined", 0),
            virtual_steps=report.virtual_steps,
            per_shard_work=list(stats["per_shard_work"]),
            latency=stats["latency_steps"],
            stats_digest=_stats_digest(stats),
            mutations_applied=mutations.get("applied", 0),
            mutations_rejected=mutations.get("rejected", 0),
            oracle_checks=oracle.get("checks", 0),
            oracle_mismatches=oracle.get("mismatches", 0),
            replayed=drill.get("replayed", 0),
            journal_corrupt_detected=drill.get(
                "journal_corrupt_detected", 0
            ),
            replay_digest_match=drill.get("replay_digest_match"),
        )


# ----------------------------------------------------------------------
# expect evaluation
# ----------------------------------------------------------------------

def evaluate_expect(
    config: ScenarioConfig,
    result: ScenarioResult,
    siblings: Mapping[str, ScenarioResult],
) -> list[str]:
    """Check ``config.expect`` against ``result``; one line per
    violated assertion (empty list = the scenario conforms)."""
    e = config.expect
    fails: list[str] = []

    def fail(path: str, message: str) -> None:
        fails.append(f"{config.name}: expect.{path}: {message}")

    def sibling(name: str, path: str) -> Optional[ScenarioResult]:
        if name not in siblings:
            fail(path, f"sibling scenario {name!r} was not run")
            return None
        return siblings[name]

    if e.answers_digest and result.answers_digest != e.answers_digest:
        fail(
            "answers_digest",
            f"observed {result.answers_digest}, pinned {e.answers_digest}",
        )
    if e.decisions_digest and result.decisions_digest != e.decisions_digest:
        fail(
            "decisions_digest",
            f"observed {result.decisions_digest}, "
            f"pinned {e.decisions_digest}",
        )
    for name in e.answers_match:
        sib = sibling(name, "answers_match")
        if sib and sib.answers_digest != result.answers_digest:
            fail(
                "answers_match",
                f"answers diverged from {name!r}: "
                f"{result.answers_digest} != {sib.answers_digest}",
            )
    for name in e.decisions_match:
        sib = sibling(name, "decisions_match")
        if sib and sib.decisions_digest != result.decisions_digest:
            fail(
                "decisions_match",
                f"decisions diverged from {name!r}: "
                f"{result.decisions_digest} != {sib.decisions_digest}",
            )
    for attr, pin in (
        ("lost", e.lost), ("killed", e.killed), ("degraded", e.degraded),
        ("mutations_applied", e.mutations_applied),
        ("oracle_mismatches", e.oracle_mismatches),
    ):
        if pin is not None and getattr(result, attr) != pin:
            fail(attr, f"observed {getattr(result, attr)}, expected {pin}")
    for key, attr, floor in (
        ("rerouted_min", "rerouted", e.rerouted_min),
        ("injected_min", "injected", e.injected_min),
        ("migrations_min", "migrations", e.migrations_min),
        ("cache_hits_min", "cache_hits", e.cache_hits_min),
        ("restores_min", "restores", e.restores_min),
        ("corrupt_min", "corrupt_detected", e.corrupt_min),
        ("regrown_min", "regrown", e.regrown_min),
        ("replayed_min", "replayed", e.replayed_min),
        (
            "journal_corrupt_min", "journal_corrupt_detected",
            e.journal_corrupt_min,
        ),
    ):
        if floor and getattr(result, attr) < floor:
            fail(key, f"observed {getattr(result, attr)}, need >= {floor}")
    if e.replay_match and result.replay_digest_match is not True:
        fail(
            "replay_match",
            "replayed collection diverged from the live one"
            if result.replay_digest_match is False
            else "no crash-replay drill ran",
        )
    if e.waste_below:
        sib = sibling(e.waste_below, "waste_below")
        if sib and result.fanout_waste >= sib.fanout_waste:
            fail(
                "waste_below",
                f"fanout_waste {result.fanout_waste} not below "
                f"{e.waste_below!r}'s {sib.fanout_waste}",
            )
    if e.p95_within:
        sib = sibling(e.p95_within, "p95_within")
        if sib:
            if result.p95 is None or sib.p95 is None:
                fail("p95_within", "latency summary missing")
            elif result.p95 > sib.p95:
                fail(
                    "p95_within",
                    f"p95 {result.p95} exceeds {e.p95_within!r}'s "
                    f"{sib.p95}",
                )
    return fails


# ----------------------------------------------------------------------
# directory drivers
# ----------------------------------------------------------------------

def run_with_siblings(
    configs: Mapping[str, ScenarioConfig],
    targets: list[str],
    runner: Optional[ScenarioRunner] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict[str, ScenarioResult]:
    """Run ``targets`` plus every sibling their expect blocks name
    (transitively), each exactly once, in sorted-name order."""
    runner = runner or ScenarioRunner()
    needed: list[str] = []
    frontier = list(targets)
    while frontier:
        name = frontier.pop(0)
        if name in needed:
            continue
        if name not in configs:
            raise ScenarioError(f"unknown scenario {name!r}")
        needed.append(name)
        frontier.extend(configs[name].expect.siblings())
    results: dict[str, ScenarioResult] = {}
    for name in sorted(needed):
        if progress:
            progress(name)
        results[name] = runner.run(configs[name])
    return results


def verify_scenarios(
    configs: Mapping[str, ScenarioConfig],
    runner: Optional[ScenarioRunner] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> tuple[dict[str, ScenarioResult], list[str]]:
    """Run every config once and evaluate every expect block; returns
    (results by name, conformance failures).  The scenario-matrix CI
    job fails iff the failure list is non-empty."""
    results = run_with_siblings(
        configs, sorted(configs), runner=runner, progress=progress
    )
    failures: list[str] = []
    for name in sorted(configs):
        failures.extend(
            evaluate_expect(configs[name], results[name], results)
        )
    return results, failures
