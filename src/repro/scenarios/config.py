"""The declarative scenario schema: dataclasses + strict loader.

A :class:`ScenarioConfig` is one serving experiment expressed as data:
the workload (tenant mix, streams, decision/full mode, budgets), the
topology (shards, replicas, assignment, routing, rebalance cadence),
the fault plan (chaos seed/horizon, store corruption classes), the
persistence mode (warm-to-store cold boot, mid-run regrow), and an
``expect`` block of assertions evaluated against the run's
:class:`~repro.scenarios.runner.ScenarioResult`.

Loading is strict by construction:

* every key is checked against the schema — an unknown or misspelled
  key fails with its **full dotted path** (``topology.replica: unknown
  key``), never a silent default;
* every value is type- and range-checked with the same dotted paths;
* cross-section rules (chaos needs a replicated topology, corruption
  classes need a store, the race must fit the worker pool) are
  validated at load time so a config that parses is a config that runs.

``to_dict``/``from_dict`` are lossless inverses over fully-populated
dicts, and :func:`repro.scenarios.yamlite.dumps` emits ``to_dict``
output back as parseable YAML — the round-trip contract
``tests/test_scenarios.py`` pins.
"""

from __future__ import annotations

import argparse
import re
from dataclasses import dataclass, field, fields
from pathlib import Path

from .yamlite import YamliteError, loads

__all__ = [
    "EngineSpec",
    "ExpectSpec",
    "FaultSpec",
    "MutationSpec",
    "PersistenceSpec",
    "ScenarioConfig",
    "ScenarioConfigError",
    "TopologySpec",
    "WorkloadSpec",
    "load_scenario_file",
    "load_scenario_dir",
]

#: corruption taxonomy accepted by ``faults.store_corruption`` — must
#: stay a subset of ``StoreFaultInjector.CORRUPTIONS`` (asserted in
#: tests); restated here so loading a config never imports the
#: service stack
STORE_CORRUPTIONS = (
    "torn_write",
    "truncate",
    "bit_flip",
    "delete_blob",
    "version_skew",
    "stale_manifest",
    "duplicate_manifest",
)

#: journal corruption taxonomy accepted by ``mutations.corrupt`` —
#: must stay a subset of ``StoreFaultInjector.JOURNAL_CORRUPTIONS``
#: (asserted in tests); restated here for the same no-import reason
JOURNAL_CORRUPTIONS = (
    "journal_torn_tail",
    "journal_truncate",
    "journal_bit_flip",
    "journal_duplicate_record",
    "journal_reorder_records",
)

_NAME = re.compile(r"^[a-z0-9][a-z0-9_-]*$")
_DIGEST = re.compile(r"^[0-9a-f]{16}$")


class ScenarioConfigError(ValueError):
    """A schema violation, carrying the full dotted key path."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}")


# ----------------------------------------------------------------------
# strict mapping readers (every helper speaks dotted paths)
# ----------------------------------------------------------------------

def _mapping(value, path: str) -> dict:
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise ScenarioConfigError(
            path, f"expected a mapping, got {type(value).__name__}"
        )
    return value


def _reject_unknown(mapping: dict, allowed, path: str) -> None:
    for key in sorted(set(mapping) - set(allowed)):
        full = f"{path}.{key}" if path else str(key)
        raise ScenarioConfigError(full, "unknown key")


def _path(path: str, key: str) -> str:
    return f"{path}.{key}" if path else key


def _get_int(m, key, path, default, minimum=None, maximum=None) -> int:
    value = m.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioConfigError(
            _path(path, key),
            f"expected an integer, got {value!r}",
        )
    if minimum is not None and value < minimum:
        raise ScenarioConfigError(
            _path(path, key), f"must be >= {minimum}, got {value}"
        )
    if maximum is not None and value > maximum:
        raise ScenarioConfigError(
            _path(path, key), f"must be <= {maximum}, got {value}"
        )
    return value


def _get_opt_int(m, key, path, minimum=0):
    if key not in m or m[key] is None:
        return None
    return _get_int(m, key, path, 0, minimum=minimum)


def _get_bool(m, key, path, default) -> bool:
    value = m.get(key, default)
    if not isinstance(value, bool):
        raise ScenarioConfigError(
            _path(path, key), f"expected true/false, got {value!r}"
        )
    return value


def _get_float(m, key, path, default, lo=None, hi=None) -> float:
    value = m.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioConfigError(
            _path(path, key), f"expected a number, got {value!r}"
        )
    value = float(value)
    if lo is not None and value < lo:
        raise ScenarioConfigError(
            _path(path, key), f"must be >= {lo}, got {value}"
        )
    if hi is not None and value >= hi:
        raise ScenarioConfigError(
            _path(path, key), f"must be < {hi}, got {value}"
        )
    return value


def _get_str(m, key, path, default, choices=None, pattern=None) -> str:
    value = m.get(key, default)
    if not isinstance(value, str):
        raise ScenarioConfigError(
            _path(path, key), f"expected a string, got {value!r}"
        )
    if choices is not None and value not in choices:
        raise ScenarioConfigError(
            _path(path, key),
            f"must be one of {', '.join(choices)}; got {value!r}",
        )
    if pattern is not None and value and not pattern.match(value):
        raise ScenarioConfigError(
            _path(path, key), f"malformed value {value!r}"
        )
    return value


def _get_tuple(m, key, path, default, item_check, nonempty=False) -> tuple:
    value = m.get(key)
    if value is None and key not in m:
        return tuple(default)
    if not isinstance(value, (list, tuple)):
        raise ScenarioConfigError(
            _path(path, key), f"expected a list, got {value!r}"
        )
    if nonempty and not value:
        raise ScenarioConfigError(
            _path(path, key), "must not be empty"
        )
    out = []
    for i, item in enumerate(value):
        out.append(item_check(item, f"{_path(path, key)}[{i}]"))
    return tuple(out)


def _item_int(value, path, minimum=1) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioConfigError(
            path, f"expected an integer, got {value!r}"
        )
    if value < minimum:
        raise ScenarioConfigError(
            path, f"must be >= {minimum}, got {value}"
        )
    return value


def _item_str(value, path, choices=None, pattern=None) -> str:
    if not isinstance(value, str) or not value:
        raise ScenarioConfigError(
            path, f"expected a non-empty string, got {value!r}"
        )
    if choices is not None and value not in choices:
        raise ScenarioConfigError(
            path, f"must be one of {', '.join(choices)}; got {value!r}"
        )
    if pattern is not None and not pattern.match(value):
        raise ScenarioConfigError(path, f"malformed value {value!r}")
    return value


# ----------------------------------------------------------------------
# sections
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSpec:
    """The multi-tenant stream: what arrives, how hard, how fast."""

    queries: int = 30
    tenants: int = 3
    sizes: tuple[int, ...] = (4, 8, 12)
    repeat_fraction: float = 0.35
    seed: int = 42
    concurrency: int = 1
    decision_only: bool = False
    budget: int = 200_000
    max_in_flight: int = 4

    _KEYS = (
        "queries", "tenants", "sizes", "repeat_fraction", "seed",
        "concurrency", "decision_only", "budget", "max_in_flight",
    )

    @classmethod
    def from_dict(cls, data, path="workload") -> "WorkloadSpec":
        m = _mapping(data, path)
        _reject_unknown(m, cls._KEYS, path)
        return cls(
            queries=_get_int(m, "queries", path, 30, minimum=1),
            tenants=_get_int(m, "tenants", path, 3, minimum=1),
            sizes=_get_tuple(
                m, "sizes", path, (4, 8, 12),
                lambda v, p: _item_int(v, p, minimum=1),
                nonempty=True,
            ),
            repeat_fraction=_get_float(
                m, "repeat_fraction", path, 0.35, lo=0.0, hi=1.0
            ),
            seed=_get_int(m, "seed", path, 42, minimum=0),
            concurrency=_get_int(m, "concurrency", path, 1, minimum=1),
            decision_only=_get_bool(m, "decision_only", path, False),
            budget=_get_int(m, "budget", path, 200_000, minimum=1),
            max_in_flight=_get_int(
                m, "max_in_flight", path, 4, minimum=1
            ),
        )


@dataclass(frozen=True)
class EngineSpec:
    """The racing engine: pool width, variant set, cache behaviour."""

    workers: int = 4
    algorithms: tuple[str, ...] = ("GQL", "SPA")
    rewritings: tuple[str, ...] = ("Orig", "DND")
    plan_seeding: bool = False
    coalesce: bool = True

    _KEYS = (
        "workers", "algorithms", "rewritings", "plan_seeding", "coalesce",
    )

    @classmethod
    def from_dict(cls, data, path="engine") -> "EngineSpec":
        m = _mapping(data, path)
        _reject_unknown(m, cls._KEYS, path)
        return cls(
            workers=_get_int(m, "workers", path, 4, minimum=1),
            algorithms=_get_tuple(
                m, "algorithms", path, ("GQL", "SPA"), _item_str,
                nonempty=True,
            ),
            rewritings=_get_tuple(
                m, "rewritings", path, ("Orig", "DND"), _item_str,
                nonempty=True,
            ),
            plan_seeding=_get_bool(m, "plan_seeding", path, False),
            coalesce=_get_bool(m, "coalesce", path, True),
        )


@dataclass(frozen=True)
class TopologySpec:
    """Shard/replica layout and the routing/rebalance switches."""

    shards: int = 1
    replicas: int = 1
    routing: bool = True
    assignment: str = "size_balanced"
    rebalance: bool = False
    rebalance_every: int = 0

    _KEYS = (
        "shards", "replicas", "routing", "assignment", "rebalance",
        "rebalance_every",
    )

    @classmethod
    def from_dict(cls, data, path="topology") -> "TopologySpec":
        m = _mapping(data, path)
        _reject_unknown(m, cls._KEYS, path)
        return cls(
            shards=_get_int(m, "shards", path, 1, minimum=1),
            replicas=_get_int(m, "replicas", path, 1, minimum=1),
            routing=_get_bool(m, "routing", path, True),
            assignment=_get_str(
                m, "assignment", path, "size_balanced",
                choices=("size_balanced", "hash"),
            ),
            rebalance=_get_bool(m, "rebalance", path, False),
            rebalance_every=_get_int(
                m, "rebalance_every", path, 0, minimum=0
            ),
        )


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic injections: runtime chaos + store corruption."""

    chaos: bool = False
    seed: int = 1337
    horizon: int = 0
    store_corruption: tuple[str, ...] = ()

    _KEYS = ("chaos", "seed", "horizon", "store_corruption")

    @classmethod
    def from_dict(cls, data, path="faults") -> "FaultSpec":
        m = _mapping(data, path)
        _reject_unknown(m, cls._KEYS, path)
        return cls(
            chaos=_get_bool(m, "chaos", path, False),
            seed=_get_int(m, "seed", path, 1337, minimum=0),
            horizon=_get_int(m, "horizon", path, 0, minimum=0),
            store_corruption=_get_tuple(
                m, "store_corruption", path, (),
                lambda v, p: _item_str(v, p, choices=STORE_CORRUPTIONS),
            ),
        )


@dataclass(frozen=True)
class PersistenceSpec:
    """Artifact-store mode: warm-to-disk cold boot and mid-run regrow."""

    store: bool = False
    regrow: bool = False

    _KEYS = ("store", "regrow")

    @classmethod
    def from_dict(cls, data, path="persistence") -> "PersistenceSpec":
        m = _mapping(data, path)
        _reject_unknown(m, cls._KEYS, path)
        return cls(
            store=_get_bool(m, "store", path, False),
            regrow=_get_bool(m, "regrow", path, False),
        )


@dataclass(frozen=True)
class MutationSpec:
    """The update stream: journaled add/remove mutations interleaved
    with queries at quiesce points (``count: 0`` = static collection).

    ``journal: true`` write-ahead journals every mutation;
    ``crash_replay: true`` additionally runs the cold-boot drill after
    the stream (fresh service, same journal, replay) and compares the
    replayed collection against the live one; ``corrupt`` names
    journal corruption classes injected *before* that replay, so the
    drill proves detection + quarantine instead of digest equality.
    """

    count: int = 0
    batch: int = 2
    every: int = 8
    seed: int = 7
    add_fraction: float = 0.6
    verify_oracle: bool = True
    journal: bool = False
    crash_replay: bool = False
    corrupt: tuple[str, ...] = ()

    _KEYS = (
        "count", "batch", "every", "seed", "add_fraction",
        "verify_oracle", "journal", "crash_replay", "corrupt",
    )

    @classmethod
    def from_dict(cls, data, path="mutations") -> "MutationSpec":
        m = _mapping(data, path)
        _reject_unknown(m, cls._KEYS, path)
        return cls(
            count=_get_int(m, "count", path, 0, minimum=0),
            batch=_get_int(m, "batch", path, 2, minimum=1),
            every=_get_int(m, "every", path, 8, minimum=1),
            seed=_get_int(m, "seed", path, 7, minimum=0),
            add_fraction=_get_float(
                m, "add_fraction", path, 0.6, lo=0.0, hi=1.0
            ),
            verify_oracle=_get_bool(m, "verify_oracle", path, True),
            journal=_get_bool(m, "journal", path, False),
            crash_replay=_get_bool(m, "crash_replay", path, False),
            corrupt=_get_tuple(
                m, "corrupt", path, (),
                lambda v, p: _item_str(v, p, choices=JOURNAL_CORRUPTIONS),
            ),
        )


@dataclass(frozen=True)
class ExpectSpec:
    """Assertions evaluated against the scenario's result.

    Digest pins are exact (``answers_digest``/``decisions_digest``);
    ``*_match`` lists name **sibling scenarios in the same directory**
    whose corresponding digest must be bit-for-bit equal (the
    metamorphic layout-invariance claims); ``lost``/``killed``/
    ``degraded`` are exact counts when present; ``*_min`` are floors;
    ``waste_below``/``p95_within`` compare against a named sibling's
    ``fanout_waste`` (strictly less) and latency p95 (no worse).
    Mutation runs add ``mutations_applied``/``oracle_mismatches``
    (exact when present), ``replayed_min``/``journal_corrupt_min``
    (floors over the crash-replay drill), and ``replay_match`` (the
    replayed collection must answer identically to the live one).
    """

    answers_digest: str = ""
    decisions_digest: str = ""
    answers_match: tuple[str, ...] = ()
    decisions_match: tuple[str, ...] = ()
    lost: int | None = None
    killed: int | None = None
    degraded: int | None = None
    rerouted_min: int = 0
    injected_min: int = 0
    migrations_min: int = 0
    cache_hits_min: int = 0
    restores_min: int = 0
    corrupt_min: int = 0
    regrown_min: int = 0
    mutations_applied: int | None = None
    oracle_mismatches: int | None = None
    replayed_min: int = 0
    journal_corrupt_min: int = 0
    replay_match: bool = False
    waste_below: str = ""
    p95_within: str = ""

    _KEYS = (
        "answers_digest", "decisions_digest", "answers_match",
        "decisions_match", "lost", "killed", "degraded", "rerouted_min",
        "injected_min", "migrations_min", "cache_hits_min",
        "restores_min", "corrupt_min", "regrown_min",
        "mutations_applied", "oracle_mismatches", "replayed_min",
        "journal_corrupt_min", "replay_match", "waste_below",
        "p95_within",
    )

    @classmethod
    def from_dict(cls, data, path="expect") -> "ExpectSpec":
        m = _mapping(data, path)
        _reject_unknown(m, cls._KEYS, path)
        sib = lambda v, p: _item_str(v, p, pattern=_NAME)  # noqa: E731
        return cls(
            answers_digest=_get_str(
                m, "answers_digest", path, "", pattern=_DIGEST
            ),
            decisions_digest=_get_str(
                m, "decisions_digest", path, "", pattern=_DIGEST
            ),
            answers_match=_get_tuple(m, "answers_match", path, (), sib),
            decisions_match=_get_tuple(
                m, "decisions_match", path, (), sib
            ),
            lost=_get_opt_int(m, "lost", path),
            killed=_get_opt_int(m, "killed", path),
            degraded=_get_opt_int(m, "degraded", path),
            rerouted_min=_get_int(m, "rerouted_min", path, 0, minimum=0),
            injected_min=_get_int(m, "injected_min", path, 0, minimum=0),
            migrations_min=_get_int(
                m, "migrations_min", path, 0, minimum=0
            ),
            cache_hits_min=_get_int(
                m, "cache_hits_min", path, 0, minimum=0
            ),
            restores_min=_get_int(m, "restores_min", path, 0, minimum=0),
            corrupt_min=_get_int(m, "corrupt_min", path, 0, minimum=0),
            regrown_min=_get_int(m, "regrown_min", path, 0, minimum=0),
            mutations_applied=_get_opt_int(m, "mutations_applied", path),
            oracle_mismatches=_get_opt_int(m, "oracle_mismatches", path),
            replayed_min=_get_int(m, "replayed_min", path, 0, minimum=0),
            journal_corrupt_min=_get_int(
                m, "journal_corrupt_min", path, 0, minimum=0
            ),
            replay_match=_get_bool(m, "replay_match", path, False),
            waste_below=_get_str(
                m, "waste_below", path, "", pattern=_NAME
            ),
            p95_within=_get_str(
                m, "p95_within", path, "", pattern=_NAME
            ),
        )

    def siblings(self) -> tuple[str, ...]:
        """Every sibling scenario name this block references."""
        names: list[str] = []
        for name in (
            *self.answers_match,
            *self.decisions_match,
            self.waste_below,
            self.p95_within,
        ):
            if name and name not in names:
                names.append(name)
        return tuple(names)


# ----------------------------------------------------------------------
# the config
# ----------------------------------------------------------------------

_TOP_KEYS = (
    "name", "description", "dataset", "scale", "workload", "engine",
    "topology", "faults", "persistence", "mutations", "expect",
)


@dataclass(frozen=True)
class ScenarioConfig:
    """One declarative serving experiment (see module docstring)."""

    name: str
    dataset: str
    description: str = ""
    scale: str = "tiny"
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    topology: TopologySpec = field(default_factory=TopologySpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    persistence: PersistenceSpec = field(default_factory=PersistenceSpec)
    mutations: MutationSpec = field(default_factory=MutationSpec)
    expect: ExpectSpec = field(default_factory=ExpectSpec)

    # -- construction --------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioConfig":
        """Build + validate a config; rejects unknown keys with their
        full dotted path."""
        from ..harness import FTV_DATASETS, NFV_DATASETS

        m = _mapping(data, "<config>")
        _reject_unknown(m, _TOP_KEYS, "")
        name = _get_str(m, "name", "", "", pattern=_NAME)
        if not name:
            raise ScenarioConfigError("name", "required")
        dataset = _get_str(
            m, "dataset", "", "",
            choices=NFV_DATASETS + FTV_DATASETS,
        )
        cfg = cls(
            name=name,
            dataset=dataset,
            description=_get_str(m, "description", "", ""),
            scale=_get_str(
                m, "scale", "", "tiny", choices=("tiny", "default")
            ),
            workload=WorkloadSpec.from_dict(m.get("workload")),
            engine=EngineSpec.from_dict(m.get("engine")),
            topology=TopologySpec.from_dict(m.get("topology")),
            faults=FaultSpec.from_dict(m.get("faults")),
            persistence=PersistenceSpec.from_dict(m.get("persistence")),
            mutations=MutationSpec.from_dict(m.get("mutations")),
            expect=ExpectSpec.from_dict(m.get("expect")),
        )
        cfg._validate_cross()
        return cfg

    def _validate_cross(self) -> None:
        """Cross-section rules: a config that loads is one that runs."""
        from ..harness import FTV_DATASETS

        t, f, e, w, p, mu = (
            self.topology, self.faults, self.engine, self.workload,
            self.persistence, self.mutations,
        )
        if f.chaos and (t.shards < 2 or t.replicas < 2):
            raise ScenarioConfigError(
                "faults.chaos",
                "needs topology.shards >= 2 and topology.replicas >= 2 "
                "(a kill must leave a surviving replica)",
            )
        if f.store_corruption and not p.store:
            raise ScenarioConfigError(
                "faults.store_corruption",
                "needs persistence.store: true (nothing to corrupt)",
            )
        if t.rebalance and t.shards < 2:
            raise ScenarioConfigError(
                "topology.rebalance", "needs topology.shards >= 2"
            )
        if t.rebalance_every and not t.rebalance:
            raise ScenarioConfigError(
                "topology.rebalance_every",
                "needs topology.rebalance: true",
            )
        if p.regrow and t.shards < 2:
            raise ScenarioConfigError(
                "persistence.regrow", "needs topology.shards >= 2"
            )
        if mu.count and self.dataset not in FTV_DATASETS:
            raise ScenarioConfigError(
                "mutations.count",
                "dynamic collections are FTV-only; pick a graph "
                "collection dataset",
            )
        if not mu.count:
            for key, value in (
                ("journal", mu.journal),
                ("crash_replay", mu.crash_replay),
                ("corrupt", mu.corrupt),
            ):
                if value:
                    raise ScenarioConfigError(
                        f"mutations.{key}", "needs mutations.count >= 1"
                    )
        if mu.crash_replay and not mu.journal:
            raise ScenarioConfigError(
                "mutations.crash_replay",
                "needs mutations.journal: true (nothing to replay)",
            )
        if mu.corrupt and not mu.crash_replay:
            raise ScenarioConfigError(
                "mutations.corrupt",
                "needs mutations.crash_replay: true (corruption is "
                "only observed at replay)",
            )
        if mu.count and p.regrow:
            raise ScenarioConfigError(
                "persistence.regrow",
                "not supported alongside a mutation stream",
            )
        ex = self.expect
        if ex.replay_match or ex.replayed_min or ex.journal_corrupt_min:
            if not mu.crash_replay:
                raise ScenarioConfigError(
                    "expect",
                    "replay assertions need mutations.crash_replay: "
                    "true",
                )
        if ex.replay_match and mu.corrupt:
            raise ScenarioConfigError(
                "expect.replay_match",
                "a corrupted journal cannot replay to equality; assert "
                "journal_corrupt_min instead",
            )
        if ex.mutations_applied is not None and not mu.count:
            raise ScenarioConfigError(
                "expect.mutations_applied", "needs mutations.count >= 1"
            )
        if ex.oracle_mismatches is not None and not (
            mu.count and mu.verify_oracle
        ):
            raise ScenarioConfigError(
                "expect.oracle_mismatches",
                "needs a mutation stream with verify_oracle: true",
            )
        width = (
            len(e.rewritings)
            if self.dataset in FTV_DATASETS
            else len(e.algorithms) * len(e.rewritings)
        )
        if width > e.workers:
            raise ScenarioConfigError(
                "engine.workers",
                f"the race is {width} variants wide but the pool has "
                f"only {e.workers} workers",
            )
        for sib in self.expect.siblings():
            if sib == self.name:
                raise ScenarioConfigError(
                    "expect", f"scenario {self.name!r} references itself"
                )
        if w.decision_only and self.expect.answers_match:
            raise ScenarioConfigError(
                "expect.answers_match",
                "decision-only witness sets are layout-dependent; pin "
                "expect.decisions_match instead",
            )

    # -- round trip ----------------------------------------------------

    def to_dict(self) -> dict:
        """A fully-populated nested dict; lossless inverse of
        :meth:`from_dict` (tuples emitted as lists)."""

        def section(spec) -> dict:
            out = {}
            for fld in fields(spec):
                value = getattr(spec, fld.name)
                out[fld.name] = (
                    list(value) if isinstance(value, tuple) else value
                )
            return out

        return {
            "name": self.name,
            "description": self.description,
            "dataset": self.dataset,
            "scale": self.scale,
            "workload": section(self.workload),
            "engine": section(self.engine),
            "topology": section(self.topology),
            "faults": section(self.faults),
            "persistence": section(self.persistence),
            "mutations": section(self.mutations),
            "expect": {
                k: v
                for k, v in section(self.expect).items()
                # None = "not asserted": dropped so the emitted YAML
                # stays in the dialect (and reloads identically)
                if v is not None
            },
        }

    # -- the _build_service seam ---------------------------------------

    def to_namespace(self) -> argparse.Namespace:
        """The ``repro serve`` argument namespace this config denotes —
        the seam through which :class:`ScenarioRunner` reuses
        ``src/repro/cli.py:_build_service`` and friends unchanged."""
        w, e, t, f, p = (
            self.workload, self.engine, self.topology, self.faults,
            self.persistence,
        )
        return argparse.Namespace(
            dataset=self.dataset,
            scale=self.scale,
            queries=w.queries,
            tenants=w.tenants,
            concurrency=w.concurrency,
            sizes=",".join(str(s) for s in w.sizes),
            repeat_fraction=w.repeat_fraction,
            seed=w.seed,
            budget=w.budget,
            max_in_flight=w.max_in_flight,
            decision_only=w.decision_only,
            workers=e.workers,
            algorithms=",".join(e.algorithms),
            rewritings=",".join(e.rewritings),
            plan_seeding=e.plan_seeding,
            no_coalesce=not e.coalesce,
            shards=t.shards,
            replicas=t.replicas,
            routing=t.routing,
            assignment=t.assignment,
            rebalance=t.rebalance,
            rebalance_every=t.rebalance_every,
            chaos=f.chaos,
            chaos_seed=f.seed,
            chaos_horizon=f.horizon,
            store=None,
            regrow=p.regrow,
        )


# ----------------------------------------------------------------------
# file + directory loading
# ----------------------------------------------------------------------

def load_scenario_file(path) -> ScenarioConfig:
    """Parse + validate one ``*.yaml`` scenario config."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioConfigError(
            str(path), f"cannot read scenario file ({exc.strerror})"
        ) from exc
    try:
        data = loads(text)
    except YamliteError as exc:
        raise ScenarioConfigError(f"{path}:{exc.line}", str(exc)) from exc
    try:
        return ScenarioConfig.from_dict(data)
    except ScenarioConfigError as exc:
        raise ScenarioConfigError(f"{path}: {exc.path}", _msg(exc)) from exc


def _msg(exc: ScenarioConfigError) -> str:
    text = str(exc)
    prefix = f"{exc.path}: "
    return text[len(prefix):] if text.startswith(prefix) else text


def load_scenario_dir(path) -> dict[str, ScenarioConfig]:
    """Load every ``*.yaml`` under ``path``; validates that names are
    unique and every ``expect`` sibling reference resolves."""
    root = Path(path)
    if not root.is_dir():
        raise ScenarioConfigError(
            str(root), "not a scenario directory"
        )
    files = sorted(root.glob("*.yaml")) + sorted(root.glob("*.yml"))
    if not files:
        raise ScenarioConfigError(
            str(root), "no *.yaml scenario configs found"
        )
    configs: dict[str, ScenarioConfig] = {}
    sources: dict[str, Path] = {}
    for file in files:
        cfg = load_scenario_file(file)
        if cfg.name in configs:
            raise ScenarioConfigError(
                f"{file}: name",
                f"duplicate scenario name {cfg.name!r} "
                f"(also in {sources[cfg.name].name})",
            )
        configs[cfg.name] = cfg
        sources[cfg.name] = file
    for cfg in configs.values():
        for sib in cfg.expect.siblings():
            if sib not in configs:
                raise ScenarioConfigError(
                    f"{sources[cfg.name]}: expect",
                    f"references unknown sibling scenario {sib!r}",
                )
    return configs
