"""Command-line interface.

Everyday entry points::

    python -m repro datasets   [--scale tiny]
    python -m repro workload   --dataset yeast --size 8 --count 5
    python -m repro match      --dataset yeast --algorithm GQL --size 8
    python -m repro race       --dataset yeast --size 12 \
                               --algorithms GQL,SPA --rewritings Orig,DND
    python -m repro experiment --name fig2 [--scale tiny]
    python -m repro serve      --dataset yeast --scale tiny
    python -m repro bench-serve --dataset yeast --scale tiny \
                               --out BENCH_service.json

``experiment`` regenerates a paper figure/table by name (the same
drivers the benchmark suite uses); at ``--scale tiny`` it answers in
seconds, at the default scale it reproduces the benchmark numbers.
``serve`` boots the serving layer and replays a multi-tenant workload
through it; ``bench-serve`` runs the closed-loop load generator and
writes throughput + latency percentiles as JSON.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .datasets import summarize_collection, summarize_graph
from .graphs import dumps_gfu
from .harness import (
    FTV_DATASETS,
    FTVExperimentConfig,
    NFV_DATASETS,
    NFVExperimentConfig,
    diagnose_straggler,
    hard_overlap_table,
    winner_attribution_table,
    PSI_FTV_VARIANT_SETS,
    PSI_NFV_MULTIALG_SETS,
    PSI_NFV_REWRITING_SETS,
    Table,
    alt_algorithm_speedup_table,
    band_percentages_table,
    build_ftv_graphs,
    build_nfv_graph,
    grapes_psi_by_size_table,
    maxmin_table,
    measure_ftv_matrix,
    measure_nfv_matrix,
    psi_multialg_speedup_table,
    psi_speedup_table,
    rewriting_aet_table,
    rewriting_hard_pct_table,
    rewriting_speedup_table,
    size_breakdown_table,
    stragglers_wla_table,
)
from .matching import Budget, available_matchers, make_matcher
from .psi import PsiNFV, Variant
from .workload import generate_workload

__all__ = ["main", "build_parser"]


def _print(text: str) -> None:
    sys.stdout.write(text + "\n")


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------

def cmd_datasets(args: argparse.Namespace) -> int:
    """Print Table 1/2-style summaries of every dataset stand-in."""
    table = Table(
        f"NFV datasets ({args.scale} scale)",
        ["statistic"] + list(NFV_DATASETS),
    )
    summaries = {
        name: dict(
            summarize_graph(build_nfv_graph(name, args.scale)).as_rows()
        )
        for name in NFV_DATASETS
    }
    for stat in next(iter(summaries.values())):
        table.add_row(
            stat, *(summaries[n][stat] for n in NFV_DATASETS)
        )
    _print(table.render())

    ftable = Table(
        f"FTV datasets ({args.scale} scale)",
        ["statistic"] + list(FTV_DATASETS),
    )
    fsummaries = {
        name: dict(
            summarize_collection(
                build_ftv_graphs(name, args.scale)
            ).as_rows()
        )
        for name in FTV_DATASETS
    }
    for stat in next(iter(fsummaries.values())):
        ftable.add_row(
            stat, *(fsummaries[n][stat] for n in FTV_DATASETS)
        )
    _print("")
    _print(ftable.render())
    return 0


def _load_graphs(dataset: str, scale: str):
    if dataset in NFV_DATASETS:
        return [build_nfv_graph(dataset, scale)]
    if dataset in FTV_DATASETS:
        return build_ftv_graphs(dataset, scale)
    raise SystemExit(f"unknown dataset {dataset!r}")


def cmd_workload(args: argparse.Namespace) -> int:
    """Generate a query workload; print it or save it as GFU."""
    graphs = _load_graphs(args.dataset, args.scale)
    queries = generate_workload(
        graphs, args.count, args.size, seed=args.seed
    )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(dumps_gfu([q.graph for q in queries]))
        _print(f"wrote {len(queries)} queries to {args.out}")
        return 0
    table = Table(
        f"workload: {args.count} x {args.size}-edge queries on "
        f"{args.dataset}",
        ["query", "vertices", "edges", "labels", "source graph"],
    )
    for q in queries:
        table.add_row(
            q.name, q.graph.order, q.graph.size,
            len(q.graph.distinct_labels()), q.source_graph_id,
        )
    _print(table.render())
    return 0


def cmd_match(args: argparse.Namespace) -> int:
    """Run one matcher on one generated query and report its cost."""
    graphs = _load_graphs(args.dataset, args.scale)
    [query] = generate_workload(graphs, 1, args.size, seed=args.seed)
    matcher = make_matcher(args.algorithm)
    budget = Budget(max_steps=args.budget) if args.budget else None
    out = matcher.run(
        graphs[query.source_graph_id],
        query.graph,
        budget=budget,
        max_embeddings=args.max_embeddings,
        count_only=True,
    )
    status = "killed" if out.killed else "completed"
    _print(
        f"{matcher.name} on {args.dataset} ({args.size}-edge query, "
        f"seed {args.seed}): {out.num_embeddings} embeddings in "
        f"{out.steps} steps [{status}]"
    )
    return 0


def cmd_race(args: argparse.Namespace) -> int:
    """Race (algorithm x rewriting) variants on one generated query."""
    if args.dataset not in NFV_DATASETS:
        raise SystemExit("race runs on NFV datasets (single graph)")
    graph = build_nfv_graph(args.dataset, args.scale)
    [query] = generate_workload([graph], 1, args.size, seed=args.seed)
    algorithms = args.algorithms.split(",")
    rewritings = args.rewritings.split(",")
    variants = [
        Variant(a.strip(), r.strip())
        for a in algorithms
        for r in rewritings
    ]
    psi = PsiNFV(graph)
    budget = Budget(max_steps=args.budget) if args.budget else None
    result = psi.race(
        query.graph, variants, budget=budget,
        max_embeddings=args.max_embeddings, count_only=True,
    )
    table = Table(
        f"Psi race on {args.dataset} ({args.size}-edge query)",
        ["variant", "steps at kill/finish"],
    )
    for v, steps in result.race.per_variant_steps.items():
        marker = " <- winner" if v == result.winner else ""
        table.add_row(f"{v}{marker}", steps)
    _print(table.render())
    _print(
        f"race time {result.steps} steps "
        f"(overhead {result.race.overhead_steps}); "
        f"found={result.found}"
    )
    return 0


def _nfv_experiment(name: str, dataset: str, scale: str) -> list[Table]:
    cfg = (
        NFVExperimentConfig.tiny(dataset)
        if scale == "tiny"
        else NFVExperimentConfig.default(dataset)
    )
    m = measure_nfv_matrix(cfg, scale=scale)
    yeast_sets = [
        ("yeast2alg", ("GQL", "SPA")),
        ("yeast3alg", ("GQL", "SPA", "QSI")),
    ]
    two_alg = [("2alg", ("GQL", "SPA"))]
    drivers = {
        "fig2": lambda: [
            stragglers_wla_table(m, f"Fig 2: {dataset}"),
            band_percentages_table(m, f"Fig 2(d): {dataset}"),
        ],
        "table3": lambda: [
            size_breakdown_table(m, f"Table 3/4: {dataset}")
        ],
        "fig4": lambda: [maxmin_table(m, f"Fig 4 / Table 6: {dataset}")],
        "fig6nfv": lambda: [
            rewriting_aet_table(m, f"Fig 6(c): {dataset}"),
            rewriting_hard_pct_table(m, f"Fig 6(d): {dataset}"),
        ],
        "fig8": lambda: [
            rewriting_speedup_table(m, f"Fig 8 / Table 8: {dataset}")
        ],
        "fig9": lambda: [
            alt_algorithm_speedup_table(
                m, f"Fig 9 / Table 9: {dataset}",
                yeast_sets if dataset == "yeast" else two_alg,
            )
        ],
        "fig13": lambda: [
            psi_speedup_table(
                m, f"Fig 13: {dataset}", PSI_NFV_REWRITING_SETS
            )
        ],
        "fig14": lambda: [
            psi_multialg_speedup_table(
                m, f"Fig 14: {dataset} vs {base}",
                PSI_NFV_MULTIALG_SETS, baseline=base,
            )
            for base in ("GQL", "SPA")
        ],
        "fig15": lambda: [
            psi_multialg_speedup_table(
                m, f"Fig 15: {dataset} vs {base}",
                PSI_NFV_MULTIALG_SETS, baseline=base, mode="wla",
            )
            for base in ("GQL", "SPA")
        ],
    }
    return drivers[name]()


def _ftv_experiment(name: str, dataset: str, scale: str) -> list[Table]:
    cfg = (
        FTVExperimentConfig.tiny(dataset)
        if scale == "tiny"
        else FTVExperimentConfig.default(dataset)
    )
    m = measure_ftv_matrix(cfg, scale=scale)
    drivers = {
        "fig1": lambda: [
            stragglers_wla_table(m, f"Fig 1: {dataset}"),
            band_percentages_table(m, f"Fig 1(c): {dataset}"),
        ],
        "fig3": lambda: [maxmin_table(m, f"Fig 3 / Table 5: {dataset}")],
        "fig6ftv": lambda: [
            rewriting_aet_table(m, f"Fig 6(a): {dataset}"),
            rewriting_hard_pct_table(m, f"Fig 6(b): {dataset}"),
        ],
        "fig7": lambda: [
            rewriting_speedup_table(m, f"Fig 7 / Table 7: {dataset}")
        ],
        "fig10": lambda: [
            psi_speedup_table(
                m, f"Fig 10: {dataset}", PSI_FTV_VARIANT_SETS
            )
        ],
        "fig11": lambda: [
            psi_speedup_table(
                m, f"Fig 11: {dataset}", PSI_FTV_VARIANT_SETS,
                mode="wla",
            )
        ],
        "fig12": lambda: [
            grapes_psi_by_size_table(m, f"Fig 12: {dataset}")
        ],
    }
    return drivers[name]()


def cmd_analyze(args: argparse.Namespace) -> int:
    """Measure a matrix and print the Observation-5 analysis."""
    if args.dataset not in NFV_DATASETS:
        raise SystemExit("analyze runs on NFV datasets")
    cfg = (
        NFVExperimentConfig.tiny(args.dataset)
        if args.scale == "tiny"
        else NFVExperimentConfig.default(args.dataset)
    )
    m = measure_nfv_matrix(cfg, scale=args.scale)
    _print(
        hard_overlap_table(
            m,
            f"{args.dataset}: hard-set overlap between algorithms",
        ).render()
    )
    members = [(alg, "Orig") for alg in m.methods]
    _print("")
    _print(
        winner_attribution_table(
            m, members, f"{args.dataset}: race winner attribution"
        ).render()
    )
    # diagnose the worst straggler of each algorithm
    for alg in m.methods:
        worst = max(
            m.units, key=lambda u: m.charged(u, alg, "Orig")
        )
        d = diagnose_straggler(m, worst, alg)
        _print("")
        _print(
            f"worst unit for {alg}: query "
            f"{m.queries[worst].name} at {d.baseline_steps} steps"
        )
        if d.rescued:
            best = d.rescuers[0]
            _print(
                f"  cheapest rescue: {best[0]}-{best[1]} at "
                f"{best[2]} steps ({d.best_speedup:.1f}x); "
                f"Psi race time {d.psi_steps} steps"
            )
        else:
            _print("  no measured attempt completes this unit")
    return 0


# ----------------------------------------------------------------------
# serving layer
# ----------------------------------------------------------------------

def _build_service(args: argparse.Namespace, with_streams: bool = True):
    """A Service + per-tenant streams for serve/bench-serve.

    ``with_streams=False`` (the ``serve --listen`` network path) boots
    the warmed service without generating a synthetic workload —
    queries arrive over the socket instead.
    """
    from .service import Service
    from .service.admission import AdmissionController, TenantPolicy
    from .workload import default_tenant_mixes, generate_tenant_stream

    if args.queries < 1:
        raise SystemExit("--queries must be >= 1")
    if args.tenants < 1:
        raise SystemExit("--tenants must be >= 1")
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.concurrency < 1:
        raise SystemExit("--concurrency must be >= 1")
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.replicas < 1:
        raise SystemExit("--replicas must be >= 1")
    width = (
        len(args.rewritings.split(","))
        if args.dataset in FTV_DATASETS
        else len(args.algorithms.split(","))
        * len(args.rewritings.split(","))
    )
    if width > args.workers:
        raise SystemExit(
            f"the race is {width} variants wide but the pool has only "
            f"{args.workers} workers; raise --workers or shrink "
            "--algorithms/--rewritings"
        )
    policy = TenantPolicy(
        max_in_flight=args.max_in_flight,
        step_budget=args.budget,
    )
    service = Service(
        workers=args.workers,
        admission=AdmissionController(default_policy=policy),
        plan_seeding=args.plan_seeding,
        coalesce=not args.no_coalesce,
        shards=args.shards,
        replicas=args.replicas,
        routing=args.routing,
        assignment=args.assignment,
        store=getattr(args, "store", None),
    )
    service.load_dataset(
        args.dataset,
        scale=args.scale,
        **(
            {"algorithms": tuple(args.algorithms.split(","))}
            if args.dataset in NFV_DATASETS
            else {}
        ),
    )
    if not with_streams:
        return service, {}
    # the catalog already built + froze the graphs: grow the workload
    # streams from them instead of re-building the dataset
    graphs = service.catalog.get(args.dataset).graphs
    # more tenants than queries: surplus tenants would have nothing
    args.tenants = min(args.tenants, args.queries)
    tenants = args.tenants
    per_tenant = (args.queries + tenants - 1) // tenants
    sizes = tuple(int(s) for s in args.sizes.split(","))
    mixes = default_tenant_mixes(
        tenants,
        per_tenant,
        sizes=sizes,
        repeat_fraction=args.repeat_fraction,
    )
    for mix in mixes:
        service.admission.set_policy(
            mix.tenant,
            TenantPolicy(
                max_in_flight=args.max_in_flight,
                step_budget=args.budget,
                weight=mix.weight,
            ),
        )
    streams = {
        m.tenant: generate_tenant_stream(graphs, m, seed=args.seed)
        for m in mixes
    }
    # trim to exactly the requested query count, preserving tenant order
    total = sum(len(s) for s in streams.values())
    excess = total - args.queries
    for tenant in sorted(streams, reverse=True):
        while excess > 0 and len(streams[tenant]) > 1:
            streams[tenant].pop()
            excess -= 1
    return service, streams


def _serve_options(args: argparse.Namespace):
    from .service import QueryOptions

    return QueryOptions(
        algorithms=tuple(args.algorithms.split(",")),
        rewritings=tuple(args.rewritings.split(",")),
        decision_only=args.decision_only,
    )


def _build_rebalancer(service, args: argparse.Namespace):
    """The Rebalancer + quiesce cadence for ``--rebalance`` runs."""
    from .service import Rebalancer

    if args.rebalance_every < 0:
        raise SystemExit("--rebalance-every must be >= 0")
    if not args.rebalance:
        if args.rebalance_every:
            raise SystemExit(
                "--rebalance-every needs --rebalance"
            )
        return None, 0
    if args.shards < 2:
        raise SystemExit("--rebalance needs --shards >= 2")
    every = args.rebalance_every or max(1, args.queries // 4)
    return Rebalancer(service, min_window_steps=512), every


def _build_faults(args: argparse.Namespace):
    """The chaos-mode FaultInjector for ``--chaos`` runs (or None).

    Chaos needs somewhere for rerouted legs to land: each shard must
    keep a surviving replica, so ``--chaos`` requires ``--replicas``
    of at least 2.
    """
    from .service import chaos_plan

    if not args.chaos:
        return None
    if args.shards < 2 or args.replicas < 2:
        raise SystemExit(
            "--chaos needs --shards >= 2 and --replicas >= 2 (a kill "
            "must leave a surviving replica to reroute onto)"
        )
    return chaos_plan(
        args.chaos_seed,
        num_shards=args.shards,
        replicas=args.replicas,
        queries=args.queries,
        horizon=args.chaos_horizon,
    )


def cmd_warm(args: argparse.Namespace) -> int:
    """Warm a catalog and persist its artifacts to a store directory.

    The write is crash-safe (blobs then manifest, each via temp file +
    fsync + atomic rename), so a later ``serve --store DIR`` either
    sees the complete epoch or no store at all.
    """
    from .store import StoreReader, StoreWriter

    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.replicas < 1:
        raise SystemExit("--replicas must be >= 1")
    if args.shards > 1 or args.replicas > 1:
        from .service.sharding import ShardedCatalog

        catalog = ShardedCatalog(
            num_shards=args.shards,
            assignment=args.assignment,
            replicas=args.replicas,
        )
    else:
        from .service.catalog import DatasetCatalog

        catalog = DatasetCatalog()
    catalog.load(
        args.dataset,
        scale=args.scale,
        **(
            {"algorithms": tuple(args.algorithms.split(","))}
            if args.dataset in NFV_DATASETS
            else {}
        ),
    )
    summary = StoreWriter(args.store).write_catalog(catalog)
    layout = (
        f"{args.shards} shard(s) x {args.replicas} replica(s)"
        if args.shards > 1 or args.replicas > 1
        else "unsharded"
    )
    _print(
        f"warmed {args.dataset} ({args.scale}, {layout}); wrote epoch "
        f"{summary['epoch']}: {summary['blobs']} blob(s), "
        f"{summary['bytes']} bytes under {summary['path']}"
    )
    if summary["skipped_registered"]:
        _print(
            "skipped (registered, not rebuildable from a recipe): "
            + ", ".join(summary["skipped_registered"])
        )
    if args.verify:
        report = StoreReader(args.store).verify_all()
        _print(
            f"verify: {report['blobs_ok']} blob(s) ok, "
            f"{report['blobs_bad']} bad"
        )
        if report["blobs_bad"]:
            return 1
    return 0


def _parse_listen(spec: str) -> tuple[str, int]:
    host, sep, port = spec.rpartition(":")
    if not sep:
        raise SystemExit(f"--listen wants HOST:PORT, got {spec!r}")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise SystemExit(f"bad --listen port in {spec!r}") from None


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot the serving layer and replay a multi-tenant workload,
    or (with ``--listen HOST:PORT``) run the asyncio front door."""
    from .service import run_closed_loop

    if args.listen:
        from .obs.server import DEFAULT_STEPS_PER_SECOND, run_front_door

        host, port = _parse_listen(args.listen)
        steps_per_second = (
            args.steps_per_second
            if args.steps_per_second is not None
            else DEFAULT_STEPS_PER_SECOND
        )
        service, _ = _build_service(args, with_streams=False)

        def ready(bound_host: str, bound_port: int) -> None:
            _print(f"listening on {bound_host}:{bound_port}")
            _print(
                f"dataset {args.dataset} ({args.scale}), "
                f"{args.shards} shard(s) x {args.replicas} replica(s), "
                f"{args.workers} workers per pool"
            )
            sys.stdout.flush()

        run_front_door(
            service,
            host,
            port,
            steps_per_second=steps_per_second,
            ready=ready,
        )
        return 0

    service, streams = _build_service(args)
    rebalancer, every = _build_rebalancer(service, args)
    faults = _build_faults(args)
    report = run_closed_loop(
        service,
        args.dataset,
        streams,
        options=_serve_options(args),
        concurrency=args.concurrency,
        rebalancer=rebalancer,
        rebalance_every=every,
        faults=faults,
        regrow=args.regrow,
    )
    payload = report.as_json()
    shard_note = (
        f", {args.shards} shards"
        + (f" x {args.replicas} replicas" if args.replicas > 1 else "")
        + ("" if args.routing else " (unrouted)")
        if args.shards > 1
        else ""
    )
    table = Table(
        f"serve: {sum(len(s) for s in streams.values())} queries on "
        f"{args.dataset} ({args.scale}), {args.tenants} tenants, "
        f"{args.workers} workers{shard_note}",
        ["tenant", "submitted", "completed", "cache hits", "rejected"],
    )
    for tenant, row in sorted(payload["tenants"].items()):
        table.add_row(
            tenant, row["submitted"], row["completed"],
            row["cache_hits"], row["rejected"],
        )
    _print(table.render())
    lat = payload["latency_steps"]
    if lat:
        _print(
            f"latency (steps): p50={lat['p50']} p95={lat['p95']} "
            f"p99={lat['p99']} max={lat['max']}"
        )
    cache = payload["result_cache"]
    _print(
        f"result cache: {cache['hits']} hits / {cache['lookups']} "
        f"lookups ({100 * cache['hit_rate']:.1f}%), "
        f"{cache['entries']} entries"
    )
    _print(
        f"virtual time {payload['throughput']['virtual_steps']} steps; "
        f"total work {report.service_stats['work_steps']} steps"
    )
    if args.shards > 1:
        routing = payload["routing"]
        _print(
            f"per-shard work {payload['per_shard_work']}; fan-out "
            f"waste {payload['fanout_waste']} steps; routed "
            f"{routing['routed']} (pruned {routing['shards_pruned']}, "
            f"waves skipped {routing['waves_skipped']})"
        )
    if payload["rebalance"]:
        reb = payload["rebalance"]
        _print(
            f"rebalance: {reb['rebalances']} rebalances, "
            f"{len(reb['migrations'])} graphs migrated"
        )
    if payload["chaos"]:
        ch = payload["chaos"]
        _print(
            f"chaos: {ch['injected']} faults injected, "
            f"{ch['rerouted']} legs rerouted, "
            f"{ch['degraded']} degraded, {ch['lost']} lost"
        )
    if payload["store"]:
        st = payload["store"]
        m = st["metrics"]
        regrew = st["regrown"]
        from_store = sum(1 for r in regrew if r["from_store"])
        _print(
            f"store: {m.get('restores', 0)} restores, "
            f"{m.get('rebuilds', 0)} rebuilds, "
            f"{m.get('corrupt_detected', 0)} corrupt "
            f"({m.get('quarantined', 0)} quarantined); regrew "
            f"{len(regrew)} replica(s), {from_store} from store"
        )
    _print(f"results digest {payload['digest']}")
    if args.verbose:
        for t in report.completed:
            r = t.result
            marker = " [cache]" if t.cache_hit else ""
            _print(
                f"  {t.tenant} {t.query.name}: {r.winner_label} "
                f"in {r.steps} steps, latency {t.latency}{marker}"
            )
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    """Follow a front door's ``/watch`` stream, one line per frame.

    Disconnects (dead socket, timed-out read, error status) reconnect
    with bounded exponential backoff + jitter, up to
    ``--max-reconnects`` consecutive failures; a ``Retry-After``
    header from the server overrides the computed delay.  A healthy
    frame resets the backoff.
    """
    import time

    from .obs.client import ObsClient, WatchDisconnected, reconnect_delays

    host, port = _parse_listen(args.endpoint)
    client = ObsClient(host, port)
    seen = 0
    failures = 0
    delays = reconnect_delays(
        base=args.backoff_base, cap=args.backoff_cap
    )
    while True:
        remaining = args.frames - seen if args.frames else 0
        try:
            for frame in client.watch(
                frames=remaining,
                interval=args.interval,
                read_timeout=args.read_timeout,
            ):
                if failures:
                    failures = 0
                    delays = reconnect_delays(
                        base=args.backoff_base, cap=args.backoff_cap
                    )
                seen += 1
                lat = frame.get("latency_steps") or {}
                _print(
                    f"[{frame['seq']:>4}] clock={frame['clock']} "
                    f"done={frame['completed']} "
                    f"(+{frame['delta_completed']}, "
                    f"{frame['throughput_qps']:.1f} q/s) "
                    f"p50={lat.get('p50', '-')} p95={lat.get('p95', '-')} "
                    f"waste={frame['fanout_waste']} "
                    f"cache={100 * frame['cache_hit_rate']:.0f}% "
                    f"replicas={frame['replicas_live']} "
                    f"queued={frame['queued']} active={frame['active']} "
                    f"degraded={frame['degraded']} "
                    f"mut={frame.get('mutations_applied', 0)}"
                    f"(+{frame.get('mutations_pending', 0)}) "
                    f"jlag={frame.get('journal_lag', 0)}"
                )
                sys.stdout.flush()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0
        except WatchDisconnected as exc:
            failures += 1
            if failures > args.max_reconnects:
                _print(
                    f"tail: giving up on {host}:{port} after "
                    f"{args.max_reconnects} reconnect(s) ({exc.reason})"
                )
                return 1
            delay = (
                exc.retry_after
                if exc.retry_after is not None
                else next(delays)
            )
            _print(
                f"tail: disconnected ({exc.reason}); reconnect "
                f"{failures}/{args.max_reconnects} in {delay:.1f}s"
            )
            sys.stdout.flush()
            time.sleep(delay)
            continue
        # clean end of stream (server drained, or --frames satisfied)
        return 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    """Closed-loop load generation; writes BENCH_service.json."""
    import json

    from .service import run_closed_loop

    service, streams = _build_service(args)
    rebalancer, every = _build_rebalancer(service, args)
    faults = _build_faults(args)
    report = run_closed_loop(
        service,
        args.dataset,
        streams,
        options=_serve_options(args),
        concurrency=args.concurrency,
        rebalancer=rebalancer,
        rebalance_every=every,
        faults=faults,
        regrow=args.regrow,
        config={
            "dataset": args.dataset,
            "scale": args.scale,
            "queries": sum(len(s) for s in streams.values()),
            "tenants": args.tenants,
            "workers": args.workers,
            "shards": args.shards,
            "replicas": args.replicas,
            "chaos": args.chaos,
            "chaos_seed": args.chaos_seed,
            "routing": args.routing,
            "assignment": args.assignment,
            "decision_only": args.decision_only,
            "rebalance": args.rebalance,
            "concurrency": args.concurrency,
            "budget": args.budget,
            "seed": args.seed,
            "plan_seeding": args.plan_seeding,
            "coalesce": not args.no_coalesce,
            "store": args.store,
            "regrow": args.regrow,
        },
    )
    payload = report.as_json()
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)
    tp = payload["throughput"]
    _print(
        f"{tp['queries']} queries in {tp['virtual_steps']} virtual "
        f"steps ({tp['queries_per_mstep']:.2f} q/Mstep, "
        f"{tp['queries_per_second']:.1f} q/s wall); wrote {args.out}"
    )
    return 0


NFV_EXPERIMENTS = (
    "fig2", "table3", "fig4", "fig6nfv", "fig8", "fig9", "fig13",
    "fig14", "fig15",
)
FTV_EXPERIMENTS = (
    "fig1", "fig3", "fig6ftv", "fig7", "fig10", "fig11", "fig12",
)


def cmd_experiment(args: argparse.Namespace) -> int:
    """Regenerate a paper figure/table by name."""
    name = args.name
    if name in NFV_EXPERIMENTS:
        dataset = args.dataset or "yeast"
        if dataset not in NFV_DATASETS:
            raise SystemExit(f"{name} needs an NFV dataset")
        tables = _nfv_experiment(name, dataset, args.scale)
    elif name in FTV_EXPERIMENTS:
        dataset = args.dataset or "ppi"
        if dataset not in FTV_DATASETS:
            raise SystemExit(f"{name} needs an FTV dataset")
        tables = _ftv_experiment(name, dataset, args.scale)
    else:
        known = ", ".join(NFV_EXPERIMENTS + FTV_EXPERIMENTS)
        raise SystemExit(f"unknown experiment {name!r}; known: {known}")
    for t in tables:
        _print(t.render())
        _print("")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

def cmd_scenario(args: argparse.Namespace) -> int:
    """Drive the declarative scenario harness: ``list`` the configs in
    a directory, ``run`` named scenarios (plus the siblings their
    expect blocks compare against), or ``verify`` the whole matrix —
    the CI scenario-matrix job is ``repro scenario verify scenarios``.

    Exit codes: 0 = conforms, 1 = an ``expect`` assertion failed,
    2 = a config cannot load or a scenario cannot run.
    """
    import json

    from .scenarios import (
        ScenarioConfigError,
        ScenarioError,
        evaluate_expect,
        load_scenario_dir,
        run_with_siblings,
        verify_scenarios,
    )

    try:
        configs = load_scenario_dir(args.dir)
    except ScenarioConfigError as exc:
        print(f"scenario: {exc}", file=sys.stderr)
        return 2

    def describe(result) -> str:
        digest = (
            f"decisions {result.decisions_digest}"
            if configs[result.name].workload.decision_only
            else f"answers {result.answers_digest}"
        )
        return (
            f"{result.name}: {digest}, {result.completed} completed, "
            f"{result.lost} lost, p95={result.p95}"
        )

    if args.action == "list":
        table = Table(
            f"{len(configs)} scenarios in {args.dir}",
            ["name", "dataset", "layout", "description"],
        )
        for name in sorted(configs):
            cfg = configs[name]
            t = cfg.topology
            flags = [
                flag
                for flag, on in (
                    ("routed", t.shards > 1 and t.routing),
                    ("rebalance", t.rebalance),
                    ("chaos", cfg.faults.chaos),
                    ("corrupt", bool(cfg.faults.store_corruption)),
                    ("store", cfg.persistence.store),
                    ("regrow", cfg.persistence.regrow),
                    ("decision", cfg.workload.decision_only),
                    ("mutate", cfg.mutations.count > 0),
                    ("journal", cfg.mutations.journal),
                    ("replay", cfg.mutations.crash_replay),
                )
                if on
            ]
            layout = f"{t.shards}x{t.replicas}" + (
                f" +{'+'.join(flags)}" if flags else ""
            )
            table.add_row(name, cfg.dataset, layout, cfg.description)
        _print(table.render())
        return 0

    targets = args.names if args.action == "run" else sorted(configs)
    try:
        results = run_with_siblings(
            configs, targets,
            progress=lambda name: _print(f"running {name} ..."),
        ) if args.action == "run" else None
        if results is None:
            results, failures = verify_scenarios(
                configs,
                progress=lambda name: _print(f"running {name} ..."),
            )
        else:
            failures = []
            for name in targets:
                failures.extend(
                    evaluate_expect(configs[name], results[name], results)
                )
    except (ScenarioError, ScenarioConfigError) as exc:
        print(f"scenario: {exc}", file=sys.stderr)
        return 2

    for name in sorted(results):
        _print(describe(results[name]))
    if args.action == "run" and args.json:
        _print(json.dumps(
            {name: results[name].as_dict() for name in sorted(results)},
            indent=2, sort_keys=True,
        ))
    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)
    checked = len(targets)
    _print(
        f"{checked} scenario(s) checked, {len(failures)} expect "
        f"failure(s)"
    )
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Subgraph querying with parallel use of query rewritings "
            "and alternative algorithms (EDBT 2017 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="summarize the dataset stand-ins")
    p.add_argument("--scale", choices=("default", "tiny"),
                   default="default")
    p.set_defaults(fn=cmd_datasets)

    p = sub.add_parser("workload", help="generate a query workload")
    p.add_argument("--dataset", required=True,
                   choices=NFV_DATASETS + FTV_DATASETS)
    p.add_argument("--size", type=int, default=8,
                   help="query size in edges")
    p.add_argument("--count", type=int, default=5)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--scale", choices=("default", "tiny"),
                   default="default")
    p.add_argument("--out", help="write queries to a GFU file")
    p.set_defaults(fn=cmd_workload)

    p = sub.add_parser("match", help="run one matcher on one query")
    p.add_argument("--dataset", required=True,
                   choices=NFV_DATASETS + FTV_DATASETS)
    p.add_argument("--algorithm", default="GQL",
                   choices=available_matchers())
    p.add_argument("--size", type=int, default=8)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--budget", type=int, default=200_000,
                   help="step cap (0 = unlimited)")
    p.add_argument("--max-embeddings", type=int, default=1000)
    p.add_argument("--scale", choices=("default", "tiny"),
                   default="default")
    p.set_defaults(fn=cmd_match)

    p = sub.add_parser("race", help="run a Psi race on one query")
    p.add_argument("--dataset", required=True, choices=NFV_DATASETS)
    p.add_argument("--algorithms", default="GQL,SPA",
                   help="comma-separated matcher names")
    p.add_argument("--rewritings", default="Orig,DND",
                   help="comma-separated rewriting names")
    p.add_argument("--size", type=int, default=8)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--budget", type=int, default=200_000)
    p.add_argument("--max-embeddings", type=int, default=1000)
    p.add_argument("--scale", choices=("default", "tiny"),
                   default="default")
    p.set_defaults(fn=cmd_race)

    p = sub.add_parser(
        "analyze",
        help="straggler overlap / winner attribution / diagnoses",
    )
    p.add_argument("--dataset", default="yeast", choices=NFV_DATASETS)
    p.add_argument("--scale", choices=("default", "tiny"),
                   default="tiny")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "experiment", help="regenerate a paper figure/table"
    )
    p.add_argument("--name", required=True,
                   choices=NFV_EXPERIMENTS + FTV_EXPERIMENTS)
    p.add_argument("--dataset", help="dataset override")
    p.add_argument("--scale", choices=("default", "tiny"),
                   default="tiny")
    p.set_defaults(fn=cmd_experiment)

    def add_serve_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="yeast",
                       choices=NFV_DATASETS + FTV_DATASETS)
        p.add_argument("--scale", choices=("default", "tiny"),
                       default="default")
        p.add_argument("--queries", type=int, default=50,
                       help="total queries across all tenants")
        p.add_argument("--tenants", type=int, default=3)
        p.add_argument("--workers", type=int, default=4,
                       help="simulated worker pool size (per shard)")
        p.add_argument("--shards", type=int, default=1,
                       help="catalog shards; each gets its own worker "
                            "pool and queries fan out across them")
        p.add_argument("--replicas", type=int, default=1,
                       help="warm replicas per shard; each gets its "
                            "own worker pool and legs land on the "
                            "least-loaded live one")
        p.add_argument("--chaos", action="store_true",
                       help="inject a seeded deterministic fault plan "
                            "(replica kills, pool wedges, task "
                            "failures); needs --replicas >= 2")
        p.add_argument("--chaos-seed", type=int, default=1337,
                       help="seed for the chaos fault plan")
        p.add_argument("--chaos-horizon", type=int, default=0,
                       help="schedule faults on the virtual clock up "
                            "to this step (0 = schedule on query "
                            "completions instead)")
        p.add_argument("--routing", default=True,
                       action=argparse.BooleanOptionalAction,
                       help="sketch-routed fan-outs: prune provably-"
                            "empty shards and stage decision queries "
                            "in expected-first-true wave order "
                            "(--no-routing = the PR 4 full fan-out)")
        p.add_argument("--assignment", default="size_balanced",
                       choices=("size_balanced", "hash"),
                       help="initial shard assignment strategy")
        p.add_argument("--decision-only", action="store_true",
                       help="existence answers only: sweeps stop at "
                            "the first match and the first true shard "
                            "settles the query")
        p.add_argument("--rebalance", action="store_true",
                       help="migrate graphs off hot shards at quiesce "
                            "points when per-shard step bills skew")
        p.add_argument("--rebalance-every", type=int, default=0,
                       help="completions between quiesce checks "
                            "(0 = queries/4)")
        p.add_argument("--concurrency", type=int, default=1,
                       help="closed-loop in-flight queries per tenant")
        p.add_argument("--max-in-flight", type=int, default=4,
                       help="admission cap per tenant")
        p.add_argument("--algorithms", default="GQL,SPA")
        p.add_argument("--rewritings", default="Orig,DND")
        p.add_argument("--sizes", default="4,8,12",
                       help="query-size strata (edges)")
        p.add_argument("--repeat-fraction", type=float, default=0.35,
                       help="fraction of repeated (isomorphic) queries")
        p.add_argument("--budget", type=int, default=200_000)
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--plan-seeding", action="store_true",
                       help="seed near-miss races from the plan cache "
                            "(cached winner + one challenger)")
        p.add_argument("--no-coalesce", action="store_true",
                       help="disable in-flight request coalescing")
        p.add_argument("--store", metavar="DIR", default=None,
                       help="boot warm state from a persisted artifact "
                            "store (written by `repro warm --store`); "
                            "corrupt or absent artifacts fall back to "
                            "an in-process rebuild")
        p.add_argument("--regrow", action="store_true",
                       help="heal permanent replica losses mid-load: "
                            "each killed replica is replaced via "
                            "Service.add_replica (booting from --store "
                            "when one is attached)")

    p = sub.add_parser(
        "warm",
        help="warm a catalog and persist it to an artifact store",
    )
    p.add_argument("--store", metavar="DIR", required=True,
                   help="store directory (created if absent); the "
                        "manifest lands last via an atomic rename")
    p.add_argument("--dataset", default="yeast",
                   choices=NFV_DATASETS + FTV_DATASETS)
    p.add_argument("--scale", choices=("default", "tiny"),
                   default="default")
    p.add_argument("--shards", type=int, default=1,
                   help="persist the sharded layout (per-shard index "
                        "blobs) instead of the unsharded one")
    p.add_argument("--replicas", type=int, default=1,
                   help="replica layout recorded in the manifest")
    p.add_argument("--assignment", default="size_balanced",
                   choices=("size_balanced", "hash"))
    p.add_argument("--algorithms", default="GQL,SPA")
    p.add_argument("--verify", action="store_true",
                   help="re-checksum every written blob before exiting")
    p.set_defaults(fn=cmd_warm)

    p = sub.add_parser(
        "serve",
        help="boot the serving layer and replay a multi-tenant workload",
    )
    add_serve_args(p)
    p.add_argument("--verbose", action="store_true",
                   help="print one line per completed query")
    p.add_argument("--listen", metavar="HOST:PORT", default=None,
                   help="serve queries over an asyncio front door "
                        "instead of replaying a synthetic workload "
                        "(port 0 picks a free port; see GET /stats, "
                        "GET /trace/<id>, GET /watch, POST /query)")
    p.add_argument("--steps-per-second", type=int, default=None,
                   help="virtual steps per wall second, used only to "
                        "render Retry-After hints on 429s "
                        "(default 1,000,000)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "tail",
        help="follow a running front door's /watch stream",
    )
    p.add_argument("endpoint", metavar="HOST:PORT",
                   help="address printed by `repro serve --listen`")
    p.add_argument("--frames", type=int, default=0,
                   help="stop after this many frames (0 = forever)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between frames")
    p.add_argument("--max-reconnects", type=int, default=5,
                   help="consecutive reconnect attempts before giving "
                        "up (a healthy frame resets the count)")
    p.add_argument("--backoff-base", type=float, default=0.5,
                   help="first reconnect delay bound (seconds); "
                        "doubles per consecutive failure, with jitter")
    p.add_argument("--backoff-cap", type=float, default=30.0,
                   help="reconnect delay ceiling (seconds)")
    p.add_argument("--read-timeout", type=float, default=None,
                   help="per-frame read timeout in seconds (default: "
                        "10x --interval)")
    p.set_defaults(fn=cmd_tail)

    p = sub.add_parser(
        "bench-serve",
        help="closed-loop service load generator (writes JSON)",
    )
    add_serve_args(p)
    p.add_argument("--out", default="BENCH_service.json")
    p.set_defaults(fn=cmd_bench_serve)

    p = sub.add_parser(
        "scenario",
        help="declarative scenario harness: YAML configs run through "
             "the conformance runner",
    )
    ssub = p.add_subparsers(dest="action", required=True)

    sp = ssub.add_parser(
        "list", help="list the scenario configs in a directory"
    )
    sp.add_argument("dir", nargs="?", default="scenarios",
                    help="scenario directory (default: scenarios)")
    sp.set_defaults(fn=cmd_scenario)

    sp = ssub.add_parser(
        "run",
        help="run named scenarios (plus the siblings their expect "
             "blocks reference) and evaluate their expect blocks",
    )
    sp.add_argument("names", nargs="+", metavar="NAME")
    sp.add_argument("--dir", default="scenarios",
                    help="scenario directory (default: scenarios)")
    sp.add_argument("--json", action="store_true",
                    help="also emit every result as JSON (includes "
                         "the digests to pin in expect blocks)")
    sp.set_defaults(fn=cmd_scenario)

    sp = ssub.add_parser(
        "verify",
        help="run every scenario in a directory and evaluate every "
             "expect block (the CI scenario-matrix job)",
    )
    sp.add_argument("dir", nargs="?", default="scenarios",
                    help="scenario directory (default: scenarios)")
    sp.set_defaults(fn=cmd_scenario)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
