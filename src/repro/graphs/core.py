"""Core labeled-graph data structure.

The paper (Definition 1) works with graphs ``G = (V, E, L)`` where ``L``
assigns a label to every vertex (and, in the general definition, every
edge).  All datasets used in the paper's evaluation are vertex-labeled,
undirected, and without parallel edges, so :class:`LabeledGraph` models
exactly that, with optional edge labels for completeness.

Vertices are identified by dense integer node IDs ``0 .. n-1``.  Node IDs
matter a great deal in this reproduction: the paper's key observation is
that the *assignment of node IDs* (an arbitrary choice, since permuting
IDs yields an isomorphic graph) changes the search order of every studied
algorithm and hence its running time by orders of magnitude.  All
tie-breaking in this library is therefore by node ID, and
:meth:`LabeledGraph.permuted` is the primitive on which every query
rewriting in :mod:`repro.rewriting` is built.
"""

from __future__ import annotations

from collections import Counter, deque
from collections.abc import Hashable, Iterable, Iterator, Mapping, Sequence
from typing import Optional

Label = Hashable
Edge = tuple[int, int]

__all__ = ["LabeledGraph", "GraphError", "bits_ascending"]


def bits_ascending(mask: int) -> Iterator[int]:
    """Set-bit positions of ``mask`` in ascending order.

    The shared decoding loop for every bitmask in the repo — adjacency
    masks, matcher candidate bitsets, and the FTV posting bitsets all
    speak "bit ``i`` means vertex/graph ``i``".
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class GraphError(ValueError):
    """Raised on structurally invalid graph operations."""


def _normalize_edge(u: int, v: int) -> Edge:
    """Canonical (min, max) form for an undirected edge."""
    return (u, v) if u <= v else (v, u)


class _FrozenKernel:
    """Immutable derived structures, built once per (re)freeze.

    The matchers spend essentially all of their time probing adjacency
    and labels, so freezing materialises everything those inner loops
    need into flat, index-by-node-ID structures:

    * ``neighbors`` — CSR-style tuple-of-tuples, ascending IDs;
    * ``adj_masks`` — per-vertex neighbourhood as a bitmask int, so
      "is ``c`` adjacent to every vertex in ``S``" is one ``&``/``==``
      against the precomputed mask of ``S``;
    * ``neighbor_sets`` — cached frozensets (O(1) membership without
      rebuilding a set per call);
    * ``label_buckets`` — label -> ascending vertex tuple (the NFV
      "vertex label list"), making ``vertices_with_label`` O(1);
    * ``label_codes`` / ``code_of`` — labels interned to dense ints in
      first-bucket order, so label equality in hot loops is an int
      compare instead of arbitrary-object ``__eq__``.
    """

    __slots__ = (
        "labels",
        "neighbors",
        "adj_masks",
        "neighbor_sets",
        "label_buckets",
        "label_codes",
        "code_of",
    )

    def __init__(self, labels: list[Label], adj: list[set[int]]) -> None:
        self.labels = tuple(labels)
        self.neighbors = tuple(tuple(sorted(s)) for s in adj)
        self.adj_masks = tuple(
            sum(1 << w for w in s) for s in adj
        )
        self.neighbor_sets = tuple(frozenset(s) for s in adj)
        buckets: dict[Label, list[int]] = {}
        for v, lab in enumerate(self.labels):
            buckets.setdefault(lab, []).append(v)
        self.label_buckets = {
            lab: tuple(vs) for lab, vs in buckets.items()
        }
        self.code_of = {
            lab: code for code, lab in enumerate(self.label_buckets)
        }
        codes = self.code_of
        self.label_codes = tuple(codes[lab] for lab in self.labels)


class LabeledGraph:
    """An undirected, vertex-labeled graph with dense integer node IDs.

    Parameters
    ----------
    n:
        Number of vertices; vertices are ``0 .. n-1``.
    labels:
        Sequence of ``n`` vertex labels (any hashable; datasets in the
        paper use small strings or ints).
    name:
        Optional graph name (used by multi-graph datasets and IO).

    The structure is build-then-query: edges are added with
    :meth:`add_edge`, after which the graph is typically treated as
    immutable.  Neighbour iteration is always in ascending node-ID order,
    which keeps every algorithm in :mod:`repro.matching` deterministic.
    """

    __slots__ = (
        "_labels",
        "_adj",
        "_edge_labels",
        "_m",
        "name",
        "_frozen",
        "_index_memo",
        "__weakref__",
    )

    def __init__(
        self,
        n: int,
        labels: Sequence[Label],
        name: str = "",
    ) -> None:
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        if len(labels) != n:
            raise GraphError(
                f"expected {n} labels, got {len(labels)}"
            )
        self._labels: list[Label] = list(labels)
        # adjacency sets; the fast-path kernel (CSR tuples, bitmasks,
        # label buckets) is materialised lazily on freeze
        self._adj: list[set[int]] = [set() for _ in range(n)]
        self._edge_labels: dict[Edge, Label] = {}
        self._m = 0
        self.name = name
        self._frozen: Optional[_FrozenKernel] = None
        # matcher-index memo managed by repro.caching.PrepareCache;
        # living on the graph ties the memo's lifetime to the graph's
        self._index_memo: Optional[dict] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        labels: Sequence[Label],
        edges: Iterable[Edge],
        name: str = "",
    ) -> "LabeledGraph":
        """Build a graph from a label sequence and an edge iterable."""
        g = cls(len(labels), labels, name=name)
        for u, v in edges:
            g.add_edge(u, v)
        return g

    def add_edge(self, u: int, v: int, label: Label = None) -> None:
        """Add the undirected edge ``{u, v}``.

        Self-loops and duplicate edges are rejected: none of the paper's
        datasets contain them and the matching algorithms assume simple
        graphs.
        """
        n = self.order
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
        if u == v:
            raise GraphError(f"self-loop on vertex {u} not allowed")
        if v in self._adj[u]:
            raise GraphError(f"duplicate edge ({u}, {v})")
        self._adj[u].add(v)
        self._adj[v].add(u)
        if label is not None:
            self._edge_labels[_normalize_edge(u, v)] = label
        self._m += 1
        self._frozen = None
        self._index_memo = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of vertices."""
        return len(self._labels)

    @property
    def size(self) -> int:
        """Number of edges."""
        return self._m

    def label(self, v: int) -> Label:
        """Label of vertex ``v``."""
        return self._labels[v]

    @property
    def labels(self) -> tuple[Label, ...]:
        """All vertex labels, indexed by node ID.

        Served from the frozen kernel when one exists; a pure label
        read never forces kernel construction.
        """
        kern = self._frozen
        return kern.labels if kern is not None else tuple(self._labels)

    def edge_label(self, u: int, v: int) -> Label:
        """Label of edge ``{u, v}`` (``None`` if unlabeled)."""
        return self._edge_labels.get(_normalize_edge(u, v))

    def degree(self, v: int) -> int:
        """Number of edges incident to ``v``."""
        return len(self._adj[v])

    def kernel(self) -> _FrozenKernel:
        """The frozen fast-path kernel (built lazily, reset by mutation)."""
        kern = self._frozen
        if kern is None:
            kern = self._frozen = _FrozenKernel(self._labels, self._adj)
        return kern

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Neighbours of ``v`` in ascending node-ID order."""
        return self.kernel().neighbors[v]

    def adjacency(self) -> tuple[tuple[int, ...], ...]:
        """CSR-style adjacency: ``adjacency()[v]`` == ``neighbors(v)``."""
        return self.kernel().neighbors

    def neighbor_set(self, v: int) -> frozenset[int]:
        """Neighbours of ``v`` as a set (O(1) membership, cached)."""
        return self.kernel().neighbor_sets[v]

    def adjacency_masks(self) -> tuple[int, ...]:
        """Per-vertex neighbourhoods as bitmask ints.

        ``adjacency_masks()[v] >> w & 1`` tests the edge ``{v, w}``; a
        single ``mask & need == need`` tests adjacency to a whole vertex
        set at once — the matchers' hottest probe.
        """
        return self.kernel().adj_masks

    def label_codes(self) -> tuple[int, ...]:
        """Per-vertex labels interned to dense int codes."""
        return self.kernel().label_codes

    def label_code_of(self) -> Mapping[Label, int]:
        """Label -> dense code mapping matching :meth:`label_codes`."""
        return self.kernel().code_of

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return v in self._adj[u]

    def vertices(self) -> range:
        """All node IDs."""
        return range(self.order)

    def edges(self) -> Iterator[Edge]:
        """All edges, each once, in (min-ID, max-ID) lexicographic order.

        Uses the frozen kernel when available, but a pure edge read on
        an unfrozen graph (serialization, generator mutation loops)
        does not force kernel construction.
        """
        kern = self._frozen
        if kern is not None:
            adj: Sequence[Sequence[int]] = kern.neighbors
        else:
            adj = [sorted(s) for s in self._adj]
        for u in range(self.order):
            for v in adj[u]:
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # statistics used by rewritings / matchers / dataset tables
    # ------------------------------------------------------------------

    def label_frequencies(self) -> Counter:
        """Multiplicity of each vertex label (paper's ``f(L(.))``)."""
        return Counter(self._labels)

    def distinct_labels(self) -> frozenset[Label]:
        """The set of vertex labels present in this graph."""
        return frozenset(self._labels)

    def density(self) -> float:
        """Edge density ``2m / (n (n-1))`` as reported in Tables 1-2."""
        n = self.order
        if n < 2:
            return 0.0
        return 2.0 * self._m / (n * (n - 1))

    def average_degree(self) -> float:
        """Mean vertex degree."""
        if self.order == 0:
            return 0.0
        return 2.0 * self._m / self.order

    def vertices_with_label(self, label: Label) -> tuple[int, ...]:
        """Node IDs carrying ``label``, ascending.

        This is the "vertex label list" every NFV method maintains in its
        indexing phase; matchers precompute it via
        :class:`repro.matching.engine.GraphIndex`.  O(1) after the first
        call: the frozen kernel holds the buckets.
        """
        return self.kernel().label_buckets.get(label, ())

    # ------------------------------------------------------------------
    # structure operations
    # ------------------------------------------------------------------

    def permuted(self, perm: Sequence[int], name: str = "") -> "LabeledGraph":
        """Return the isomorphic graph with node IDs permuted by ``perm``.

        ``perm[old_id] == new_id``.  This realises the paper's observation
        (Definition 2) that "a graph isomorphic to G can be trivially
        produced by permuting the node IDs in G"; every rewriting in
        :mod:`repro.rewriting` reduces to a call to this method.
        """
        n = self.order
        if sorted(perm) != list(range(n)):
            raise GraphError("perm must be a permutation of 0..n-1")
        labels: list[Label] = [None] * n
        for old, new in enumerate(perm):
            labels[new] = self._labels[old]
        g = LabeledGraph(n, labels, name=name or self.name)
        for u, v in self.edges():
            g.add_edge(perm[u], perm[v], self.edge_label(u, v))
        return g

    def induced_subgraph(
        self, nodes: Sequence[int], name: str = ""
    ) -> tuple["LabeledGraph", dict[int, int]]:
        """Subgraph induced by ``nodes``.

        Returns the new graph (IDs compacted to ``0..len(nodes)-1`` in the
        order given) and the old-ID -> new-ID mapping.  Used by Grapes to
        carve out the connected components recorded in its location index.
        """
        mapping = {old: new for new, old in enumerate(nodes)}
        if len(mapping) != len(nodes):
            raise GraphError("duplicate node in induced_subgraph")
        g = LabeledGraph(
            len(nodes),
            [self._labels[v] for v in nodes],
            name=name or self.name,
        )
        for old_u in nodes:
            for old_v in self._adj[old_u]:
                new_v = mapping.get(old_v)
                if new_v is None:
                    continue
                new_u = mapping[old_u]
                if new_u < new_v:
                    g.add_edge(new_u, new_v, self.edge_label(old_u, old_v))
        return g, mapping

    def connected_components(self) -> list[list[int]]:
        """Connected components as sorted ID lists, ordered by smallest ID."""
        seen = [False] * self.order
        components: list[list[int]] = []
        for start in range(self.order):
            if seen[start]:
                continue
            seen[start] = True
            comp = [start]
            queue = deque([start])
            while queue:
                u = queue.popleft()
                for v in self._adj[u]:
                    if not seen[v]:
                        seen[v] = True
                        comp.append(v)
                        queue.append(v)
            components.append(sorted(comp))
        return components

    def is_connected(self) -> bool:
        """Whether the graph has exactly one connected component."""
        return self.order <= 1 or len(self.connected_components()) == 1

    def bfs_order(self, start: int) -> list[int]:
        """BFS visit order from ``start`` (neighbours in ID order)."""
        seen = [False] * self.order
        seen[start] = True
        order = [start]
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in self.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    order.append(v)
                    queue.append(v)
        return order

    # ------------------------------------------------------------------
    # comparisons / hashing helpers (tests rely on these)
    # ------------------------------------------------------------------

    def same_labeled_structure(self, other: "LabeledGraph") -> bool:
        """Exact equality of labels and edge sets under identical IDs."""
        return (
            self.order == other.order
            and self._labels == other._labels
            and self._adj == other._adj
            and self._edge_labels == other._edge_labels
        )

    def degree_label_signature(self) -> tuple[tuple[Label, int], ...]:
        """Sorted multiset of (label, degree) pairs.

        An isomorphism *invariant*: two isomorphic graphs always share it.
        The tests use it to sanity-check that rewritings produce genuinely
        isomorphic graphs.
        """
        return tuple(
            sorted(
                ((self._labels[v], self.degree(v)) for v in self.vertices()),
                key=repr,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<LabeledGraph{tag} n={self.order} m={self.size} "
            f"labels={len(self.distinct_labels())}>"
        )
