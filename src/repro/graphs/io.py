"""Graph serialization.

Three interchange formats are supported:

* **GFU** — the multi-graph text format used by the original Grapes and
  GGSX implementations (one file holds a whole FTV dataset).
* **Edge list** — one labeled graph per file; the format used by the NFV
  comparison framework of Lee et al. [12].
* **JSON** — a faithful round-trip format including edge labels.

All writers are deterministic (vertices ascending, edges in
``LabeledGraph.edges()`` order) so serialized datasets diff cleanly.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path

from .core import GraphError, LabeledGraph

__all__ = [
    "dumps_gfu",
    "loads_gfu",
    "write_gfu",
    "read_gfu",
    "dumps_edge_list",
    "loads_edge_list",
    "graph_to_json",
    "graph_from_json",
]


# ----------------------------------------------------------------------
# GFU (Grapes multi-graph format)
# ----------------------------------------------------------------------

def dumps_gfu(graphs: Iterable[LabeledGraph]) -> str:
    """Serialize ``graphs`` to a GFU-format string.

    Layout per graph::

        #<name>
        <n>
        <label of vertex 0>
        ...
        <label of vertex n-1>
        <m>
        <u> <v>
        ...
    """
    chunks: list[str] = []
    for g in graphs:
        lines = [f"#{g.name}", str(g.order)]
        lines.extend(str(g.label(v)) for v in g.vertices())
        lines.append(str(g.size))
        lines.extend(f"{u} {v}" for u, v in g.edges())
        chunks.append("\n".join(lines))
    return "\n".join(chunks) + ("\n" if chunks else "")


def loads_gfu(text: str) -> list[LabeledGraph]:
    """Parse a GFU-format string into a list of graphs."""
    lines = [ln.strip() for ln in text.splitlines() if ln.strip()]
    graphs: list[LabeledGraph] = []
    i = 0
    while i < len(lines):
        header = lines[i]
        if not header.startswith("#"):
            raise GraphError(f"expected '#<name>' header, got {header!r}")
        name = header[1:]
        i += 1
        try:
            n = int(lines[i])
        except (IndexError, ValueError) as exc:
            raise GraphError(f"bad vertex count after {header!r}") from exc
        i += 1
        labels = lines[i : i + n]
        if len(labels) != n:
            raise GraphError(f"graph {name!r}: expected {n} labels")
        i += n
        try:
            m = int(lines[i])
        except (IndexError, ValueError) as exc:
            raise GraphError(f"graph {name!r}: bad edge count") from exc
        i += 1
        g = LabeledGraph(n, labels, name=name)
        for _ in range(m):
            try:
                u_s, v_s = lines[i].split()
            except (IndexError, ValueError) as exc:
                raise GraphError(f"graph {name!r}: bad edge line") from exc
            g.add_edge(int(u_s), int(v_s))
            i += 1
        graphs.append(g)
    return graphs


def write_gfu(path: str | Path, graphs: Iterable[LabeledGraph]) -> None:
    """Write ``graphs`` to ``path`` in GFU format."""
    Path(path).write_text(dumps_gfu(graphs))


def read_gfu(path: str | Path) -> list[LabeledGraph]:
    """Read a GFU dataset from ``path``."""
    return loads_gfu(Path(path).read_text())


# ----------------------------------------------------------------------
# Edge list (single graph; `v <id> <label>` / `e <u> <v>` lines)
# ----------------------------------------------------------------------

def dumps_edge_list(g: LabeledGraph) -> str:
    """Serialize one graph in `t / v / e` edge-list format."""
    lines = [f"t {g.name or 'graph'} {g.order} {g.size}"]
    lines.extend(f"v {v} {g.label(v)}" for v in g.vertices())
    lines.extend(f"e {u} {v}" for u, v in g.edges())
    return "\n".join(lines) + "\n"


def loads_edge_list(text: str) -> LabeledGraph:
    """Parse a single graph in `t / v / e` edge-list format."""
    name = ""
    labels: dict[int, str] = {}
    edges: list[tuple[int, int]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        kind, *rest = line.split()
        if kind == "t":
            if rest:
                name = rest[0]
        elif kind == "v":
            vid, label = int(rest[0]), rest[1]
            if vid in labels:
                raise GraphError(f"duplicate vertex {vid}")
            labels[vid] = label
        elif kind == "e":
            edges.append((int(rest[0]), int(rest[1])))
        else:
            raise GraphError(f"unknown line kind {kind!r}")
    n = len(labels)
    if sorted(labels) != list(range(n)):
        raise GraphError("vertex IDs must be dense 0..n-1")
    g = LabeledGraph(n, [labels[v] for v in range(n)], name=name)
    for u, v in edges:
        g.add_edge(u, v)
    return g


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------

def graph_to_json(g: LabeledGraph) -> str:
    """Round-trip JSON encoding (includes edge labels)."""
    payload = {
        "name": g.name,
        "labels": list(g.labels),
        "edges": [
            [u, v, g.edge_label(u, v)] for u, v in g.edges()
        ],
    }
    return json.dumps(payload, sort_keys=True)


def graph_from_json(text: str) -> LabeledGraph:
    """Inverse of :func:`graph_to_json`."""
    payload = json.loads(text)
    labels: Sequence = payload["labels"]
    g = LabeledGraph(len(labels), labels, name=payload.get("name", ""))
    for u, v, elabel in payload["edges"]:
        g.add_edge(u, v, elabel)
    return g
