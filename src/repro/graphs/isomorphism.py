"""Exact graph isomorphism for labeled graphs.

Two uses inside this project:

* the test suite verifies that every query rewriting produces a graph
  *exactly* isomorphic to the original (Definition 2 of the paper), not
  merely one sharing cheap invariants;
* :class:`repro.caching.QueryCache` detects repeated queries up to
  isomorphism (the iGQ idea the paper cites as orthogonal related
  work [19]).

The checker is a VF2-flavoured backtracking over vertex bijections with
label/degree partitioning and a neighbourhood-signature refinement —
exponential in the worst case, but queries in this project are small
(tens of vertices) and heavily labeled, where it is effectively
instant.
"""

from __future__ import annotations

from collections import Counter

from .core import LabeledGraph

__all__ = ["are_isomorphic", "isomorphism_invariant_key"]


def isomorphism_invariant_key(g: LabeledGraph) -> tuple:
    """A hashable isomorphism invariant (equal for isomorphic graphs).

    Combines order, size, the (label, degree) multiset, the edge
    label-pair multiset, and a one-round colour refinement of
    neighbourhood label multisets.  Collisions are possible (resolve
    with :func:`are_isomorphic`); differences are definitive.
    """
    degree_labels = tuple(
        sorted(
            ((repr(g.label(v)), g.degree(v)) for v in g.vertices()),
        )
    )
    edge_pairs = tuple(
        sorted(
            tuple(sorted((repr(g.label(u)), repr(g.label(v)))))
            for u, v in g.edges()
        )
    )
    refined = tuple(
        sorted(
            (
                repr(g.label(v)),
                tuple(
                    sorted(
                        Counter(
                            repr(g.label(w)) for w in g.neighbors(v)
                        ).items()
                    )
                ),
            )
            for v in g.vertices()
        )
    )
    return (g.order, g.size, degree_labels, edge_pairs, refined)


def _signature(g: LabeledGraph, v: int) -> tuple:
    """Per-vertex matching class: label, degree, neighbour labels."""
    return (
        repr(g.label(v)),
        g.degree(v),
        tuple(
            sorted(
                Counter(repr(g.label(w)) for w in g.neighbors(v)).items()
            )
        ),
    )


def are_isomorphic(g: LabeledGraph, h: LabeledGraph) -> bool:
    """Whether ``g`` and ``h`` are isomorphic (vertex labels included).

    Edge labels are ignored, as in the paper's datasets (all
    vertex-labeled).  Correctness note: a vertex bijection preserving
    vertex labels that maps every ``g`` edge onto an ``h`` edge is a
    full isomorphism whenever ``g.size == h.size`` (the induced edge
    map is then injective between equal-size sets, hence bijective).
    """
    if g.order != h.order or g.size != h.size:
        return False
    if isomorphism_invariant_key(g) != isomorphism_invariant_key(h):
        return False
    n = g.order
    if n == 0:
        return True

    # partition h's vertices by signature for candidate lookup
    h_by_sig: dict[tuple, list[int]] = {}
    for v in h.vertices():
        h_by_sig.setdefault(_signature(h, v), []).append(v)
    g_sigs = [_signature(g, v) for v in g.vertices()]
    for sig in g_sigs:
        if sig not in h_by_sig:
            return False

    # match g's vertices in order of rarest signature first
    order = sorted(
        g.vertices(), key=lambda v: (len(h_by_sig[g_sigs[v]]), v)
    )
    mapping: dict[int, int] = {}
    used: set[int] = set()

    def backtrack(pos: int) -> bool:
        if pos == n:
            return True
        u = order[pos]
        mapped_nbrs = [
            (w, mapping[w]) for w in g.neighbors(u) if w in mapping
        ]
        for c in h_by_sig[g_sigs[u]]:
            if c in used:
                continue
            # bijection on edges: mapped neighbours must be adjacent,
            # and (since degrees match globally) nothing else checked
            # here can break edge counts
            if all(h.has_edge(c, img) for _, img in mapped_nbrs):
                mapping[u] = c
                used.add(c)
                if backtrack(pos + 1):
                    return True
                del mapping[u]
                used.discard(c)
        return False

    return backtrack(0)
