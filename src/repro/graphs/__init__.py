"""Graph substrate: labeled graphs, IO, and random generators."""

from .core import GraphError, LabeledGraph, bits_ascending
from .generators import (
    connect_components,
    disjoint_union,
    gnm_graph,
    mutate_graph,
    powerlaw_graph,
    sparse_tree_like_graph,
    uniform_labels,
    zipf_labels,
)
from .isomorphism import are_isomorphic, isomorphism_invariant_key
from .io import (
    dumps_edge_list,
    dumps_gfu,
    graph_from_json,
    graph_to_json,
    loads_edge_list,
    loads_gfu,
    read_gfu,
    write_gfu,
)

__all__ = [
    "GraphError",
    "LabeledGraph",
    "are_isomorphic",
    "isomorphism_invariant_key",
    "connect_components",
    "disjoint_union",
    "mutate_graph",
    "gnm_graph",
    "powerlaw_graph",
    "sparse_tree_like_graph",
    "uniform_labels",
    "zipf_labels",
    "dumps_edge_list",
    "dumps_gfu",
    "graph_from_json",
    "graph_to_json",
    "loads_edge_list",
    "loads_gfu",
    "read_gfu",
    "write_gfu",
]
