"""Random labeled-graph generators.

These are the building blocks for :mod:`repro.datasets`, which assembles
stand-ins for the paper's datasets (PPI, GraphGen synthetic, yeast, human,
wordnet).  Three structural families cover the paper's design space:

* :func:`gnm_graph` — Erdős–Rényi G(n, m); GraphGen, the generator used
  for the paper's synthetic FTV dataset, produces graphs of this flavour
  with target density.
* :func:`powerlaw_graph` — preferential-attachment graphs with heavy-tail
  degree distributions; protein-interaction networks (PPI, yeast, human)
  look like this.
* :func:`sparse_tree_like_graph` — very sparse graphs that are mostly
  tree/path shaped; wordnet (avg degree 2.9, density 3.5e-5) is the
  archetype.

Label assignment is orthogonal to structure: :func:`uniform_labels` or
:func:`zipf_labels` (wordnet's 5 labels with "highly skewed" frequencies —
paper §6.2 — need the latter).

Every function takes an explicit :class:`random.Random` so dataset builds
are reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from .core import GraphError, LabeledGraph

__all__ = [
    "uniform_labels",
    "zipf_labels",
    "gnm_graph",
    "powerlaw_graph",
    "sparse_tree_like_graph",
    "disjoint_union",
    "mutate_graph",
    "connect_components",
]


# ----------------------------------------------------------------------
# label assignment
# ----------------------------------------------------------------------

def uniform_labels(
    n: int, alphabet: Sequence[str], rng: random.Random
) -> list[str]:
    """``n`` labels drawn uniformly from ``alphabet``."""
    if not alphabet:
        raise GraphError("alphabet must be non-empty")
    return [rng.choice(alphabet) for _ in range(n)]


def zipf_labels(
    n: int,
    alphabet: Sequence[str],
    rng: random.Random,
    exponent: float = 1.2,
) -> list[str]:
    """``n`` labels with Zipf-skewed frequencies.

    ``alphabet[0]`` is the most frequent label.  ``exponent`` controls the
    skew; 1.2 reproduces the "small number of labels, highly skewed
    frequency" regime the paper attributes to wordnet.
    """
    if not alphabet:
        raise GraphError("alphabet must be non-empty")
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(alphabet))]
    return rng.choices(list(alphabet), weights=weights, k=n)


# ----------------------------------------------------------------------
# structural generators
# ----------------------------------------------------------------------

def gnm_graph(
    n: int,
    m: int,
    labels: Sequence[str],
    rng: random.Random,
    name: str = "",
) -> LabeledGraph:
    """Uniform random graph with exactly ``n`` vertices and ``m`` edges.

    A random spanning tree is laid down first so the result is connected
    (all the paper's stored graphs are queried as connected structures;
    GraphGen also produces connected graphs), then the remaining
    ``m - (n-1)`` edges are sampled uniformly without replacement.
    """
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise GraphError(f"m={m} exceeds max {max_m} for n={n}")
    if n > 1 and m < n - 1:
        raise GraphError(f"m={m} cannot connect n={n} vertices")
    g = LabeledGraph(n, labels, name=name)
    # random spanning tree (random attachment order)
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        g.add_edge(order[i], order[rng.randrange(i)])
    remaining = m - max(n - 1, 0)
    while remaining > 0:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v)
        remaining -= 1
    return g


def powerlaw_graph(
    n: int,
    edges_per_node: int,
    labels: Sequence[str],
    rng: random.Random,
    name: str = "",
) -> LabeledGraph:
    """Preferential-attachment (Barabási–Albert style) graph.

    Each new vertex attaches to ``edges_per_node`` existing vertices
    chosen proportionally to their current degree, yielding the heavy-tail
    degree distribution seen in the PPI / yeast / human datasets
    (Table 2 reports degree stddevs well above the mean).
    """
    if edges_per_node < 1:
        raise GraphError("edges_per_node must be >= 1")
    if n <= edges_per_node:
        raise GraphError("need n > edges_per_node")
    g = LabeledGraph(n, labels, name=name)
    # seed clique among the first edges_per_node + 1 vertices
    seed = edges_per_node + 1
    for u in range(seed):
        for v in range(u + 1, seed):
            g.add_edge(u, v)
    # repeated-endpoint list implements degree-proportional sampling
    endpoints: list[int] = []
    for u in range(seed):
        endpoints.extend([u] * g.degree(u))
    for u in range(seed, n):
        targets: set[int] = set()
        while len(targets) < edges_per_node:
            targets.add(endpoints[rng.randrange(len(endpoints))])
        for v in targets:
            g.add_edge(u, v)
            endpoints.append(v)
        endpoints.extend([u] * edges_per_node)
    return g


def sparse_tree_like_graph(
    n: int,
    extra_edge_fraction: float,
    labels: Sequence[str],
    rng: random.Random,
    name: str = "",
) -> LabeledGraph:
    """A connected graph that is a random tree plus a few chords.

    With ``extra_edge_fraction = 0`` this is exactly a random tree
    (avg degree < 2); small positive values reproduce wordnet's regime
    (avg degree 2.9 means roughly 0.45 extra edges per vertex).
    """
    if extra_edge_fraction < 0:
        raise GraphError("extra_edge_fraction must be >= 0")
    g = LabeledGraph(n, labels, name=name)
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        # attach preferentially near the recent frontier to get long,
        # path-like trees (wordnet queries "in their majority are paths")
        lo = max(0, i - 10) if rng.random() < 0.7 else 0
        g.add_edge(order[i], order[rng.randrange(lo, i)])
    extra = int(extra_edge_fraction * n)
    attempts = 0
    while extra > 0 and attempts < 50 * n:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v)
        extra -= 1
    return g


def disjoint_union(
    graphs: Sequence[LabeledGraph], name: str = ""
) -> LabeledGraph:
    """Disjoint union of several graphs (IDs shifted in order).

    PPI dataset graphs are themselves disconnected collections of
    interaction modules (the paper's Table 1 reports all 20 PPI graphs
    as disconnected); the PPI-like builder unions perturbed module
    templates with this helper.
    """
    total = sum(g.order for g in graphs)
    labels: list = []
    for g in graphs:
        labels.extend(g.labels)
    out = LabeledGraph(total, labels, name=name)
    offset = 0
    for g in graphs:
        for u, v in g.edges():
            out.add_edge(offset + u, offset + v, g.edge_label(u, v))
        offset += g.order
    return out


def mutate_graph(
    g: LabeledGraph,
    rng: random.Random,
    rewire_fraction: float = 0.1,
    relabel_fraction: float = 0.1,
    label_pool: Sequence[str] = (),
    name: str = "",
) -> LabeledGraph:
    """A perturbed copy of ``g``: some edges rewired, some labels swapped.

    Used to derive *families* of related graphs from shared templates —
    the regime of the paper's FTV datasets (protein networks of related
    species share orthologous modules), where one query matches several
    stored graphs and near-misses make verification expensive.
    """
    if not 0 <= rewire_fraction <= 1 or not 0 <= relabel_fraction <= 1:
        raise GraphError("fractions must be in [0, 1]")
    labels = list(g.labels)
    pool = list(label_pool) or sorted(set(labels), key=str)
    for v in range(g.order):
        if rng.random() < relabel_fraction:
            labels[v] = pool[rng.randrange(len(pool))]
    edges = list(g.edges())
    kept: list[tuple[int, int]] = []
    removed = 0
    for u, v in edges:
        if rng.random() < rewire_fraction:
            removed += 1
        else:
            kept.append((u, v))
    out = LabeledGraph(g.order, labels, name=name or g.name)
    seen = set()
    for u, v in kept:
        out.add_edge(u, v)
        seen.add((u, v))
    attempts = 0
    while removed > 0 and attempts < 100 * (removed + 1):
        attempts += 1
        u = rng.randrange(g.order)
        v = rng.randrange(g.order)
        if u == v or out.has_edge(u, v):
            continue
        out.add_edge(u, v)
        removed -= 1
    return out


def connect_components(g: LabeledGraph, rng: random.Random) -> LabeledGraph:
    """Return a connected copy of ``g`` by bridging its components.

    One random vertex of each non-first component is wired to a random
    vertex of the first.  Utility for dataset assembly.
    """
    comps = g.connected_components()
    if len(comps) <= 1:
        return g
    bridged = LabeledGraph(g.order, g.labels, name=g.name)
    for u, v in g.edges():
        bridged.add_edge(u, v, g.edge_label(u, v))
    anchor = comps[0]
    for comp in comps[1:]:
        bridged.add_edge(rng.choice(anchor), rng.choice(comp))
    return bridged
