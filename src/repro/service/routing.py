"""Shard-aware query routing: prune and order a sharded fan-out.

PR 4's sharded serving fans every query out to every shard holding
graphs; each shard then pays census + filter + race work even when its
partition provably contains no candidate.  The router makes the fan-out
itself cheap: one collection-wide query census, probed against each
shard's :class:`~repro.indexing.sketch.FeatureSketch`, decides per
shard in O(query features) int operations whether the shard can answer
at all — and, for decision-only queries, how *likely* it is to answer
first.

The contract (proven in ``tests/test_routing.py``):

* **Pruning is sound.**  A shard is pruned only when its sketch proves
  the query's filter would return zero candidates there (see the
  soundness argument in :mod:`repro.indexing.sketch`); since FTV
  filtering is a per-graph predicate, a pruned shard contributes
  ``found=False`` / zero embeddings / no ids to the merge — exactly
  nothing — so ``found`` / ``num_embeddings`` / ``matching_ids`` are
  bit-for-bit what the unrouted fan-out produces.  When *every* shard
  is prunable (e.g. a query label unknown to the whole collection) the
  plan keeps the lowest involved shard as a witness so the service
  still races and answers through the normal pipeline.
* **Ordering is a heuristic, never a semantic.**  For decision-only
  queries surviving shards are ordered by descending sketch score
  (shard id breaks ties), so the expected-first-true shard races first;
  in full mode every surviving shard runs and the order is ascending
  shard id, exactly the unrouted order.
* **Everything is deterministic.**  Sketches, censuses, scores, and
  orders are pure functions of (collection, assignment, query); the
  ``epoch`` counter only bumps when a rebalance changes the assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..graphs import LabeledGraph
from ..indexing import FTVIndex, LabelInterner
from ..indexing.features import PathCensus, coded_path_census
from ..indexing.sketch import DEFAULT_SKETCH_BUCKETS, FeatureSketch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .sharding import ShardedEntry

__all__ = ["RoutePlan", "ShardRouter"]


@dataclass(frozen=True)
class RoutePlan:
    """One query's routed fan-out over a sharded entry.

    ``order`` are the shards to race, in race order; ``pruned`` are the
    shards whose sketches proved them empty for this query (skipped
    entirely — no ticket token, no RaceTask, no admission charge);
    ``staged`` asks the service to race ``order`` as waves (first shard
    alone, then the rest) instead of gang-dispatching everything.
    """

    order: tuple[int, ...]
    pruned: tuple[int, ...] = ()
    staged: bool = False

    @property
    def width(self) -> int:
        """Shards this plan will actually race."""
        return len(self.order)


class ShardRouter:
    """Per-entry routing state: global interner + per-shard sketches.

    Built by :class:`~repro.service.sharding.ShardedCatalog` when an
    FTV entry is loaded; :meth:`refresh` re-folds one shard's sketch
    whenever that shard's partition is (re-)registered, so eviction
    reloads and rebalance migrations keep the sketches honest.
    """

    def __init__(
        self,
        entry: "ShardedEntry",
        num_buckets: int = DEFAULT_SKETCH_BUCKETS,
    ) -> None:
        self.entry = entry
        self.num_buckets = num_buckets
        #: collection-wide label codes — the census space every shard's
        #: sketch is recoded into
        self.interner = LabelInterner(g.labels for g in entry.graphs)
        self.max_path_length = entry.max_path_length
        #: shard -> sketch (absent = shard holds no graphs)
        self.sketches: dict[int, FeatureSketch] = {}
        #: routing-table version; bumped by rebalance reassignments so
        #: operators (and tests) can see the table moved
        self.epoch = 0
        #: namespace token for the per-query census memo entries
        self._census_token = object()

    # ------------------------------------------------------------------
    # sketch lifecycle
    # ------------------------------------------------------------------

    def refresh(self, shard: int, index: Optional[FTVIndex]) -> None:
        """(Re-)fold ``shard``'s sketch from its warm filter index."""
        if index is None:
            self.sketches.pop(shard, None)
            return
        # a store-restored partition of a mutated collection may intern
        # labels no live graph carries (interners never shrink through
        # remove/re-add); extend — never rebuild — so the recode below
        # stays total and existing router codes never move
        if self.interner.extend([list(index.interner.code_of)]):
            self._census_token = object()
        recode = {
            code: self.interner.code_of[label]
            for label, code in index.interner.code_of.items()
        }
        self.sketches[shard] = FeatureSketch.from_postings(
            index.trie.iter_postings(),
            recode,
            graph_count=len(index.graphs),
            num_buckets=self.num_buckets,
        )

    def bump(self) -> int:
        """Advance the routing-table epoch (rebalance bookkeeping)."""
        self.epoch += 1
        return self.epoch

    def note_add(self, shard: int, graph: LabeledGraph) -> None:
        """Patch routing state for a graph added to ``shard``.

        Two hazards make this mandatory (not an optimization):

        * a newcomer may carry labels the collection has never seen —
          the router's interner must extend (appended codes) and every
          memoized route census must be dropped, because a stale
          census still holds *negative* codes for those labels and
          :meth:`plan` would unsoundly collapse the fan-out to a
          single witness shard;
        * the shard's sketch must admit the newcomer's features, or a
          stale veto would prune the only shard that can answer.
          Sketches are monotone under adds, so a cheap
          :meth:`FeatureSketch.patched` OR-in is sound — no posting
          re-fold needed.
        """
        self.interner.extend([graph.labels])
        census = coded_path_census(
            graph,
            self.max_path_length,
            self.interner.encode_vertices(graph.labels),
        )
        sketch = self.sketches.get(shard)
        if sketch is None:
            sketch = FeatureSketch((0,) * self.num_buckets, 0, 0)
        self.sketches[shard] = sketch.patched(census.counts)
        self._census_token = object()
        self.epoch += 1

    def note_remove(self) -> None:
        """Account a remove: sketches keep their (now possibly stale)
        bits — a sound over-approximation that can only route to a
        shard that would answer empty, never prune one that would
        answer.  A later :meth:`refresh` tightens the sketch."""
        self._census_token = object()
        self.epoch += 1

    # ------------------------------------------------------------------
    # query side
    # ------------------------------------------------------------------

    def query_census(self, query: LabeledGraph) -> PathCensus:
        """The query's census in the collection-wide code space.

        Memoized per query instance through the prepare cache (the same
        convention as :meth:`repro.indexing.base.FTVIndex.coded_query_census`),
        so re-planning a coalesced or re-staged query is free.  Unknown
        labels get fresh negative codes — they can never collide with
        an indexed feature, which is what :meth:`plan` keys on.
        """
        from ..caching import prepare_cache

        return prepare_cache.get(
            query,
            ("route-census", self._census_token, self.max_path_length),
            lambda: coded_path_census(
                query,
                self.max_path_length,
                self.interner.encode_vertices(query.labels),
            ),
        )

    def plan(
        self,
        query: LabeledGraph,
        involved: tuple[int, ...],
        decision_only: bool = False,
    ) -> RoutePlan:
        """Route one query over ``involved`` shards.

        Full mode races every surviving shard in ascending shard order
        (pruning only); decision mode orders survivors by descending
        sketch score and stages them as waves so the expected-first-true
        shard races alone first.
        """
        if len(involved) <= 1:
            return RoutePlan(order=tuple(involved))
        counts = self.query_census(query).counts
        if any(code < 0 for seq in counts for code in seq):
            # a query label the whole collection has never seen: every
            # shard's filter is provably empty; keep the lowest shard
            # as the witness race so the answer flows through the
            # normal merge/caching pipeline
            return RoutePlan(
                order=involved[:1], pruned=tuple(involved[1:])
            )
        survivors: list[tuple[int, tuple[int, int]]] = []
        pruned: list[int] = []
        for shard in involved:
            sketch = self.sketches.get(shard)
            if sketch is None:
                # no sketch = no proof: fail closed and race the
                # shard (pruning is only ever justified by a veto)
                survivors.append((shard, (0, 0)))
                continue
            score = sketch.score(counts)
            if score is None:
                pruned.append(shard)
            else:
                survivors.append((shard, score))
        if not survivors:
            return RoutePlan(
                order=(pruned[0],), pruned=tuple(pruned[1:])
            )
        if decision_only:
            survivors.sort(
                key=lambda item: (-item[1][0], -item[1][1], item[0])
            )
            order = tuple(s for s, _ in survivors)
            return RoutePlan(
                order=order,
                pruned=tuple(pruned),
                staged=len(order) > 1,
            )
        return RoutePlan(
            order=tuple(s for s, _ in survivors),
            pruned=tuple(pruned),
        )

    def as_metrics(self) -> dict:
        """Routing-table snapshot for memory/stats reports."""
        return {
            "epoch": self.epoch,
            "labels": len(self.interner),
            "sketches": {
                str(shard): sketch.as_metrics()
                for shard, sketch in sorted(self.sketches.items())
            },
        }
