"""Dataset catalog: load named graph collections once, keep them warm.

The experiment harness rebuilds graphs and matcher indexes per run;
a serving layer cannot.  The catalog loads a named dataset **once**,
freezes it (mutation after load invalidates every prepared index, so it
is checked, not trusted), prepares the per-algorithm matcher indexes
up front, builds the FTV filter (Grapes/GGSX) for collection datasets,
and reports an approximate memory footprint so operators can see what
keeping a dataset warm costs.

Entries wrap:

* NFV datasets (yeast/human/wordnet): one stored graph + a
  :class:`repro.psi.PsiNFV` whose matcher indexes are pre-built;
* FTV datasets (ppi/synthetic): the graph collection + a Grapes (or
  GGSX) filter index and a warm VF2 verifier per stored graph.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Optional

from ..graphs import LabeledGraph
from ..harness import (
    FTV_DATASETS,
    NFV_DATASETS,
    build_ftv_graphs,
    build_nfv_graph,
)
from ..indexing import FTVIndex, GGSXIndex, GrapesIndex
from ..psi import PsiNFV
from ..psi.executors import OverheadModel
from ..rewriting import LabelStats

__all__ = ["DatasetEntry", "DatasetCatalog", "approx_deep_bytes"]


def approx_deep_bytes(obj: object, max_objects: int = 500_000) -> int:
    """Approximate deep ``sys.getsizeof`` of ``obj``.

    Traverses containers and ``__dict__``/``__slots__`` with cycle
    detection, stopping after ``max_objects`` nodes (returning the
    partial sum).  Good enough for capacity accounting; not an exact
    allocator report.
    """
    seen: set[int] = set()
    stack = [obj]
    total = 0
    while stack and len(seen) < max_objects:
        cur = stack.pop()
        if id(cur) in seen:
            continue
        seen.add(id(cur))
        try:
            total += sys.getsizeof(cur)
        except TypeError:  # pragma: no cover - exotic objects
            continue
        if isinstance(cur, dict):
            stack.extend(cur.keys())
            stack.extend(cur.values())
        elif isinstance(cur, (list, tuple, set, frozenset)):
            stack.extend(cur)
        else:
            d = getattr(cur, "__dict__", None)
            if d is not None:
                stack.append(d)
            for slot in getattr(type(cur), "__slots__", ()) or ():
                if hasattr(cur, slot):
                    stack.append(getattr(cur, slot))
    return total


@dataclass
class DatasetEntry:
    """One warm dataset and everything prepared for it."""

    name: str
    scale: str
    kind: str  # "nfv" | "ftv"
    graphs: list[LabeledGraph]
    psi: Optional[PsiNFV] = None
    ftv_index: Optional[FTVIndex] = None
    stats: Optional[LabelStats] = None
    prepared_algorithms: tuple[str, ...] = ()
    #: full load configuration (re-load compatibility witness)
    load_config: tuple = ()
    #: (order, size) checksums taken at load time (freeze witness)
    _shape: tuple[tuple[int, int], ...] = field(default_factory=tuple)
    #: bytes of the frozen graphs / FTV index, computed once at freeze
    _graph_bytes: int = 0
    _ftv_bytes: int = 0

    @property
    def graph(self) -> LabeledGraph:
        """The stored graph of an NFV entry."""
        if self.kind != "nfv":
            raise ValueError(f"dataset {self.name!r} is a collection")
        return self.graphs[0]

    def freeze(self) -> None:
        """Record the loaded graphs' shapes as the frozen baseline.

        The graph/FTV-index byte estimates are taken here, once —
        frozen data never changes, so :meth:`memory_report` must not
        re-walk it per stats poll.
        """
        self._shape = tuple((g.order, g.size) for g in self.graphs)
        self._graph_bytes = sum(
            approx_deep_bytes(g.kernel()) for g in self.graphs
        )
        self._ftv_bytes = (
            approx_deep_bytes(self.ftv_index)
            if self.ftv_index is not None
            else 0
        )

    def verify_frozen(self) -> None:
        """Raise if any graph mutated since :meth:`freeze`.

        Mutation resets the graph-side index memo, so serving would
        silently re-index per query — a correctness-of-accounting bug
        the catalog turns into a loud error.
        """
        now = tuple((g.order, g.size) for g in self.graphs)
        if now != self._shape:
            raise RuntimeError(
                f"dataset {self.name!r} mutated after load; "
                "reload it through the catalog"
            )

    def memory_report(self) -> dict:
        """Approximate bytes held by graphs and prepared indexes.

        Frozen parts (graphs, FTV index) use the freeze-time estimate;
        only the per-graph index memos — which can still grow as new
        matchers prepare — are re-walked.
        """
        index_bytes = 0
        index_entries = 0
        for g in self.graphs:
            memo = g._index_memo
            if memo:
                index_entries += len(memo)
                index_bytes += approx_deep_bytes(memo)
        return {
            "graphs": len(self.graphs),
            "vertices": sum(g.order for g in self.graphs),
            "edges": sum(g.size for g in self.graphs),
            "graph_bytes": self._graph_bytes,
            "prepared_indexes": index_entries,
            "index_bytes": index_bytes,
            "ftv_index_bytes": self._ftv_bytes,
            "total_bytes": (
                self._graph_bytes + index_bytes + self._ftv_bytes
            ),
        }


class DatasetCatalog:
    """Named, load-once registry of warm datasets.

    ``overhead`` is the race overhead model handed to each dataset's
    :class:`PsiNFV` (the service charges it per race).
    """

    def __init__(self, overhead: OverheadModel = OverheadModel()) -> None:
        self.overhead = overhead
        self._entries: dict[str, DatasetEntry] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def load(
        self,
        name: str,
        scale: str = "default",
        algorithms: tuple[str, ...] = ("GQL", "SPA"),
        ftv_method: str = "Grapes",
        max_path_length: int = 3,
    ) -> DatasetEntry:
        """Load ``name`` and warm its indexes (idempotent per name).

        Re-loading a loaded dataset with the *same configuration*
        returns the existing entry — the whole point of the catalog is
        to never build twice.  A re-load with a different scale,
        algorithm roster, or FTV method raises: silently answering
        from the old configuration would corrupt results; call
        :meth:`unload` first if the change is intended.
        """
        config = (scale, tuple(algorithms), ftv_method, max_path_length)
        existing = self._entries.get(name)
        if existing is not None:
            if existing.load_config != config:
                raise ValueError(
                    f"dataset {name!r} already loaded with config "
                    f"{existing.load_config}; unload it before "
                    f"re-loading with {config}"
                )
            existing.verify_frozen()
            return existing
        if name in NFV_DATASETS:
            graph = build_nfv_graph(name, scale)
            psi = PsiNFV(graph, overhead=self.overhead)
            for alg in algorithms:
                psi.prepared(alg)  # warm the matcher indexes now
            entry = DatasetEntry(
                name=name,
                scale=scale,
                kind="nfv",
                graphs=[graph],
                psi=psi,
                stats=psi.stats,
                prepared_algorithms=tuple(algorithms),
                load_config=config,
            )
        elif name in FTV_DATASETS:
            graphs = build_ftv_graphs(name, scale)
            if ftv_method == "Grapes":
                index: FTVIndex = GrapesIndex(
                    graphs, max_path_length=max_path_length
                )
            elif ftv_method == "GGSX":
                index = GGSXIndex(graphs, max_path_length=max_path_length)
            else:
                raise ValueError(f"unknown FTV method {ftv_method!r}")
            entry = DatasetEntry(
                name=name,
                scale=scale,
                kind="ftv",
                graphs=graphs,
                ftv_index=index,
                stats=LabelStats.of_collection(graphs),
                load_config=config,
            )
        else:
            raise ValueError(
                f"unknown dataset {name!r}; known: "
                f"{NFV_DATASETS + FTV_DATASETS}"
            )
        entry.freeze()
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> DatasetEntry:
        """The loaded entry for ``name`` (KeyError when not loaded)."""
        entry = self._entries.get(name)
        if entry is None:
            raise KeyError(
                f"dataset {name!r} not loaded; catalog holds "
                f"{sorted(self._entries)}"
            )
        entry.verify_frozen()
        return entry

    def unload(self, name: str) -> None:
        """Drop a dataset (its graphs take their index memos with them)."""
        self._entries.pop(name, None)

    def datasets(self) -> list[str]:
        """Names of the loaded datasets."""
        return sorted(self._entries)

    def memory_report(self) -> dict:
        """Per-dataset + total approximate memory accounting."""
        per = {
            name: entry.memory_report()
            for name, entry in sorted(self._entries.items())
        }
        return {
            "datasets": per,
            "total_bytes": sum(r["total_bytes"] for r in per.values()),
        }
