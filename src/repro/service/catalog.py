"""Dataset catalog: load named graph collections once, keep them warm.

The experiment harness rebuilds graphs and matcher indexes per run;
a serving layer cannot.  The catalog loads a named dataset **once**,
freezes it (mutation after load invalidates every prepared index, so it
is checked, not trusted), prepares the per-algorithm matcher indexes
up front, builds the FTV filter (Grapes/GGSX) for collection datasets,
and reports an approximate memory footprint so operators can see what
keeping a dataset warm costs.

Entries wrap:

* NFV datasets (yeast/human/wordnet): one stored graph + a
  :class:`repro.psi.PsiNFV` whose matcher indexes are pre-built;
* FTV datasets (ppi/synthetic): the graph collection + a Grapes (or
  GGSX) filter index and a warm VF2 verifier per stored graph.

Besides the named builders, :meth:`DatasetCatalog.register` accepts a
pre-built list of graphs under any name — that is how
:class:`repro.service.sharding.ShardedCatalog` places one partition of
a collection on each shard catalog.  Registered entries are warmed,
frozen, and watermark-evicted exactly like loaded ones, but the catalog
cannot rebuild them on its own: a watermark-evicted registered entry
raises from :meth:`DatasetCatalog.get` instead of silently reloading,
and the owner (the sharded catalog) re-registers it.

Invariant: loading/registering is deterministic — the same name, scale,
and configuration always produce the same frozen graphs and warm
indexes, so serving results never depend on catalog history.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Optional

from ..graphs import LabeledGraph
from ..harness import (
    FTV_DATASETS,
    NFV_DATASETS,
    build_ftv_graphs,
    build_nfv_graph,
)
from ..indexing import FTVIndex, GGSXIndex, GrapesIndex
from ..psi import PsiNFV
from ..psi.executors import OverheadModel
from ..rewriting import LabelStats

__all__ = ["DatasetEntry", "DatasetCatalog", "approx_deep_bytes"]


def approx_deep_bytes(obj: object, max_objects: int = 500_000) -> int:
    """Approximate deep ``sys.getsizeof`` of ``obj``.

    Traverses containers and ``__dict__``/``__slots__`` with cycle
    detection, stopping after ``max_objects`` nodes (returning the
    partial sum).  Good enough for capacity accounting; not an exact
    allocator report.
    """
    seen: set[int] = set()
    stack = [obj]
    total = 0
    while stack and len(seen) < max_objects:
        cur = stack.pop()
        if id(cur) in seen:
            continue
        seen.add(id(cur))
        try:
            total += sys.getsizeof(cur)
        except TypeError:  # pragma: no cover - exotic objects
            continue
        if isinstance(cur, dict):
            stack.extend(cur.keys())
            stack.extend(cur.values())
        elif isinstance(cur, (list, tuple, set, frozenset)):
            stack.extend(cur)
        else:
            d = getattr(cur, "__dict__", None)
            if d is not None:
                stack.append(d)
            for slot in getattr(type(cur), "__slots__", ()) or ():
                if hasattr(cur, slot):
                    stack.append(getattr(cur, slot))
    return total


@dataclass
class DatasetEntry:
    """One warm dataset and everything prepared for it."""

    name: str
    scale: str
    kind: str  # "nfv" | "ftv"
    graphs: list[LabeledGraph]
    psi: Optional[PsiNFV] = None
    ftv_index: Optional[FTVIndex] = None
    stats: Optional[LabelStats] = None
    prepared_algorithms: tuple[str, ...] = ()
    #: full load configuration (re-load compatibility witness)
    load_config: tuple = ()
    #: FTVIndex.warm() statistics (sealed posting-mask nodes etc.)
    warm_stats: dict = field(default_factory=dict)
    #: the entry diverged from its named builder via add/remove: a
    #: builder reload would silently discard those mutations, so the
    #: watermark never evicts a mutated entry (checkpoint + journal
    #: replay is the only way its state survives a drop)
    mutated: bool = False
    #: (order, size) checksums taken at load time (freeze witness)
    _shape: tuple[tuple[int, int], ...] = field(default_factory=tuple)
    #: bytes of the frozen graphs / FTV index, computed once at freeze
    _graph_bytes: int = 0
    _ftv_bytes: int = 0

    @property
    def graph(self) -> LabeledGraph:
        """The stored graph of an NFV entry."""
        if self.kind != "nfv":
            raise ValueError(f"dataset {self.name!r} is a collection")
        return self.graphs[0]

    def freeze(self) -> None:
        """Record the loaded graphs' shapes as the frozen baseline.

        The graph/FTV-index byte estimates are taken here, once —
        frozen data never changes, so :meth:`memory_report` must not
        re-walk it per stats poll.
        """
        self._shape = tuple((g.order, g.size) for g in self.graphs)
        self._graph_bytes = sum(
            approx_deep_bytes(g.kernel()) for g in self.graphs
        )
        self._ftv_bytes = (
            approx_deep_bytes(self.ftv_index)
            if self.ftv_index is not None
            else 0
        )

    def verify_frozen(self) -> None:
        """Raise if any graph mutated since :meth:`freeze`.

        Mutation resets the graph-side index memo, so serving would
        silently re-index per query — a correctness-of-accounting bug
        the catalog turns into a loud error.
        """
        now = tuple((g.order, g.size) for g in self.graphs)
        if now != self._shape:
            raise RuntimeError(
                f"dataset {self.name!r} mutated after load; "
                "reload it through the catalog"
            )

    @property
    def tombstones(self) -> set:
        """Removed (tombstoned) graph ids — stable ids never renumber."""
        if self.ftv_index is None:
            return set()
        return self.ftv_index.tombstones

    def live_graph_ids(self) -> list:
        """Non-tombstoned graph ids, ascending."""
        if self.ftv_index is None:
            return list(range(len(self.graphs)))
        return self.ftv_index.live_ids()

    def memory_report(self) -> dict:
        """Approximate bytes held by graphs and prepared indexes.

        Frozen parts (graphs, FTV index) use the freeze-time estimate;
        only the per-graph index memos — which can still grow as new
        matchers prepare — are re-walked.
        """
        index_bytes = 0
        index_entries = 0
        for g in self.graphs:
            memo = g._index_memo
            if memo:
                index_entries += len(memo)
                index_bytes += approx_deep_bytes(memo)
        report = {
            "graphs": len(self.graphs),
            "vertices": sum(g.order for g in self.graphs),
            "edges": sum(g.size for g in self.graphs),
            "graph_bytes": self._graph_bytes,
            "prepared_indexes": index_entries,
            "index_bytes": index_bytes,
            "ftv_index_bytes": self._ftv_bytes,
            "total_bytes": (
                self._graph_bytes + index_bytes + self._ftv_bytes
            ),
        }
        if self.ftv_index is not None:
            report["ftv_warm"] = dict(self.warm_stats)
            report["census_cache"] = (
                self.ftv_index.census_cache_metrics()
            )
        return report


class DatasetCatalog:
    """Named, load-once registry of warm datasets.

    ``overhead`` is the race overhead model handed to each dataset's
    :class:`PsiNFV` (the service charges it per race).

    ``max_bytes`` is an optional memory watermark: when the approximate
    total footprint exceeds it after a load, least-recently-used
    datasets are unloaded (never the one just loaded) until the total
    fits or nothing evictable remains.  Evicted graphs' prepared-index
    memos are dropped through
    :meth:`repro.caching.PrepareCache.evict_graph`, so the unload shows
    up in the cache eviction counters operators watch instead of
    vanishing with the garbage collector.
    """

    def __init__(
        self,
        overhead: OverheadModel = OverheadModel(),
        max_bytes: Optional[int] = None,
        store=None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.overhead = overhead
        self.max_bytes = max_bytes
        #: attached StoreReader (boot-from-store path); None = always
        #: warm fresh
        self.store = None
        if store is not None:
            self.attach_store(store)
        self.evictions = 0
        #: transparent re-loads of watermark-evicted datasets
        self.reloads = 0
        #: monotone collection-state version: bumped by every applied
        #: ``add_graph``/``remove_graph``.  Result-cache and plan-cache
        #: keys embed it, so a mutation implicitly drops every cached
        #: answer computed against the previous collection state.
        self.mutation_epoch = 0
        #: dataset names evicted over the catalog's lifetime, in order
        self.evicted: list[str] = []
        self._entries: dict[str, DatasetEntry] = {}
        #: evicted name -> its load configuration (reload-on-demand)
        self._evicted_configs: dict[str, tuple] = {}
        #: name -> monotone access stamp (LRU order for eviction)
        self._access: dict[str, int] = {}
        self._access_clock = 0

    def _touch(self, name: str) -> None:
        self._access_clock += 1
        self._access[name] = self._access_clock

    def attach_store(self, store):
        """Attach a warmed-artifact store (path or ``StoreReader``).

        Subsequent :meth:`load` calls restore from it when possible;
        a missing or corrupt store degrades to fresh builds, never to
        an error (see :mod:`repro.store`).
        """
        from ..store import StoreReader  # deferred: store imports us

        self.store = StoreReader.open(store)
        return self.store

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def load(
        self,
        name: str,
        scale: str = "default",
        algorithms: tuple[str, ...] = ("GQL", "SPA"),
        ftv_method: str = "Grapes",
        max_path_length: int = 3,
    ) -> DatasetEntry:
        """Load ``name`` and warm its indexes (idempotent per name).

        Re-loading a loaded dataset with the *same configuration*
        returns the existing entry — the whole point of the catalog is
        to never build twice.  A re-load with a different scale,
        algorithm roster, or FTV method raises: silently answering
        from the old configuration would corrupt results; call
        :meth:`unload` first if the change is intended.
        """
        config = (scale, tuple(algorithms), ftv_method, max_path_length)
        existing = self._existing(name, config)
        if existing is not None:
            return existing
        if self.store is not None:
            restored = self._restore_from_store(
                name, scale, tuple(algorithms), ftv_method,
                max_path_length, config,
            )
            if restored is not None:
                return restored
        if name in NFV_DATASETS:
            graphs = [build_nfv_graph(name, scale)]
            kind = "nfv"
        elif name in FTV_DATASETS:
            graphs = build_ftv_graphs(name, scale)
            kind = "ftv"
        else:
            raise ValueError(
                f"unknown dataset {name!r}; known: "
                f"{NFV_DATASETS + FTV_DATASETS}"
            )
        return self._install(
            name, graphs, kind, scale, tuple(algorithms), ftv_method,
            max_path_length, config,
        )

    def restore(
        self,
        name: str,
        scale: str = "default",
        algorithms: tuple[str, ...] = ("GQL", "SPA"),
        ftv_method: str = "Grapes",
        max_path_length: int = 3,
    ) -> DatasetEntry:
        """Boot ``name`` from the attached store (strict entry point).

        Unlike :meth:`load` — which treats the store as a transparent
        accelerator and silently warms fresh on any miss — this raises
        :class:`repro.store.StoreError` when no store is attached or
        the store cannot serve the dataset's *graphs* (absent,
        config-mismatched, or corrupt beyond its blobs).  A corrupt
        *index* blob still degrades to an in-process rebuild over the
        restored graphs, because the restored entry is digest-identical
        either way.
        """
        from ..store import StoreError

        if self.store is None:
            raise StoreError(
                f"cannot restore {name!r}: no store attached"
            )
        config = (scale, tuple(algorithms), ftv_method, max_path_length)
        existing = self._existing(name, config)
        if existing is not None:
            return existing
        entry = self._restore_from_store(
            name, scale, tuple(algorithms), ftv_method,
            max_path_length, config,
        )
        if entry is None:
            raise StoreError(
                f"store at {self.store.root!r} cannot serve {name!r} "
                f"with config {config}"
            )
        return entry

    def _restore_from_store(
        self,
        name: str,
        scale: str,
        algorithms: tuple[str, ...],
        ftv_method: str,
        max_path_length: int,
        config: tuple,
    ) -> Optional[DatasetEntry]:
        """One restore attempt; None = miss (caller warms fresh).

        Degradation ladder: a config/layout mismatch is a clean miss; a
        corrupt graphs blob is a miss after the reader quarantined it
        (the named builder regenerates identical graphs); a corrupt
        index blob keeps the restored graphs and rebuilds just the
        index in process.  Every detection is already counted and
        logged by the :class:`~repro.store.StoreReader`.
        """
        from ..store import StoreError

        reader = self.store
        rec = reader.dataset_record(name)
        if rec is None:
            return None
        manifest = reader.manifest
        if manifest is None or manifest.layout.get("sharded"):
            reader.misses += 1
            reader._event(
                "layout_mismatch", dataset=name,
                wanted="unsharded", found=manifest.layout
                if manifest else None,
            )
            return None
        if (
            rec.get("scale") != scale
            or tuple(rec.get("algorithms", ())) != tuple(algorithms)
            or rec.get("ftv_method") != ftv_method
            or rec.get("max_path_length") != max_path_length
        ):
            reader.misses += 1
            reader._event(
                "config_mismatch", dataset=name,
                wanted=[scale, list(algorithms), ftv_method,
                        max_path_length],
            )
            return None
        try:
            graphs = reader.load_graphs(name)
        except StoreError:
            reader.rebuilds += 1
            return None
        reader.restores += 1
        kind = rec.get("kind")
        index = None
        if kind == "ftv":
            try:
                index = reader.load_index(
                    name, graphs, ftv_method=ftv_method,
                    max_path_length=max_path_length,
                )
                reader.restores += 1
            except StoreError:
                reader.rebuilds += 1
            tombs = {int(g) for g in rec.get("tombstones", ())}
            if tombs:
                if index is None:
                    # the blob (and its tombstones) is gone; rebuild
                    # here so the record's ids can be re-retired —
                    # _install would otherwise index every slot live
                    if ftv_method == "Grapes":
                        index = GrapesIndex(
                            graphs, max_path_length=max_path_length
                        )
                    else:
                        index = GGSXIndex(
                            graphs, max_path_length=max_path_length
                        )
                for gid in sorted(tombs - index.tombstones):
                    index.remove_graph(gid)
        return self._install(
            name, graphs, kind, scale, tuple(algorithms), ftv_method,
            max_path_length, config, prebuilt_index=index,
        )

    def _existing(self, name: str, config: tuple):
        """The already-loaded entry for ``name``, or None.

        A configuration mismatch raises: silently answering from the
        old configuration would corrupt results.
        """
        existing = self._entries.get(name)
        if existing is None:
            return None
        if existing.load_config != config:
            raise ValueError(
                f"dataset {name!r} already loaded with config "
                f"{existing.load_config}; unload it before "
                f"re-loading with {config}"
            )
        existing.verify_frozen()
        self._touch(name)
        return existing

    def _install(
        self,
        name: str,
        graphs: list[LabeledGraph],
        kind: str,
        scale: str,
        algorithms: tuple[str, ...],
        ftv_method: str,
        max_path_length: int,
        config: tuple,
        prebuilt_index: Optional[FTVIndex] = None,
    ) -> DatasetEntry:
        """Build, warm, freeze, and store one entry (load + register).

        ``prebuilt_index`` is the store-boot shortcut: an FTV index
        already reconstructed from disk skips the census build and is
        warmed (sealed) and frozen exactly like a fresh one.
        """
        if kind == "nfv":
            psi = PsiNFV(graphs[0], overhead=self.overhead)
            for alg in algorithms:
                psi.prepared(alg)  # warm the matcher indexes now
            entry = DatasetEntry(
                name=name,
                scale=scale,
                kind="nfv",
                graphs=graphs,
                psi=psi,
                stats=psi.stats,
                prepared_algorithms=tuple(algorithms),
                load_config=config,
            )
        else:
            if prebuilt_index is not None:
                index: FTVIndex = prebuilt_index
            elif ftv_method == "Grapes":
                index = GrapesIndex(
                    graphs, max_path_length=max_path_length
                )
            elif ftv_method == "GGSX":
                index = GGSXIndex(graphs, max_path_length=max_path_length)
            else:
                raise ValueError(f"unknown FTV method {ftv_method!r}")
            # warm the bitset posting lists now: the first served query
            # probes pre-sealed threshold masks instead of paying the
            # lazy seal on the hot path
            warm_stats = index.warm()
            entry = DatasetEntry(
                name=name,
                scale=scale,
                kind="ftv",
                graphs=graphs,
                ftv_index=index,
                stats=LabelStats.of_collection(graphs),
                load_config=config,
                warm_stats=warm_stats,
            )
        entry.freeze()
        self._entries[name] = entry
        self._evicted_configs.pop(name, None)
        self._touch(name)
        self._maybe_evict(protect=name)
        return entry

    def register(
        self,
        name: str,
        graphs: list[LabeledGraph],
        kind: str,
        scale: str = "custom",
        algorithms: tuple[str, ...] = ("GQL", "SPA"),
        ftv_method: str = "Grapes",
        max_path_length: int = 3,
        prebuilt_index: Optional[FTVIndex] = None,
    ) -> DatasetEntry:
        """Install pre-built ``graphs`` as a warm entry under ``name``.

        This is the sharding hook: a :class:`ShardedCatalog` partitions
        a collection and registers each partition on its own shard
        catalog, which warms per-shard matcher indexes and Grapes/GGSX
        filters exactly as :meth:`load` would for the full set.  The
        entry's ``load_config`` is marked ``"registered"`` so the
        watermark-eviction reload path knows the catalog cannot rebuild
        it alone (see :meth:`get`).  Re-registering the same name with
        the same graph shapes and configuration is idempotent; a
        mismatch raises, like a conflicting re-load.
        """
        if kind not in ("nfv", "ftv"):
            raise ValueError(f"unknown dataset kind {kind!r}")
        if not graphs:
            raise ValueError("cannot register an empty graph list")
        if kind == "nfv" and len(graphs) != 1:
            raise ValueError("nfv entries hold exactly one graph")
        shapes = tuple((g.order, g.size) for g in graphs)
        config = (
            "registered", scale, kind, tuple(algorithms), ftv_method,
            max_path_length, shapes,
        )
        existing = self._existing(name, config)
        if existing is not None:
            return existing
        return self._install(
            name, list(graphs), kind, scale, tuple(algorithms),
            ftv_method, max_path_length, config,
            prebuilt_index=prebuilt_index,
        )

    def adopt(self, entry: DatasetEntry) -> DatasetEntry:
        """Install an already-built ``entry`` without rebuilding it.

        The replica-sharing hook:
        :class:`repro.service.sharding.ShardedCatalog` warms one
        replica of a shard partition through :meth:`register` and
        adopts the same frozen entry object on the shard's sibling
        replicas.  Sharing is sound because entries are frozen after
        warm-up (``verify_frozen`` checks, not trusts) and the prepare
        cache keys matcher indexes per graph *object*, so replicas
        share warm artifacts transparently instead of paying the build
        N times.  Adopting a name this catalog already holds is
        idempotent when it is the same entry object (same
        ``load_config`` and identity); anything else raises like a
        conflicting re-load.
        """
        existing = self._existing(entry.name, entry.load_config)
        if existing is not None:
            if existing is not entry:
                raise ValueError(
                    f"dataset {entry.name!r} already installed from a "
                    "different build; unload it before adopting"
                )
            return existing
        entry.verify_frozen()
        self._entries[entry.name] = entry
        self._evicted_configs.pop(entry.name, None)
        self._touch(entry.name)
        self._maybe_evict(protect=entry.name)
        return entry

    def get(self, name: str) -> DatasetEntry:
        """The loaded entry for ``name`` (KeyError when never loaded).

        A dataset unloaded by the *watermark* (not by an explicit
        :meth:`unload`) is transparently re-loaded with its original
        configuration: eviction trades latency for memory, it must not
        turn a still-configured dataset into an error.  Registered
        entries (see :meth:`register`) are the exception — the catalog
        has no builder for them, so a watermark-evicted registered
        entry raises and its owner must re-register it.
        """
        entry = self._entries.get(name)
        if entry is None:
            config = self._evicted_configs.get(name)
            if config is not None:
                if config[0] == "registered":
                    raise KeyError(
                        f"registered dataset {name!r} was evicted by "
                        "the memory watermark; its owner must "
                        "re-register it"
                    )
                self.reloads += 1
                scale, algorithms, ftv_method, max_path_length = config
                return self.load(
                    name,
                    scale=scale,
                    algorithms=algorithms,
                    ftv_method=ftv_method,
                    max_path_length=max_path_length,
                )
            raise KeyError(
                f"dataset {name!r} not loaded; catalog holds "
                f"{sorted(self._entries)}"
            )
        entry.verify_frozen()
        self._touch(name)
        return entry

    # ------------------------------------------------------------------
    # dynamic collections (incremental index maintenance)
    # ------------------------------------------------------------------

    def add_graph(
        self,
        name: str,
        graph: LabeledGraph,
        graph_id: Optional[int] = None,
    ) -> int:
        """Add ``graph`` to a live FTV collection; returns its stable id.

        Incremental maintenance, not a rewarm: the newcomer's census is
        inserted into the existing trie (touched nodes unseal/reseal),
        novel labels extend the interner with appended codes, and the
        census memo layers are invalidated.  ``graph_id`` may name a
        tombstoned slot to revive (journal replay and the
        add→remove→re-add drill); ``None`` appends.
        """
        entry = self._mutable_entry(name)
        index = entry.ftv_index
        gid = index.add_graph(graph, graph_id)
        if gid == len(entry.graphs):
            entry.graphs.append(graph)
        else:
            entry.graphs[gid] = graph
        self._refresh_after_mutation(entry)
        return gid

    def remove_graph(self, name: str, graph_id: int) -> None:
        """Tombstone ``graph_id`` in a live FTV collection.

        The slot keeps its position (stable ids — shard assignments and
        id maps never shift); the index forgets every posting, and the
        graph's prepared-index memos are dropped through the prepare
        cache so the removal shows up in eviction counters.
        """
        entry = self._mutable_entry(name)
        entry.ftv_index.remove_graph(graph_id)
        from ..caching import prepare_cache

        prepare_cache.evict_graph(entry.graphs[graph_id])
        self._refresh_after_mutation(entry)

    def _mutable_entry(self, name: str) -> DatasetEntry:
        entry = self.get(name)
        if entry.kind != "ftv" or entry.ftv_index is None:
            raise ValueError(
                f"dataset {name!r} is not a mutable FTV collection"
            )
        return entry

    def _refresh_after_mutation(self, entry: DatasetEntry) -> None:
        """Re-derive the entry's collection-level state after a mutation.

        Label stats cover the live graphs only; the index reseals
        eagerly (``warm``) so the next probe pays no lazy seal; the
        freeze witness is re-taken (a slot's shape may have changed);
        and registered entries' shape-bearing ``load_config`` is
        updated so idempotent re-registration keeps working.  Finally
        the catalog's mutation epoch advances — the cache-key stamp
        that retires every pre-mutation cached answer.
        """
        index = entry.ftv_index
        live = [entry.graphs[g] for g in index.live_ids()]
        if live:
            entry.stats = LabelStats.of_collection(live)
        entry.warm_stats = index.warm()
        if entry.load_config and entry.load_config[0] == "registered":
            shapes = tuple((g.order, g.size) for g in entry.graphs)
            entry.load_config = entry.load_config[:6] + (shapes,)
        entry.freeze()
        entry.mutated = True
        self.mutation_epoch += 1

    def unload(self, name: str) -> None:
        """Drop a dataset (its graphs take their index memos with them).

        Explicit unloads are final: unlike watermark eviction, a later
        :meth:`get` raises instead of silently re-loading.
        """
        self._entries.pop(name, None)
        self._access.pop(name, None)
        self._evicted_configs.pop(name, None)

    def _maybe_evict(self, protect: str) -> None:
        """Watermark eviction: unload LRU datasets until under budget.

        Entry footprints are measured once up front — an eviction only
        removes whole entries, so the survivors' sizes don't change and
        re-walking the catalog per victim would be pure waste.
        """
        if self.max_bytes is None:
            return
        totals = {
            name: entry.memory_report()["total_bytes"]
            for name, entry in self._entries.items()
        }
        total = sum(totals.values())
        while total > self.max_bytes:
            victims = [
                name
                for name, entry in self._entries.items()
                if name != protect and not entry.mutated
            ]
            if not victims:
                return  # the protected entry alone exceeds the budget
            victim = min(victims, key=lambda n: self._access[n])
            total -= totals.pop(victim)
            self._evict(victim)

    def _evict(self, name: str) -> None:
        """Unload ``name``, dropping its prepared-index memos loudly."""
        from ..caching import prepare_cache

        entry = self._entries.pop(name)
        self._access.pop(name, None)
        self._evicted_configs[name] = entry.load_config
        for graph in entry.graphs:
            prepare_cache.evict_graph(graph)
        self.evictions += 1
        self.evicted.append(name)

    def datasets(self) -> list[str]:
        """Names of the loaded datasets."""
        return sorted(self._entries)

    def memory_report(self) -> dict:
        """Per-dataset + total approximate memory accounting."""
        per = {
            name: entry.memory_report()
            for name, entry in sorted(self._entries.items())
        }
        report = {
            "datasets": per,
            "total_bytes": sum(r["total_bytes"] for r in per.values()),
            "watermark_bytes": self.max_bytes,
            "evictions": self.evictions,
            "reloads": self.reloads,
            "evicted": list(self.evicted),
        }
        if self.store is not None:
            report["store"] = self.store.as_metrics()
        return report
