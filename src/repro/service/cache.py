"""Result/plan cache keyed by canonical query forms.

What the paper recomputes per query, a service caches:

* the **result** — the decision answer and embedding count, which are
  genuinely isomorphism-invariant, so any permuted re-issue of a motif
  is answered without running a single engine step;
* the **plan and bill** — which variant won and what the race cost.
  These are *historical*, not invariant: the paper's whole subject is
  that isomorphic instances can have wildly different step counts and
  winners.  A cache hit reports the original instance's race verbatim
  (deterministic and clearly labelled ``from_cache``); do not build
  per-instance accounting on a cached bill.

Keys are :func:`repro.service.canon.canonical_query_key` outputs plus
the execution context (dataset, variant set, budget, embedding caps) —
a cached entry is only reused for an identical configuration, because
budgets change kill behaviour and variant sets change winners.  Queries
whose canonicalisation exceeds its branch budget are simply not cached.

Only *completed* (non-killed) races are stored: a killed race's answer
depends on the budget, not just the query class.

Counters live in :class:`repro.caching.CacheStats` and surface through
``Service.stats`` next to the PrepareCache numbers, so cache efficacy
is a first-class service metric.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..caching import CacheStats
from ..graphs import LabeledGraph
from .canon import canonical_query_key

__all__ = ["CachedResult", "ResultCache"]


@dataclass(frozen=True)
class CachedResult:
    """One finished race, as stored for isomorphic re-issues.

    ``found`` / ``num_embeddings`` / ``matching_ids`` transfer exactly
    to any isomorphic instance; ``steps`` / ``winner`` /
    ``per_variant_steps`` are the original instance's historical race
    (see module docstring).
    """

    found: bool
    num_embeddings: int
    steps: int
    winner: Optional[object]  # the plan: winning Variant (or None)
    per_variant_steps: tuple  # ((variant, steps), ...) in race order
    matching_ids: tuple = ()  # FTV decision answers (iso-invariant)

    @property
    def plan(self) -> Optional[object]:
        """The cached plan — the historical winning variant."""
        return self.winner


class ResultCache:
    """LRU over (context, canonical form) with hit/miss/eviction stats."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        #: queries whose canonicalisation hit the branch budget
        self.uncacheable = 0
        self._entries: "OrderedDict[tuple, CachedResult]" = OrderedDict()
        #: plan memory: near-miss key -> last winning Variant.  Keyed
        #: more loosely than results (no budget / embedding caps), so a
        #: canonical twin under a *different* execution context — a
        #: near-miss, not a hit — can still seed a narrow race.
        self._plans: "OrderedDict[tuple, object]" = OrderedDict()
        self.plan_hits = 0
        self.plan_misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def canon_for(self, query: LabeledGraph) -> Optional[tuple]:
        """The query's canonical form (None when uncacheable)."""
        canon = canonical_query_key(query)
        if canon is None:
            self.uncacheable += 1
        return canon

    def key_for(
        self, query: LabeledGraph, context: tuple
    ) -> Optional[tuple]:
        """The full cache key, or None when the query is uncacheable."""
        canon = self.canon_for(query)
        if canon is None:
            return None
        return (context, canon)

    # ------------------------------------------------------------------
    # plan memory (plan-cache-seeded racing)
    # ------------------------------------------------------------------

    def plan_for(self, plan_key: Optional[tuple]) -> Optional[object]:
        """The remembered winning variant for a near-miss key."""
        if plan_key is None:
            return None
        hit = self._plans.get(plan_key)
        if hit is None:
            self.plan_misses += 1
            return None
        self._plans.move_to_end(plan_key)
        self.plan_hits += 1
        return hit

    def store_plan(
        self, plan_key: Optional[tuple], winner: Optional[object]
    ) -> None:
        """Remember (or refresh) the winning variant for ``plan_key``."""
        if plan_key is None or winner is None:
            return
        self._plans[plan_key] = winner
        self._plans.move_to_end(plan_key)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)

    def lookup(self, key: Optional[tuple]) -> Optional[CachedResult]:
        """Cached result for ``key`` (counts a hit or miss)."""
        if key is None:
            return None
        hit = self._entries.get(key)
        if hit is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return hit

    def store(self, key: Optional[tuple], result: CachedResult) -> None:
        """Insert (or refresh) ``result`` under ``key``; evict LRU."""
        if key is None:
            return
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry and plan (entries counted as evictions)."""
        self.stats.evictions += len(self._entries)
        self._entries.clear()
        self._plans.clear()

    def as_metrics(self) -> dict:
        """Counter snapshot for service stats / bench JSON."""
        out = self.stats.as_metrics()
        out["entries"] = len(self._entries)
        out["capacity"] = self.capacity
        out["uncacheable"] = self.uncacheable
        out["plan_hits"] = self.plan_hits
        out["plan_misses"] = self.plan_misses
        out["plan_entries"] = len(self._plans)
        return out
