"""Result/plan cache keyed by canonical query forms.

What the paper recomputes per query, a service caches:

* the **result** — the decision answer and embedding count, which are
  genuinely isomorphism-invariant, so any permuted re-issue of a motif
  is answered without running a single engine step;
* the **plan and bill** — which variant won and what the race cost.
  These are *historical*, not invariant: the paper's whole subject is
  that isomorphic instances can have wildly different step counts and
  winners.  A cache hit reports the original instance's race verbatim
  (deterministic and clearly labelled ``from_cache``); do not build
  per-instance accounting on a cached bill.

Keys are :func:`repro.service.canon.canonical_query_key` outputs plus
the execution context (dataset, variant set, budget, embedding caps) —
a cached entry is only reused for an identical configuration, because
budgets change kill behaviour and variant sets change winners.  Queries
whose canonicalisation exceeds its branch budget are simply not cached.

Only *completed* (non-killed) races are stored: a killed race's answer
depends on the budget, not just the query class.

Counters live in :class:`repro.caching.CacheStats` and surface through
``Service.stats`` next to the PrepareCache numbers, so cache efficacy
is a first-class service metric.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..caching import CacheStats
from ..graphs import LabeledGraph
from .canon import canonical_query_key

__all__ = ["CachedResult", "ResultCache"]


@dataclass(frozen=True)
class CachedResult:
    """One finished race, as stored for isomorphic re-issues.

    ``found`` / ``num_embeddings`` / ``matching_ids`` transfer exactly
    to any isomorphic instance; ``steps`` / ``winner`` /
    ``per_variant_steps`` are the original instance's historical race
    (see module docstring).
    """

    found: bool
    num_embeddings: int
    steps: int
    winner: Optional[object]  # the plan: winning Variant (or None)
    per_variant_steps: tuple  # ((variant, steps), ...) in race order
    matching_ids: tuple = ()  # FTV decision answers (iso-invariant)

    @property
    def plan(self) -> Optional[object]:
        """The cached plan — the historical winning variant."""
        return self.winner


class ResultCache:
    """LRU over (context, canonical form) with hit/miss/eviction stats."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        #: queries whose canonicalisation hit the branch budget
        self.uncacheable = 0
        self._entries: "OrderedDict[tuple, CachedResult]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(
        self, query: LabeledGraph, context: tuple
    ) -> Optional[tuple]:
        """The full cache key, or None when the query is uncacheable."""
        canon = canonical_query_key(query)
        if canon is None:
            self.uncacheable += 1
            return None
        return (context, canon)

    def lookup(self, key: Optional[tuple]) -> Optional[CachedResult]:
        """Cached result for ``key`` (counts a hit or miss)."""
        if key is None:
            return None
        hit = self._entries.get(key)
        if hit is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return hit

    def store(self, key: Optional[tuple], result: CachedResult) -> None:
        """Insert (or refresh) ``result`` under ``key``; evict LRU."""
        if key is None:
            return
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counted as evictions)."""
        self.stats.evictions += len(self._entries)
        self._entries.clear()

    def as_metrics(self) -> dict:
        """Counter snapshot for service stats / bench JSON."""
        out = self.stats.as_metrics()
        out["entries"] = len(self._entries)
        out["capacity"] = self.capacity
        out["uncacheable"] = self.uncacheable
        return out
