"""Deterministic fault injection for the replicated serving layer.

The paper's whole premise is robustness-through-redundancy: PSI races
query rewritings and alternative algorithms in parallel precisely so a
straggling or pathological execution cannot stall a query.  The
serving layer applies the same discipline to *infrastructure*: every
shard carries N replica worker pools, and this module makes replica
failure a first-class, testable event instead of an accident.

Three injection kinds, all driven off the service's **virtual clock**
(or, equivalently deterministic, its completion counter):

* ``kill`` — a replica dies permanently.  Every fan-out leg racing on
  it is lost mid-flight; the service re-admits each lost leg against a
  surviving replica of the same shard under the same ticket (bounded
  retries), and new work never lands on the corpse.
* ``wedge`` — a replica's pool freezes for K ticks (the classic
  straggler).  Races on it stall but are not lost; the replica is
  ``suspect`` while wedged, so new placements prefer live siblings,
  and it returns to ``live`` when the wedge expires.
* ``fail_task`` — one in-flight :class:`RaceTask` leg aborts (a
  simulated worker crash).  The leg restarts from scratch on the
  least-loaded live replica, which may be the same one.

The invariant that makes chaos testable (pinned by
``tests/test_faults.py`` and the CI ``chaos-smoke`` job): because
engines are deterministic generators and a restarted leg re-runs its
race from step zero with the ticket's full budget, **every
budget-completed query of a chaos run answers bit-for-bit what the
healthy run answers** (``answers_digest`` equality).  Only the
historical side — step bills, latencies, which replica did the work —
legitimately differs.  When a shard loses *all* replicas the service
refuses partial answers: affected tickets degrade to a loud
``REJECTED`` with a protocol-style ``retry_after`` hint instead of
returning an answer missing a partition.

Everything here is seed-deterministic: :func:`chaos_plan` expands a
seed into a fixed event list, and two runs of the same (workload,
plan) produce identical answers, reroutes, and digests.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass
from enum import Enum

__all__ = [
    "ReplicaState",
    "FaultEvent",
    "FaultInjector",
    "StoreFaultInjector",
    "chaos_plan",
]

#: injection kinds understood by ``Service._apply_fault``
FAULT_KINDS = ("kill", "wedge", "fail_task")


class ReplicaState(Enum):
    """Health of one (shard, replica) worker pool.

    ``LIVE`` replicas take new work; ``SUSPECT`` (wedged) replicas
    keep their in-flight races but are avoided for new placements
    while any live sibling exists; ``DEAD`` (killed) and ``RETIRED``
    (scaled down at a quiesce point) replicas serve nothing ever
    again — the difference is that a kill loses in-flight legs (they
    reroute) while retirement only happens on an idle service.
    """

    LIVE = "live"
    SUSPECT = "suspect"
    DEAD = "dead"
    RETIRED = "retired"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled injection.

    ``at`` is a threshold in ``unit`` — ``"clock"`` compares against
    the service's virtual step clock, ``"completions"`` against its
    completed-query counter; both are deterministic, so either unit
    yields reproducible drills.  ``replica == -1`` on a kill means
    "the busiest serving replica of the shard at fire time" (most
    active fan-out legs, then highest step bill) — still a pure
    function of execution state, and what makes a seeded drill
    reliably *mid-flight*.  ``shard == -1`` on a ``fail_task`` means
    "any shard" (the first active leg in token order aborts).
    """

    at: int
    kind: str
    shard: int = -1
    replica: int = -1
    #: wedge duration in scheduler ticks
    ticks: int = 0
    unit: str = "clock"
    #: plan order — unique per plan, the apply-order tie-break
    seq: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.unit not in ("clock", "completions"):
            raise ValueError(f"unknown fault unit {self.unit!r}")
        if self.at < 0:
            raise ValueError("fault threshold must be >= 0")
        if self.kind == "wedge" and self.ticks < 1:
            raise ValueError("wedge needs ticks >= 1")

    def as_dict(self) -> dict:
        """JSON-ready rendering for bench payloads."""
        return {
            "at": self.at,
            "unit": self.unit,
            "kind": self.kind,
            "shard": self.shard,
            "replica": self.replica,
            "ticks": self.ticks,
        }


class FaultInjector:
    """A fixed schedule of :class:`FaultEvent`\\ s, popped as they come due.

    The service polls :meth:`due` once per pump tick with its current
    clock and completion count; every event whose threshold has been
    crossed fires exactly once, in plan (``seq``) order.  The injector
    holds no randomness — all nondeterminism was spent when the plan
    was built — so a chaos run is as replayable as a healthy one.
    """

    def __init__(self, events: tuple[FaultEvent, ...] | list = ()) -> None:
        self._pending: list[FaultEvent] = sorted(
            events, key=lambda e: (e.at, e.seq)
        )
        #: events fired so far, in apply order
        self.applied: list[FaultEvent] = []

    @property
    def pending(self) -> tuple[FaultEvent, ...]:
        """Events not yet fired."""
        return tuple(self._pending)

    def due(self, clock: int, completions: int) -> list[FaultEvent]:
        """Pop every event whose threshold is crossed, in plan order."""
        fired: list[FaultEvent] = []
        keep: list[FaultEvent] = []
        for event in self._pending:
            value = clock if event.unit == "clock" else completions
            (fired if value >= event.at else keep).append(event)
        if not fired:
            return []
        self._pending = keep
        fired.sort(key=lambda e: e.seq)
        self.applied.extend(fired)
        return fired

    def summary(self) -> dict:
        """JSON-ready counters for stats and bench payloads."""
        return {
            "planned": len(self.applied) + len(self._pending),
            "applied": [e.as_dict() for e in self.applied],
            "pending": len(self._pending),
        }

    def register_metrics(self, registry, prefix: str = "faults") -> None:
        """Publish schedule progress gauges into a metrics registry.

        ``replace=True`` throughout: chaos drills install fresh
        injectors against a long-lived service.
        """
        registry.gauge(
            f"{prefix}.planned",
            lambda: len(self.applied) + len(self._pending),
            replace=True,
        )
        registry.gauge(
            f"{prefix}.applied", lambda: len(self.applied), replace=True
        )
        registry.gauge(
            f"{prefix}.pending", lambda: len(self._pending), replace=True
        )


class StoreFaultInjector:
    """Filesystem fault injection against a warmed-artifact store.

    PR 6 made *runtime* failure first-class; this extends the same
    discipline to the storage layer (:mod:`repro.store`): every way
    disk can lie about a persisted warm artifact is one deterministic
    method here, and the ``store-smoke`` corruption matrix asserts each
    class is detected on load, quarantined, and recovered from with
    answers digest-equal to a healthy never-persisted run.

    Victim selection is deterministic: blobs are addressed by their
    sorted on-disk order (``index`` parameter), byte/bit offsets default
    to mid-file, and the only randomness is the seeded ``rng`` used
    when an offset is left to chance — so a drill replays exactly.
    """

    #: the corruption taxonomy (docs/STORE.md recovery matrix rows)
    CORRUPTIONS = (
        "torn_write",
        "truncate",
        "bit_flip",
        "delete_blob",
        "version_skew",
        "stale_manifest",
        "duplicate_manifest",
    )

    #: mutation-journal corruption classes (same matrix, journal rows).
    #: Separate tuple because their victim is ``JOURNAL.log``, not a
    #: blob — ``inject`` dispatches both.
    JOURNAL_CORRUPTIONS = (
        "journal_torn_tail",
        "journal_truncate",
        "journal_bit_flip",
        "journal_duplicate_record",
        "journal_reorder_records",
    )

    def __init__(self, root: str, seed: int = 0) -> None:
        self.root = str(root)
        self.rng = random.Random(seed)
        #: injections performed, in order (JSON-ready dicts)
        self.applied: list[dict] = []

    # -- plumbing ------------------------------------------------------

    def blob_paths(self) -> list[str]:
        """Published blob files, sorted by address (victim order)."""
        from ..store.blobs import BlobStore

        bs = BlobStore(self.root)
        return [bs.path_for(a) for a in bs.addresses()]

    def _victim(self, index: int) -> str:
        paths = self.blob_paths()
        if not paths:
            raise ValueError(f"store at {self.root!r} has no blobs")
        return paths[index % len(paths)]

    def _record(self, kind: str, **fields) -> dict:
        entry = {"kind": kind, **fields}
        self.applied.append(entry)
        return entry

    def _manifest_path(self) -> str:
        from ..store.manifest import manifest_path

        return manifest_path(self.root)

    # -- blob corruption ----------------------------------------------

    def torn_write(self, index: int = 0, at_byte: int | None = None) -> dict:
        """Cut a blob at byte ``k`` — the tail of a write that never
        finished (detected as a length/checksum mismatch on load)."""
        path = self._victim(index)
        size = os.path.getsize(path)
        k = at_byte if at_byte is not None else max(1, size // 2)
        with open(path, "rb+") as fh:
            fh.truncate(k)
        return self._record("torn_write", path=path, at_byte=k)

    def truncate(self, index: int = 0, keep: int = 0) -> dict:
        """Truncate a blob to ``keep`` bytes (0 = empty file)."""
        path = self._victim(index)
        with open(path, "rb+") as fh:
            fh.truncate(keep)
        return self._record("truncate", path=path, keep=keep)

    def bit_flip(
        self, index: int = 0, bit: int | None = None
    ) -> dict:
        """Flip a single bit mid-blob (silent media corruption —
        length unchanged, so only the checksum can catch it)."""
        path = self._victim(index)
        size = os.path.getsize(path)
        if bit is None:
            bit = self.rng.randrange(size * 8)
        byte, offset = divmod(bit, 8)
        with open(path, "rb+") as fh:
            fh.seek(byte)
            value = fh.read(1)[0]
            fh.seek(byte)
            fh.write(bytes([value ^ (1 << offset)]))
        return self._record("bit_flip", path=path, bit=bit)

    def delete_blob(self, index: int = 0) -> dict:
        """Remove a manifest-referenced blob outright."""
        path = self._victim(index)
        os.unlink(path)
        return self._record("delete_blob", path=path)

    # -- manifest corruption ------------------------------------------

    def version_skew(self, bump: int = 1) -> dict:
        """Rewrite the manifest as a *future* format generation.

        The checksum is recomputed over the skewed body, so the only
        defect is the version — isolating the version gate from the
        integrity gate.  A reader must refuse the whole store.
        """
        path = self._manifest_path()
        from ..store.blobs import sha256_hex

        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        doc.pop("checksum", None)
        doc["version"] = doc.get("version", 0) + bump
        canonical = json.dumps(
            doc, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        doc["checksum"] = sha256_hex(canonical)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True, indent=1)
        return self._record(
            "version_skew", path=path, version=doc["version"]
        )

    def stale_manifest(self) -> dict:
        """Edit the manifest body without refreshing its checksum —
        the signature of a stale or hand-patched root document."""
        path = self._manifest_path()
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        doc["epoch"] = doc.get("epoch", 0) + 1  # body/checksum now skew
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True, indent=1)
        return self._record("stale_manifest", path=path)

    def duplicate_manifest(self) -> dict:
        """Leave a stray atomic-write temp file next to the manifest
        (a crashed rewrite).  Readers must ignore it — this injection
        asserts the *absence* of an effect."""
        path = self._manifest_path()
        from ..store.blobs import TMP_PREFIX

        dup = os.path.join(
            self.root, f"{TMP_PREFIX}MANIFEST.json.crashed"
        )
        with open(path, "rb") as src, open(dup, "wb") as dst:
            data = src.read()
            dst.write(data[: max(1, len(data) // 2)])
        return self._record("duplicate_manifest", path=dup)

    # -- journal corruption -------------------------------------------

    def _journal_path(self) -> str:
        from ..store.journal import JOURNAL_NAME

        path = os.path.join(self.root, JOURNAL_NAME)
        if not os.path.exists(path):
            raise ValueError(
                f"store at {self.root!r} has no journal"
            )
        return path

    def _journal_lines(self) -> tuple[str, list[bytes]]:
        path = self._journal_path()
        with open(path, "rb") as fh:
            lines = fh.read().splitlines(keepends=True)
        if not lines:
            raise ValueError(f"journal at {path!r} is empty")
        return path, lines

    def journal_torn_tail(self, cut: int | None = None) -> dict:
        """Cut the journal's last record mid-frame — the append a
        crash interrupted (recovery truncates + quarantines it)."""
        path, lines = self._journal_lines()
        tail = lines[-1]
        k = cut if cut is not None else max(1, len(tail) // 2)
        with open(path, "rb+") as fh:
            fh.truncate(sum(len(ln) for ln in lines[:-1]) + k)
        return self._record("journal_torn_tail", path=path, cut=k)

    def journal_truncate(self, keep_records: int = 0) -> dict:
        """Truncate the journal to its first ``keep_records`` frames
        (0 = empty file — every unreplayed mutation lost *loudly*)."""
        path, lines = self._journal_lines()
        kept = lines[:keep_records]
        with open(path, "rb+") as fh:
            fh.truncate(sum(len(ln) for ln in kept))
        return self._record(
            "journal_truncate", path=path, keep_records=len(kept)
        )

    def journal_bit_flip(self, bit: int | None = None) -> dict:
        """Flip one bit inside a journal frame's payload (silent media
        corruption — the frame checksum must catch it)."""
        path = self._journal_path()
        size = os.path.getsize(path)
        if bit is None:
            bit = self.rng.randrange(size * 8)
        byte, offset = divmod(bit, 8)
        with open(path, "rb+") as fh:
            fh.seek(byte)
            value = fh.read(1)[0]
            fh.seek(byte)
            fh.write(bytes([value ^ (1 << offset)]))
        return self._record("journal_bit_flip", path=path, bit=bit)

    def journal_duplicate_record(self, index: int = -1) -> dict:
        """Re-append one frame verbatim (a retried write that landed
        twice); recovery must apply it once."""
        path, lines = self._journal_lines()
        victim = lines[index % len(lines)]
        with open(path, "ab") as fh:
            fh.write(victim)
        return self._record(
            "journal_duplicate_record", path=path,
            index=index % len(lines),
        )

    def journal_reorder_records(self) -> dict:
        """Swap the journal's last two frames (an out-of-order flush);
        the seq monotonicity check must refuse the regression."""
        path, lines = self._journal_lines()
        if len(lines) < 2:
            raise ValueError("journal holds fewer than two records")
        lines[-1], lines[-2] = lines[-2], lines[-1]
        with open(path, "wb") as fh:
            fh.write(b"".join(lines))
        return self._record("journal_reorder_records", path=path)

    # -- dispatch ------------------------------------------------------

    def inject(self, kind: str, **kwargs) -> dict:
        """Apply one corruption class by name (matrix driver hook)."""
        if kind not in self.CORRUPTIONS + self.JOURNAL_CORRUPTIONS:
            raise ValueError(
                f"unknown store fault {kind!r}; known: "
                f"{self.CORRUPTIONS + self.JOURNAL_CORRUPTIONS}"
            )
        return getattr(self, kind)(**kwargs)

    def summary(self) -> dict:
        return {
            "applied": list(self.applied),
            "classes": sorted({e["kind"] for e in self.applied}),
        }


def chaos_plan(
    seed: int,
    num_shards: int,
    replicas: int,
    queries: int = 0,
    horizon: int = 0,
    kills_per_shard: int = 1,
    wedges: int = 1,
    fail_tasks: int = 1,
    max_wedge_ticks: int = 6,
) -> FaultInjector:
    """Expand ``seed`` into the standard chaos drill.

    The drill the acceptance criteria name: kill one replica of each
    shard mid-run (the *busiest* replica at fire time, so the kill is
    reliably mid-flight), plus ``wedges`` straggler freezes and
    ``fail_tasks`` mid-flight task aborts.  Fire times are drawn
    uniformly from the middle of the run — as virtual-clock thresholds
    inside ``horizon`` steps when a horizon is known (e.g. from a
    prior healthy run), else as completion-count thresholds inside
    ``queries`` — so the same seed always produces the same plan.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    if horizon <= 0 and queries <= 0:
        raise ValueError("chaos_plan needs a horizon or a query count")
    rng = random.Random(seed)
    events: list[FaultEvent] = []

    def when() -> tuple[int, str]:
        if horizon > 0:
            return max(1, int(rng.uniform(0.2, 0.6) * horizon)), "clock"
        return max(1, int(rng.uniform(0.2, 0.6) * queries)), "completions"

    seq = 0
    for shard in range(num_shards):
        for _ in range(kills_per_shard):
            at, unit = when()
            events.append(FaultEvent(
                at=at, kind="kill", shard=shard, replica=-1,
                unit=unit, seq=seq,
            ))
            seq += 1
    for _ in range(wedges):
        at, unit = when()
        events.append(FaultEvent(
            at=at, kind="wedge",
            shard=rng.randrange(num_shards),
            replica=rng.randrange(replicas),
            ticks=rng.randint(2, max(2, max_wedge_ticks)),
            unit=unit, seq=seq,
        ))
        seq += 1
    for _ in range(fail_tasks):
        at, unit = when()
        events.append(FaultEvent(
            at=at, kind="fail_task", unit=unit, seq=seq,
        ))
        seq += 1
    return FaultInjector(events)
