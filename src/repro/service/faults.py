"""Deterministic fault injection for the replicated serving layer.

The paper's whole premise is robustness-through-redundancy: PSI races
query rewritings and alternative algorithms in parallel precisely so a
straggling or pathological execution cannot stall a query.  The
serving layer applies the same discipline to *infrastructure*: every
shard carries N replica worker pools, and this module makes replica
failure a first-class, testable event instead of an accident.

Three injection kinds, all driven off the service's **virtual clock**
(or, equivalently deterministic, its completion counter):

* ``kill`` — a replica dies permanently.  Every fan-out leg racing on
  it is lost mid-flight; the service re-admits each lost leg against a
  surviving replica of the same shard under the same ticket (bounded
  retries), and new work never lands on the corpse.
* ``wedge`` — a replica's pool freezes for K ticks (the classic
  straggler).  Races on it stall but are not lost; the replica is
  ``suspect`` while wedged, so new placements prefer live siblings,
  and it returns to ``live`` when the wedge expires.
* ``fail_task`` — one in-flight :class:`RaceTask` leg aborts (a
  simulated worker crash).  The leg restarts from scratch on the
  least-loaded live replica, which may be the same one.

The invariant that makes chaos testable (pinned by
``tests/test_faults.py`` and the CI ``chaos-smoke`` job): because
engines are deterministic generators and a restarted leg re-runs its
race from step zero with the ticket's full budget, **every
budget-completed query of a chaos run answers bit-for-bit what the
healthy run answers** (``answers_digest`` equality).  Only the
historical side — step bills, latencies, which replica did the work —
legitimately differs.  When a shard loses *all* replicas the service
refuses partial answers: affected tickets degrade to a loud
``REJECTED`` with a protocol-style ``retry_after`` hint instead of
returning an answer missing a partition.

Everything here is seed-deterministic: :func:`chaos_plan` expands a
seed into a fixed event list, and two runs of the same (workload,
plan) produce identical answers, reroutes, and digests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

__all__ = [
    "ReplicaState",
    "FaultEvent",
    "FaultInjector",
    "chaos_plan",
]

#: injection kinds understood by ``Service._apply_fault``
FAULT_KINDS = ("kill", "wedge", "fail_task")


class ReplicaState(Enum):
    """Health of one (shard, replica) worker pool.

    ``LIVE`` replicas take new work; ``SUSPECT`` (wedged) replicas
    keep their in-flight races but are avoided for new placements
    while any live sibling exists; ``DEAD`` (killed) and ``RETIRED``
    (scaled down at a quiesce point) replicas serve nothing ever
    again — the difference is that a kill loses in-flight legs (they
    reroute) while retirement only happens on an idle service.
    """

    LIVE = "live"
    SUSPECT = "suspect"
    DEAD = "dead"
    RETIRED = "retired"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled injection.

    ``at`` is a threshold in ``unit`` — ``"clock"`` compares against
    the service's virtual step clock, ``"completions"`` against its
    completed-query counter; both are deterministic, so either unit
    yields reproducible drills.  ``replica == -1`` on a kill means
    "the busiest serving replica of the shard at fire time" (most
    active fan-out legs, then highest step bill) — still a pure
    function of execution state, and what makes a seeded drill
    reliably *mid-flight*.  ``shard == -1`` on a ``fail_task`` means
    "any shard" (the first active leg in token order aborts).
    """

    at: int
    kind: str
    shard: int = -1
    replica: int = -1
    #: wedge duration in scheduler ticks
    ticks: int = 0
    unit: str = "clock"
    #: plan order — unique per plan, the apply-order tie-break
    seq: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.unit not in ("clock", "completions"):
            raise ValueError(f"unknown fault unit {self.unit!r}")
        if self.at < 0:
            raise ValueError("fault threshold must be >= 0")
        if self.kind == "wedge" and self.ticks < 1:
            raise ValueError("wedge needs ticks >= 1")

    def as_dict(self) -> dict:
        """JSON-ready rendering for bench payloads."""
        return {
            "at": self.at,
            "unit": self.unit,
            "kind": self.kind,
            "shard": self.shard,
            "replica": self.replica,
            "ticks": self.ticks,
        }


class FaultInjector:
    """A fixed schedule of :class:`FaultEvent`\\ s, popped as they come due.

    The service polls :meth:`due` once per pump tick with its current
    clock and completion count; every event whose threshold has been
    crossed fires exactly once, in plan (``seq``) order.  The injector
    holds no randomness — all nondeterminism was spent when the plan
    was built — so a chaos run is as replayable as a healthy one.
    """

    def __init__(self, events: tuple[FaultEvent, ...] | list = ()) -> None:
        self._pending: list[FaultEvent] = sorted(
            events, key=lambda e: (e.at, e.seq)
        )
        #: events fired so far, in apply order
        self.applied: list[FaultEvent] = []

    @property
    def pending(self) -> tuple[FaultEvent, ...]:
        """Events not yet fired."""
        return tuple(self._pending)

    def due(self, clock: int, completions: int) -> list[FaultEvent]:
        """Pop every event whose threshold is crossed, in plan order."""
        fired: list[FaultEvent] = []
        keep: list[FaultEvent] = []
        for event in self._pending:
            value = clock if event.unit == "clock" else completions
            (fired if value >= event.at else keep).append(event)
        if not fired:
            return []
        self._pending = keep
        fired.sort(key=lambda e: e.seq)
        self.applied.extend(fired)
        return fired

    def summary(self) -> dict:
        """JSON-ready counters for stats and bench payloads."""
        return {
            "planned": len(self.applied) + len(self._pending),
            "applied": [e.as_dict() for e in self.applied],
            "pending": len(self._pending),
        }

    def register_metrics(self, registry, prefix: str = "faults") -> None:
        """Publish schedule progress gauges into a metrics registry.

        ``replace=True`` throughout: chaos drills install fresh
        injectors against a long-lived service.
        """
        registry.gauge(
            f"{prefix}.planned",
            lambda: len(self.applied) + len(self._pending),
            replace=True,
        )
        registry.gauge(
            f"{prefix}.applied", lambda: len(self.applied), replace=True
        )
        registry.gauge(
            f"{prefix}.pending", lambda: len(self._pending), replace=True
        )


def chaos_plan(
    seed: int,
    num_shards: int,
    replicas: int,
    queries: int = 0,
    horizon: int = 0,
    kills_per_shard: int = 1,
    wedges: int = 1,
    fail_tasks: int = 1,
    max_wedge_ticks: int = 6,
) -> FaultInjector:
    """Expand ``seed`` into the standard chaos drill.

    The drill the acceptance criteria name: kill one replica of each
    shard mid-run (the *busiest* replica at fire time, so the kill is
    reliably mid-flight), plus ``wedges`` straggler freezes and
    ``fail_tasks`` mid-flight task aborts.  Fire times are drawn
    uniformly from the middle of the run — as virtual-clock thresholds
    inside ``horizon`` steps when a horizon is known (e.g. from a
    prior healthy run), else as completion-count thresholds inside
    ``queries`` — so the same seed always produces the same plan.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    if horizon <= 0 and queries <= 0:
        raise ValueError("chaos_plan needs a horizon or a query count")
    rng = random.Random(seed)
    events: list[FaultEvent] = []

    def when() -> tuple[int, str]:
        if horizon > 0:
            return max(1, int(rng.uniform(0.2, 0.6) * horizon)), "clock"
        return max(1, int(rng.uniform(0.2, 0.6) * queries)), "completions"

    seq = 0
    for shard in range(num_shards):
        for _ in range(kills_per_shard):
            at, unit = when()
            events.append(FaultEvent(
                at=at, kind="kill", shard=shard, replica=-1,
                unit=unit, seq=seq,
            ))
            seq += 1
    for _ in range(wedges):
        at, unit = when()
        events.append(FaultEvent(
            at=at, kind="wedge",
            shard=rng.randrange(num_shards),
            replica=rng.randrange(replicas),
            ticks=rng.randint(2, max(2, max_wedge_ticks)),
            unit=unit, seq=seq,
        ))
        seq += 1
    for _ in range(fail_tasks):
        at, unit = when()
        events.append(FaultEvent(
            at=at, kind="fail_task", unit=unit, seq=seq,
        ))
        seq += 1
    return FaultInjector(events)
