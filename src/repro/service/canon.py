"""Canonical forms for query graphs (result-cache keys).

:class:`repro.caching.QueryCache` detects isomorphic repeats with an
invariant key plus an exact isomorphism check per bucket entry — O(hit
candidates) exact checks per lookup.  A serving layer wants O(1)
lookups: this module computes a **canonical form**, a node ordering
that is identical for every isomorphic instance of a query, so the
cache can key on a plain tuple and a dict lookup replaces the exact
checker.

The algorithm is classic individualisation–refinement over *label
codes* (vertex labels interned to dense ints, ordered by ``repr`` so
the code assignment itself is isomorphism-invariant):

1. colour every vertex by its label code;
2. refine colours by sorted multisets of neighbour colours until the
   partition stabilises (1-WL);
3. if the partition is discrete, the colour order *is* the canonical
   order; otherwise branch on every vertex of the first smallest
   non-singleton cell (an isomorphism-invariant choice) and take the
   lexicographically smallest leaf encoding.

Queries in this project are small (tens of vertices) and labelled, so
refinement is almost always discrete after a round or two.  A branch
budget guards the pathological regular-unlabelled case: when exceeded,
:func:`canonical_query_key` returns ``None`` and the caller simply
treats the query as uncacheable (soundness is never at risk — a key is
only produced when canonicalisation completed).
"""

from __future__ import annotations

from typing import Optional

from ..graphs import LabeledGraph

__all__ = ["canonical_query_key", "CanonBudgetExceeded"]

#: Branch-leaf budget for the individualisation search.
DEFAULT_CANON_BRANCHES = 4096


class CanonBudgetExceeded(Exception):
    """Raised internally when the branch budget runs out."""


def _stable_colors(
    initial: tuple[int, ...], adjacency: tuple[tuple[int, ...], ...]
) -> tuple[int, ...]:
    """Refine ``initial`` colours to a stable partition (1-WL).

    New colours are dense ints assigned by sorted signature, so colour
    *values* are themselves isomorphism-invariant.
    """
    colors = initial
    num_colors = len(set(colors))
    while True:
        signatures = [
            (colors[v], tuple(sorted(colors[w] for w in adjacency[v])))
            for v in range(len(colors))
        ]
        palette = {sig: i for i, sig in enumerate(sorted(set(signatures)))}
        refined = tuple(palette[sig] for sig in signatures)
        refined_count = len(palette)
        if refined_count == num_colors:
            return refined
        colors = refined
        num_colors = refined_count


def _encode(
    order: list[int],
    labels: tuple[int, ...],
    adjacency: tuple[tuple[int, ...], ...],
    edge_label_of,
) -> tuple:
    """Encoding of the graph under a vertex ordering."""
    pos = {v: i for i, v in enumerate(order)}
    edges = sorted(
        (
            min(pos[u], pos[v]),
            max(pos[u], pos[v]),
            repr(edge_label_of(u, v)),
        )
        for u in order
        for v in adjacency[u]
        if u < v
    )
    return (tuple(labels[v] for v in order), tuple(edges))


def canonical_query_key(
    graph: LabeledGraph,
    max_branches: int = DEFAULT_CANON_BRANCHES,
) -> Optional[tuple]:
    """A hashable key equal for exactly the isomorphic copies of ``graph``.

    Returns ``None`` when the branch budget is exceeded (the caller
    should skip caching).  Vertex *and* edge labels participate: two
    graphs with the same shape but different labelling get different
    keys.

    Memoized per graph instance (the graph-side memo resets on
    mutation): the serving path needs the key at submit time for the
    result cache *and* in the census memo, and must canonicalise once,
    not twice.
    """
    from ..caching import prepare_cache  # deferred: no import cycle at use

    # wrapped in a 1-tuple so a legitimate None result is memoized too
    return prepare_cache.get(
        graph,
        ("canon", max_branches),
        lambda: (_canonical_query_key(graph, max_branches),),
    )[0]


def _canonical_query_key(
    graph: LabeledGraph,
    max_branches: int,
) -> Optional[tuple]:
    n = graph.order
    if n == 0:
        return ("canon", 0, (), (), ())
    # label codes ordered by repr: invariant across instances
    alphabet = tuple(sorted({repr(lab) for lab in graph.labels}))
    code_of = {rep: i for i, rep in enumerate(alphabet)}
    labels = tuple(code_of[repr(lab)] for lab in graph.labels)
    adjacency = graph.adjacency()
    budget = [max_branches]
    best: list[Optional[tuple]] = [None]

    def search(colors: tuple[int, ...]) -> None:
        colors = _stable_colors(colors, adjacency)
        cells: dict[int, list[int]] = {}
        for v, c in enumerate(colors):
            cells.setdefault(c, []).append(v)
        non_singleton = [
            (len(vs), c) for c, vs in cells.items() if len(vs) > 1
        ]
        if not non_singleton:
            budget[0] -= 1
            if budget[0] < 0:
                raise CanonBudgetExceeded
            order = sorted(range(n), key=lambda v: colors[v])
            enc = _encode(order, labels, adjacency, graph.edge_label)
            if best[0] is None or enc < best[0]:
                best[0] = enc
            return
        # invariant target cell: smallest, ties by colour value
        _, target = min(non_singleton)
        fresh = len(cells)  # a colour value no vertex currently has
        for v in cells[target]:
            individualized = tuple(
                fresh if u == v else c for u, c in enumerate(colors)
            )
            search(individualized)

    try:
        search(labels)
    except CanonBudgetExceeded:
        return None
    assert best[0] is not None
    return ("canon", n, graph.size, alphabet) + best[0]
