"""Admission control: per-tenant in-flight caps, budgets, fair share.

Every submitted query becomes a :class:`Ticket`.  Admission enforces
three things before the dispatcher ever sees work:

* **queue bounds** — a tenant whose backlog exceeds ``max_queued`` gets
  an immediate ``REJECTED`` ticket (load shedding beats unbounded
  queues);
* **in-flight caps** — at most ``max_in_flight`` of a tenant's queries
  occupy dispatcher slots at once;
* **fair share** — when slots free up, the next tenant served is the
  one with the least weighted consumed steps, via
  :class:`repro.scheduling.FairShareLedger` (the same step-cost algebra
  as the schedule simulator).

Per-query step budgets default from the tenant policy, mirroring the
paper's kill cap: a service must bound every query's worst case.

Invariants: admission is deterministic — ticket ids, queue order, and
fair-share picks are pure functions of the submission history and the
charged-steps ledger, never of wall-clock time or hash order.  A
sharded fan-out is admitted as **one** ticket: one queue slot, one
in-flight unit, one coalesce identity — only the charged steps reflect
the per-shard work actually done.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..graphs import LabeledGraph
from ..obs import Counter, MetricsRegistry, counter_property
from ..scheduling import FairShareLedger

__all__ = ["TicketState", "TenantPolicy", "Ticket", "AdmissionController"]


class TicketState(Enum):
    """Lifecycle of one submitted query."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    REJECTED = "rejected"


@dataclass(frozen=True)
class TenantPolicy:
    """Limits and fair-share weight for one tenant."""

    max_in_flight: int = 4
    max_queued: int = 256
    step_budget: int = 200_000
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        if self.step_budget < 1:
            raise ValueError("step_budget must be >= 1")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass
class Ticket:
    """Handle for one submitted query (the ``Service.submit`` return).

    Times are in the service's virtual step clock; ``latency`` includes
    queueing delay — that is the number a client experiences.
    """

    id: int
    tenant: str
    dataset: str
    query: LabeledGraph
    state: TicketState
    budget_steps: int
    submit_time: int
    start_time: Optional[int] = None
    finish_time: Optional[int] = None
    result: Optional[object] = None
    cache_hit: bool = False
    #: attached to an identical in-flight query's race (no own race)
    coalesced: bool = False
    #: raced a plan-cache/advisor-seeded variant subset, not the full set
    plan_seeded: bool = False
    #: shard races this ticket fanned out into (0 until dispatched;
    #: 1 on an unsharded catalog).  With routing on this counts only
    #: the *surviving* fan-out — admission charges nothing for shards
    #: the router pruned or skipped.
    fanout: int = 0
    #: shards the router proved empty and excluded from the fan-out
    pruned: int = 0
    #: shards never raced because an earlier routed wave settled the
    #: decision first
    skipped: int = 0
    #: fan-out legs re-admitted after a replica death or task failure
    #: (bounded by the service's ``max_retries``)
    retries: int = 0
    #: refused because a shard lost every replica (or retries ran out):
    #: the service returns no partial answers, so the ticket resolves
    #: REJECTED with this mark and a ``retry_after`` hint instead
    degraded: bool = False
    #: virtual clock after which the client should retry — set on
    #: degraded tickets and on queue-full admission rejections (the
    #: protocol-style backpressure answer)
    retry_after: Optional[int] = None
    reject_reason: str = ""

    @property
    def done(self) -> bool:
        """Whether the ticket reached a terminal state."""
        return self.state in (TicketState.DONE, TicketState.REJECTED)

    @property
    def latency(self) -> Optional[int]:
        """Submit-to-finish virtual latency in steps (None while open)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time


class AdmissionController:
    """Queue + fair-share gate in front of the dispatcher."""

    #: legacy int surface over the registry-visible counters
    rejected = counter_property("_m_rejected")
    admitted = counter_property("_m_admitted")
    coalesced = counter_property("_m_coalesced")
    plan_seeded = counter_property("_m_plan_seeded")

    def __init__(
        self,
        default_policy: TenantPolicy = TenantPolicy(),
        policies: Optional[dict[str, TenantPolicy]] = None,
        backoff_steps: int = 2_048,
    ) -> None:
        self.default_policy = default_policy
        self.policies = dict(policies or {})
        #: retry-after horizon (virtual steps) stamped on queue-full
        #: rejections so shed clients know when to come back
        self.backoff_steps = backoff_steps
        self.ledger = FairShareLedger()
        self._queues: dict[str, list[Ticket]] = {}
        self._in_flight: dict[str, int] = {}
        self._ids = itertools.count()
        self._m_rejected = Counter()
        self._m_admitted = Counter()
        self._m_coalesced = Counter()
        self._m_plan_seeded = Counter()
        #: per-tenant count of followers currently riding a leader
        self._coalesced_backlog: dict[str, int] = {}

    def register_metrics(
        self, registry: MetricsRegistry, prefix: str = "admission"
    ) -> None:
        """Publish this controller's counters + gauges into ``registry``."""
        registry.register(f"{prefix}.admitted", self._m_admitted)
        registry.register(f"{prefix}.rejected", self._m_rejected)
        registry.register(f"{prefix}.coalesced", self._m_coalesced)
        registry.register(f"{prefix}.plan_seeded", self._m_plan_seeded)
        registry.gauge(f"{prefix}.queued", lambda: self.queued())
        registry.gauge(f"{prefix}.in_flight", lambda: self.in_flight())
        registry.gauge(
            f"{prefix}.charged_steps",
            lambda: {str(k): v for k, v in self.ledger.snapshot().items()},
        )

    def policy(self, tenant: str) -> TenantPolicy:
        """The effective policy for ``tenant``."""
        return self.policies.get(tenant, self.default_policy)

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        """Install a per-tenant policy override."""
        self.policies[tenant] = policy
        self.ledger.register(tenant, policy.weight)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def issue(
        self,
        tenant: str,
        dataset: str,
        query: LabeledGraph,
        now: int,
        budget_steps: Optional[int] = None,
    ) -> Ticket:
        """Create a ticket (registering the tenant) without queueing it.

        The service uses this for cache hits: an answered-at-submit
        query never occupies queue or worker capacity.
        """
        policy = self.policy(tenant)
        self.ledger.register(tenant, policy.weight)
        return Ticket(
            id=next(self._ids),
            tenant=tenant,
            dataset=dataset,
            query=query,
            state=TicketState.QUEUED,
            budget_steps=(
                budget_steps if budget_steps is not None
                else policy.step_budget
            ),
            submit_time=now,
        )

    def enqueue(self, ticket: Ticket) -> Ticket:
        """Queue ``ticket``, or reject it when the tenant queue is full."""
        policy = self.policy(ticket.tenant)
        queue = self._queues.setdefault(ticket.tenant, [])
        if len(queue) >= policy.max_queued:
            ticket.state = TicketState.REJECTED
            ticket.reject_reason = (
                f"queue full ({policy.max_queued} queued)"
            )
            ticket.retry_after = ticket.submit_time + self.backoff_steps
            ticket.finish_time = ticket.submit_time
            self.rejected += 1
            return ticket
        queue.append(ticket)
        return ticket

    def submit(
        self,
        tenant: str,
        dataset: str,
        query: LabeledGraph,
        now: int,
        budget_steps: Optional[int] = None,
    ) -> Ticket:
        """Create a ticket for ``query`` and queue (or reject) it."""
        return self.enqueue(
            self.issue(tenant, dataset, query, now, budget_steps)
        )

    def attach_coalesced(self, ticket: Ticket) -> Ticket:
        """Attach ``ticket`` to an identical in-flight query's race.

        Coalesced tickets never occupy queue or worker capacity — they
        resolve when their leader's race does — but they are still
        bounded: a tenant's followers count against its ``max_queued``
        allowance ("load shedding beats unbounded queues" applies to
        ride-alongs too), so a flood of identical queries sheds instead
        of accumulating unbounded ticket state.  The leader's tenant is
        charged for the shared work.
        """
        policy = self.policy(ticket.tenant)
        backlog = self._coalesced_backlog.get(ticket.tenant, 0)
        if backlog >= policy.max_queued:
            ticket.state = TicketState.REJECTED
            ticket.reject_reason = (
                f"coalesce backlog full ({policy.max_queued} attached)"
            )
            ticket.retry_after = ticket.submit_time + self.backoff_steps
            ticket.finish_time = ticket.submit_time
            self.rejected += 1
            return ticket
        ticket.coalesced = True
        self.coalesced += 1
        self._coalesced_backlog[ticket.tenant] = backlog + 1
        return ticket

    def release_coalesced(self, ticket: Ticket) -> None:
        """Release a resolved follower's backlog slot."""
        self._coalesced_backlog[ticket.tenant] = max(
            0, self._coalesced_backlog.get(ticket.tenant, 0) - 1
        )

    # ------------------------------------------------------------------
    # dispatch handshake
    # ------------------------------------------------------------------

    def runnable_tenants(self) -> list[str]:
        """Tenants with backlog and spare in-flight allowance."""
        out = []
        for tenant, queue in sorted(self._queues.items()):
            if not queue:
                continue
            if self._in_flight.get(tenant, 0) < self.policy(tenant).max_in_flight:
                out.append(tenant)
        return out

    def next_ticket(self) -> Optional[Ticket]:
        """Pop the fair-share choice among runnable tenants' heads."""
        candidates = self.runnable_tenants()
        if not candidates:
            return None
        tenant = self.ledger.pick(candidates)
        assert tenant is not None
        ticket = self._queues[tenant].pop(0)
        ticket.state = TicketState.RUNNING
        self._in_flight[tenant] = self._in_flight.get(tenant, 0) + 1
        self.admitted += 1
        return ticket

    def charge(self, tenant: str, steps: int) -> None:
        """Charge consumed steps to the tenant's fair-share account."""
        self.ledger.charge(tenant, steps)

    def on_complete(self, ticket: Ticket) -> None:
        """Release the in-flight slot of a finished ticket."""
        self._in_flight[ticket.tenant] = max(
            0, self._in_flight.get(ticket.tenant, 0) - 1
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def queued(self, tenant: Optional[str] = None) -> int:
        """Backlog length (one tenant, or all)."""
        if tenant is not None:
            return len(self._queues.get(tenant, []))
        return sum(len(q) for q in self._queues.values())

    def in_flight(self, tenant: Optional[str] = None) -> int:
        """Running-query count (one tenant, or all)."""
        if tenant is not None:
            return self._in_flight.get(tenant, 0)
        return sum(self._in_flight.values())

    def stats(self) -> dict:
        """Counters + per-tenant charged steps."""
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "coalesced": self.coalesced,
            "plan_seeded": self.plan_seeded,
            "queued": self.queued(),
            "in_flight": self.in_flight(),
            "charged_steps": {
                str(k): v for k, v in self.ledger.snapshot().items()
            },
        }
