"""`repro.service` façade: submit queries, pump ticks, read stats.

:class:`Service` composes the four serving pieces:

* :class:`~repro.service.catalog.DatasetCatalog` — warm datasets;
* :class:`~repro.service.admission.AdmissionController` — queues,
  per-tenant caps, fair share;
* :class:`~repro.service.dispatcher.Dispatcher` — many Ψ races over a
  bounded simulated worker pool, one quantum per tick;
* :class:`~repro.service.cache.ResultCache` — canonical-form result
  and plan cache.

The contract that makes the service *testable against the paper's
machinery*: a query served alone produces bit-for-bit the same
:class:`RaceOutcome` as ``PsiNFV.race`` with the interleaved executor,
and concurrency never changes any query's winner or step bill — only
its latency.  Everything is virtual-time deterministic: two runs of the
same submission history give identical results, latencies included.

With a :class:`~repro.service.sharding.ShardedCatalog` (or
``Service(shards=N)``) the submit path fans each query out into one
race per involved shard, runs them on per-shard worker pools, and
merges the outcomes (:func:`repro.service.sharding.merge_shard_outcomes`)
— decision answers stay bit-for-bit identical to unsharded serving,
and the result cache keys on (query, collection) so both layouts share
hits.  Internally the unsharded service is just the one-shard case of
the same fan-out plumbing, with the single outcome passed through
untouched.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Optional

from ..graphs import LabeledGraph
from ..matching import Budget, MatchOutcome, VF2Matcher
from ..obs import MetricsRegistry, Tracer, counter_property
from ..psi.advisor import VariantAdvisor, query_features
from ..psi.executors import (
    DEFAULT_RACE_QUANTUM,
    OverheadModel,
    RaceOutcome,
)
from ..psi.variants import Variant, variants_from_spec
from ..rewriting import make_rewriting
from .admission import AdmissionController, Ticket, TicketState
from .cache import CachedResult, ResultCache
from .catalog import DatasetCatalog, DatasetEntry
from .dispatcher import Dispatcher, RaceTask
from .faults import FaultEvent, FaultInjector, ReplicaState
from .rebalance import coldest_shard, shard_loads
from .sharding import ShardedCatalog, ShardedEntry, merge_shard_outcomes

__all__ = [
    "QueryOptions",
    "ServiceResult",
    "MutationTicket",
    "Service",
    "results_digest",
    "answers_digest",
    "decisions_digest",
]


@dataclass(frozen=True)
class QueryOptions:
    """Per-query execution configuration.

    For NFV datasets the race runs ``algorithms x rewritings``; for FTV
    datasets verification is VF2 (the paper's FTV mode) and only
    ``rewritings`` vary.

    ``decision_only`` asks for the existence answer, not the full one:
    FTV sweeps stop at their first matching graph and NFV races stop at
    their first embedding, and on a sharded catalog the first shard to
    find a match cancels its siblings' remaining budget (the paper's
    first-winner semantics applied across partitions).  Only ``found``
    is answer-contractual in this mode — ``matching_ids`` may be any
    nonempty witness subset — so it gets its own cache-key signature.
    """

    algorithms: tuple[str, ...] = ("GQL", "SPA")
    rewritings: tuple[str, ...] = ("Orig", "DND")
    max_embeddings: int = 1000
    count_only: bool = True
    decision_only: bool = False

    def variants(self, kind: str) -> tuple[Variant, ...]:
        """The race's variant set for a dataset kind."""
        if kind == "ftv":
            return tuple(Variant("VF2", r) for r in self.rewritings)
        return variants_from_spec(self.algorithms, self.rewritings)

    def signature(self, kind: str) -> tuple:
        """Hashable cache-context component."""
        return (
            self.variants(kind),
            self.max_embeddings,
            self.count_only,
            self.decision_only,
        )


@dataclass(frozen=True)
class ServiceResult:
    """What a ticket resolves to."""

    found: bool
    killed: bool
    steps: int
    winner: Optional[Variant]
    num_embeddings: int
    per_variant_steps: tuple  # ((variant, steps), ...)
    from_cache: bool = False
    #: resolved by attaching to an identical in-flight query's race
    coalesced: bool = False
    matching_ids: tuple = ()  # FTV decision answers

    @property
    def winner_label(self) -> str:
        """Render-friendly winner name."""
        if self.winner is None:
            return "killed"
        return self.winner.label


@dataclass
class MutationTicket:
    """One submitted collection mutation and its lifecycle.

    Mutations are fenced against queries: a submitted mutation stays
    ``pending`` until a quiesce point (no ticket queued, staged, or
    racing), is journaled (append + fsync) *before* the catalog is
    touched, and only acknowledges ``applied`` after both — so a crash
    at any byte either lost an unacknowledged mutation (the client
    retries) or left a journaled record replay restores.  Rejections
    (backlog full, dark shard) carry a ``retry_after`` hint like
    degraded query tickets.
    """

    id: int
    op: str  # "add_graph" | "remove_graph"
    dataset: str
    graph: Optional[LabeledGraph] = None
    graph_id: Optional[int] = None
    #: requested placement (sharded adds; None = coldest shard)
    shard: Optional[int] = None
    submit_time: int = 0
    apply_time: Optional[int] = None
    state: str = "pending"  # pending | applied | rejected
    reason: Optional[str] = None
    retry_after: Optional[int] = None
    #: journal sequence the mutation acked through (None = unjournaled)
    seq: Optional[int] = None

    @property
    def applied(self) -> bool:
        return self.state == "applied"

    @property
    def rejected(self) -> bool:
        return self.state == "rejected"


def results_digest(tickets: list[Ticket]) -> str:
    """Order-independent digest of a workload's results.

    Two deterministic runs of the same workload must agree on this —
    the acceptance check for "same winners / step totals across runs".
    """
    lines = sorted(
        f"{t.tenant}/{t.query.name}:{r.winner_label}:{r.steps}:"
        f"{int(r.found)}:{t.latency}"
        for t in tickets
        if isinstance((r := t.result), ServiceResult)
    )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()[:16]


def answers_digest(tickets: list[Ticket]) -> str:
    """Order-independent digest of a workload's *decision answers*.

    Unlike :func:`results_digest` this covers only the
    sharding-invariant parts of each result — found / embedding count /
    matching ids / killed — and none of the historical bill (steps,
    winner, latency).  Sharded and unsharded runs of the same workload
    must agree on this digest whenever no query was budget-killed;
    that equality is the acceptance check for "sharding never changes
    a completed answer".  Killed answers are execution-dependent (each
    shard race carries its own kill cap), so the killed flag is hashed
    precisely so that any such divergence surfaces loudly instead of
    passing as equal.
    """
    lines = sorted(
        f"{t.tenant}/{t.query.name}:{int(r.found)}:{r.num_embeddings}:"
        f"{','.join(str(i) for i in r.matching_ids)}:{int(r.killed)}"
        for t in tickets
        if isinstance((r := t.result), ServiceResult)
    )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()[:16]


def decisions_digest(tickets: list[Ticket]) -> str:
    """Order-independent digest of a workload's *existence answers*.

    The invariant for ``decision_only`` workloads: in decision mode
    only ``found`` is answer-contractual (``matching_ids`` may be any
    witness subset, so :func:`answers_digest` legitimately differs
    between layouts and between routed and unrouted fan-outs), and this
    digest hashes exactly ``found`` plus the ``killed`` taint.  Routed,
    unrouted, sharded, and single-catalog runs of the same decision
    workload must all agree on it whenever nothing was budget-killed.
    """
    lines = sorted(
        f"{t.tenant}/{t.query.name}:{int(r.found)}:{int(r.killed)}"
        for t in tickets
        if isinstance((r := t.result), ServiceResult)
    )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()[:16]


def _prepare_cache_metrics() -> dict:
    """Process-global prepared-graph cache counters (import deferred:
    ``repro.caching`` must not load at service-import time)."""
    from ..caching import prepare_cache

    return prepare_cache.stats.as_metrics()


@dataclass
class _FanoutState:
    """Merge bookkeeping for one ticket's per-shard races.

    ``id_maps[shard]`` translates the shard's local graph ids to global
    ids (None = identity); ``cancelled`` records shards whose remaining
    budget a first-true decision revoked (they contribute no outcome).
    ``waves`` holds routed shard groups not yet dispatched (decision
    ordering races the expected-first-true shard alone, then the
    rest); ``skipped`` records shards whose wave never started because
    an earlier wave settled the decision; ``work`` accumulates each
    shard race's billed steps for the fan-out-waste counter.
    """

    pending: set
    outcomes: dict
    id_maps: dict
    cancelled: list
    waves: list = field(default_factory=list)
    skipped: list = field(default_factory=list)
    work: dict = field(default_factory=dict)
    #: shard -> replica its in-flight leg is placed on (reroute target
    #: bookkeeping; entries for settled shards go stale harmlessly)
    replica_of: dict = field(default_factory=dict)
    #: shard -> open trace span id of its in-flight leg
    leg_spans: dict = field(default_factory=dict)
    #: virtual clock at which the next wave hedge-launches even though
    #: the current wave is still racing (None = no waves deferred)
    hedge_at: Optional[int] = None
    #: router epoch at plan time — deferred waves refuse to launch
    #: against a layout that changed under them (None = no waves)
    epoch: Optional[int] = None


class _ShardsDark(Exception):
    """Raised while building a fan-out whose plan needs a shard that
    has no serving replica left — the service degrades the ticket."""

    def __init__(self, shards: list) -> None:
        super().__init__(f"shards {shards} have no serving replica")
        self.shards = shards


class Service:
    """A concurrent graph-query serving layer over the Ψ machinery."""

    #: legacy int surface over the registry-visible counters — code
    #: (and tests) keep writing ``service.retries += 1`` while the
    #: value lives in a :class:`~repro.obs.registry.Counter`
    shard_cancelled = counter_property("_m_shard_cancelled")
    routed_queries = counter_property("_m_routed_queries")
    shards_pruned = counter_property("_m_shards_pruned")
    waves_skipped = counter_property("_m_waves_skipped")
    fanout_waste = counter_property("_m_fanout_waste")
    completed_count = counter_property("_m_completed")
    retries = counter_property("_m_retries")
    rerouted = counter_property("_m_rerouted")
    degraded = counter_property("_m_degraded")
    replicas_killed = counter_property("_m_replicas_killed")
    replicas_wedged = counter_property("_m_replicas_wedged")
    tasks_failed = counter_property("_m_tasks_failed")
    replicas_retired = counter_property("_m_replicas_retired")
    faults_noop = counter_property("_m_faults_noop")
    mutations_applied = counter_property("_m_mutations_applied")
    mutations_replayed = counter_property("_m_mutations_replayed")
    mutations_rejected = counter_property("_m_mutations_rejected")

    def __init__(
        self,
        catalog: Optional[DatasetCatalog | ShardedCatalog] = None,
        admission: Optional[AdmissionController] = None,
        cache: Optional[ResultCache] = None,
        workers: int = 4,
        quantum: int = DEFAULT_RACE_QUANTUM,
        overhead: OverheadModel = OverheadModel(),
        plan_seeding: bool = False,
        coalesce: bool = True,
        advisor: Optional[VariantAdvisor] = None,
        shards: int = 1,
        routing: bool = True,
        assignment: str = "size_balanced",
        hedge_ticks: int = 1,
        replicas: int = 1,
        max_retries: int = 3,
        degraded_retry_after: int = 4_096,
        faults: Optional[FaultInjector] = None,
        trace_capacity: int = 512,
        store=None,
        journal=None,
        max_pending_mutations: int = 256,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if catalog is not None:
            self.catalog = catalog
            if store is not None:
                self.catalog.attach_store(store)
        elif shards > 1 or replicas > 1:
            self.catalog = ShardedCatalog(
                num_shards=shards,
                overhead=overhead,
                assignment=assignment,
                replicas=replicas,
                store=store,
            )
        else:
            self.catalog = DatasetCatalog(overhead=overhead, store=store)
        #: fan queries out across catalog shards (each shard gets its
        #: own worker pool of ``workers`` slots per replica)
        self.sharded = isinstance(self.catalog, ShardedCatalog)
        if replicas > 1 and (
            not self.sharded or self.catalog.replicas != replicas
        ):
            raise ValueError(
                f"replicas={replicas} conflicts with the provided "
                "catalog's replica layout"
            )
        #: consult per-shard feature sketches before fanning out:
        #: provably-empty shards are pruned from the fan-out and
        #: decision-only fan-outs race in expected-first-true wave
        #: order.  Off = bit-for-bit the unrouted fan-out.
        self.routing = routing and self.sharded
        #: ticks a routed decision wave races alone before the next
        #: wave hedge-launches anyway: the fast common case (the
        #: expected-first-true shard settles within the hedge) never
        #: pays sibling work, while a slow first wave falls back to
        #: near-parallel racing instead of serialising the tail
        if hedge_ticks < 1:
            raise ValueError("hedge_ticks must be >= 1")
        self.hedge_ticks = hedge_ticks
        pools = self.catalog.pool_count if self.sharded else 1
        if shards > 1 and (
            not self.sharded or self.catalog.num_shards != shards
        ):
            raise ValueError(
                f"shards={shards} conflicts with the provided "
                "catalog's shard layout"
            )
        self.admission = admission or AdmissionController()
        self.cache = cache or ResultCache()
        self.dispatcher = Dispatcher(
            workers=workers, quantum=quantum, pools=pools
        )
        self.overhead = overhead
        #: race the plan cache's winning variant plus one challenger
        #: (advisor fallback) instead of the full variant set on
        #: near-miss canonical hits
        self.plan_seeding = plan_seeding
        #: attach identical in-flight canonical keys to the running
        #: race's ticket instead of racing twice
        self.coalesce = coalesce
        self.advisor = advisor
        self._verifier = VF2Matcher()
        #: ticket.id -> (ticket, entry, options, cache key, variants)
        self._open: dict[
            int,
            tuple[Ticket, DatasetEntry, QueryOptions, Optional[tuple], tuple],
        ] = {}
        #: cache key -> leader ticket.id of the in-flight race
        self._inflight_keys: dict[tuple, int] = {}
        #: leader ticket.id -> coalesced follower tickets
        self._followers: dict[int, list[Ticket]] = {}
        #: admitted-but-not-yet-dispatched (fan-out waiting for slots)
        self._staged: list[int] = []
        #: staged ticket.id -> (first-wave races, id maps, later waves)
        self._staged_races: dict[int, tuple[dict, dict, list]] = {}
        #: ticket.id -> in-flight fan-out merge state
        self._fanout: dict[int, _FanoutState] = {}
        # ---- observability ----
        #: the unified metrics registry every serving component
        #: publishes into; :meth:`stats` is a read of it
        self.metrics = MetricsRegistry()
        #: per-ticket trace spans, bounded ring buffer
        #: (:meth:`trace` / :meth:`export_traces` read it)
        self.tracer = Tracer(capacity=trace_capacity)
        #: ticket.id -> open "queue" span id (closed at dispatch)
        self._queue_spans: dict[int, int] = {}
        _c = self.metrics.counter
        #: sibling shard races cancelled by a first-true decision
        self._m_shard_cancelled = _c("service.shard_cancelled")
        #: queries whose fan-out went through the shard router
        self._m_routed_queries = _c("service.routed_queries")
        #: shard races never built because a sketch proved them empty
        self._m_shards_pruned = _c("service.shards_pruned")
        #: shard races never built because an earlier wave settled the
        #: decision first (routed decision-only fan-outs)
        self._m_waves_skipped = _c("service.waves_skipped")
        #: virtual steps billed to shard races that contributed nothing
        #: to their merged outcome (fan-outs of >= 2 raced shards only)
        self._m_fanout_waste = _c("service.fanout_waste")
        #: (dataset, global graph id) -> verification steps billed to
        #: that stored graph across every FTV sweep — the per-graph
        #: load attribution the rebalancer migrates on (a size proxy
        #: cannot see that one graph of a balanced shard is hot)
        self.graph_bills: dict[tuple, int] = {}
        self._m_completed = _c("service.completed")
        # sliding window: stats() reports the most recent completions,
        # so a long-lived service doesn't grow (or re-sort) its whole
        # history per stats call
        self._latencies: deque[int] = deque(maxlen=65_536)
        #: fixed-bound latency histogram (full snapshot only —
        #: :meth:`stats` keeps reporting the windowed summary)
        self._latency_hist = self.metrics.histogram("service.latency_hist")
        # ---- replica health + fault handling ----
        #: bounded retries per ticket before it degrades: a leg lost to
        #: a dead replica (or a failed task) re-admits at most this
        #: many times across the ticket's whole fan-out
        self.max_retries = max_retries
        #: retry-after hint (virtual steps) handed to degraded tickets
        self.degraded_retry_after = degraded_retry_after
        #: scheduled fault injections (None = healthy run)
        self.faults = faults
        #: (shard, replica) -> state; absent = LIVE
        self.replica_states: dict[tuple[int, int], ReplicaState] = {}
        #: (shard, replica) -> virtual clock at which a wedge expires
        self._suspect_until: dict[tuple[int, int], int] = {}
        #: tickets degraded since the last pump returned (drained into
        #: pump's completed list so closed loops see them finish)
        self._degraded_now: list[Ticket] = []
        #: chaos-path counters (surfaced in :meth:`stats`)
        self._m_retries = _c("service.retries")
        self._m_rerouted = _c("service.rerouted")
        self._m_degraded = _c("service.degraded")
        self._m_replicas_killed = _c("service.replicas_killed")
        self._m_replicas_wedged = _c("service.replicas_wedged")
        self._m_tasks_failed = _c("service.tasks_failed")
        self._m_replicas_retired = _c("service.replicas_retired")
        #: injected events that found nothing to act on
        self._m_faults_noop = _c("service.faults_noop")
        # ---- dynamic collections (journaled mutation path) ----
        if max_pending_mutations < 1:
            raise ValueError("max_pending_mutations must be >= 1")
        #: write-ahead journal mutations ack through (path or
        #: MutationJournal; None = mutations apply unjournaled and a
        #: crash loses everything since the last store checkpoint)
        self.journal = None
        if journal is not None:
            from ..store.journal import MutationJournal

            self.journal = (
                journal
                if isinstance(journal, MutationJournal)
                else MutationJournal(journal)
            )
        #: pending-mutation backlog cap; beyond it submissions reject
        #: with a retry_after hint (the quiesce-backpressure answer)
        self.max_pending_mutations = max_pending_mutations
        #: submitted mutations awaiting the next quiesce point
        self._mutations: deque[MutationTicket] = deque()
        self._next_mutation_id = 1
        #: crash-injection hook (drills): the next journal append tears
        #: after this many bytes and raises JournalCrash pre-ack
        self.journal_fail_after: Optional[int] = None
        #: applied-seq high-water mark — replay skips seq <= this.  A
        #: store checkpoint persists it in the manifest layout, so a
        #: stale journal that survived its checkpoint replays nothing.
        self._applied_seq = self._checkpoint_seq()
        self._next_seq = max(
            self.journal.tail_seq() + 1 if self.journal else 0,
            self._applied_seq + 1,
        )
        self._m_mutations_applied = _c("mutations.applied")
        self._m_mutations_replayed = _c("mutations.replayed")
        self._m_mutations_rejected = _c("mutations.rejected")
        #: next synthetic ticket id for non-query trace records (store
        #: boots, replica grows); counts down so it can never collide
        #: with real ticket ids, which are positive
        self._synthetic_trace_id = -1
        self._register_stats_metrics()
        self.admission.register_metrics(self.metrics)
        self.dispatcher.register_metrics(self.metrics)
        if faults is not None:
            faults.register_metrics(self.metrics)
        if self.catalog.store is not None:
            self.catalog.store.register_metrics(self.metrics)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def load_dataset(self, name: str, scale: str = "default", **kw) -> None:
        """Load + warm a dataset through the catalog."""
        self.catalog.load(name, scale=scale, **kw)

    @property
    def clock(self) -> int:
        """The service's virtual step clock."""
        return self.dispatcher.clock

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        dataset: str,
        query: LabeledGraph,
        tenant: str = "public",
        options: Optional[QueryOptions] = None,
        budget_steps: Optional[int] = None,
    ) -> Ticket:
        """Submit one query; returns immediately with a :class:`Ticket`.

        Cache hits resolve at submit time with zero latency; an
        identical in-flight canonical key coalesces onto the running
        race's ticket; everything else goes through admission and the
        dispatcher.
        """
        if budget_steps is not None and budget_steps < 1:
            raise ValueError("budget_steps must be >= 1")
        entry = self.catalog.get(dataset)
        options = options or QueryOptions()
        ticket = self.admission.issue(
            tenant, dataset, query, self.clock, budget_steps
        )
        self.tracer.start(
            ticket.id,
            self.clock,
            tenant=tenant,
            dataset=dataset,
            query=query.name,
            budget=ticket.budget_steps,
        )
        variants = options.variants(entry.kind)
        if len(variants) > self.dispatcher.workers:
            ticket.state = TicketState.REJECTED
            ticket.reject_reason = (
                f"{len(variants)} variants exceed the "
                f"{self.dispatcher.workers}-worker pool"
            )
            ticket.finish_time = ticket.submit_time
            self.admission.rejected += 1
            self.tracer.finish(
                ticket.id,
                self.clock,
                state="rejected",
                reason=ticket.reject_reason,
            )
            return ticket
        context = (
            dataset,
            entry.scale,
            entry.kind,
            options.signature(entry.kind),
            ticket.budget_steps,
            # collection-state stamp: every applied add/remove bumps
            # the catalog's mutation epoch, so a canonical twin served
            # before a mutation can never answer for one served after
            # it (constant 0 over a mutation-free run — pure-query
            # digests are untouched)
            self._collection_epoch(),
        )
        key = self.cache.key_for(query, context)
        cached = self.cache.lookup(key)
        if cached is not None:
            ticket.state = TicketState.DONE
            ticket.finish_time = ticket.submit_time
            ticket.cache_hit = True
            ticket.result = ServiceResult(
                found=cached.found,
                killed=False,
                steps=cached.steps,
                winner=cached.winner,
                num_embeddings=cached.num_embeddings,
                per_variant_steps=cached.per_variant_steps,
                from_cache=True,
                matching_ids=cached.matching_ids,
            )
            self.completed_count += 1
            self._observe_latency(0)
            self.tracer.event(ticket.id, "cache_hit", self.clock)
            self.tracer.finish(
                ticket.id, self.clock, state="done", cache_hit=True
            )
            return ticket
        if self.coalesce and key is not None:
            leader = self._inflight_keys.get(key)
            if leader is not None:
                # identical query + context already racing: ride along
                # (bounded by the tenant's max_queued allowance)
                ticket = self.admission.attach_coalesced(ticket)
                if ticket.state is not TicketState.REJECTED:
                    self._followers.setdefault(leader, []).append(ticket)
                    self.tracer.event(
                        ticket.id,
                        "coalesce_attach",
                        self.clock,
                        leader=leader,
                    )
                else:
                    self.tracer.finish(
                        ticket.id,
                        self.clock,
                        state="rejected",
                        reason=ticket.reject_reason,
                        retry_after=ticket.retry_after,
                    )
                return ticket
        ticket = self.admission.enqueue(ticket)
        if ticket.state is TicketState.QUEUED:
            race_variants = self._race_variants(
                ticket, entry, options, key
            )
            self._open[ticket.id] = (
                ticket, entry, options, key, race_variants
            )
            if key is not None:
                self._inflight_keys[key] = ticket.id
            span = self.tracer.begin(ticket.id, "queue", self.clock)
            if span is not None:
                self._queue_spans[ticket.id] = span
        elif ticket.state is TicketState.REJECTED:
            self.tracer.finish(
                ticket.id,
                self.clock,
                state="rejected",
                reason=ticket.reject_reason,
                retry_after=ticket.retry_after,
            )
        return ticket

    # ------------------------------------------------------------------
    # plan-seeded racing
    # ------------------------------------------------------------------

    def _plan_key(
        self,
        ticket: Ticket,
        entry: DatasetEntry,
        options: QueryOptions,
        key: Optional[tuple],
    ) -> Optional[tuple]:
        """Near-miss plan key: variant portfolio + canonical form.

        Unlike the result-cache key, budgets and embedding caps are
        *excluded* — a canonical twin under a different execution
        context is exactly the near-miss a remembered plan should seed.
        """
        if key is None:
            return None
        canon = key[1]
        return (
            ticket.dataset,
            entry.scale,
            entry.kind,
            options.variants(entry.kind),
            canon,
            # same mutation-epoch stamp as the result-cache context: a
            # plan learned against a previous collection state may seed
            # a variant subset the grown collection would not pick
            self._collection_epoch(),
        )

    def _race_variants(
        self,
        ticket: Ticket,
        entry: DatasetEntry,
        options: QueryOptions,
        key: Optional[tuple],
    ) -> tuple:
        """The variant set this ticket will actually race.

        With ``plan_seeding`` on and a plan-cache hit, the race shrinks
        to (cached winner, one challenger) — the winner declared first,
        so it keeps ties, mirroring the warm thread the paper's
        framework would reuse.  Without a plan, a trained advisor
        recommends a two-variant subset (the fallback); otherwise the
        full set races.  The seeded race's winner and per-variant
        charges are bit-for-bit what :func:`interleaved_race` produces
        for that subset — seeding changes membership, never mechanics.
        """
        full = options.variants(entry.kind)
        if not self.plan_seeding or len(full) <= 2:
            return full
        plan = self.cache.plan_for(
            self._plan_key(ticket, entry, options, key)
        )
        if plan is not None and plan in full:
            challenger = self._challenger(ticket, entry, full, plan)
            ticket.plan_seeded = True
            self.admission.plan_seeded += 1
            if challenger is None:
                return (plan,)
            return (plan, challenger)
        advised = self._advised_variants(ticket, entry, full)
        if advised is not None:
            ticket.plan_seeded = True
            self.admission.plan_seeded += 1
            return advised
        return full

    def _challenger(
        self,
        ticket: Ticket,
        entry: DatasetEntry,
        full: tuple,
        plan,
    ):
        """One challenger to keep the seeded race honest.

        A trained advisor nominates its top non-plan recommendation;
        otherwise the first non-plan variant in declaration order runs
        (deterministic either way).
        """
        if (
            self.advisor is not None
            and entry.kind == "nfv"
            and self.advisor.observations
            and entry.stats is not None
        ):
            feats = query_features(ticket.query, entry.stats)
            for variant in self.advisor.recommend(feats, k=len(full)):
                if variant != plan and variant in full:
                    return variant
        for variant in full:
            if variant != plan:
                return variant
        return None

    def _advised_variants(
        self, ticket: Ticket, entry: DatasetEntry, full: tuple
    ) -> Optional[tuple]:
        """Advisor fallback when the plan cache has no near-miss."""
        if (
            self.advisor is None
            or entry.kind != "nfv"
            or not self.advisor.observations
            or entry.stats is None
        ):
            return None
        feats = query_features(ticket.query, entry.stats)
        advised = tuple(
            v for v in self.advisor.recommend(feats, k=2) if v in full
        )
        return advised or None

    # ------------------------------------------------------------------
    # engines
    # ------------------------------------------------------------------

    def _build_race(
        self,
        ticket: Ticket,
        entry: DatasetEntry,
        options: QueryOptions,
        variants: tuple,
        id_map: Optional[tuple] = None,
    ) -> tuple[RaceTask, dict]:
        """Engines + RaceTask for one admitted ticket.

        ``variants`` is the set chosen at submit time — the full
        portfolio, or a plan/advisor-seeded subset.  ``id_map``
        translates shard-local graph ids to global ids (None =
        identity) so the FTV sweep can bill verification steps to the
        right global graph.
        """
        budget = Budget(max_steps=ticket.budget_steps)
        if entry.kind == "nfv":
            psi = entry.psi
            assert psi is not None
            rewritten = {
                v: psi.rewritten(ticket.query, v.rewriting)
                for v in variants
            }
            max_embeddings = (
                1 if options.decision_only else options.max_embeddings
            )
            engines = {
                v: psi.matcher(v.algorithm).engine(
                    psi.prepared(v.algorithm),
                    rewritten[v].graph,
                    max_embeddings=max_embeddings,
                    count_only=options.count_only,
                )
                for v in variants
            }
        else:
            engines = self._ftv_engines(
                entry, ticket.query, options, variants,
                dataset=ticket.dataset, id_map=id_map,
            )
        race = RaceTask(
            engines,
            budget=budget,
            overhead=self.overhead,
            quantum=self.dispatcher.quantum,
        )
        return race, engines

    def _build_races(
        self,
        ticket: Ticket,
        entry,
        options: QueryOptions,
        variants: tuple,
    ) -> tuple[dict, dict, list]:
        """First-wave races + id maps + deferred waves for one ticket.

        The unsharded service is the degenerate fan-out: one race on
        pool 0 with an identity id map, whose outcome later passes
        through :func:`merge_shard_outcomes` untouched — so both
        layouts run the same pump loop.

        With routing on, a sharded FTV fan-out is first planned by the
        entry's :class:`~repro.service.routing.ShardRouter`: shards
        whose sketch proves them empty are pruned *before* any filter
        or engine work happens (no ticket token, no RaceTask, nothing
        charged), and a decision-only fan-out is staged into waves —
        the expected-first-true shard races alone, the remaining
        shards are built and dispatched only if it misses.  Routing
        off (or an NFV / unsharded entry) takes exactly the pre-routing
        path.
        """
        if not isinstance(entry, ShardedEntry):
            race, _ = self._build_race(ticket, entry, options, variants)
            return {0: race}, {0: None}, []
        involved = entry.involved_shards()
        waves: list[tuple[int, ...]] = []
        if (
            self.routing
            and entry.router is not None
            and len(involved) > 1
        ):
            plan = entry.router.plan(
                ticket.query, involved, options.decision_only
            )
            self.routed_queries += 1
            self.shards_pruned += len(plan.pruned)
            ticket.pruned = len(plan.pruned)
            first = plan.order
            if plan.staged:
                first = plan.order[:1]
                waves = [plan.order[1:]]
            self.tracer.event(
                ticket.id,
                "route_plan",
                self.clock,
                order=list(plan.order),
                pruned=list(plan.pruned),
                staged=plan.staged,
            )
        else:
            first = involved
        dark = self._dark_shards(
            dict.fromkeys(first), [tuple(w) for w in waves]
        )
        if dark:
            raise _ShardsDark(dark)
        races: dict[int, RaceTask] = {}
        id_maps: dict[int, Optional[tuple]] = {}
        for shard in sorted(first):
            races[shard], id_maps[shard] = self._build_shard_race(
                ticket, entry, options, variants, shard
            )
        return races, id_maps, waves

    def _build_shard_race(
        self,
        ticket: Ticket,
        entry: "ShardedEntry",
        options: QueryOptions,
        variants: tuple,
        shard: int,
    ) -> tuple[RaceTask, Optional[tuple]]:
        """One shard's race + local->global id map (fan-out and waves
        share this, so race construction can never diverge between a
        first wave and a deferred one)."""
        sub = entry.shard_entry(shard)
        id_map = (
            None if entry.kind == "nfv" else entry.shard_ids(shard)
        )
        race, _ = self._build_race(
            ticket, sub, options, variants, id_map
        )
        return race, id_map

    def _ftv_engines(
        self,
        entry: DatasetEntry,
        query: LabeledGraph,
        options: QueryOptions,
        variants: tuple,
        dataset: Optional[str] = None,
        id_map: Optional[tuple] = None,
    ) -> dict:
        """One composite engine per rewriting, sweeping all candidates.

        The paper's PsiFTV races per candidate pair; the service races
        whole decision sweeps (filter once, verify candidates in ID
        order) so a query is one schedulable race like any other.
        """
        index = entry.ftv_index
        assert index is not None
        candidates = index.filter(query)
        engines = {}
        for variant in variants:
            rq = make_rewriting(variant.rewriting).apply(
                query, entry.stats
            )
            engines[variant] = self._ftv_sweep(
                index, rq.graph, list(candidates),
                options.decision_only, dataset, id_map,
            )
        return engines

    def _ftv_sweep(
        self, index, query_graph, candidates, decision_only,
        dataset=None, id_map=None,
    ):
        """Generator engine: first-match VF2 over each candidate.

        With ``decision_only`` the sweep settles at its first matching
        graph — the existence answer — instead of verifying the rest.
        Every yielded step batch is additionally billed to its stored
        graph's global id in :attr:`graph_bills` (the rebalancer's
        per-graph load signal); the forwarding loop yields exactly what
        ``yield from`` would, so step semantics are untouched.
        """
        matched: list[int] = []
        bills = self.graph_bills
        for gid in candidates:
            key = (dataset, gid if id_map is None else id_map[gid])
            gen = self._verifier.engine(
                index.graph_index(gid),
                query_graph,
                max_embeddings=1,
                count_only=True,
            )
            consumed = 0
            try:
                while True:
                    try:
                        inc = next(gen)
                    except StopIteration as stop:
                        out = stop.value
                        break
                    consumed += 1 if inc is None else inc
                    yield inc
            finally:
                # one dict update per candidate, in a finally so a
                # budget kill mid-candidate still bills partial work
                gen.close()
                if consumed:
                    bills[key] = bills.get(key, 0) + consumed
            if out.found:
                matched.append(gid)
                if decision_only:
                    break
        final = MatchOutcome(
            found=bool(matched), num_embeddings=len(matched)
        )
        final.matching_ids = tuple(matched)
        return final

    # ------------------------------------------------------------------
    # the tick loop
    # ------------------------------------------------------------------

    def replica_state(self, shard: int, replica: int) -> ReplicaState:
        """Health of one replica (LIVE unless marked otherwise)."""
        return self.replica_states.get(
            (shard, replica), ReplicaState.LIVE
        )

    def _placeable(self, shard: int) -> list[tuple[int, int]]:
        """``(pool, replica)`` candidates that may take new work.

        Live replicas first; when every serving replica is suspect
        (wedged) the suspects are used anyway — work placed there
        stalls until the wedge expires rather than degrading, because
        a straggler is a delay, not a loss.  Empty = dark shard.
        """
        if not self.sharded:
            return [(0, 0)]
        pool = self.catalog.pool_index
        ids = self.catalog.replica_ids(shard)
        live = [
            (pool(shard, r), r)
            for r in ids
            if self.replica_state(shard, r) is ReplicaState.LIVE
        ]
        if live:
            return live
        return [
            (pool(shard, r), r)
            for r in ids
            if self.replica_state(shard, r) is ReplicaState.SUSPECT
        ]

    def _place(
        self, shard: int, width: Optional[int] = None
    ) -> Optional[tuple[int, int]]:
        """Pick the replica pool for one new shard leg, or None (dark).

        Least-loaded-live placement: among candidates, prefer pools
        with ``width`` free slots right now, then the lowest step bill
        (``Dispatcher.pool_work``), replica id as the deterministic
        tie-break.  With one replica per shard this degenerates to
        ``pool == shard`` — bit-for-bit the pre-replication placement.
        """
        candidates = self._placeable(shard)
        if not candidates:
            return None
        if width is not None:
            fitting = [
                c for c in candidates
                if width <= self.dispatcher.slots_free(c[0])
            ]
            if fitting:
                candidates = fitting
        return min(
            candidates,
            key=lambda c: (self.dispatcher.pool_work[c[0]], c[1]),
        )

    def _fits(self, races: dict) -> bool:
        """Whether every shard's race can co-schedule on some live
        replica pool right now."""
        return all(
            any(
                race.width <= self.dispatcher.slots_free(pool)
                for pool, _ in self._placeable(shard)
            )
            for shard, race in races.items()
        )

    def _dark_shards(self, races: dict, waves: list) -> list[int]:
        """Planned shards with no serving replica (degrade triggers)."""
        if not self.sharded:
            return []
        planned = set(races)
        for group in waves:
            planned.update(group)
        return sorted(
            s for s in planned if not self._placeable(s)
        )

    def _dispatch(
        self, ticket: Ticket, races: dict, id_maps: dict, waves: list
    ) -> bool:
        """Attach one ticket's (first-wave) fan-out to the pools.

        Every leg is placed on the least-loaded live replica of its
        shard at this instant; a shard gone dark between staging and
        dispatch degrades the ticket instead (False return).
        """
        tid = ticket.id
        placements: dict[int, tuple[int, int]] = {}
        for shard, race in sorted(races.items()):
            placed = self._place(shard, width=race.width)
            if placed is None:
                self._degrade(
                    tid, f"shard {shard} has no serving replica"
                )
                return False
            placements[shard] = placed
        for shard in sorted(races):
            pool, _ = placements[shard]
            self.dispatcher.admit((tid, shard), races[shard], pool=pool)
        self.tracer.end(tid, self._queue_spans.pop(tid, None), self.clock)
        self.tracer.event(
            tid, "dispatch", self.clock, fanout=len(races), waves=len(waves)
        )
        leg_spans = {}
        for shard in sorted(races):
            pool, replica = placements[shard]
            leg_spans[shard] = self.tracer.begin(
                tid, "leg", self.clock,
                shard=shard, replica=replica, pool=pool,
            )
        entry = self._open[tid][1]
        router = getattr(entry, "router", None)
        self._fanout[tid] = _FanoutState(
            pending=set(races),
            outcomes={},
            id_maps=id_maps,
            cancelled=[],
            replica_of={
                shard: replica
                for shard, (_, replica) in placements.items()
            },
            leg_spans=leg_spans,
            waves=list(waves),
            hedge_at=(
                self.clock + self.hedge_ticks * self.dispatcher.quantum
                if waves
                else None
            ),
            epoch=(
                router.epoch
                if waves and router is not None
                else None
            ),
        )
        ticket.start_time = self.clock
        ticket.fanout = len(races)
        return True

    def _admit(self) -> None:
        """Move queued tickets into the dispatcher while slots allow.

        A sharded ticket is gang-admitted: all its shard races attach
        in the same tick (each to its own pool), or the ticket waits at
        the head of the staging line — partial fan-outs would make a
        ticket's latency depend on unrelated pools' drain order.
        """
        while True:
            if self._staged:
                # staged tickets (admitted, waiting for width) go first
                tid = self._staged[0]
                ticket = self._open[tid][0]
                races, id_maps, waves = self._staged_races[tid]
                dark = self._dark_shards(races, waves)
                if dark:
                    # a shard this fan-out needs died while the ticket
                    # waited for width: refuse rather than block the
                    # staging line forever
                    self._staged.pop(0)
                    del self._staged_races[tid]
                    self._degrade(
                        tid,
                        f"shard(s) {dark} lost every replica",
                    )
                    continue
                if not self._fits(races):
                    return  # head-of-line: wait for the pools to drain
                self._staged.pop(0)
                del self._staged_races[tid]
            else:
                if all(
                    self.dispatcher.slots_free(p) <= 0
                    for p in range(self.dispatcher.pools)
                ):
                    return
                ticket = self.admission.next_ticket()
                if ticket is None:
                    return
                tid = ticket.id
                _, entry, options, _, variants = self._open[tid]
                try:
                    races, id_maps, waves = self._build_races(
                        ticket, entry, options, variants
                    )
                except _ShardsDark as dark:
                    self._degrade(
                        tid,
                        f"shard(s) {dark.shards} lost every replica",
                    )
                    continue
                if not self._fits(races):
                    self._staged.append(tid)
                    self._staged_races[tid] = (races, id_maps, waves)
                    return
            self._dispatch(ticket, races, id_maps, waves)

    def _priority_order(self) -> list:
        """Fair-share order over active race tokens ((tid, shard)).

        Only dispatcher-attached races are ranked — queued tickets are
        ordered by admission, not here.  A ticket's shard races share
        its rank; the shard index is only the final tie-break.
        """
        ledger = self.admission.ledger

        def rank(token) -> tuple:
            tid, shard = token
            ticket = self._open[tid][0]
            return (
                ledger.virtual_time(ticket.tenant),
                ledger.registration_index(ticket.tenant),
                tid,
                shard,
            )

        return sorted(self.dispatcher.tokens(), key=rank)

    def _advance_wave(
        self, tid: int, state: _FanoutState, hedged: bool = False
    ) -> None:
        """Build + dispatch the next routed wave of a staged fan-out.

        Wave races are built lazily — this is the whole point of the
        staging: a shard whose wave never starts pays neither filter
        nor engine work.  The new races join their pools mid-flight;
        a full pool simply delays them a tick (the dispatcher bounds
        work per tick, not admissions), which deterministically
        backpressures new gang admissions until the wave drains.

        Lazy building reads the *live* assignment, so a rebalance
        slipping in mid-flight (a caller violating the quiesce
        contract) would silently race the wrong partition under the
        plan-time id maps — the epoch check turns that into a loud
        error instead.
        """
        group = state.waves.pop(0)
        ticket, entry, options, _key, variants = self._open[tid]
        if (
            entry.router is not None
            and state.epoch is not None
            and entry.router.epoch != state.epoch
        ):
            raise RuntimeError(
                f"dataset {ticket.dataset!r} was reassigned while "
                f"ticket {tid} had waves in flight; rebalancing is "
                "only sound at quiesce points"
            )
        self.tracer.event(
            tid,
            "wave_hedge" if hedged else "wave_launch",
            self.clock,
            shards=sorted(group),
        )
        for shard in sorted(group):
            placed = self._place(shard)
            if placed is None:
                self._degrade(
                    tid, f"shard {shard} has no serving replica"
                )
                return
            pool, replica = placed
            race, id_map = self._build_shard_race(
                ticket, entry, options, variants, shard
            )
            self.dispatcher.admit((tid, shard), race, pool=pool)
            state.pending.add(shard)
            state.id_maps[shard] = id_map
            state.replica_of[shard] = replica
            state.leg_spans[shard] = self.tracer.begin(
                tid, "leg", self.clock,
                shard=shard, replica=replica, pool=pool,
            )
        ticket.fanout += len(group)
        state.hedge_at = (
            self.clock + self.hedge_ticks * self.dispatcher.quantum
            if state.waves
            else None
        )

    def _on_shard_done(
        self, tid: int, shard: int, outcome: RaceOutcome,
        options: QueryOptions,
    ) -> Optional[RaceOutcome]:
        """Record one shard's outcome; merge when the fan-out resolves.

        First-true short-circuit: in decision-only mode a shard that
        found a match settles the query, so the siblings' remaining
        budget is cancelled (their partial work stays charged — it was
        really done) and any not-yet-started routed waves are dropped
        outright (they were never built, so they cost nothing).  A
        routed wave that completes without a match hands over to the
        next wave instead of merging.  Returns the merged outcome once
        no shard is pending or deferred, else None.
        """
        state = self._fanout[tid]
        state.pending.discard(shard)
        state.outcomes[shard] = outcome
        self.tracer.end(
            tid,
            state.leg_spans.pop(shard, None),
            self.clock,
            found=outcome.found,
            steps=outcome.steps,
        )
        if options.decision_only and outcome.found:
            if state.pending:
                for sibling in sorted(state.pending):
                    self.dispatcher.cancel((tid, sibling))
                    state.cancelled.append(sibling)
                    self.shard_cancelled += 1
                    self.tracer.end(
                        tid,
                        state.leg_spans.pop(sibling, None),
                        self.clock,
                        cancelled=True,
                    )
                state.pending.clear()
            if state.waves:
                skipped = [s for group in state.waves for s in group]
                state.skipped.extend(skipped)
                state.waves.clear()
                self.waves_skipped += len(skipped)
                ticket = self._open[tid][0]
                ticket.skipped = len(state.skipped)
                self.tracer.event(
                    tid, "waves_skipped", self.clock, shards=skipped
                )
        if state.pending:
            return None
        if state.waves:
            self._advance_wave(tid, state)
            return None
        del self._fanout[tid]
        self._account_waste(state)
        self.tracer.event(
            tid,
            "merge",
            self.clock,
            shards=sorted(state.outcomes),
            cancelled=sorted(state.cancelled),
            skipped=sorted(state.skipped),
        )
        return merge_shard_outcomes(state.outcomes, state.id_maps)

    def _account_waste(self, state: _FanoutState) -> None:
        """Bill non-contributing shard races to ``fanout_waste``.

        A shard race "contributed" iff it found a match; in a fan-out
        that raced at least two shards, every step billed to matchless
        (or cancelled) shard races is work the merged outcome never
        used — the quantity routing exists to shrink.  Single-race
        fan-outs (unsharded, NFV, or routed down to one shard) have no
        siblings to waste.
        """
        raced = len(state.outcomes) + len(state.cancelled)
        if raced < 2:
            return
        for s, work in state.work.items():
            race = state.outcomes.get(s)
            if race is None or not race.found:
                self.fanout_waste += work

    # ------------------------------------------------------------------
    # replica health, fault injection, reroute, degradation
    # ------------------------------------------------------------------

    def install_faults(self, injector: Optional[FaultInjector]) -> None:
        """Arm (or disarm, with None) a fault-injection schedule."""
        self.faults = injector
        if injector is not None:
            injector.register_metrics(self.metrics)

    def _apply_due_faults(self) -> None:
        """Fire every scheduled fault whose threshold has been crossed."""
        if self.faults is None:
            return
        for event in self.faults.due(self.clock, self.completed_count):
            self._apply_fault(event)

    def _apply_fault(self, event: FaultEvent) -> None:
        if event.kind == "kill":
            replica = event.replica
            if replica < 0:
                replica = self._busiest_replica(event.shard)
            if replica is None:
                self.faults_noop += 1
                return
            self.kill_replica(event.shard, replica)
        elif event.kind == "wedge":
            self.wedge_replica(event.shard, event.replica, event.ticks)
        elif event.kind == "fail_task":
            self._fail_one_task(event.shard)
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ValueError(f"unknown fault kind {event.kind!r}")

    def _busiest_replica(self, shard: int) -> Optional[int]:
        """The serving replica with the most in-flight legs (then the
        highest step bill, then the highest id) — the deterministic
        resolution of a ``replica=-1`` kill, chosen so a seeded drill
        reliably hits a replica with work to lose."""
        if not self.sharded:
            return None
        ids = [
            r
            for r in self.catalog.replica_ids(shard)
            if self.replica_state(shard, r)
            in (ReplicaState.LIVE, ReplicaState.SUSPECT)
        ]
        if not ids:
            return None
        legs = {r: 0 for r in ids}
        for state in self._fanout.values():
            replica = state.replica_of.get(shard)
            if shard in state.pending and replica in legs:
                legs[replica] += 1
        pool = self.catalog.pool_index
        return max(
            ids,
            key=lambda r: (
                legs[r], self.dispatcher.pool_work[pool(shard, r)], r
            ),
        )

    def kill_replica(self, shard: int, replica: int) -> None:
        """Kill one replica permanently (fault drills call this).

        The replica's warm state is released, every in-flight leg it
        carried is rerouted to a surviving replica of the shard (same
        ticket, fresh race, full budget — determinism makes the re-run
        answer-identical), and new work never lands on it again.
        Killing a dead/retired replica is a no-op.
        """
        if not self.sharded:
            raise ValueError("replica faults need a sharded catalog")
        key = (shard, replica)
        if self.replica_states.get(key) in (
            ReplicaState.DEAD, ReplicaState.RETIRED,
        ):
            self.faults_noop += 1
            return
        self.replica_states[key] = ReplicaState.DEAD
        self._suspect_until.pop(key, None)
        self.replicas_killed += 1
        self.catalog.release_replica(shard, replica)
        for tid in sorted(self._fanout):
            state = self._fanout.get(tid)
            if state is None:
                continue  # degraded by an earlier reroute this loop
            if (
                shard in state.pending
                and state.replica_of.get(shard) == replica
            ):
                self.tracer.event(
                    tid, "fault_kill", self.clock,
                    shard=shard, replica=replica,
                )
                self._reroute_leg(tid, shard, lost=True)

    def wedge_replica(
        self, shard: int, replica: int, ticks: int
    ) -> None:
        """Freeze one replica's pool for ``ticks`` scheduler ticks.

        The straggler drill: the replica is SUSPECT while wedged (new
        placements avoid it when a live sibling exists), its races
        stall in place, and it returns to LIVE when the wedge expires.
        Wedging a dead/retired/unknown replica is a no-op.
        """
        if not self.sharded:
            raise ValueError("replica faults need a sharded catalog")
        key = (shard, replica)
        if (
            replica not in self.catalog.replica_ids(shard)
            or self.replica_states.get(key)
            in (ReplicaState.DEAD, ReplicaState.RETIRED)
        ):
            self.faults_noop += 1
            return
        self.replica_states[key] = ReplicaState.SUSPECT
        self._suspect_until[key] = (
            self.clock + max(1, ticks) * self.dispatcher.quantum
        )
        self.replicas_wedged += 1

    def _unwedge_expired(self) -> None:
        """Return SUSPECT replicas whose wedge ran out to LIVE."""
        for key, until in sorted(self._suspect_until.items()):
            if self.clock >= until:
                del self._suspect_until[key]
                if (
                    self.replica_states.get(key)
                    is ReplicaState.SUSPECT
                ):
                    del self.replica_states[key]

    def _frozen_pools(self) -> frozenset:
        """Pools that run nothing this tick (wedged replicas)."""
        if not self._suspect_until:
            return frozenset()
        pool = self.catalog.pool_index
        return frozenset(
            pool(s, r)
            for (s, r) in self._suspect_until
            if self.replica_states.get((s, r)) is ReplicaState.SUSPECT
        )

    def _fail_one_task(self, shard: int = -1) -> None:
        """Abort one in-flight leg (the worker-crash drill).

        The victim is the lowest active ``(tid, shard)`` token (of the
        given shard, or any) whose fan-out is still open; it restarts
        from scratch on the least-loaded live replica — possibly the
        same one, a crash is not a death sentence for the pool.
        """
        tokens = sorted(
            t
            for t in self.dispatcher.tokens()
            if isinstance(t, tuple)
            and t[0] in self._fanout
            and t[1] in self._fanout[t[0]].pending
            and (shard < 0 or t[1] == shard)
        )
        if not tokens:
            self.faults_noop += 1
            return
        tid, s = tokens[0]
        self.tasks_failed += 1
        self.tracer.event(tid, "fault_task", self.clock, shard=s)
        self._reroute_leg(tid, s, lost=False)

    def _reroute_leg(self, tid: int, shard: int, lost: bool) -> None:
        """Re-admit one fan-out leg after its replica died or its task
        failed.

        The recovery protocol: cancel the old race, rebuild a fresh
        one from the shard's surviving warm state, and admit it on the
        least-loaded serving replica under the same ticket token.  The
        rebuilt race runs the same deterministic engines with the
        ticket's full step budget, so a leg that completes after N
        retries answers bit-for-bit what it would have healthy — only
        its bill and latency carry the scar.  Retries are bounded per
        ticket; exhaustion (or a shard with no replica left) degrades
        the ticket instead of looping.
        """
        ticket, entry, options, _key, variants = self._open[tid]
        state = self._fanout[tid]
        self.dispatcher.cancel((tid, shard))
        ticket.retries += 1
        self.retries += 1
        self.tracer.end(
            tid,
            state.leg_spans.pop(shard, None),
            self.clock,
            outcome="lost" if lost else "failed",
        )
        self.tracer.event(
            tid, "retry", self.clock,
            shard=shard, lost=lost, attempt=ticket.retries,
        )
        if ticket.retries > self.max_retries:
            self._degrade(
                tid,
                f"retry budget exhausted ({self.max_retries}) "
                f"rerouting shard {shard}",
            )
            return
        old_replica = state.replica_of.get(shard)
        if isinstance(entry, ShardedEntry):
            placed = self._place(shard)
            if placed is None:
                self._degrade(
                    tid, f"shard {shard} has no serving replica"
                )
                return
            pool, replica = placed
            race, id_map = self._build_shard_race(
                ticket, entry, options, variants, shard
            )
        else:
            pool, replica = 0, 0
            race, _ = self._build_race(
                ticket, entry, options, variants
            )
            id_map = None
        self.dispatcher.admit((tid, shard), race, pool=pool)
        state.id_maps[shard] = id_map
        state.replica_of[shard] = replica
        state.leg_spans[shard] = self.tracer.begin(
            tid, "leg", self.clock,
            shard=shard, replica=replica, pool=pool,
            retry=ticket.retries,
        )
        if lost or replica != old_replica:
            self.rerouted += 1

    def _degrade(self, tid: int, reason: str) -> None:
        """Refuse a ticket the topology can no longer answer fully.

        Partial answers are never returned: a fan-out missing a
        shard's contribution would silently drop matches, so the whole
        ticket (and its coalesced followers) resolves REJECTED with a
        ``degraded`` mark and a ``retry_after`` hint — the
        protocol-style backpressure answer — while the service keeps
        serving everything that doesn't need the dark shard.
        """
        ticket, _entry, _options, key, _variants = self._open.pop(tid)
        state = self._fanout.pop(tid, None)
        if state is not None:
            for shard in sorted(state.pending):
                self.dispatcher.cancel((tid, shard))
                self.tracer.end(
                    tid,
                    state.leg_spans.pop(shard, None),
                    self.clock,
                    cancelled=True,
                )
            state.pending.clear()
            state.waves.clear()
        if tid in self._staged:
            self._staged.remove(tid)
            self._staged_races.pop(tid, None)
        if key is not None and self._inflight_keys.get(key) == tid:
            del self._inflight_keys[key]
        self.tracer.end(tid, self._queue_spans.pop(tid, None), self.clock)
        retry_after = self.clock + self.degraded_retry_after
        self._reject_degraded(ticket, reason, retry_after)
        self.tracer.event(tid, "degraded", self.clock, reason=reason)
        self.tracer.finish(
            tid,
            self.clock,
            state="rejected",
            degraded=True,
            reason=reason,
            retry_after=retry_after,
        )
        self.admission.on_complete(ticket)
        for follower in self._followers.pop(tid, []):
            self._reject_degraded(follower, reason, retry_after)
            self.admission.release_coalesced(follower)
            self.tracer.finish(
                follower.id,
                self.clock,
                state="rejected",
                degraded=True,
                coalesced=True,
                leader=tid,
                reason=reason,
                retry_after=retry_after,
            )

    def _reject_degraded(
        self, ticket: Ticket, reason: str, retry_after: int
    ) -> None:
        ticket.state = TicketState.REJECTED
        ticket.degraded = True
        ticket.reject_reason = f"degraded: {reason}"
        ticket.retry_after = retry_after
        ticket.finish_time = self.clock
        self.degraded += 1
        self._degraded_now.append(ticket)

    def _drain_degraded(self) -> list[Ticket]:
        drained = self._degraded_now
        self._degraded_now = []
        return drained

    # ------------------------------------------------------------------
    # replica scaling (quiesce-point operations)
    # ------------------------------------------------------------------

    def live_replicas(self, shard: int) -> list[int]:
        """Serving replica ids of ``shard`` currently LIVE."""
        if not self.sharded:
            return [0]
        return [
            r
            for r in self.catalog.replica_ids(shard)
            if self.replica_state(shard, r) is ReplicaState.LIVE
        ]

    def add_replica(self, shard: int) -> int:
        """Scale one shard out by a warm replica (catalog + pool grow
        in lockstep).  Returns the new replica id.

        With a store attached the newcomer boots from disk (an O(read)
        restore instead of an in-process rebuild) and the boot gets its
        own trace under a synthetic negative ticket id: a ``store_boot``
        span whose child events replay exactly what the store reader
        saw (verifications, corruption quarantines, rebuild fallbacks).
        """
        if not self.sharded:
            raise ValueError("replicas need a sharded catalog")
        store = self.catalog.store
        tid = span = None
        events_before = restores_before = rebuilds_before = 0
        if store is not None:
            tid = self._synthetic_trace_id
            self._synthetic_trace_id -= 1
            self.tracer.start(
                tid, self.clock, kind="add_replica", shard=shard
            )
            span = self.tracer.begin(tid, "store_boot", self.clock)
            events_before = len(store.events)
            restores_before = store.restores
            rebuilds_before = store.rebuilds
        replica = self.catalog.add_replica(shard)
        pool = self.dispatcher.add_pool()
        expected = self.catalog.pool_index(shard, replica)
        if pool != expected:  # pragma: no cover - lockstep invariant
            raise RuntimeError(
                f"pool {pool} != catalog pool {expected}; grow "
                "replicas through Service.add_replica only"
            )
        if store is not None:
            for ev in store.events[events_before:]:
                attrs = {k: v for k, v in ev.items() if k != "event"}
                self.tracer.event(
                    tid,
                    f"store.{ev.get('event', 'event')}",
                    self.clock,
                    parent=span,
                    **attrs,
                )
            self.tracer.end(
                tid,
                span,
                self.clock,
                restores=store.restores - restores_before,
                rebuilds=store.rebuilds - rebuilds_before,
            )
            self.tracer.finish(tid, self.clock, replica=replica)
        return replica

    def retire_replica(
        self, shard: int, replica: Optional[int] = None
    ) -> Optional[int]:
        """Scale one shard in by retiring a LIVE replica at quiesce.

        Unlike a kill this is voluntary and safe: it requires an idle
        service (no legs to lose) and never removes the last live
        replica.  Returns the retired replica id, or None when the
        shard cannot shrink.
        """
        if not self.sharded:
            raise ValueError("replicas need a sharded catalog")
        if not self.idle:
            raise RuntimeError(
                "retire_replica is a quiesce-point operation; the "
                "service is not idle"
            )
        live = self.live_replicas(shard)
        if len(live) < 2:
            return None
        if replica is None:
            replica = max(live)
        elif replica not in live:
            return None
        key = (shard, replica)
        self.replica_states[key] = ReplicaState.RETIRED
        self._suspect_until.pop(key, None)
        self.catalog.release_replica(shard, replica)
        self.replicas_retired += 1
        return replica

    # ------------------------------------------------------------------
    # dynamic collections: journaled mutations at quiesce points
    # ------------------------------------------------------------------

    def _collection_epoch(self) -> int:
        """The catalog's monotone mutation-state version (0 = pristine)."""
        return getattr(self.catalog, "mutation_epoch", 0)

    def _checkpoint_seq(self) -> int:
        """Journal seq the attached store checkpoint covers (-1 = none)."""
        reader = getattr(self.catalog, "store", None)
        if reader is None or reader.manifest is None:
            return -1
        try:
            return int(reader.manifest.layout.get("journal_seq", -1))
        except (TypeError, ValueError):
            return -1

    def journal_lag(self) -> int:
        """Durable journal records not yet applied to the catalog.

        Zero on a healthy running service (append and apply happen in
        the same quiesce step); positive exactly between a cold boot
        and :meth:`replay_journal`, which is the operator signal the
        watch surfaces carry.
        """
        if self.journal is None:
            return 0
        return max(0, self.journal.tail_seq() - self._applied_seq)

    def attach_journal(self, journal):
        """Attach (or swap) the write-ahead journal post-construction.

        Same semantics as the ``journal=`` constructor argument: the
        sequence counters are re-derived from the journal tail and the
        store checkpoint, so attaching a journal that already holds
        records leaves them visible to :meth:`replay_journal`.
        """
        from ..store.journal import MutationJournal

        self.journal = (
            journal
            if isinstance(journal, MutationJournal)
            else MutationJournal(journal)
        )
        self._applied_seq = self._checkpoint_seq()
        self._next_seq = max(
            self.journal.tail_seq() + 1, self._applied_seq + 1
        )
        return self.journal

    def submit_mutation(
        self,
        dataset: str,
        op: str,
        graph: Optional[LabeledGraph] = None,
        graph_id: Optional[int] = None,
        shard: Optional[int] = None,
    ) -> MutationTicket:
        """Queue one ``add_graph``/``remove_graph``; returns immediately.

        The mutation stays ``pending`` until the service reaches a
        quiesce point (no query queued, staged, or racing) — mutations
        never interleave with a fan-out that holds id maps into the
        old collection state.  A full backlog rejects with a
        ``retry_after`` hint instead of growing without bound.
        """
        if op not in ("add_graph", "remove_graph"):
            raise ValueError(
                f"unknown mutation op {op!r}; "
                "known: add_graph, remove_graph"
            )
        if op == "add_graph" and graph is None:
            raise ValueError("add_graph requires a graph")
        if op == "remove_graph" and graph_id is None:
            raise ValueError("remove_graph requires a graph_id")
        mutation = MutationTicket(
            id=self._next_mutation_id,
            op=op,
            dataset=dataset,
            graph=graph,
            graph_id=graph_id,
            shard=shard,
            submit_time=self.clock,
        )
        self._next_mutation_id += 1
        if len(self._mutations) >= self.max_pending_mutations:
            self._reject_mutation(
                mutation,
                f"mutation backlog full "
                f"({self.max_pending_mutations} pending)",
                retry=True,
            )
            return mutation
        self._mutations.append(mutation)
        return mutation

    def add_graph(
        self,
        dataset: str,
        graph: LabeledGraph,
        shard: Optional[int] = None,
    ) -> MutationTicket:
        """Convenience: queue an ``add_graph`` mutation."""
        return self.submit_mutation(
            dataset, "add_graph", graph=graph, shard=shard
        )

    def remove_graph(self, dataset: str, graph_id: int) -> MutationTicket:
        """Convenience: queue a ``remove_graph`` mutation."""
        return self.submit_mutation(
            dataset, "remove_graph", graph_id=graph_id
        )

    def _reject_mutation(
        self, mutation: MutationTicket, reason: str, retry: bool
    ) -> None:
        mutation.state = "rejected"
        mutation.reason = reason
        if retry:
            # same backpressure contract as degraded query tickets:
            # the condition is environmental (backlog, dark shard) and
            # a later re-submission may succeed
            mutation.retry_after = self.clock + self.degraded_retry_after
        self.mutations_rejected += 1

    def _apply_mutations(self) -> None:
        """Apply every pending mutation (caller guarantees quiesce)."""
        while self._mutations:
            self._apply_mutation(self._mutations.popleft())

    def _plan_mutation(
        self, mutation: MutationTicket
    ) -> tuple[int, int]:
        """Resolve ``(graph_id, shard)`` for one mutation, pre-journal.

        The placement decision is made *before* the journal append so
        the record pins it — replay reproduces the exact layout
        whatever the load state at replay time.  Newcomers on a
        sharded catalog land on the coldest serving shard (the
        rebalancer's rule, same loads, same tie-break) unless the
        submitter pinned one; revives keep their slot's shard.
        Raises KeyError for retryable conditions (dark shard),
        ValueError for permanent ones (bad op arguments).
        """
        try:
            entry = self.catalog.get(mutation.dataset)
        except KeyError as exc:
            raise ValueError(str(exc)) from exc
        if entry.kind != "ftv":
            raise ValueError(
                f"dataset {mutation.dataset!r} is not a mutable FTV "
                "collection"
            )
        if mutation.op == "remove_graph":
            gid = mutation.graph_id
            assert gid is not None
            if not 0 <= gid < len(entry.graphs):
                raise ValueError(
                    f"graph id {gid} out of range for "
                    f"{len(entry.graphs)} slots"
                )
            if gid in entry.tombstones:
                raise ValueError(f"graph id {gid} already removed")
            if not self.sharded:
                return gid, -1
            shard = entry.shard_of(gid)
            if not self.catalog.replica_ids(shard):
                raise KeyError(
                    f"shard {shard} has no serving replica"
                )
            return gid, shard
        gid = (
            mutation.graph_id
            if mutation.graph_id is not None
            else len(entry.graphs)
        )
        if gid < len(entry.graphs) and gid not in entry.tombstones:
            raise ValueError(
                f"graph id {gid} is live; remove it before re-adding"
            )
        if not self.sharded:
            return gid, -1
        if gid < len(entry.graphs):
            shard = entry.shard_of(gid)  # revive keeps its slot
        elif mutation.shard is not None:
            shard = mutation.shard
        else:
            loads = shard_loads(
                self.catalog, self.dispatcher.pool_work
            )
            shard = coldest_shard(self.catalog, loads)
        if not self.catalog.replica_ids(shard):
            raise KeyError(f"shard {shard} has no serving replica")
        return gid, shard

    def _apply_mutation(
        self, mutation: MutationTicket, replay: bool = False
    ) -> None:
        """Journal-then-apply one mutation; ack or reject it.

        Write-ahead discipline: the record is appended and fsynced
        *before* the catalog is touched, so the acknowledged state is
        always a prefix of the durable state.  A crash between append
        and apply leaves an unacknowledged-but-journaled record —
        replay applies it, which is exactly why replay must be
        idempotent.
        """
        try:
            gid, shard = self._plan_mutation(mutation)
        except KeyError as exc:
            self._reject_mutation(mutation, str(exc), retry=True)
            return
        except ValueError as exc:
            self._reject_mutation(mutation, str(exc), retry=False)
            return
        if self.journal is not None and not replay:
            from ..graphs.io import graph_to_json
            from ..store.journal import JournalRecord

            record = JournalRecord(
                seq=self._next_seq,
                epoch=self.journal.checkpoints,
                op=mutation.op,
                dataset=mutation.dataset,
                graph_id=gid,
                shard=shard,
                graph_json=(
                    graph_to_json(mutation.graph)
                    if mutation.op == "add_graph"
                    else None
                ),
            )
            fail_after, self.journal_fail_after = (
                self.journal_fail_after, None,
            )
            # a JournalCrash here propagates: the simulated process
            # died pre-ack, so neither catalog nor client saw anything
            self.journal.append(record, fail_after=fail_after)
            mutation.seq = record.seq
            self._next_seq += 1
        try:
            if mutation.op == "add_graph":
                assert mutation.graph is not None
                if self.sharded:
                    self.catalog.add_graph(
                        mutation.dataset, mutation.graph,
                        shard=shard, graph_id=gid,
                    )
                else:
                    self.catalog.add_graph(
                        mutation.dataset, mutation.graph, gid
                    )
            else:
                self.catalog.remove_graph(mutation.dataset, gid)
        except KeyError as exc:
            self._reject_mutation(mutation, str(exc), retry=True)
            return
        if mutation.seq is not None:
            self._applied_seq = max(self._applied_seq, mutation.seq)
        mutation.graph_id = gid
        mutation.shard = shard if self.sharded else None
        mutation.state = "applied"
        mutation.apply_time = self.clock
        if replay:
            self.mutations_replayed += 1
        else:
            self.mutations_applied += 1

    def replay_journal(self):
        """Recover the journal and re-apply its surviving suffix.

        The cold-boot step: after the catalog restored the last store
        checkpoint, every journaled record newer than the checkpoint's
        ``journal_seq`` high-water is re-applied in order.  Recovery
        first truncates any torn tail (quarantining the evidence);
        replay skips records at or below the applied high-water, so
        calling this twice — or crashing mid-replay and replaying
        again — is identical to calling it once.  Returns the
        :class:`~repro.store.journal.RecoveryReport`.
        """
        if self.journal is None:
            raise ValueError("service has no journal to replay")
        from ..graphs.io import graph_from_json

        report = self.journal.recover()
        for record in report.records:
            if record.seq <= self._applied_seq:
                continue
            mutation = MutationTicket(
                id=self._next_mutation_id,
                op=record.op,
                dataset=record.dataset,
                graph=(
                    graph_from_json(record.graph_json)
                    if record.graph_json is not None
                    else None
                ),
                graph_id=record.graph_id,
                shard=(
                    record.shard if record.shard >= 0 else None
                ),
                submit_time=self.clock,
            )
            self._next_mutation_id += 1
            self._apply_mutation(mutation, replay=True)
            self._applied_seq = max(self._applied_seq, record.seq)
            self._next_seq = max(self._next_seq, record.seq + 1)
        return report

    def checkpoint_store(self, root) -> dict:
        """Persist the catalog and fold the journal into the manifest.

        A quiesce-point operation: the manifest records the applied
        journal high-water (``journal_seq``) *before* the journal is
        truncated, so a crash between the two leaves a stale journal
        whose every record the next boot provably skips.
        """
        if not self.idle:
            raise RuntimeError(
                "checkpoint_store is a quiesce-point operation; the "
                "service is not idle"
            )
        from ..store import StoreWriter

        writer = (
            root if isinstance(root, StoreWriter) else StoreWriter(root)
        )
        return writer.write_catalog(
            self.catalog,
            journal=self.journal,
            journal_seq=self._applied_seq,
        )

    def _mutation_report(self) -> dict:
        report = {
            "applied": self.mutations_applied,
            "replayed": self.mutations_replayed,
            "rejected": self.mutations_rejected,
            "pending": len(self._mutations),
            "epoch": self._collection_epoch(),
            "journal_lag": self.journal_lag(),
        }
        if self.journal is not None:
            report["journal"] = self.journal.as_metrics()
        return report

    def pump(self) -> list[Ticket]:
        """One scheduling tick; returns tickets completed this tick
        (coalesced followers resolve alongside their leader, and
        tickets degraded by a fault count as completed-with-refusal so
        closed loops see their slots free up)."""
        self._unwedge_expired()
        # mutations apply only at quiesce points: no ticket queued,
        # staged, or racing may observe the collection mid-change
        # (``_open`` covers leaders; coalesced followers only exist
        # while their leader is open)
        if self._mutations and not self._open:
            self._apply_mutations()
        # hedge overdue routed waves before admitting new work: a
        # first wave that has raced ``hedge_ticks`` without settling
        # forfeits its head start and the remaining shards join in
        for tid in sorted(self._fanout):
            state = self._fanout.get(tid)
            if state is None:
                continue  # degraded earlier in this very loop
            if (
                state.waves
                and state.hedge_at is not None
                and self.clock >= state.hedge_at
            ):
                self._advance_wave(tid, state, hedged=True)
        self._admit()
        # scheduled faults fire after admission, before the tick: this
        # tick's legs are already placed, so a due kill genuinely hits
        # mid-flight work (and its reroutes run in this same tick)
        self._apply_due_faults()
        if self.dispatcher.active == 0:
            return self._drain_degraded()
        events = self.dispatcher.tick(
            self._priority_order(), frozen=self._frozen_pools()
        )
        # pass 1: bill every shard's work this tick while all tickets
        # are still open — a shard whose sibling settles the query this
        # same tick still really did its final round
        for token, work, _outcome in events:
            tid, shard = token
            ticket = self._open[tid][0]
            self.admission.charge(ticket.tenant, work)
            state = self._fanout.get(tid)
            if state is not None:
                state.work[shard] = state.work.get(shard, 0) + work
        completed: list[Ticket] = []
        for token, _work, outcome in events:
            if outcome is None:
                continue
            tid, shard = token
            if tid not in self._open:
                # a sibling shard's first-true decision already settled
                # this ticket earlier in the tick; drop the late outcome
                continue
            ticket, entry, options, key, variants = self._open[tid]
            merged = self._on_shard_done(tid, shard, outcome, options)
            if merged is None:
                continue
            self._finalize(ticket, merged, key, entry, options)
            del self._open[tid]
            completed.append(ticket)
            completed.extend(self._resolve_followers(tid, ticket.result))
        completed.extend(self._drain_degraded())
        return completed

    def _finalize(
        self,
        ticket: Ticket,
        race: RaceOutcome,
        key: Optional[tuple],
        entry: DatasetEntry,
        options: QueryOptions,
    ) -> None:
        outcome = race.outcome
        matching = (
            tuple(getattr(outcome, "matching_ids", ()))
            if outcome is not None
            else ()
        )
        per_variant = tuple(race.per_variant_steps.items())
        result = ServiceResult(
            found=race.found,
            killed=race.killed,
            steps=race.steps,
            winner=race.winner,
            num_embeddings=(
                outcome.num_embeddings if outcome is not None else 0
            ),
            per_variant_steps=per_variant,
            matching_ids=matching,
        )
        ticket.state = TicketState.DONE
        ticket.finish_time = self.clock
        ticket.result = result
        self.admission.on_complete(ticket)
        self.completed_count += 1
        self._observe_latency(ticket.latency or 0)
        if key is not None and self._inflight_keys.get(key) == ticket.id:
            del self._inflight_keys[key]
        if not race.killed:
            cached = CachedResult(
                found=result.found,
                num_embeddings=result.num_embeddings,
                steps=result.steps,
                winner=result.winner,
                per_variant_steps=per_variant,
                matching_ids=matching,
            )
            self.cache.store(key, cached)
            # the plan is remembered under the *full* portfolio key,
            # whether this race was seeded or not: the latest winner
            # seeds the next near-miss
            self.cache.store_plan(
                self._plan_key(ticket, entry, options, key), race.winner
            )
            self._observe_race(ticket, entry, race)
            self.tracer.event(ticket.id, "cache_store", self.clock)
        self.tracer.finish(
            ticket.id,
            self.clock,
            state="done",
            winner=result.winner_label,
            found=result.found,
            killed=result.killed,
            steps=result.steps,
        )

    def _observe_race(
        self, ticket: Ticket, entry: DatasetEntry, race: RaceOutcome
    ) -> None:
        """Feed a completed full-width NFV race to the advisor."""
        if (
            self.advisor is None
            or entry.kind != "nfv"
            or entry.stats is None
            or ticket.plan_seeded
            or not set(race.per_variant_steps) <= set(self.advisor.variants)
        ):
            return
        self.advisor.observe(
            query_features(ticket.query, entry.stats),
            race.per_variant_steps,
        )

    def _resolve_followers(
        self, leader_id: int, result: ServiceResult
    ) -> list[Ticket]:
        """Resolve coalesced followers with their leader's result.

        Followers report the leader's race verbatim (the result cache's
        historical-bill convention) at the leader's finish tick; their
        latency still runs from their own submit time.
        """
        followers = self._followers.pop(leader_id, [])
        resolved = replace(result, coalesced=True)
        for ticket in followers:
            ticket.state = TicketState.DONE
            ticket.finish_time = self.clock
            ticket.result = resolved
            self.admission.release_coalesced(ticket)
            self.completed_count += 1
            self._observe_latency(ticket.latency or 0)
            self.tracer.event(
                ticket.id, "coalesced_result", self.clock, leader=leader_id
            )
            self.tracer.finish(
                ticket.id,
                self.clock,
                state="done",
                coalesced=True,
                leader=leader_id,
            )
        return followers

    @property
    def idle(self) -> bool:
        """True when no queued, staged, or running work remains (and
        no degraded ticket is still waiting to be handed back, and no
        mutation is still waiting for its quiesce point)."""
        return (
            self.dispatcher.active == 0
            and self.admission.queued() == 0
            and not self._staged
            and not self._degraded_now
            and not self._mutations
        )

    def run_until_idle(self, max_ticks: int = 10_000_000) -> list[Ticket]:
        """Pump until no queued or running work remains."""
        done: list[Ticket] = []
        for _ in range(max_ticks):
            if self.idle:
                return done
            done.extend(self.pump())
        raise RuntimeError("service did not drain within max_ticks")

    # ------------------------------------------------------------------
    # stats (a read of the metrics registry)
    # ------------------------------------------------------------------

    #: the stats() dict, key for key: every entry is the registry
    #: metric ``service.<key>`` (pinned against the pre-registry dict
    #: by ``tests/test_obs.py``)
    _STATS_KEYS = (
        "clock_steps",
        "ticks",
        "work_steps",
        "completed",
        "active",
        "shards",
        "shard_cancelled",
        "per_shard_work",
        "per_pool_work",
        "replicas",
        "faults",
        "fanout_waste",
        "routing",
        "latency_steps",
        "admission",
        "result_cache",
        "prepare_cache",
        "memory",
    )

    def _register_stats_metrics(self) -> None:
        """Wire the composite stats views into the registry.

        Counters register themselves at construction; everything else
        in :attr:`_STATS_KEYS` is a gauge over state the components
        already maintain, so ``stats()`` can be a pure registry read
        without any value ever being computed twice.
        """
        g = self.metrics.gauge
        g("service.clock_steps", lambda: self.clock)
        self.metrics.register("service.ticks", self.dispatcher._m_ticks)
        self.metrics.register(
            "service.work_steps", self.dispatcher._m_work_steps
        )
        g("service.active", lambda: self.dispatcher.active)
        g(
            "service.shards",
            lambda: self.catalog.num_shards if self.sharded else 1,
        )
        g("service.per_shard_work", self._per_shard_work)
        g("service.per_pool_work", lambda: list(self.dispatcher.pool_work))
        g("service.replicas", self._replica_report)
        g("service.faults", self._fault_report)
        g("service.routing", self._routing_report)
        g("service.latency_steps", self._latency_report)
        g("service.admission", lambda: self.admission.stats())
        g("service.result_cache", lambda: self.cache.as_metrics())
        g("service.prepare_cache", _prepare_cache_metrics)
        g("service.memory", lambda: self.catalog.memory_report())
        # registry-only views (not part of the stats() contract)
        g("service.graph_bills", lambda: len(self.graph_bills))
        g("routing.tables", self._routing_tables)
        g("trace.buffer", self.tracer.as_metrics)
        g("mutations.pending", lambda: len(self._mutations))
        g("journal.lag", self.journal_lag)
        g("service.mutations", self._mutation_report)

    def _per_shard_work(self) -> list:
        if not self.sharded:
            return list(self.dispatcher.pool_work)
        # per-shard semantics survive replication: a shard's work is
        # the sum over every pool that ever served it, dead replicas'
        # history included
        return [
            sum(
                self.dispatcher.pool_work[p]
                for p in self.catalog.shard_pools(s)
                if p < self.dispatcher.pools
            )
            for s in range(self.catalog.num_shards)
        ]

    def _replica_report(self) -> dict:
        if not self.sharded:
            return {
                "counts": [1],
                "live": [1],
                "states": {},
                "killed": 0,
                "wedged": 0,
                "retired": 0,
            }
        num_shards = self.catalog.num_shards
        return {
            "counts": [
                len(self.catalog.replica_ids(s))
                for s in range(num_shards)
            ],
            "live": [
                len(self.live_replicas(s)) for s in range(num_shards)
            ],
            "states": {
                f"{s}/{r}": state.value
                for (s, r), state in sorted(self.replica_states.items())
            },
            "killed": self.replicas_killed,
            "wedged": self.replicas_wedged,
            "retired": self.replicas_retired,
        }

    def _fault_report(self) -> dict:
        return {
            "injected": (
                len(self.faults.applied) if self.faults is not None else 0
            ),
            "retries": self.retries,
            "rerouted": self.rerouted,
            "degraded": self.degraded,
            "tasks_failed": self.tasks_failed,
            "noop": self.faults_noop,
        }

    def _routing_report(self) -> dict:
        return {
            "enabled": self.routing,
            "routed": self.routed_queries,
            "shards_pruned": self.shards_pruned,
            "waves_skipped": self.waves_skipped,
            "shard_cancelled": self.shard_cancelled,
        }

    def _latency_report(self) -> Optional[dict]:
        from ..metrics import summarize_latencies

        if not self._latencies:
            return None
        return summarize_latencies(list(self._latencies)).as_dict()

    def _routing_tables(self) -> dict:
        """Per-dataset router sketch metrics (sharded + routed only)."""
        if not self.sharded:
            return {}
        out = {}
        for name in self.catalog.datasets():
            router = getattr(self.catalog.get(name), "router", None)
            if router is not None:
                out[name] = router.as_metrics()
        return out

    def _observe_latency(self, steps: int) -> None:
        self._latencies.append(steps)
        self._latency_hist.observe(steps)

    def stats(self) -> dict:
        """One JSON-ready snapshot of every serving metric.

        Assembled entirely from the metrics registry — each key is the
        metric registered as ``service.<key>``; use
        ``self.metrics.snapshot()`` for the full flat namespace
        (components, histogram, trace-buffer occupancy) beyond this
        stable contract.
        """
        value = self.metrics.value
        return {key: value(f"service.{key}") for key in self._STATS_KEYS}

    def store_metrics(self) -> dict:
        """Counters of the attached artifact store reader ({} when the
        service runs without persistence)."""
        store = self.catalog.store
        return store.as_metrics() if store is not None else {}

    # ------------------------------------------------------------------
    # traces
    # ------------------------------------------------------------------

    def trace(self, ticket_id: int):
        """The recorded span tree for one ticket (None if never traced
        or already evicted from the ring buffer)."""
        return self.tracer.get(ticket_id)

    def export_traces(self, dest) -> int:
        """Dump every buffered trace as JSONL (path or file object);
        returns the number of traces written."""
        return self.tracer.export_jsonl(dest)
