"""Online shard rebalancing: migrate graphs off hot shards at quiesce.

:func:`repro.service.sharding.assign_shards` balances shards by *size*
at load time, but served load follows the workload, not the bytes: a
few popular stored graphs can leave one dispatcher pool billing several
times the steps of its siblings.  The per-pool step bills
(:attr:`repro.service.dispatcher.Dispatcher.pool_work`) expose exactly
that signal, and :class:`Rebalancer` acts on it — at **quiesce points**
only (the service fully idle, so no fan-out holds references into the
old layout), it moves whole stored graphs from the hottest shard to the
coldest through :meth:`repro.service.sharding.ShardedCatalog.reassign`,
which re-registers just the changed shards (fresh matcher + filter
indexes), re-folds their routing sketches, and bumps the routing-table
epoch.

Answer invariance: a migration changes *where* graphs live, never
*which* graphs exist — filtering is a per-graph predicate and the merge
maps shard-local ids back to global ids, so ``found`` /
``num_embeddings`` / ``matching_ids`` of every budget-completed query
are bit-for-bit identical before and after any sequence of migrations
(pinned by ``tests/test_routing.py`` and the CI rebalance smoke).
Bills and latencies are historical and legitimately shift — that is
the point.

Everything is deterministic: the trigger reads virtual step counters,
the victim choice is a pure function of (loads, assignment, graph
sizes), and ties break on ascending shard/graph id.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..scheduling import skew_ratio
from .sharding import ShardedCatalog

__all__ = ["Migration", "Rebalancer"]


@dataclass(frozen=True)
class Migration:
    """One whole stored graph moved between shards."""

    dataset: str
    graph_id: int
    src: int
    dst: int
    #: virtual clock at the quiesce point that applied the move
    clock: int


class Rebalancer:
    """Watches per-shard step bills; migrates graphs when they skew.

    Parameters
    ----------
    service:
        A sharded :class:`~repro.service.Service`.
    skew_threshold:
        Hottest/coldest bill ratio (since the last rebalance) above
        which a migration is attempted.  1.0 rebalances on any
        imbalance; the 1.25 default ignores noise-level skew.
    min_window_steps:
        Minimum total steps billed since the last rebalance before the
        skew signal is trusted at all — a handful of queries is not a
        load profile.
    max_moves:
        Whole-graph moves per quiesce point, across all datasets.
        Small on purpose: each move re-registers two shards, and a
        persistent skew will trigger again at the next quiesce.
    """

    def __init__(
        self,
        service,
        skew_threshold: float = 1.25,
        min_window_steps: int = 2_048,
        max_moves: int = 2,
    ) -> None:
        if not isinstance(service.catalog, ShardedCatalog):
            raise ValueError("rebalancing needs a sharded catalog")
        if skew_threshold < 1.0:
            raise ValueError("skew_threshold must be >= 1.0")
        if max_moves < 1:
            raise ValueError("max_moves must be >= 1")
        self.service = service
        self.skew_threshold = skew_threshold
        self.min_window_steps = min_window_steps
        self.max_moves = max_moves
        #: pool_work snapshot at the last rebalance (window baseline)
        self._baseline = list(service.dispatcher.pool_work)
        #: graph_bills snapshot at the last rebalance (per-graph window)
        self._graph_baseline = dict(service.graph_bills)
        #: every migration applied, in order
        self.migrations: list[Migration] = []
        #: quiesce checks that actually moved at least one graph
        self.rebalances = 0
        #: quiesce checks that found no actionable skew
        self.skipped = 0

    # ------------------------------------------------------------------
    # signal
    # ------------------------------------------------------------------

    def window_loads(self) -> list[int]:
        """Per-shard steps billed since the last rebalance."""
        return [
            work - base
            for work, base in zip(
                self.service.dispatcher.pool_work, self._baseline
            )
        ]

    def skew(self) -> float:
        """Current hottest/coldest ratio over the window."""
        return skew_ratio(self.window_loads())

    # ------------------------------------------------------------------
    # action
    # ------------------------------------------------------------------

    def maybe_rebalance(self) -> list[Migration]:
        """Migrate if (and only if) quiesced, warmed up, and skewed.

        Returns the migrations applied this call (empty when nothing
        moved).  Never raises on a busy service — rebalancing is an
        opportunistic background concern, so a non-idle service simply
        means "not now".
        """
        service = self.service
        if not service.idle:
            return []
        loads = self.window_loads()
        if sum(loads) < self.min_window_steps:
            self.skipped += 1
            return []
        if skew_ratio(loads) < self.skew_threshold:
            self.skipped += 1
            return []
        hot = max(range(len(loads)), key=lambda s: (loads[s], -s))
        cold = min(range(len(loads)), key=lambda s: (loads[s], s))
        applied = self._migrate(hot, cold, loads)
        if applied:
            self.rebalances += 1
            self._baseline = list(service.dispatcher.pool_work)
            self._graph_baseline = dict(service.graph_bills)
        else:
            self.skipped += 1
        return applied

    def graph_window(self, dataset: str, graph_id: int) -> int:
        """One stored graph's verification steps since the last rebalance."""
        key = (dataset, graph_id)
        return self.service.graph_bills.get(
            key, 0
        ) - self._graph_baseline.get(key, 0)

    def _migrate(
        self, hot: int, cold: int, loads: list[int]
    ) -> list[Migration]:
        """Move graphs hot -> cold while each move shrinks the gap.

        Victim choice runs on the service's **per-graph step bills**
        (:attr:`repro.service.service.Service.graph_bills`, filled by
        the FTV sweeps), not a size proxy: when one graph of a
        size-balanced shard is hot, its observed window load is what
        must move.  A graph migrates only while its window load is
        strictly below the remaining hot-cold gap (the move strictly
        narrows it — no oscillation), hottest graph first, id as
        tie-break; an unbilled graph never moves (no signal, no churn).
        """
        catalog: ShardedCatalog = self.service.catalog
        gap = loads[hot] - loads[cold]
        applied: list[Migration] = []
        for name in catalog.datasets():
            if len(applied) >= self.max_moves:
                break
            entry = catalog.get(name)
            if entry.kind != "ftv":
                continue
            hot_ids = list(entry.assignment[hot])
            if len(hot_ids) < 2:
                continue  # never empty a shard below one graph
            window = {g: self.graph_window(name, g) for g in hot_ids}
            moved: list[int] = []
            for gid in sorted(hot_ids, key=lambda g: (-window[g], g)):
                if len(applied) + len(moved) >= self.max_moves:
                    break
                if len(hot_ids) - len(moved) < 2:
                    break
                share = window[gid]
                if share <= 0:
                    break  # remaining graphs carry no observed load
                if share >= gap:
                    continue  # would overshoot: gap would not shrink
                moved.append(gid)
                gap -= 2 * share
            if not moved:
                continue
            assignment = [list(ids) for ids in entry.assignment]
            for gid in moved:
                assignment[hot].remove(gid)
                assignment[cold].append(gid)
            catalog.reassign(name, assignment)
            clock = self.service.clock
            applied.extend(
                Migration(name, gid, hot, cold, clock) for gid in moved
            )
        self.migrations.extend(applied)
        return applied

    def summary(self) -> dict:
        """JSON-ready counters for bench payloads and stats."""
        return {
            "rebalances": self.rebalances,
            "skipped_checks": self.skipped,
            "migrations": [
                {
                    "dataset": m.dataset,
                    "graph_id": m.graph_id,
                    "src": m.src,
                    "dst": m.dst,
                    "clock": m.clock,
                }
                for m in self.migrations
            ],
            "window_loads": self.window_loads(),
        }
