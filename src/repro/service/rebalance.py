"""Online shard rebalancing: migrate graphs off hot shards at quiesce.

:func:`repro.service.sharding.assign_shards` balances shards by *size*
at load time, but served load follows the workload, not the bytes: a
few popular stored graphs can leave one dispatcher pool billing several
times the steps of its siblings.  The per-pool step bills
(:attr:`repro.service.dispatcher.Dispatcher.pool_work`) expose exactly
that signal, and :class:`Rebalancer` acts on it — at **quiesce points**
only (the service fully idle, so no fan-out holds references into the
old layout), it moves whole stored graphs from the hottest shard to the
coldest through :meth:`repro.service.sharding.ShardedCatalog.reassign`,
which re-registers just the changed shards (fresh matcher + filter
indexes), re-folds their routing sketches, and bumps the routing-table
epoch.

Answer invariance: a migration changes *where* graphs live, never
*which* graphs exist — filtering is a per-graph predicate and the merge
maps shard-local ids back to global ids, so ``found`` /
``num_embeddings`` / ``matching_ids`` of every budget-completed query
are bit-for-bit identical before and after any sequence of migrations
(pinned by ``tests/test_routing.py`` and the CI rebalance smoke).
Bills and latencies are historical and legitimately shift — that is
the point.

Everything is deterministic: the trigger reads virtual step counters,
the victim choice is a pure function of (loads, assignment, graph
sizes), and ties break on ascending shard/graph id.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import Counter, counter_property
from ..scheduling import skew_ratio
from .sharding import ShardedCatalog

__all__ = ["Migration", "Rebalancer", "coldest_shard", "shard_loads"]


def shard_loads(catalog: ShardedCatalog, pool_work) -> list[int]:
    """Per-shard step bills summed over every pool that served each
    shard (dead replicas' history included — bills are historical)."""
    return [
        sum(
            pool_work[p]
            for p in catalog.shard_pools(s)
            if p < len(pool_work)
        )
        for s in range(catalog.num_shards)
    ]


def coldest_shard(catalog: ShardedCatalog, loads) -> int:
    """The least-loaded *serving* shard (ascending id tie-break).

    The one placement rule in the codebase: the rebalancer drains hot
    shards toward it, and the service places newly added graphs on it,
    so both paths agree on what "cold" means — a pure function of
    (per-shard loads, serving set).
    """
    serving = [
        s for s in range(catalog.num_shards) if catalog.replica_ids(s)
    ]
    if not serving:
        raise KeyError("no shard has a serving replica")
    return min(serving, key=lambda s: (loads[s], s))


@dataclass(frozen=True)
class Migration:
    """One whole stored graph moved between shards."""

    dataset: str
    graph_id: int
    src: int
    dst: int
    #: virtual clock at the quiesce point that applied the move
    clock: int


class Rebalancer:
    """Watches per-shard step bills; migrates graphs when they skew.

    Parameters
    ----------
    service:
        A :class:`~repro.service.Service` — ideally sharded; an
        unsharded (or single-shard) one makes every check a counted
        no-op.
    skew_threshold:
        Hottest/coldest bill ratio (since the last rebalance) above
        which a migration is attempted.  1.0 rebalances on any
        imbalance; the 1.25 default ignores noise-level skew.
    min_window_steps:
        Minimum total steps billed since the last rebalance before the
        skew signal is trusted at all — a handful of queries is not a
        load profile.
    max_moves:
        Whole-graph moves per quiesce point, across all datasets.
        Small on purpose: each move re-registers two shards, and a
        persistent skew will trigger again at the next quiesce.
    replica_scaling:
        Also grow/shrink shard **replica counts** from the same window
        loads (off by default): a shard billing more than
        ``grow_threshold`` x the mean gains a warm replica (up to
        ``max_replicas``), and a shard below ``shrink_threshold`` x
        the mean retires one (never its last), both through the
        service's quiesce-point scaling operations.

    Degenerate topologies never raise: an unsharded service, a single
    shard, an all-dark layout, or a collection too small to migrate
    simply no-ops with the ``degenerate`` counter ticking — the
    rebalancer is an opportunistic background concern, and "nothing to
    do" is an answer, not an error.
    """

    def __init__(
        self,
        service,
        skew_threshold: float = 1.25,
        min_window_steps: int = 2_048,
        max_moves: int = 2,
        replica_scaling: bool = False,
        max_replicas: int = 4,
        grow_threshold: float = 1.75,
        shrink_threshold: float = 0.25,
    ) -> None:
        if skew_threshold < 1.0:
            raise ValueError("skew_threshold must be >= 1.0")
        if max_moves < 1:
            raise ValueError("max_moves must be >= 1")
        if max_replicas < 1:
            raise ValueError("max_replicas must be >= 1")
        if grow_threshold <= shrink_threshold:
            raise ValueError(
                "grow_threshold must exceed shrink_threshold"
            )
        self.service = service
        self.skew_threshold = skew_threshold
        self.min_window_steps = min_window_steps
        self.max_moves = max_moves
        self.replica_scaling = replica_scaling
        self.max_replicas = max_replicas
        self.grow_threshold = grow_threshold
        self.shrink_threshold = shrink_threshold
        #: pool_work snapshot at the last rebalance (window baseline)
        self._baseline = list(service.dispatcher.pool_work)
        #: graph_bills snapshot at the last rebalance (per-graph window)
        self._graph_baseline = dict(service.graph_bills)
        #: every migration applied, in order
        self.migrations: list[Migration] = []
        #: quiesce checks that actually moved at least one graph
        self._m_rebalances = Counter()
        #: quiesce checks that found no actionable skew
        self._m_skipped = Counter()
        #: quiesce checks no-opped by a degenerate topology
        self._m_degenerate = Counter()
        #: replica scale-out/-in events applied
        self._m_replicas_grown = Counter()
        self._m_replicas_shrunk = Counter()
        self.replica_changes: list[dict] = []
        registry = getattr(service, "metrics", None)
        if registry is not None:
            # a service may see several Rebalancer configs over its
            # life (benches re-wrap the same service), so re-register
            self._register_metrics(registry)

    #: legacy int surface over the registry-visible counters
    rebalances = counter_property("_m_rebalances")
    skipped = counter_property("_m_skipped")
    degenerate = counter_property("_m_degenerate")
    replicas_grown = counter_property("_m_replicas_grown")
    replicas_shrunk = counter_property("_m_replicas_shrunk")

    def _register_metrics(self, registry, prefix: str = "rebalance") -> None:
        registry.register(
            f"{prefix}.rebalances", self._m_rebalances, replace=True
        )
        registry.register(
            f"{prefix}.skipped_checks", self._m_skipped, replace=True
        )
        registry.register(
            f"{prefix}.degenerate_checks", self._m_degenerate, replace=True
        )
        registry.register(
            f"{prefix}.replicas_grown", self._m_replicas_grown, replace=True
        )
        registry.register(
            f"{prefix}.replicas_shrunk", self._m_replicas_shrunk, replace=True
        )
        registry.gauge(
            f"{prefix}.migrations", lambda: len(self.migrations), replace=True
        )
        registry.gauge(
            f"{prefix}.window_loads", self.window_loads, replace=True
        )

    # ------------------------------------------------------------------
    # signal
    # ------------------------------------------------------------------

    def _pool_window(self) -> list[int]:
        """Per-pool steps billed since the last rebalance.

        Pools added after the baseline snapshot (replica scale-out)
        default to a zero baseline — their whole bill is window load.
        """
        base = self._baseline
        return [
            work - (base[i] if i < len(base) else 0)
            for i, work in enumerate(
                self.service.dispatcher.pool_work
            )
        ]

    def window_loads(self) -> list[int]:
        """Per-shard steps billed since the last rebalance.

        With replicas a shard's load sums over every pool that ever
        served it (dead replicas' history included), so the migration
        signal keeps per-shard semantics whatever the replica layout.
        """
        pool_window = self._pool_window()
        catalog = self.service.catalog
        if not isinstance(catalog, ShardedCatalog):
            return pool_window
        return [
            sum(
                pool_window[p]
                for p in catalog.shard_pools(s)
                if p < len(pool_window)
            )
            for s in range(catalog.num_shards)
        ]

    def skew(self) -> float:
        """Current hottest/coldest ratio over the window."""
        return skew_ratio(self.window_loads())

    # ------------------------------------------------------------------
    # action
    # ------------------------------------------------------------------

    def maybe_rebalance(self) -> list[Migration]:
        """Migrate if (and only if) quiesced, warmed up, and skewed.

        Returns the migrations applied this call (empty when nothing
        moved).  Never raises on a busy service — rebalancing is an
        opportunistic background concern, so a non-idle service simply
        means "not now".
        """
        service = self.service
        if not service.idle:
            return []
        catalog = service.catalog
        if (
            not isinstance(catalog, ShardedCatalog)
            or catalog.num_shards < 2
        ):
            # degenerate topology: nothing to migrate between — no-op,
            # never an exception (satellite of the failure model: a
            # rebalancer must survive any layout it is pointed at)
            self.degenerate += 1
            return []
        loads = self.window_loads()
        if sum(loads) < self.min_window_steps:
            self.skipped += 1
            return []
        applied: list[Migration] = []
        # only shards with a serving replica can give or take graphs
        serving = [
            s
            for s in range(catalog.num_shards)
            if catalog.replica_ids(s)
        ]
        if len(serving) < 2:
            self.degenerate += 1
        elif skew_ratio([loads[s] for s in serving]) >= (
            self.skew_threshold
        ):
            hot = max(serving, key=lambda s: (loads[s], -s))
            cold = coldest_shard(catalog, loads)
            applied = self._migrate(hot, cold, loads)
        scaled = self._scale_replicas(loads, serving)
        if applied or scaled:
            if applied:
                self.rebalances += 1
            self._baseline = list(service.dispatcher.pool_work)
            self._graph_baseline = dict(service.graph_bills)
        else:
            self.skipped += 1
        return applied

    def _scale_replicas(
        self, loads: list[int], serving: list[int]
    ) -> list[dict]:
        """Grow the hottest overloaded shard / shrink the coldest
        over-provisioned one (at most one of each per quiesce check).

        Thresholds are relative to the mean serving-shard window load,
        so the decision is a pure function of the same step bills the
        migration path reads; changes go through the service's
        quiesce-point scaling operations, which keep catalog replicas
        and dispatcher pools in lockstep.  When the service carries an
        artifact store (``Service(store=...)``), the grow path boots
        the new replica from disk — checksum-verified restore instead
        of an in-process index rebuild — so elastic scale-out costs
        O(read), not O(warm).
        """
        if not self.replica_scaling or not serving:
            return []
        service = self.service
        mean = sum(loads[s] for s in serving) / len(serving)
        if mean <= 0:
            return []
        changes: list[dict] = []
        hot = max(serving, key=lambda s: (loads[s], -s))
        if (
            loads[hot] > self.grow_threshold * mean
            and len(service.live_replicas(hot)) < self.max_replicas
        ):
            replica = service.add_replica(hot)
            self.replicas_grown += 1
            changes.append(
                {"action": "grow", "shard": hot, "replica": replica,
                 "clock": service.clock}
            )
        cold = min(serving, key=lambda s: (loads[s], s))
        if (
            cold != hot
            and loads[cold] < self.shrink_threshold * mean
            and len(service.live_replicas(cold)) > 1
        ):
            replica = service.retire_replica(cold)
            if replica is not None:
                self.replicas_shrunk += 1
                changes.append(
                    {"action": "shrink", "shard": cold,
                     "replica": replica, "clock": service.clock}
                )
        self.replica_changes.extend(changes)
        return changes

    def graph_window(self, dataset: str, graph_id: int) -> int:
        """One stored graph's verification steps since the last rebalance."""
        key = (dataset, graph_id)
        return self.service.graph_bills.get(
            key, 0
        ) - self._graph_baseline.get(key, 0)

    def _migrate(
        self, hot: int, cold: int, loads: list[int]
    ) -> list[Migration]:
        """Move graphs hot -> cold while each move shrinks the gap.

        Victim choice runs on the service's **per-graph step bills**
        (:attr:`repro.service.service.Service.graph_bills`, filled by
        the FTV sweeps), not a size proxy: when one graph of a
        size-balanced shard is hot, its observed window load is what
        must move.  A graph migrates only while its window load is
        strictly below the remaining hot-cold gap (the move strictly
        narrows it — no oscillation), hottest graph first, id as
        tie-break; an unbilled graph never moves (no signal, no churn).
        """
        catalog: ShardedCatalog = self.service.catalog
        gap = loads[hot] - loads[cold]
        applied: list[Migration] = []
        for name in catalog.datasets():
            if len(applied) >= self.max_moves:
                break
            entry = catalog.get(name)
            if entry.kind != "ftv":
                continue
            hot_ids = list(entry.assignment[hot])
            if len(hot_ids) < 2:
                continue  # never empty a shard below one graph
            window = {g: self.graph_window(name, g) for g in hot_ids}
            moved: list[int] = []
            for gid in sorted(hot_ids, key=lambda g: (-window[g], g)):
                if len(applied) + len(moved) >= self.max_moves:
                    break
                if len(hot_ids) - len(moved) < 2:
                    break
                share = window[gid]
                if share <= 0:
                    break  # remaining graphs carry no observed load
                if share >= gap:
                    continue  # would overshoot: gap would not shrink
                moved.append(gid)
                gap -= 2 * share
            if not moved:
                continue
            assignment = [list(ids) for ids in entry.assignment]
            for gid in moved:
                assignment[hot].remove(gid)
                assignment[cold].append(gid)
            catalog.reassign(name, assignment)
            clock = self.service.clock
            applied.extend(
                Migration(name, gid, hot, cold, clock) for gid in moved
            )
        self.migrations.extend(applied)
        return applied

    def summary(self) -> dict:
        """JSON-ready counters for bench payloads and stats."""
        return {
            "rebalances": self.rebalances,
            "skipped_checks": self.skipped,
            "degenerate_checks": self.degenerate,
            "replicas_grown": self.replicas_grown,
            "replicas_shrunk": self.replicas_shrunk,
            "replica_changes": list(self.replica_changes),
            "migrations": [
                {
                    "dataset": m.dataset,
                    "graph_id": m.graph_id,
                    "src": m.src,
                    "dst": m.dst,
                    "clock": m.clock,
                }
                for m in self.migrations
            ],
            "window_loads": self.window_loads(),
        }
