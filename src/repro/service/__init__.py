"""`repro.service` — a concurrent graph-query serving layer.

The paper's Ψ-framework answers one query at a time; the ROADMAP's
north star serves heavy traffic.  This package is the bridge: a
dataset catalog that keeps graphs and their indexes warm, admission
control with per-tenant fair share, a deterministic dispatcher that
interleaves many Ψ races over bounded simulated worker pools, a
canonical-form result/plan cache in front of it all, and a sharded
catalog (``Service(shards=N)``) that partitions collections and fans
queries out with answers bit-for-bit identical to unsharded serving
(see :mod:`repro.service.sharding`).  Shards can carry warm replicas
(``Service(shards=N, replicas=R)``) with a deterministic fault
injector (:mod:`repro.service.faults`) proving that replica death,
pool wedges, and mid-flight task failures never change a
budget-completed answer.

Quickstart::

    from repro.service import Service, QueryOptions

    svc = Service(workers=4)
    svc.load_dataset("yeast", scale="tiny")
    ticket = svc.submit("yeast", query_graph, tenant="alice")
    svc.run_until_idle()
    print(ticket.result.winner_label, ticket.result.steps)

Everything runs on the virtual step clock: two identical submission
histories produce identical winners, step bills, and latencies.
"""

from .admission import (
    AdmissionController,
    TenantPolicy,
    Ticket,
    TicketState,
)
from .cache import CachedResult, ResultCache
from .canon import canonical_query_key
from .catalog import DatasetCatalog, DatasetEntry
from .dispatcher import Dispatcher, RaceTask
from .faults import (
    FaultEvent,
    FaultInjector,
    ReplicaState,
    chaos_plan,
)
from .loadgen import LoadReport, replay, run_closed_loop
from .rebalance import Migration, Rebalancer
from .routing import RoutePlan, ShardRouter
from .service import (
    QueryOptions,
    Service,
    ServiceResult,
    answers_digest,
    decisions_digest,
    results_digest,
)
from .sharding import (
    ShardedCatalog,
    ShardedEntry,
    assign_shards,
    merge_shard_outcomes,
)

__all__ = [
    "AdmissionController",
    "CachedResult",
    "DatasetCatalog",
    "DatasetEntry",
    "Dispatcher",
    "FaultEvent",
    "FaultInjector",
    "LoadReport",
    "Migration",
    "QueryOptions",
    "RaceTask",
    "Rebalancer",
    "ReplicaState",
    "ResultCache",
    "RoutePlan",
    "Service",
    "ShardRouter",
    "ServiceResult",
    "ShardedCatalog",
    "ShardedEntry",
    "TenantPolicy",
    "Ticket",
    "TicketState",
    "answers_digest",
    "assign_shards",
    "canonical_query_key",
    "chaos_plan",
    "decisions_digest",
    "merge_shard_outcomes",
    "replay",
    "results_digest",
    "run_closed_loop",
]
