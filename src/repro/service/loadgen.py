"""Workload replay and closed-loop load generation for the service.

Two drivers:

* :func:`run_closed_loop` — each tenant keeps ``concurrency`` queries
  in flight, submitting its next query the tick its previous one
  completes: the classic closed-loop generator whose throughput is
  capacity, not arrival-rate, limited.  Both ``repro serve`` and
  ``repro bench-serve`` replay their workloads through this driver.
* :func:`replay` — submit a prebuilt multi-tenant arrival stream up
  front and drain the service; the open-loop flood that exercises
  queueing and load shedding (library/test use).

Both return a :class:`LoadReport` whose :meth:`LoadReport.as_json` is
the ``BENCH_service.json`` payload: throughput (queries per million
simulated steps and per wall second) plus p50/p95/p99 simulated-step
latency and cache/admission counters.

Determinism contract: everything except ``wall_seconds`` is a pure
function of (service configuration, streams) — the report carries two
digests to prove it.  ``digest`` (:func:`results_digest`) covers full
results including bills and latencies and must be identical across
runs *of the same configuration*; ``answers`` (:func:`answers_digest`)
covers only decision answers and must additionally be identical across
shard layouts of the same workload.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..graphs import LabeledGraph
from ..metrics import summarize_latencies
from ..workload import MixedQuery
from .admission import Ticket, TicketState
from .faults import ReplicaState
from .service import (
    QueryOptions,
    Service,
    answers_digest,
    decisions_digest,
    results_digest,
)

__all__ = [
    "LoadReport",
    "MutationOp",
    "collection_digest",
    "oracle_digest",
    "plan_update_stream",
    "replay",
    "run_closed_loop",
    "run_update_stream",
]


@dataclass
class LoadReport:
    """Everything one load run measured."""

    tickets: list[Ticket]
    virtual_steps: int
    wall_seconds: float
    digest: str
    service_stats: dict
    config: dict = field(default_factory=dict)
    #: digest over decision answers only (sharding-invariant — equal
    #: for sharded and unsharded runs of the same workload)
    answers: str = ""
    #: digest over existence answers only (additionally invariant
    #: under shard routing for decision_only workloads, where the
    #: witness sets behind ``answers`` legitimately differ)
    decisions: str = ""
    #: rebalancer summary when a Rebalancer rode along (else empty)
    rebalance: dict = field(default_factory=dict)
    #: chaos summary when a FaultInjector rode along (else empty)
    chaos: dict = field(default_factory=dict)
    #: artifact-store summary when the service served from a
    #: persisted store and/or the regrow drill ran (else empty):
    #: reader counters plus one row per replica regrown mid-load
    store: dict = field(default_factory=dict)
    #: dynamic-collection summary when an update stream rode along
    #: (else empty): mutation counters, journal state, and the
    #: per-quiesce-point oracle verdicts
    mutations: dict = field(default_factory=dict)

    @property
    def completed(self) -> list[Ticket]:
        """Tickets that produced results (rejections excluded)."""
        return [
            t for t in self.tickets if t.state is TicketState.DONE
        ]

    def as_json(self) -> dict:
        """The BENCH_service.json payload.

        Measured sections come straight from the service's metrics
        registry snapshot (``service_stats``) — including
        ``latency_steps``, which this method used to re-derive by hand
        from the ticket list.  The registry observes exactly one
        latency per DONE ticket (cache hits at 0), so the two
        derivations are value-identical; the snapshot is authoritative
        because it is what ``GET /stats`` and ``/watch`` serve.
        """
        done = self.completed
        per_tenant: dict[str, dict] = {}
        for t in self.tickets:
            row = per_tenant.setdefault(
                t.tenant,
                {"submitted": 0, "completed": 0, "cache_hits": 0,
                 "rejected": 0},
            )
            row["submitted"] += 1
            if t.state is TicketState.DONE:
                row["completed"] += 1
                row["cache_hits"] += int(t.cache_hit)
            elif t.state is TicketState.REJECTED:
                row["rejected"] += 1
        msteps = self.virtual_steps / 1e6 if self.virtual_steps else 0.0
        killed = sum(1 for t in done if t.result.killed)
        return {
            "bench": "service",
            "config": self.config,
            "digest": self.digest,
            "answers_digest": self.answers,
            "decisions_digest": self.decisions,
            #: budget-killed queries; their answers are execution-
            #: dependent, so answers_digest is only layout-invariant
            #: when this is 0 in both runs being compared
            "killed": killed,
            "throughput": {
                "queries": len(done),
                "virtual_steps": self.virtual_steps,
                "queries_per_mstep": (
                    len(done) / msteps if msteps else float(len(done))
                ),
                "wall_seconds": self.wall_seconds,
                "queries_per_second": (
                    len(done) / self.wall_seconds
                    if self.wall_seconds > 0
                    else 0.0
                ),
            },
            "latency_steps": self.service_stats["latency_steps"],
            "tenants": per_tenant,
            "result_cache": self.service_stats["result_cache"],
            "prepare_cache": self.service_stats["prepare_cache"],
            "admission": self.service_stats["admission"],
            #: per-shard (pool) step bills — the skew signal
            "per_shard_work": self.service_stats["per_shard_work"],
            #: steps billed to shard races that contributed nothing to
            #: their merged outcome (what routing exists to shrink)
            "fanout_waste": self.service_stats["fanout_waste"],
            "routing": self.service_stats["routing"],
            "rebalance": self.rebalance,
            "chaos": self.chaos,
            "store": self.store,
            "mutations": self.mutations,
        }


def _chaos_summary(
    service: Service, tickets: list[Ticket], faults
) -> dict:
    """The ``chaos`` section of the bench payload.

    ``lost`` counts tickets that never reached a terminal state —
    the zero-lost-tickets invariant of the failure model — and the
    latency split separates queries the chaos touched (``retries > 0``)
    from those it did not, so the report shows what a fault costs the
    clients it hits without polluting the healthy percentiles.
    """
    done = [t for t in tickets if t.state is TicketState.DONE]
    healthy = [t.latency or 0 for t in done if t.retries == 0]
    touched = [t.latency or 0 for t in done if t.retries > 0]
    stats = service.stats().get("faults", {})
    return {
        "enabled": True,
        "injected": stats.get("injected", 0),
        "retries": stats.get("retries", 0),
        "rerouted": stats.get("rerouted", 0),
        "degraded": stats.get("degraded", 0),
        "tasks_failed": stats.get("tasks_failed", 0),
        "degraded_tickets": sum(1 for t in tickets if t.degraded),
        "lost": sum(1 for t in tickets if not t.done),
        "plan": faults.summary(),
        "latency_healthy": (
            summarize_latencies(healthy).as_dict() if healthy else None
        ),
        "latency_chaos": (
            summarize_latencies(touched).as_dict() if touched else None
        ),
    }


def _store_summary(service: Service, regrown) -> dict:
    """The ``store`` section of the bench payload (empty without a
    persisted store and without regrow activity)."""
    metrics = service.store_metrics()
    if not metrics and not regrown:
        return {}
    return {
        "enabled": bool(metrics),
        "metrics": metrics,
        "regrown": list(regrown or []),
    }


def _report(
    service: Service,
    tickets: list[Ticket],
    wall_seconds: float,
    config: dict,
    rebalancer=None,
    faults=None,
    regrown=None,
) -> LoadReport:
    done = [t for t in tickets if t.state is TicketState.DONE]
    return LoadReport(
        tickets=tickets,
        virtual_steps=service.clock,
        wall_seconds=wall_seconds,
        digest=results_digest(done),
        service_stats=service.stats(),
        config=config,
        answers=answers_digest(done),
        decisions=decisions_digest(done),
        rebalance=(
            rebalancer.summary() if rebalancer is not None else {}
        ),
        chaos=(
            _chaos_summary(service, tickets, faults)
            if faults is not None
            else {}
        ),
        store=_store_summary(service, regrown),
    )


def replay(
    service: Service,
    dataset: str,
    stream: list[MixedQuery],
    options: QueryOptions | None = None,
    config: dict | None = None,
    faults=None,
) -> LoadReport:
    """Open-loop flood: submit the whole stream up front, then drain.

    Saturates admission queues by design (repeats miss the cache when
    their original is still in flight) — use :func:`run_closed_loop`
    for capacity measurement.
    """
    options = options or QueryOptions()
    if faults is not None:
        service.install_faults(faults)
    start = time.perf_counter()
    tickets = [
        service.submit(
            dataset, mq.query.graph, tenant=mq.tenant, options=options
        )
        for mq in stream
    ]
    service.run_until_idle()
    wall = time.perf_counter() - start
    return _report(service, tickets, wall, config or {}, faults=faults)


# ----------------------------------------------------------------------
# dynamic collections: update streams + the rebuild-from-scratch oracle
# ----------------------------------------------------------------------

@dataclass
class MutationOp:
    """One planned collection mutation in an update stream."""

    op: str
    graph_id: Optional[int] = None
    graph: Optional[LabeledGraph] = None


def plan_update_stream(
    graphs: list[LabeledGraph],
    count: int,
    seed: int = 0,
    add_fraction: float = 0.6,
    novel_label_every: int = 4,
) -> list[MutationOp]:
    """Expand ``seed`` into a deterministic add/remove plan.

    The plan simulates the collection's live/tombstoned state so every
    remove targets a live id, roughly ``add_fraction`` of ops are adds,
    a fraction of adds *revive* a previously removed slot (the
    add→remove→re-add chain the replay drills care about), and every
    ``novel_label_every``-th add carries a label the collection has
    never seen (the interner-extension hazard).
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if not 0.0 <= add_fraction <= 1.0:
        raise ValueError("add_fraction must be within [0, 1]")
    rng = random.Random(seed)
    pool = sorted({l for g in graphs for l in g.labels}, key=repr)
    if not pool:
        raise ValueError("collection has no labels to draw from")
    if all(isinstance(lab, int) for lab in pool):
        base = max(pool) + 1

        def novel(k: int):
            return base + k
    else:
        def novel(k: int):
            return f"nv{k}"

    live = set(range(len(graphs)))
    tombs: set[int] = set()
    next_id = len(graphs)
    adds = 0
    ops: list[MutationOp] = []
    for i in range(count):
        if len(live) > 2 and rng.random() >= add_fraction:
            gid = sorted(live)[rng.randrange(len(live))]
            live.discard(gid)
            tombs.add(gid)
            ops.append(MutationOp("remove_graph", graph_id=gid))
            continue
        if tombs and rng.random() < 0.35:
            gid = sorted(tombs)[rng.randrange(len(tombs))]
            tombs.discard(gid)
        else:
            gid = next_id
            next_id += 1
        live.add(gid)
        n = rng.randint(5, 9)
        labels = [rng.choice(pool) for _ in range(n)]
        adds += 1
        if novel_label_every and adds % novel_label_every == 0:
            labels[rng.randrange(n)] = novel(adds)
        from ..graphs.generators import gnm_graph

        graph = gnm_graph(
            n, n + rng.randint(1, n), labels, rng, name=f"upd-{i}"
        )
        ops.append(MutationOp("add_graph", graph_id=gid, graph=graph))
    return ops


def _ftv_config(entry) -> tuple:
    """(scale, algorithms, ftv_method, max_path_length) of an entry."""
    config = getattr(entry, "_register_config", None)
    if config is None:
        config = getattr(entry, "load_config", None)
    if config is None or len(config) != 4:
        raise ValueError(
            f"entry {entry.name!r} has no FTV load configuration"
        )
    return config


def _state_digest(live_rows: list, answers: list) -> str:
    doc = {"live": live_rows, "answers": answers}
    raw = json.dumps(
        doc, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(raw).hexdigest()


def _live_rows(entry) -> list:
    return [
        [gid, entry.graphs[gid].order, entry.graphs[gid].size]
        for gid in entry.live_graph_ids()
    ]


def collection_digest(
    service: Service, dataset: str, probes: list[LabeledGraph]
) -> str:
    """Digest of the *served* collection state: live ids/shapes plus
    each probe's verified decision answer in global graph ids.

    Layout-invariant by construction — FTV filtering is a per-graph
    predicate and the digest covers verified answers (not candidate
    sets, which legitimately differ between a from-scratch interner
    and an incrementally extended one), so unsharded, sharded+routed,
    and replicated layouts of the same collection state all hash
    identically.
    """
    entry = service.catalog.get(dataset)
    if service.sharded:
        answers = []
        subs = [
            (shard, service.catalog.shard_entry(dataset, shard))
            for shard in entry.involved_shards()
        ]
        for probe in probes:
            ids: set[int] = set()
            for shard, sub in subs:
                result = sub.ftv_index.query(probe)
                ids.update(
                    entry.assignment[shard][local]
                    for local in result.matching_ids
                )
            answers.append(sorted(ids))
    else:
        index = entry.ftv_index
        answers = [
            sorted(index.query(probe).matching_ids)
            for probe in probes
        ]
    return _state_digest(_live_rows(entry), answers)


def oracle_digest(
    service: Service, dataset: str, probes: list[LabeledGraph]
) -> str:
    """Digest of the rebuild-from-scratch oracle for the same state.

    A fresh index is built over exactly the live graphs (ascending
    global id) and every probe is answered against it — no journal, no
    incremental maintenance, no sharding.  Equality with
    :func:`collection_digest` at a quiesce point is the correctness
    claim of the whole mutation path.
    """
    entry = service.catalog.get(dataset)
    _scale, _algorithms, ftv_method, max_path_length = _ftv_config(entry)
    live = entry.live_graph_ids()
    graphs = [entry.graphs[gid] for gid in live]
    from ..indexing import GGSXIndex, GrapesIndex

    cls = GrapesIndex if ftv_method == "Grapes" else GGSXIndex
    index = cls(graphs, max_path_length=max_path_length)
    answers = [
        sorted(live[local] for local in index.query(p).matching_ids)
        for p in probes
    ]
    return _state_digest(_live_rows(entry), answers)


def _oracle_check(
    service: Service, dataset: str, probes: list[LabeledGraph]
) -> dict:
    served = collection_digest(service, dataset, probes)
    oracle = oracle_digest(service, dataset, probes)
    return {
        "clock": service.clock,
        "digest": served,
        "oracle": oracle,
        "ok": served == oracle,
    }


def run_update_stream(
    service: Service,
    dataset: str,
    streams: dict[str, list[MixedQuery]],
    mutations: list[MutationOp],
    options: QueryOptions | None = None,
    concurrency: int = 1,
    mutate_every: int = 8,
    batch: int = 2,
    probes: Optional[list[LabeledGraph]] = None,
    probe_seed: int = 0,
    verify_oracle: bool = True,
    config: dict | None = None,
    rebalancer=None,
    faults=None,
) -> LoadReport:
    """Closed-loop queries with a mutation stream woven through.

    Every ``mutate_every`` completions the generator withholds new
    submissions, lets in-flight work drain to the quiesce point, and
    submits the next ``batch`` mutations; the following pump applies
    them (journal-ack first), after which the served collection is
    digest-compared against the rebuild-from-scratch oracle (when
    ``verify_oracle``), the rebalancer gets its chance, and the closed
    loop resumes.  Remaining mutations drain the same way once the
    query streams are exhausted, and a final oracle check runs at the
    end — so *every* quiesce point is verified, exactly the acceptance
    contract.

    ``probes`` defaults to a seeded workload drawn from the initial
    live graphs plus the planned newcomers, so both pre-existing and
    added graphs are probed positively.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if faults is not None:
        service.install_faults(faults)
    entry = service.catalog.get(dataset)
    if probes is None and verify_oracle:
        from ..workload import generate_workload

        base = [entry.graphs[g] for g in entry.live_graph_ids()]
        added = [op.graph for op in mutations if op.graph is not None]
        probes = [
            q.graph
            for q in generate_workload(base, 6, 3, seed=probe_seed)
        ]
        if added:
            probes += [
                q.graph
                for q in generate_workload(
                    added, 4, 3, seed=probe_seed + 1
                )
            ]
    probes = probes or []
    ops = deque(mutations)
    pending = {t: list(s) for t, s in streams.items()}
    outstanding = {t: 0 for t in streams}
    tickets: list[Ticket] = []
    mutation_tickets = []
    checks: list[dict] = []
    start = time.perf_counter()

    def feed() -> None:
        for tenant in sorted(pending):
            while pending[tenant] and outstanding[tenant] < concurrency:
                mq = pending[tenant].pop(0)
                ticket = service.submit(
                    dataset,
                    mq.query.graph,
                    tenant=tenant,
                    options=options,
                )
                tickets.append(ticket)
                if ticket.done:
                    continue
                outstanding[tenant] += 1

    since = 0
    feed()
    while True:
        finished = service.pump()
        for t in finished:
            outstanding[t.tenant] -= 1
        since += len(finished)
        due = bool(ops) and (
            since >= mutate_every or not any(pending.values())
        )
        if due and service.idle:
            for _ in range(min(batch, len(ops))):
                op = ops.popleft()
                mutation_tickets.append(
                    service.submit_mutation(
                        dataset, op.op,
                        graph=op.graph, graph_id=op.graph_id,
                    )
                )
            service.pump()  # the quiesce point: mutations apply here
            if verify_oracle:
                checks.append(_oracle_check(service, dataset, probes))
            if rebalancer is not None:
                rebalancer.maybe_rebalance()
            since = 0
            feed()
        elif finished:
            feed()
        if service.idle and not any(pending.values()) and not ops:
            break
    if verify_oracle:
        checks.append(_oracle_check(service, dataset, probes))
    wall = time.perf_counter() - start
    report = _report(
        service, tickets, wall, config or {}, rebalancer, faults
    )
    report.mutations = {
        "enabled": True,
        "planned": len(mutations),
        "applied": sum(1 for m in mutation_tickets if m.applied),
        "rejected": sum(1 for m in mutation_tickets if m.rejected),
        "service": service._mutation_report(),
        "oracle": {
            "verified": verify_oracle,
            "checks": len(checks),
            "mismatches": sum(1 for c in checks if not c["ok"]),
            "points": checks,
        },
    }
    return report


def run_closed_loop(
    service: Service,
    dataset: str,
    streams: dict[str, list[MixedQuery]],
    options: QueryOptions | None = None,
    concurrency: int = 1,
    config: dict | None = None,
    rebalancer=None,
    rebalance_every: int = 0,
    faults=None,
    regrow: bool = False,
) -> LoadReport:
    """Closed-loop load: each tenant keeps ``concurrency`` in flight.

    A tenant's next query is submitted the tick its oldest outstanding
    one completes — so measured throughput reflects service capacity,
    the number the ROADMAP's "heavy traffic" goal cares about.

    With a :class:`~repro.service.rebalance.Rebalancer` and
    ``rebalance_every > 0``, every ``rebalance_every`` completions the
    generator stops feeding, lets the in-flight queries drain (the
    quiesce point migrations require), invokes the rebalancer, and
    resumes — deterministic, like everything else on the virtual clock.

    With a :class:`~repro.service.faults.FaultInjector`, its events are
    installed on the service before the first submission and fire on
    the virtual clock as the loop pumps — chaos mode.  The report then
    carries a ``chaos`` section (injection counters, the zero-lost-
    tickets check, and a healthy-vs-fault-touched latency split).

    With ``regrow=True`` (sharded services only) the loop heals
    permanent losses as they happen: whenever a shard has more DEAD
    replicas than it has regrown so far, :meth:`Service.add_replica`
    scales it back out *mid-load* — with a store attached the newcomer
    boots from disk (the elastic O(read) path the persistence layer
    exists for).  Each regrow is recorded in the report's ``store``
    section with the virtual clock it happened at and whether it came
    from the store.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if faults is not None:
        service.install_faults(faults)
    regrow = regrow and service.sharded
    pending = {t: list(s) for t, s in streams.items()}
    outstanding = {t: 0 for t in streams}
    tickets: list[Ticket] = []
    regrown: list[dict] = []
    healed: dict[int, int] = {}
    start = time.perf_counter()

    def regrow_dead() -> None:
        # one replacement per permanent loss, placed the same tick the
        # loop observes the death — deterministic on the virtual clock
        reader = service.catalog.store
        for shard in range(service.catalog.num_shards):
            dead = sum(
                1
                for (s, _r), state in service.replica_states.items()
                if s == shard and state is ReplicaState.DEAD
            )
            while healed.get(shard, 0) < dead:
                before = reader.restores if reader is not None else 0
                replica = service.add_replica(shard)
                healed[shard] = healed.get(shard, 0) + 1
                regrown.append(
                    {
                        "shard": shard,
                        "replica": replica,
                        "clock": service.clock,
                        "from_store": bool(
                            reader is not None
                            and reader.restores > before
                        ),
                    }
                )

    def feed() -> None:
        # tenant order is sorted for determinism
        for tenant in sorted(pending):
            while pending[tenant] and outstanding[tenant] < concurrency:
                mq = pending[tenant].pop(0)
                ticket = service.submit(
                    dataset,
                    mq.query.graph,
                    tenant=tenant,
                    options=options,
                )
                tickets.append(ticket)
                if ticket.done:
                    continue  # cache hit or rejection: slot still free
                outstanding[tenant] += 1

    check = rebalancer is not None and rebalance_every > 0
    since_check = 0
    feed()
    while True:
        finished = service.pump()
        for t in finished:
            outstanding[t.tenant] -= 1
        if regrow:
            regrow_dead()
        since_check += len(finished)
        if check and since_check >= rebalance_every:
            # quiesce: withhold new submissions until in-flight work
            # drains, then rebalance and resume the closed loop
            if service.idle:
                rebalancer.maybe_rebalance()
                since_check = 0
                feed()
        elif finished:
            feed()
        if service.idle and not any(pending.values()):
            break
    wall = time.perf_counter() - start
    return _report(
        service, tickets, wall, config or {}, rebalancer, faults,
        regrown=regrown if regrow else None,
    )
