"""Workload replay and closed-loop load generation for the service.

Two drivers:

* :func:`run_closed_loop` — each tenant keeps ``concurrency`` queries
  in flight, submitting its next query the tick its previous one
  completes: the classic closed-loop generator whose throughput is
  capacity, not arrival-rate, limited.  Both ``repro serve`` and
  ``repro bench-serve`` replay their workloads through this driver.
* :func:`replay` — submit a prebuilt multi-tenant arrival stream up
  front and drain the service; the open-loop flood that exercises
  queueing and load shedding (library/test use).

Both return a :class:`LoadReport` whose :meth:`LoadReport.as_json` is
the ``BENCH_service.json`` payload: throughput (queries per million
simulated steps and per wall second) plus p50/p95/p99 simulated-step
latency and cache/admission counters.

Determinism contract: everything except ``wall_seconds`` is a pure
function of (service configuration, streams) — the report carries two
digests to prove it.  ``digest`` (:func:`results_digest`) covers full
results including bills and latencies and must be identical across
runs *of the same configuration*; ``answers`` (:func:`answers_digest`)
covers only decision answers and must additionally be identical across
shard layouts of the same workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..metrics import summarize_latencies
from ..workload import MixedQuery
from .admission import Ticket, TicketState
from .faults import ReplicaState
from .service import (
    QueryOptions,
    Service,
    answers_digest,
    decisions_digest,
    results_digest,
)

__all__ = ["LoadReport", "replay", "run_closed_loop"]


@dataclass
class LoadReport:
    """Everything one load run measured."""

    tickets: list[Ticket]
    virtual_steps: int
    wall_seconds: float
    digest: str
    service_stats: dict
    config: dict = field(default_factory=dict)
    #: digest over decision answers only (sharding-invariant — equal
    #: for sharded and unsharded runs of the same workload)
    answers: str = ""
    #: digest over existence answers only (additionally invariant
    #: under shard routing for decision_only workloads, where the
    #: witness sets behind ``answers`` legitimately differ)
    decisions: str = ""
    #: rebalancer summary when a Rebalancer rode along (else empty)
    rebalance: dict = field(default_factory=dict)
    #: chaos summary when a FaultInjector rode along (else empty)
    chaos: dict = field(default_factory=dict)
    #: artifact-store summary when the service served from a
    #: persisted store and/or the regrow drill ran (else empty):
    #: reader counters plus one row per replica regrown mid-load
    store: dict = field(default_factory=dict)

    @property
    def completed(self) -> list[Ticket]:
        """Tickets that produced results (rejections excluded)."""
        return [
            t for t in self.tickets if t.state is TicketState.DONE
        ]

    def as_json(self) -> dict:
        """The BENCH_service.json payload.

        Measured sections come straight from the service's metrics
        registry snapshot (``service_stats``) — including
        ``latency_steps``, which this method used to re-derive by hand
        from the ticket list.  The registry observes exactly one
        latency per DONE ticket (cache hits at 0), so the two
        derivations are value-identical; the snapshot is authoritative
        because it is what ``GET /stats`` and ``/watch`` serve.
        """
        done = self.completed
        per_tenant: dict[str, dict] = {}
        for t in self.tickets:
            row = per_tenant.setdefault(
                t.tenant,
                {"submitted": 0, "completed": 0, "cache_hits": 0,
                 "rejected": 0},
            )
            row["submitted"] += 1
            if t.state is TicketState.DONE:
                row["completed"] += 1
                row["cache_hits"] += int(t.cache_hit)
            elif t.state is TicketState.REJECTED:
                row["rejected"] += 1
        msteps = self.virtual_steps / 1e6 if self.virtual_steps else 0.0
        killed = sum(1 for t in done if t.result.killed)
        return {
            "bench": "service",
            "config": self.config,
            "digest": self.digest,
            "answers_digest": self.answers,
            "decisions_digest": self.decisions,
            #: budget-killed queries; their answers are execution-
            #: dependent, so answers_digest is only layout-invariant
            #: when this is 0 in both runs being compared
            "killed": killed,
            "throughput": {
                "queries": len(done),
                "virtual_steps": self.virtual_steps,
                "queries_per_mstep": (
                    len(done) / msteps if msteps else float(len(done))
                ),
                "wall_seconds": self.wall_seconds,
                "queries_per_second": (
                    len(done) / self.wall_seconds
                    if self.wall_seconds > 0
                    else 0.0
                ),
            },
            "latency_steps": self.service_stats["latency_steps"],
            "tenants": per_tenant,
            "result_cache": self.service_stats["result_cache"],
            "prepare_cache": self.service_stats["prepare_cache"],
            "admission": self.service_stats["admission"],
            #: per-shard (pool) step bills — the skew signal
            "per_shard_work": self.service_stats["per_shard_work"],
            #: steps billed to shard races that contributed nothing to
            #: their merged outcome (what routing exists to shrink)
            "fanout_waste": self.service_stats["fanout_waste"],
            "routing": self.service_stats["routing"],
            "rebalance": self.rebalance,
            "chaos": self.chaos,
            "store": self.store,
        }


def _chaos_summary(
    service: Service, tickets: list[Ticket], faults
) -> dict:
    """The ``chaos`` section of the bench payload.

    ``lost`` counts tickets that never reached a terminal state —
    the zero-lost-tickets invariant of the failure model — and the
    latency split separates queries the chaos touched (``retries > 0``)
    from those it did not, so the report shows what a fault costs the
    clients it hits without polluting the healthy percentiles.
    """
    done = [t for t in tickets if t.state is TicketState.DONE]
    healthy = [t.latency or 0 for t in done if t.retries == 0]
    touched = [t.latency or 0 for t in done if t.retries > 0]
    stats = service.stats().get("faults", {})
    return {
        "enabled": True,
        "injected": stats.get("injected", 0),
        "retries": stats.get("retries", 0),
        "rerouted": stats.get("rerouted", 0),
        "degraded": stats.get("degraded", 0),
        "tasks_failed": stats.get("tasks_failed", 0),
        "degraded_tickets": sum(1 for t in tickets if t.degraded),
        "lost": sum(1 for t in tickets if not t.done),
        "plan": faults.summary(),
        "latency_healthy": (
            summarize_latencies(healthy).as_dict() if healthy else None
        ),
        "latency_chaos": (
            summarize_latencies(touched).as_dict() if touched else None
        ),
    }


def _store_summary(service: Service, regrown) -> dict:
    """The ``store`` section of the bench payload (empty without a
    persisted store and without regrow activity)."""
    metrics = service.store_metrics()
    if not metrics and not regrown:
        return {}
    return {
        "enabled": bool(metrics),
        "metrics": metrics,
        "regrown": list(regrown or []),
    }


def _report(
    service: Service,
    tickets: list[Ticket],
    wall_seconds: float,
    config: dict,
    rebalancer=None,
    faults=None,
    regrown=None,
) -> LoadReport:
    done = [t for t in tickets if t.state is TicketState.DONE]
    return LoadReport(
        tickets=tickets,
        virtual_steps=service.clock,
        wall_seconds=wall_seconds,
        digest=results_digest(done),
        service_stats=service.stats(),
        config=config,
        answers=answers_digest(done),
        decisions=decisions_digest(done),
        rebalance=(
            rebalancer.summary() if rebalancer is not None else {}
        ),
        chaos=(
            _chaos_summary(service, tickets, faults)
            if faults is not None
            else {}
        ),
        store=_store_summary(service, regrown),
    )


def replay(
    service: Service,
    dataset: str,
    stream: list[MixedQuery],
    options: QueryOptions | None = None,
    config: dict | None = None,
    faults=None,
) -> LoadReport:
    """Open-loop flood: submit the whole stream up front, then drain.

    Saturates admission queues by design (repeats miss the cache when
    their original is still in flight) — use :func:`run_closed_loop`
    for capacity measurement.
    """
    options = options or QueryOptions()
    if faults is not None:
        service.install_faults(faults)
    start = time.perf_counter()
    tickets = [
        service.submit(
            dataset, mq.query.graph, tenant=mq.tenant, options=options
        )
        for mq in stream
    ]
    service.run_until_idle()
    wall = time.perf_counter() - start
    return _report(service, tickets, wall, config or {}, faults=faults)


def run_closed_loop(
    service: Service,
    dataset: str,
    streams: dict[str, list[MixedQuery]],
    options: QueryOptions | None = None,
    concurrency: int = 1,
    config: dict | None = None,
    rebalancer=None,
    rebalance_every: int = 0,
    faults=None,
    regrow: bool = False,
) -> LoadReport:
    """Closed-loop load: each tenant keeps ``concurrency`` in flight.

    A tenant's next query is submitted the tick its oldest outstanding
    one completes — so measured throughput reflects service capacity,
    the number the ROADMAP's "heavy traffic" goal cares about.

    With a :class:`~repro.service.rebalance.Rebalancer` and
    ``rebalance_every > 0``, every ``rebalance_every`` completions the
    generator stops feeding, lets the in-flight queries drain (the
    quiesce point migrations require), invokes the rebalancer, and
    resumes — deterministic, like everything else on the virtual clock.

    With a :class:`~repro.service.faults.FaultInjector`, its events are
    installed on the service before the first submission and fire on
    the virtual clock as the loop pumps — chaos mode.  The report then
    carries a ``chaos`` section (injection counters, the zero-lost-
    tickets check, and a healthy-vs-fault-touched latency split).

    With ``regrow=True`` (sharded services only) the loop heals
    permanent losses as they happen: whenever a shard has more DEAD
    replicas than it has regrown so far, :meth:`Service.add_replica`
    scales it back out *mid-load* — with a store attached the newcomer
    boots from disk (the elastic O(read) path the persistence layer
    exists for).  Each regrow is recorded in the report's ``store``
    section with the virtual clock it happened at and whether it came
    from the store.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if faults is not None:
        service.install_faults(faults)
    regrow = regrow and service.sharded
    pending = {t: list(s) for t, s in streams.items()}
    outstanding = {t: 0 for t in streams}
    tickets: list[Ticket] = []
    regrown: list[dict] = []
    healed: dict[int, int] = {}
    start = time.perf_counter()

    def regrow_dead() -> None:
        # one replacement per permanent loss, placed the same tick the
        # loop observes the death — deterministic on the virtual clock
        reader = service.catalog.store
        for shard in range(service.catalog.num_shards):
            dead = sum(
                1
                for (s, _r), state in service.replica_states.items()
                if s == shard and state is ReplicaState.DEAD
            )
            while healed.get(shard, 0) < dead:
                before = reader.restores if reader is not None else 0
                replica = service.add_replica(shard)
                healed[shard] = healed.get(shard, 0) + 1
                regrown.append(
                    {
                        "shard": shard,
                        "replica": replica,
                        "clock": service.clock,
                        "from_store": bool(
                            reader is not None
                            and reader.restores > before
                        ),
                    }
                )

    def feed() -> None:
        # tenant order is sorted for determinism
        for tenant in sorted(pending):
            while pending[tenant] and outstanding[tenant] < concurrency:
                mq = pending[tenant].pop(0)
                ticket = service.submit(
                    dataset,
                    mq.query.graph,
                    tenant=tenant,
                    options=options,
                )
                tickets.append(ticket)
                if ticket.done:
                    continue  # cache hit or rejection: slot still free
                outstanding[tenant] += 1

    check = rebalancer is not None and rebalance_every > 0
    since_check = 0
    feed()
    while True:
        finished = service.pump()
        for t in finished:
            outstanding[t.tenant] -= 1
        if regrow:
            regrow_dead()
        since_check += len(finished)
        if check and since_check >= rebalance_every:
            # quiesce: withhold new submissions until in-flight work
            # drains, then rebalance and resume the closed loop
            if service.idle:
                rebalancer.maybe_rebalance()
                since_check = 0
                feed()
        elif finished:
            feed()
        if service.idle and not any(pending.values()):
            break
    wall = time.perf_counter() - start
    return _report(
        service, tickets, wall, config or {}, rebalancer, faults,
        regrown=regrown if regrow else None,
    )
