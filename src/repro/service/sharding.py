"""Sharded catalogs and fan-out/merge answers for the serving layer.

The paper races query *variants* and keeps the first finisher; the
ROADMAP's scaling item applies the same discipline one level up, across
**partitions of the data**.  A :class:`ShardedCatalog` splits a stored
graph collection across N :class:`~repro.service.catalog.DatasetCatalog`
shards (hash or size-balanced assignment); each shard warms its own
matcher indexes and Grapes/GGSX filter over its partition only.  The
service fans a query out into one race per involved shard, runs them on
per-shard worker pools (``Dispatcher(pools=N)``) over the shared
virtual clock, and merges the per-shard :class:`RaceOutcome`\\ s with
:func:`merge_shard_outcomes`.

Equivalence invariants (proven in ``tests/test_service_sharding.py``):

* **Completed decision answers are shard-invariant.**  An FTV filter
  is a per-graph predicate — a stored graph survives filtering iff it
  alone contains the query's features often enough — so a shard's
  candidate set is exactly the global candidate set restricted to the
  shard, and the union of per-shard verified matches equals the
  single-catalog match set.  The merged ``found`` /
  ``num_embeddings`` / ``matching_ids`` (mapped back to global graph
  ids, ascending) of every *budget-completed* query are therefore
  **bit-for-bit identical** to the unsharded answer, which is what
  lets sharded and unsharded serving share one result cache.  The kill
  cap is the one budget semantic that is per race: each shard race
  gets the ticket's full step budget as its own time cap (merged race
  *time* never exceeds the budget, but total *work* may reach budget x
  shards), so under a budget tight enough to kill, *which* queries die
  can differ between layouts — exactly why killed results are
  execution-dependent and are never cached in any layout.
* **Everything is deterministic.**  Assignment is a pure function of
  (graph shapes, shard count, strategy); per-shard races are the same
  deterministic generators as solo races; the merge is a pure fold in
  shard order.  Two runs of the same sharded workload produce identical
  answers, bills, and latencies.
* **Bills are historical, not invariant.**  Merged ``steps`` is the
  *parallel* completion time — the slowest (or, under first-true
  short-circuit, the deciding) shard's race time — and
  ``per_variant_steps`` sums each variant's work across shards.  Like
  every cached bill, these describe what this run paid, not what any
  isomorphic re-issue would pay.

First-winner semantics one level up: in *decision-only* mode
(``QueryOptions(decision_only=True)``) a shard whose race finds a match
settles the query — the service cancels the sibling shards' remaining
budget, mirroring the paper's race where the first finisher kills the
losers.  In the default full mode every shard completes so the merged
``matching_ids`` stay bit-for-bit complete.

Routing rides on top: each FTV entry carries a
:class:`~repro.service.routing.ShardRouter` whose per-shard feature
sketches let the service prune provably-empty shards from the fan-out
and order decision fan-outs (see :mod:`repro.service.routing`), and
:meth:`ShardedCatalog.reassign` migrates whole graphs between shards
at quiesce points (:mod:`repro.service.rebalance`) — both preserving
the answer invariants above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import zlib

from ..graphs import LabeledGraph
from ..harness import (
    FTV_DATASETS,
    NFV_DATASETS,
    build_ftv_graphs,
    build_nfv_graph,
)
from ..matching import MatchOutcome
from ..psi.executors import OverheadModel, RaceOutcome
from ..rewriting import LabelStats
from .catalog import DatasetCatalog, DatasetEntry
from .routing import ShardRouter

__all__ = [
    "assign_shards",
    "ShardedEntry",
    "ShardedCatalog",
    "merge_shard_outcomes",
]


def assign_shards(
    graphs: Sequence[LabeledGraph],
    num_shards: int,
    strategy: str = "size_balanced",
) -> tuple[tuple[int, ...], ...]:
    """Partition graph ids across ``num_shards`` shards.

    Returns one ascending tuple of global graph ids per shard.  Both
    strategies are pure functions of the inputs (no randomness, no
    iteration-order dependence), so an assignment can be reproduced
    from the dataset alone:

    * ``"hash"`` — graph ``g`` goes to shard ``g % num_shards``; cheap
      and stateless, but blind to graph sizes;
    * ``"size_balanced"`` — longest-processing-time greedy: graphs are
      placed largest-first (by edge count, id as tie-break) onto the
      shard with the fewest assigned edges, so shard verification loads
      stay even when graph sizes vary widely.

    Shards may come out empty when ``num_shards`` exceeds the graph
    count; the service simply never fans a query out to them.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if strategy == "hash":
        out: list[list[int]] = [[] for _ in range(num_shards)]
        for gid in range(len(graphs)):
            out[gid % num_shards].append(gid)
        return tuple(tuple(ids) for ids in out)
    if strategy == "size_balanced":
        out = [[] for _ in range(num_shards)]
        loads = [0] * num_shards
        order = sorted(
            range(len(graphs)),
            key=lambda g: (-graphs[g].size, g),
        )
        for gid in order:
            shard = min(range(num_shards), key=lambda s: (loads[s], s))
            out[shard].append(gid)
            loads[shard] += graphs[gid].size
        return tuple(tuple(sorted(ids)) for ids in out)
    raise ValueError(
        f"unknown assignment strategy {strategy!r}; "
        "known: hash, size_balanced"
    )


def _valid_assignment(stored, num_shards: int, num_graphs: int) -> bool:
    """True when ``stored`` is an exact partition of the graph ids.

    The boot-time gate for honoring a manifest's assignment verbatim:
    every id ``0..num_graphs-1`` appears exactly once across exactly
    ``num_shards`` rows.  Anything else (wrong shard count, missing or
    duplicated ids, junk types) is a clean store miss, never an honored
    layout.
    """
    if not isinstance(stored, list) or len(stored) != num_shards:
        return False
    seen: list[int] = []
    for ids in stored:
        if not isinstance(ids, list):
            return False
        for gid in ids:
            if not isinstance(gid, int) or isinstance(gid, bool):
                return False
            seen.append(gid)
    return sorted(seen) == list(range(num_graphs))


@dataclass
class ShardedEntry:
    """One dataset as the sharded catalog serves it.

    Mirrors the fields the service reads off a
    :class:`~repro.service.catalog.DatasetEntry` (``kind``, ``scale``,
    ``stats``) so cache keys — and therefore cache hits — are shared
    with unsharded serving, plus the shard map: which global graph ids
    live on which shard.
    """

    name: str
    scale: str
    kind: str  # "nfv" | "ftv"
    #: the full collection in global id order (graph objects are shared
    #: with the shard entries, never copied)
    graphs: list[LabeledGraph]
    #: collection-wide label statistics (identical to the unsharded
    #: entry's, so rewriting decisions don't depend on shard layout)
    stats: LabelStats
    #: ascending global graph ids per shard (empty tuple = empty shard)
    assignment: tuple[tuple[int, ...], ...]
    #: the single shard holding an NFV entry's stored graph
    home_shard: int
    _catalog: "ShardedCatalog"
    #: per-shard sketch router (FTV entries only; None = unroutable)
    router: Optional[ShardRouter] = None
    #: removed (tombstoned) global graph ids — slots keep their shard
    #: assignment so local→global id maps never shift
    tombstones: set = field(default_factory=set)

    @property
    def num_shards(self) -> int:
        """Shard count of the owning catalog."""
        return len(self.assignment)

    @property
    def max_path_length(self) -> int:
        """The entry's FTV feature path length (census configuration)."""
        return self._register_config[3]

    def involved_shards(self) -> tuple[int, ...]:
        """Shards that hold at least one graph (fan-out targets)."""
        if self.kind == "nfv":
            return (self.home_shard,)
        return tuple(
            s for s, ids in enumerate(self.assignment) if ids
        )

    def shard_ids(self, shard: int) -> tuple[int, ...]:
        """Global graph ids stored on ``shard`` (local id = position)."""
        return self.assignment[shard]

    def live_graph_ids(self) -> list:
        """Non-tombstoned global graph ids, ascending."""
        return [
            gid for gid in range(len(self.graphs))
            if gid not in self.tombstones
        ]

    def shard_of(self, graph_id: int) -> int:
        """The shard whose partition holds ``graph_id``."""
        for shard, ids in enumerate(self.assignment):
            if graph_id in ids:
                return shard
        raise ValueError(
            f"graph id {graph_id} not assigned to any shard of "
            f"{self.name!r}"
        )

    def shard_entry(
        self, shard: int, replica: Optional[int] = None
    ) -> DatasetEntry:
        """The shard's warm :class:`DatasetEntry` (reload-transparent).

        Any serving replica answers equivalently; ``None`` picks the
        shard's first serving replica.
        """
        return self._catalog.shard_entry(self.name, shard, replica)

    @property
    def psi(self):
        """The NFV entry's warm Ψ frontend (home shard)."""
        if self.kind != "nfv":
            raise ValueError(f"dataset {self.name!r} is a collection")
        return self.shard_entry(self.home_shard).psi


class ShardedCatalog:
    """N shard catalogs serving partitions of each dataset.

    ``load`` builds a named dataset once, partitions collections with
    :func:`assign_shards`, and registers each partition on its own
    :class:`DatasetCatalog` shard — so every shard warms its own
    matcher indexes and Grapes/GGSX filters over just its graphs.  NFV
    datasets (one stored graph) live whole on a deterministic home
    shard.

    **Replicas.**  With ``replicas=R`` every shard carries R replica
    catalogs, each backing its own dispatcher worker pool, so the
    service can spread a shard's races over replicas and survive a
    replica's death (:mod:`repro.service.faults`).  Pools are numbered
    shard-major at construction — ``(shard s, replica 0..R-1)`` maps to
    pools ``s*R .. s*R+R-1`` — so with ``replicas=1`` pool index ==
    shard index and the catalog is bit-for-bit the pre-replication
    layout.  Replica 0 of each shard is the *primary*; the
    :attr:`shards` property exposes the primaries to keep the PR-4/5
    view working.  Sibling replicas **share warm artifacts**: the first
    replica of a shard builds the partition entry (matcher indexes +
    filter), siblings :meth:`~repro.service.catalog.DatasetCatalog.adopt`
    the same frozen entry object — sound because entries are immutable
    after freeze and the prepare cache keys per graph object
    (``shared_warm`` counts the builds saved).

    ``max_bytes`` is split evenly across replica pools: each replica
    catalog enforces its own watermark and evicts independently, so
    memory accounting — like work — is per pool.  A watermark-evicted
    partition is transparently re-registered on next access (the
    ``reloads`` counter ticks), because the sharded catalog retains the
    built collection and assignment.
    """

    def __init__(
        self,
        num_shards: int = 2,
        overhead: OverheadModel = OverheadModel(),
        max_bytes: Optional[int] = None,
        assignment: str = "size_balanced",
        replicas: int = 1,
        store=None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if max_bytes is not None and max_bytes < num_shards * replicas:
            raise ValueError("max_bytes must be >= num_shards * replicas")
        self.num_shards = num_shards
        self.replicas = replicas
        self.overhead = overhead
        self.assignment_strategy = assignment
        #: attached StoreReader (boot-from-store path); None = always
        #: warm fresh.  Per-shard index blobs restore through
        #: :meth:`_register_replica`, so scale-out replicas boot in
        #: O(read) too.
        self.store = None
        #: dataset name -> verified manifest record usable for
        #: per-shard index restores (layout + config + assignment all
        #: matched this catalog at load time)
        self._store_records: dict[str, dict] = {}
        if store is not None:
            self.attach_store(store)
        self._per_replica_bytes = (
            max_bytes // (num_shards * replicas)
            if max_bytes is not None
            else None
        )
        #: one DatasetCatalog per (shard, replica), in pool order
        self.pool_catalogs: list[DatasetCatalog] = []
        #: (shard, replica) -> pool index; retained for released
        #: replicas so historical pool bills stay attributable
        self._pool_of: dict[tuple[int, int], int] = {}
        #: serving-capable replica ids per shard (released ones removed)
        self._replicas_of: list[list[int]] = [
            [] for _ in range(num_shards)
        ]
        #: next replica id per shard — monotone, never reused, so a
        #: dead replica's id can't be resurrected by a later scale-out
        self._next_replica_id = [0] * num_shards
        for shard in range(num_shards):
            for _ in range(replicas):
                self._materialize_replica(shard)
        #: transparent re-registrations of watermark-evicted partitions
        self.reloads = 0
        #: completed :meth:`reassign` calls (rebalance bookkeeping)
        self.reassignments = 0
        #: whole stored graphs moved between shards across all reassigns
        self.migrated_graphs = 0
        #: failed reassigns rolled back to the prior assignment
        self.rollbacks = 0
        #: partition builds saved by adopting a sibling replica's entry
        self.shared_warm = 0
        #: monotone collection-state version (see
        #: :attr:`DatasetCatalog.mutation_epoch`) — one counter for the
        #: whole sharded catalog, so cache keys are layout-independent
        self.mutation_epoch = 0
        #: replicas added / released after construction (scaling + kills)
        self.replicas_added = 0
        self.replicas_released = 0
        self._entries: dict[str, ShardedEntry] = {}

    def attach_store(self, store):
        """Attach a warmed-artifact store (path or ``StoreReader``).

        Mirrors :meth:`DatasetCatalog.attach_store`: the store is a
        transparent accelerator — any miss, mismatch, or corruption
        degrades to a fresh warm build.
        """
        from ..store import StoreReader  # deferred: store imports us

        self.store = StoreReader.open(store)
        return self.store

    def _materialize_replica(self, shard: int) -> int:
        """Create one replica catalog + pool slot for ``shard``."""
        replica = self._next_replica_id[shard]
        self._next_replica_id[shard] += 1
        pool = len(self.pool_catalogs)
        self.pool_catalogs.append(
            DatasetCatalog(
                overhead=self.overhead,
                max_bytes=self._per_replica_bytes,
            )
        )
        self._pool_of[(shard, replica)] = pool
        self._replicas_of[shard].append(replica)
        return replica

    # ------------------------------------------------------------------
    # replica topology
    # ------------------------------------------------------------------

    @property
    def shards(self) -> list[DatasetCatalog]:
        """Primary (replica-0) catalog per shard — the PR-4/5 view."""
        return [
            self.pool_catalogs[self._pool_of[(s, 0)]]
            for s in range(self.num_shards)
        ]

    @property
    def pool_count(self) -> int:
        """Total worker pools (one per replica ever materialized)."""
        return len(self.pool_catalogs)

    def replica_ids(self, shard: int) -> tuple[int, ...]:
        """Serving-capable replica ids of ``shard`` (ascending)."""
        return tuple(self._replicas_of[shard])

    def pool_index(self, shard: int, replica: int) -> int:
        """The dispatcher pool backing ``(shard, replica)``."""
        return self._pool_of[(shard, replica)]

    def shard_pools(self, shard: int) -> tuple[int, ...]:
        """Every pool ever backing ``shard``, released replicas included
        (per-shard bills must keep counting a dead replica's history)."""
        return tuple(sorted(
            pool
            for (s, _), pool in self._pool_of.items()
            if s == shard
        ))

    def catalog_of(self, shard: int, replica: int) -> DatasetCatalog:
        """``(shard, replica)``'s backing catalog (KeyError if never
        materialized)."""
        return self.pool_catalogs[self._pool_of[(shard, replica)]]

    def add_replica(
        self, shard: int, prefer_store: Optional[bool] = None
    ) -> int:
        """Materialize one more replica of ``shard`` and warm it.

        Every loaded dataset with graphs on the shard is installed on
        the new replica — from the attached store when one is (the
        elastic O(read) boot; ``prefer_store`` defaults to "store
        attached"), else by adopting a sibling's frozen entry (no
        rebuild).  Returns the new replica id.  Callers growing a live
        service must go through ``Service.add_replica`` so the
        dispatcher grows its pool in lockstep.
        """
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard {shard} out of range (catalog has "
                f"{self.num_shards} shards)"
            )
        if prefer_store is None:
            prefer_store = self.store is not None
        replica = self._materialize_replica(shard)
        for name in self.datasets():
            entry = self._entries[name]
            if entry.assignment[shard]:
                self._register_replica(
                    entry, shard, replica, prefer_store=prefer_store
                )
        self.replicas_added += 1
        return replica

    def release_replica(self, shard: int, replica: int) -> None:
        """Drop a replica from serving (kill or quiesce retirement).

        Its warm state is unloaded and it never serves again; its pool
        slot and historical bills remain attributable through
        :meth:`shard_pools`.  Releasing an unknown or already-released
        replica is a no-op.
        """
        ids = self._replicas_of[shard]
        if replica not in ids:
            return
        ids.remove(replica)
        catalog = self.catalog_of(shard, replica)
        for name in list(catalog.datasets()):
            catalog.unload(name)
        self.replicas_released += 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def load(
        self,
        name: str,
        scale: str = "default",
        algorithms: tuple[str, ...] = ("GQL", "SPA"),
        ftv_method: str = "Grapes",
        max_path_length: int = 3,
    ) -> ShardedEntry:
        """Load ``name``, partition it, and warm every shard.

        Idempotent per name with the same configuration; a conflicting
        re-load raises, mirroring :meth:`DatasetCatalog.load`.
        """
        config = (scale, tuple(algorithms), ftv_method, max_path_length)
        existing = self._entries.get(name)
        if existing is not None:
            if existing._load_config != config:
                raise ValueError(
                    f"dataset {name!r} already loaded with config "
                    f"{existing._load_config}; unload it before "
                    f"re-loading with {config}"
                )
            return existing
        record = graphs = None
        if self.store is not None:
            record, graphs = self._store_lookup(
                name, scale, tuple(algorithms), ftv_method,
                max_path_length,
            )
        if name in NFV_DATASETS:
            if graphs is None:
                graphs = [build_nfv_graph(name, scale)]
            kind = "nfv"
            home = zlib.crc32(name.encode()) % self.num_shards
            assignment = tuple(
                (0,) if s == home else ()
                for s in range(self.num_shards)
            )
        elif name in FTV_DATASETS:
            if graphs is None:
                graphs = build_ftv_graphs(name, scale)
            kind = "ftv"
            home = 0
            assignment = assign_shards(
                graphs, self.num_shards, self.assignment_strategy
            )
        else:
            raise ValueError(
                f"unknown dataset {name!r}; known: "
                f"{NFV_DATASETS + FTV_DATASETS}"
            )
        if record is not None:
            # index blobs were dumped against the manifest's partition;
            # they are only valid against that same partition.  For an
            # FTV record whose stored assignment is a valid partition
            # of the restored graphs, the *stored* layout wins: a
            # mutated collection placed its newcomers by load (the
            # coldest-shard rule), not by the static strategy, and for
            # a never-mutated collection the two are identical anyway.
            stored = record.get("assignment")
            if record.get("kind") != kind:
                self.store.misses += 1
                self.store._event(
                    "assignment_mismatch", dataset=name,
                    stored=stored,
                )
            elif kind == "ftv":
                if _valid_assignment(
                    stored, self.num_shards, len(graphs)
                ):
                    assignment = tuple(
                        tuple(int(g) for g in ids) for ids in stored
                    )
                    self._store_records[name] = record
                else:
                    self.store.misses += 1
                    self.store._event(
                        "assignment_mismatch", dataset=name,
                        stored=stored,
                    )
            elif stored != [list(ids) for ids in assignment]:
                self.store.misses += 1
                self.store._event(
                    "assignment_mismatch", dataset=name,
                    stored=stored,
                )
        entry = ShardedEntry(
            name=name,
            scale=scale,
            kind=kind,
            graphs=graphs,
            stats=LabelStats.of_collection(graphs),
            assignment=assignment,
            home_shard=home,
            _catalog=self,
        )
        entry._load_config = config
        entry._register_config = (
            scale, tuple(algorithms), ftv_method, max_path_length
        )
        if name in self._store_records:
            # collection state rides in the record: ids removed before
            # the checkpoint stay removed across the cold boot (the
            # per-shard blobs carry the matching local tombstones)
            entry.tombstones.update(
                int(g) for g in record.get("tombstones", ())
            )
            if entry.tombstones:
                live = [
                    entry.graphs[g] for g in entry.live_graph_ids()
                ]
                if live:
                    entry.stats = LabelStats.of_collection(live)
        if kind == "ftv":
            entry.router = ShardRouter(entry)
        self._entries[name] = entry
        for shard in entry.involved_shards():
            self._register_shard(entry, shard)
        return entry

    def _store_lookup(
        self,
        name: str,
        scale: str,
        algorithms: tuple[str, ...],
        ftv_method: str,
        max_path_length: int,
    ) -> tuple[Optional[dict], Optional[list]]:
        """(manifest record, restored graphs) for one dataset, either
        of which may be ``None``.

        A layout or config mismatch is a clean miss (the store was
        warmed for a different catalog shape — not corruption).  A
        corrupt graphs blob keeps the *record*: the builders are
        deterministic, so freshly built graphs carry the same label
        codes and the per-shard index blobs stay valid against them.
        """
        from ..store import StoreError

        reader = self.store
        rec = reader.dataset_record(name)
        if rec is None:
            return None, None
        layout = reader.manifest.layout if reader.manifest else {}
        if (
            not layout.get("sharded")
            or layout.get("num_shards") != self.num_shards
            or layout.get("assignment") != self.assignment_strategy
        ):
            reader.misses += 1
            reader._event(
                "layout_mismatch", dataset=name,
                wanted={
                    "sharded": True,
                    "num_shards": self.num_shards,
                    "assignment": self.assignment_strategy,
                },
                found=layout,
            )
            return None, None
        if (
            rec.get("scale") != scale
            or tuple(rec.get("algorithms", ())) != tuple(algorithms)
            or rec.get("ftv_method") != ftv_method
            or rec.get("max_path_length") != max_path_length
        ):
            reader.misses += 1
            reader._event(
                "config_mismatch", dataset=name,
                wanted=[scale, list(algorithms), ftv_method,
                        max_path_length],
            )
            return None, None
        try:
            graphs = reader.load_graphs(name)
        except StoreError:
            reader.rebuilds += 1
            return rec, None
        reader.restores += 1
        return rec, graphs

    def _register_shard(
        self, entry: ShardedEntry, shard: int
    ) -> Optional[DatasetEntry]:
        """(Re-)register one partition on every replica of its shard.

        The first replica builds (or keeps) the partition entry; its
        siblings adopt the same frozen object (see
        :meth:`_register_replica`).  Every (re-)registration also
        re-folds the shard's routing sketch from the fresh filter
        index, so watermark-eviction reloads and rebalance migrations
        can never leave a stale sketch behind.  A shard with no
        serving replica (all killed/retired) registers nothing and
        returns ``None`` — the service degrades queries needing it.
        """
        sub: Optional[DatasetEntry] = None
        for replica in self.replica_ids(shard):
            got = self._register_replica(entry, shard, replica)
            if sub is None:
                sub = got
        if entry.router is not None and sub is not None:
            entry.router.refresh(shard, sub.ftv_index)
        return sub

    def _register_replica(
        self,
        entry: ShardedEntry,
        shard: int,
        replica: int,
        prefer_store: bool = False,
    ) -> DatasetEntry:
        """(Re-)register one partition on one replica catalog.

        When a sibling replica already holds the identical partition
        (same graph objects in the same order), its frozen entry is
        adopted instead of rebuilt — that is the warm-artifact sharing
        the replication layer is allowed: entries are immutable after
        freeze, so replicas serving the same object cannot diverge.

        When the sharded catalog was booted from a store, the shard's
        warm index restores from its blob instead of rebuilding
        (checked + quarantined through the reader; a bad blob degrades
        to an in-process rebuild).  ``prefer_store=True`` — the
        ``Service.add_replica`` scale-out path — restores from disk
        *even when a donor sibling exists*: a newcomer under live
        chaos load boots from the store by contract, not by accident.
        """
        catalog = self.catalog_of(shard, replica)
        part = [entry.graphs[g] for g in entry.assignment[shard]]
        scale, algorithms, ftv_method, max_path_length = (
            entry._register_config
        )

        def restore_index():
            if entry.kind != "ftv":
                return None
            record = self._store_records.get(entry.name)
            if record is None or self.store is None:
                return None
            from ..store import StoreError

            try:
                index = self.store.load_index(
                    entry.name, part, shard=shard,
                    ftv_method=ftv_method,
                    max_path_length=max_path_length,
                )
            except StoreError:
                self.store.rebuilds += 1
                return None
            self.store.restores += 1
            return index

        index = restore_index() if prefer_store else None
        if index is None:
            for sibling in self.replica_ids(shard):
                if sibling == replica:
                    continue
                donor = self.catalog_of(shard, sibling)._entries.get(
                    entry.name
                )
                if (
                    donor is not None
                    and len(donor.graphs) == len(part)
                    and all(a is b for a, b in zip(donor.graphs, part))
                ):
                    self.shared_warm += 1
                    return catalog.adopt(donor)
            if not prefer_store:
                index = restore_index()
        sub = catalog.register(
            entry.name,
            part,
            kind=entry.kind,
            scale=scale,
            algorithms=algorithms,
            ftv_method=ftv_method,
            max_path_length=max_path_length,
            prebuilt_index=index,
        )
        self._reapply_tombstones(entry, shard, catalog, sub)
        return sub

    def _reapply_tombstones(
        self,
        entry: ShardedEntry,
        shard: int,
        catalog: DatasetCatalog,
        sub: DatasetEntry,
    ) -> None:
        """Re-tombstone removed graphs on a freshly (re-)built partition.

        A partition rebuilt from scratch (eviction reload, replica
        scale-out, rebalance migration) indexes every graph object in
        the assignment — including slots a ``remove_graph`` already
        retired.  Tombstones are collection state, not index state, so
        they are re-applied here before the entry can serve.
        """
        if entry.kind != "ftv" or not entry.tombstones:
            return
        for local, gid in enumerate(entry.assignment[shard]):
            if (
                gid in entry.tombstones
                and local not in sub.ftv_index.tombstones
            ):
                catalog.remove_graph(entry.name, local)

    def get(self, name: str) -> ShardedEntry:
        """The sharded entry for ``name`` (KeyError when never loaded)."""
        entry = self._entries.get(name)
        if entry is None:
            raise KeyError(
                f"dataset {name!r} not loaded; sharded catalog holds "
                f"{sorted(self._entries)}"
            )
        return entry

    def shard_entry(
        self, name: str, shard: int, replica: Optional[int] = None
    ) -> DatasetEntry:
        """One shard's warm partition entry.

        ``replica`` defaults to the shard's first serving replica; any
        serving replica returns an equivalent (usually the identical,
        adopted) entry.  A partition the replica catalog
        watermark-evicted is transparently re-registered here (the
        sharded catalog still holds the graphs and the assignment), so
        eviction trades latency for memory without ever turning a
        loaded dataset into an error.  A shard with no serving replica
        raises KeyError — that is the "dark shard" the service turns
        into a degraded ticket.
        """
        entry = self.get(name)
        if not entry.assignment[shard]:
            raise KeyError(f"shard {shard} holds no graphs of {name!r}")
        ids = self._replicas_of[shard]
        if replica is None:
            if not ids:
                raise KeyError(
                    f"shard {shard} has no serving replica for {name!r}"
                )
            replica = ids[0]
        elif replica not in ids:
            raise KeyError(
                f"replica {shard}/{replica} is not serving {name!r}"
            )
        try:
            return self.catalog_of(shard, replica).get(name)
        except KeyError:
            self.reloads += 1
            return self._register_replica(entry, shard, replica)

    # ------------------------------------------------------------------
    # dynamic collections (incremental index maintenance)
    # ------------------------------------------------------------------

    def add_graph(
        self,
        name: str,
        graph: LabeledGraph,
        shard: int,
        graph_id: Optional[int] = None,
    ) -> int:
        """Place ``graph`` on ``shard`` and index it incrementally.

        Callers pick the shard (the service routes newcomers through
        the rebalancer's coldest-shard rule; journal replay re-applies
        the recorded placement).  The partition entry is mutated in
        place, so sibling replicas that adopted the shared object see
        the newcomer for free; a store-restored replica holding its own
        build gets the same incremental insert applied to it.  Reviving
        a tombstoned id ignores ``shard`` in favor of the slot's
        existing assignment — ids never migrate implicitly.
        """
        entry = self.get(name)
        if entry.kind != "ftv":
            raise ValueError(
                f"dataset {name!r} is not a mutable FTV collection"
            )
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard {shard} out of range (catalog has "
                f"{self.num_shards} shards)"
            )
        if graph_id is None:
            graph_id = len(entry.graphs)
        if graph_id < len(entry.graphs):
            if graph_id not in entry.tombstones:
                raise ValueError(
                    f"graph id {graph_id} is live; remove it before "
                    "re-adding"
                )
            shard = entry.shard_of(graph_id)
            local = entry.assignment[shard].index(graph_id)
            entry.graphs[graph_id] = graph
            entry.tombstones.discard(graph_id)
        elif graph_id == len(entry.graphs):
            entry.graphs.append(graph)
            entry.assignment = tuple(
                ids + (graph_id,) if s == shard else ids
                for s, ids in enumerate(entry.assignment)
            )
            local = len(entry.assignment[shard]) - 1
        else:
            raise ValueError(
                f"graph id {graph_id} out of range for "
                f"{len(entry.graphs)} slots"
            )
        for catalog, sub in self._distinct_shard_entries(entry, shard):
            if (
                local < len(sub.graphs)
                and sub.graphs[local] is graph
                and local not in sub.ftv_index.tombstones
            ):
                # this sub was (re-)registered from the already-updated
                # assignment (eviction reload, previously-empty shard):
                # it holds the newcomer natively — inserting again would
                # double-index it
                continue
            catalog.add_graph(name, graph, local)
        self._after_mutation(entry)
        if entry.router is not None:
            entry.router.note_add(shard, graph)
        return graph_id

    def remove_graph(self, name: str, graph_id: int) -> None:
        """Tombstone ``graph_id`` on its home shard's partitions."""
        entry = self.get(name)
        if entry.kind != "ftv":
            raise ValueError(
                f"dataset {name!r} is not a mutable FTV collection"
            )
        if graph_id in entry.tombstones:
            raise ValueError(f"graph id {graph_id} already removed")
        shard = entry.shard_of(graph_id)
        local = entry.assignment[shard].index(graph_id)
        for catalog, sub in self._distinct_shard_entries(entry, shard):
            if local not in sub.ftv_index.tombstones:
                catalog.remove_graph(name, local)
        entry.tombstones.add(graph_id)
        self._after_mutation(entry)
        if entry.router is not None:
            entry.router.note_remove()

    def _distinct_shard_entries(
        self, entry: ShardedEntry, shard: int
    ) -> list:
        """Each distinct partition entry object serving ``shard``.

        Sibling replicas normally adopt one shared object (one row);
        a store-restored replica may hold its own build, and mutations
        must reach every distinct object or replicas would diverge.
        """
        out: list = []
        seen: set = set()
        for replica in self.replica_ids(shard):
            catalog = self.catalog_of(shard, replica)
            try:
                sub = catalog.get(entry.name)
            except KeyError:
                self.reloads += 1
                sub = self._register_replica(entry, shard, replica)
            if id(sub) not in seen:
                seen.add(id(sub))
                out.append((catalog, sub))
        if not out:
            raise KeyError(
                f"shard {shard} has no serving replica for "
                f"{entry.name!r}"
            )
        return out

    def _after_mutation(self, entry: ShardedEntry) -> None:
        """Collection-level bookkeeping after one applied mutation."""
        live = [entry.graphs[g] for g in entry.live_graph_ids()]
        if live:
            entry.stats = LabelStats.of_collection(live)
        # per-shard index blobs in the store were dumped against the
        # pre-mutation partition; restoring one now would resurrect a
        # removed graph or miss an added one, so the records are
        # dropped until the next checkpoint re-captures the state
        self._store_records.pop(entry.name, None)
        self.mutation_epoch += 1

    def reassign(
        self,
        name: str,
        assignment: Sequence[Sequence[int]],
    ) -> tuple[int, ...]:
        """Migrate ``name``'s graphs to a new shard assignment.

        The quiesce-point migration primitive behind
        :class:`~repro.service.rebalance.Rebalancer`: callers must
        guarantee no query is mid-flight against this entry (the
        service's ``idle`` property).  Whole stored graphs move between
        shards — only the shards whose partitions actually changed are
        unloaded and re-registered (fresh matcher indexes, filter
        indexes, and routing sketches), the rest keep their warm state.
        The new assignment must be a permutation-free re-partition of
        exactly the same global graph ids; anything else raises before
        any shard is touched.

        Returns the changed shard ids (empty when the assignment is
        already in place).  Answers are invariant under reassignment
        for the same reason they are invariant under sharding at all:
        filtering is a per-graph predicate, and the merge maps local
        ids back to global ids.
        """
        entry = self.get(name)
        if entry.kind != "ftv":
            raise ValueError(
                f"dataset {name!r} is not a collection; NFV entries "
                "live whole on their home shard"
            )
        new = tuple(tuple(sorted(ids)) for ids in assignment)
        if len(new) != self.num_shards:
            raise ValueError(
                f"assignment has {len(new)} shards; catalog has "
                f"{self.num_shards}"
            )
        flat = sorted(g for ids in new for g in ids)
        if flat != list(range(len(entry.graphs))):
            raise ValueError(
                "assignment must cover every graph id exactly once"
            )
        old = entry.assignment
        changed = tuple(
            s for s in range(self.num_shards) if new[s] != old[s]
        )
        if not changed:
            return ()
        moved = sum(
            len(set(new[s]) - set(old[s])) for s in changed
        )
        entry.assignment = new
        touched: list[int] = []
        try:
            for shard in changed:
                touched.append(shard)
                self._unload_shard(name, shard)
                if new[shard]:
                    self._register_shard(entry, shard)
                elif entry.router is not None:
                    entry.router.refresh(shard, None)
        except Exception:
            # a re-register failed mid-migration: roll back to the
            # prior assignment so no half-applied epoch can serve.
            # Only the shards this call touched are rebuilt; the
            # failing build's partial state is unloaded with them.
            entry.assignment = old
            for shard in touched:
                self._unload_shard(name, shard)
                if old[shard]:
                    self._register_shard(entry, shard)
                elif entry.router is not None:
                    entry.router.refresh(shard, None)
            if entry.router is not None:
                entry.router.bump()
            self.rollbacks += 1
            raise
        if entry.router is not None:
            entry.router.bump()
        self.reassignments += 1
        self.migrated_graphs += moved
        return changed

    def _unload_shard(self, name: str, shard: int) -> None:
        """Drop ``name`` from every serving replica of ``shard``."""
        for replica in self.replica_ids(shard):
            self.catalog_of(shard, replica).unload(name)

    def unload(self, name: str) -> None:
        """Drop a dataset from every replica pool (explicit, final)."""
        self._entries.pop(name, None)
        for catalog in self.pool_catalogs:
            catalog.unload(name)

    def datasets(self) -> list[str]:
        """Names of the loaded datasets."""
        return sorted(self._entries)

    def memory_report(self) -> dict:
        """Per-shard memory accounting plus catalog-wide totals.

        ``shards`` reports the primary (replica-0) catalogs — the
        pre-replication view — while totals and eviction counters sum
        over every replica pool.  ``total_bytes`` deliberately counts
        an adopted (shared) entry once per replica holding it: that is
        the watermark each replica catalog enforces, so the report and
        the eviction behaviour agree even though shared objects make
        the true resident set smaller.
        """
        per_pool = [c.memory_report() for c in self.pool_catalogs]
        primaries = [
            per_pool[self._pool_of[(s, 0)]]
            for s in range(self.num_shards)
        ]
        store = (
            {"store": self.store.as_metrics()}
            if self.store is not None
            else {}
        )
        return {
            **store,
            "num_shards": self.num_shards,
            "replicas": [
                len(self.replica_ids(s))
                for s in range(self.num_shards)
            ],
            "shards": primaries,
            "pools": {
                f"{s}/{r}": per_pool[pool]
                for (s, r), pool in sorted(self._pool_of.items())
            },
            "total_bytes": sum(r["total_bytes"] for r in per_pool),
            "evictions": sum(r["evictions"] for r in per_pool),
            "reloads": (
                self.reloads + sum(r["reloads"] for r in per_pool)
            ),
            "shared_warm": self.shared_warm,
            "rollbacks": self.rollbacks,
            "replicas_added": self.replicas_added,
            "replicas_released": self.replicas_released,
            "reassignments": self.reassignments,
            "migrated_graphs": self.migrated_graphs,
            "datasets": {
                name: {
                    "kind": e.kind,
                    "graphs_per_shard": [
                        len(ids) for ids in e.assignment
                    ],
                    **(
                        {"routing": e.router.as_metrics()}
                        if e.router is not None
                        else {}
                    ),
                }
                for name, e in sorted(self._entries.items())
            },
        }


# ----------------------------------------------------------------------
# fan-out merge
# ----------------------------------------------------------------------

def merge_shard_outcomes(
    outcomes: dict[int, RaceOutcome],
    id_maps: dict[int, Optional[tuple[int, ...]]],
) -> RaceOutcome:
    """Fold per-shard race outcomes into one :class:`RaceOutcome`.

    ``id_maps[shard]`` maps the shard's local graph ids to global ids
    (``None`` = identity — NFV entries and the unsharded path).  With a
    single identity-mapped shard the outcome passes through untouched,
    which is what keeps the unsharded service bit-for-bit the
    pre-sharding service.

    Merge semantics (deterministic, shard-order fold):

    * ``found`` — OR over shards; ``killed`` — OR over shards (one
      budget-killed shard leaves the merged answer incomplete, so it is
      marked killed and never cached);
    * ``matching_ids`` — per-shard local matches mapped to global ids
      and merged ascending, identical to the unsharded sweep order;
    * ``num_embeddings`` — summed (FTV: the count of matching graphs);
    * ``steps`` — the deciding shard's race time, where the deciding
      shard is the lowest-indexed shard that found a match, or, when
      none did, the slowest shard (parallel completion time: shards run
      on disjoint pools);
    * ``winner`` — the deciding shard's winner;
    * ``per_variant_steps`` — summed per variant across shards (the
      total work bill of the fan-out).
    """
    if not outcomes:
        raise ValueError("cannot merge zero shard outcomes")
    shards = sorted(outcomes)
    if len(shards) == 1 and id_maps.get(shards[0]) is None:
        return outcomes[shards[0]]
    found_shards = [s for s in shards if outcomes[s].found]
    if found_shards:
        deciding = found_shards[0]
    else:
        deciding = max(shards, key=lambda s: (outcomes[s].steps, -s))
    matching: list[int] = []
    num_embeddings = 0
    per_variant: dict = {}
    overhead = 0
    for s in shards:
        race = outcomes[s]
        overhead += race.overhead_steps
        for variant, steps in race.per_variant_steps.items():
            per_variant[variant] = per_variant.get(variant, 0) + steps
        if race.outcome is None:
            continue
        num_embeddings += race.outcome.num_embeddings
        local = tuple(getattr(race.outcome, "matching_ids", ()))
        id_map = id_maps.get(s)
        matching.extend(
            local if id_map is None else (id_map[i] for i in local)
        )
    found = bool(found_shards)
    merged_match = MatchOutcome(
        found=found, num_embeddings=num_embeddings
    )
    merged_match.matching_ids = tuple(sorted(matching))
    return RaceOutcome(
        winner=outcomes[deciding].winner,
        outcome=merged_match,
        steps=outcomes[deciding].steps,
        found=found,
        killed=any(outcomes[s].killed for s in shards),
        overhead_steps=overhead,
        per_variant_steps=per_variant,
    )
