"""Sharded catalogs and fan-out/merge answers for the serving layer.

The paper races query *variants* and keeps the first finisher; the
ROADMAP's scaling item applies the same discipline one level up, across
**partitions of the data**.  A :class:`ShardedCatalog` splits a stored
graph collection across N :class:`~repro.service.catalog.DatasetCatalog`
shards (hash or size-balanced assignment); each shard warms its own
matcher indexes and Grapes/GGSX filter over its partition only.  The
service fans a query out into one race per involved shard, runs them on
per-shard worker pools (``Dispatcher(pools=N)``) over the shared
virtual clock, and merges the per-shard :class:`RaceOutcome`\\ s with
:func:`merge_shard_outcomes`.

Equivalence invariants (proven in ``tests/test_service_sharding.py``):

* **Completed decision answers are shard-invariant.**  An FTV filter
  is a per-graph predicate — a stored graph survives filtering iff it
  alone contains the query's features often enough — so a shard's
  candidate set is exactly the global candidate set restricted to the
  shard, and the union of per-shard verified matches equals the
  single-catalog match set.  The merged ``found`` /
  ``num_embeddings`` / ``matching_ids`` (mapped back to global graph
  ids, ascending) of every *budget-completed* query are therefore
  **bit-for-bit identical** to the unsharded answer, which is what
  lets sharded and unsharded serving share one result cache.  The kill
  cap is the one budget semantic that is per race: each shard race
  gets the ticket's full step budget as its own time cap (merged race
  *time* never exceeds the budget, but total *work* may reach budget x
  shards), so under a budget tight enough to kill, *which* queries die
  can differ between layouts — exactly why killed results are
  execution-dependent and are never cached in any layout.
* **Everything is deterministic.**  Assignment is a pure function of
  (graph shapes, shard count, strategy); per-shard races are the same
  deterministic generators as solo races; the merge is a pure fold in
  shard order.  Two runs of the same sharded workload produce identical
  answers, bills, and latencies.
* **Bills are historical, not invariant.**  Merged ``steps`` is the
  *parallel* completion time — the slowest (or, under first-true
  short-circuit, the deciding) shard's race time — and
  ``per_variant_steps`` sums each variant's work across shards.  Like
  every cached bill, these describe what this run paid, not what any
  isomorphic re-issue would pay.

First-winner semantics one level up: in *decision-only* mode
(``QueryOptions(decision_only=True)``) a shard whose race finds a match
settles the query — the service cancels the sibling shards' remaining
budget, mirroring the paper's race where the first finisher kills the
losers.  In the default full mode every shard completes so the merged
``matching_ids`` stay bit-for-bit complete.

Routing rides on top: each FTV entry carries a
:class:`~repro.service.routing.ShardRouter` whose per-shard feature
sketches let the service prune provably-empty shards from the fan-out
and order decision fan-outs (see :mod:`repro.service.routing`), and
:meth:`ShardedCatalog.reassign` migrates whole graphs between shards
at quiesce points (:mod:`repro.service.rebalance`) — both preserving
the answer invariants above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import zlib

from ..graphs import LabeledGraph
from ..harness import (
    FTV_DATASETS,
    NFV_DATASETS,
    build_ftv_graphs,
    build_nfv_graph,
)
from ..matching import MatchOutcome
from ..psi.executors import OverheadModel, RaceOutcome
from ..rewriting import LabelStats
from .catalog import DatasetCatalog, DatasetEntry
from .routing import ShardRouter

__all__ = [
    "assign_shards",
    "ShardedEntry",
    "ShardedCatalog",
    "merge_shard_outcomes",
]


def assign_shards(
    graphs: Sequence[LabeledGraph],
    num_shards: int,
    strategy: str = "size_balanced",
) -> tuple[tuple[int, ...], ...]:
    """Partition graph ids across ``num_shards`` shards.

    Returns one ascending tuple of global graph ids per shard.  Both
    strategies are pure functions of the inputs (no randomness, no
    iteration-order dependence), so an assignment can be reproduced
    from the dataset alone:

    * ``"hash"`` — graph ``g`` goes to shard ``g % num_shards``; cheap
      and stateless, but blind to graph sizes;
    * ``"size_balanced"`` — longest-processing-time greedy: graphs are
      placed largest-first (by edge count, id as tie-break) onto the
      shard with the fewest assigned edges, so shard verification loads
      stay even when graph sizes vary widely.

    Shards may come out empty when ``num_shards`` exceeds the graph
    count; the service simply never fans a query out to them.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if strategy == "hash":
        out: list[list[int]] = [[] for _ in range(num_shards)]
        for gid in range(len(graphs)):
            out[gid % num_shards].append(gid)
        return tuple(tuple(ids) for ids in out)
    if strategy == "size_balanced":
        out = [[] for _ in range(num_shards)]
        loads = [0] * num_shards
        order = sorted(
            range(len(graphs)),
            key=lambda g: (-graphs[g].size, g),
        )
        for gid in order:
            shard = min(range(num_shards), key=lambda s: (loads[s], s))
            out[shard].append(gid)
            loads[shard] += graphs[gid].size
        return tuple(tuple(sorted(ids)) for ids in out)
    raise ValueError(
        f"unknown assignment strategy {strategy!r}; "
        "known: hash, size_balanced"
    )


@dataclass
class ShardedEntry:
    """One dataset as the sharded catalog serves it.

    Mirrors the fields the service reads off a
    :class:`~repro.service.catalog.DatasetEntry` (``kind``, ``scale``,
    ``stats``) so cache keys — and therefore cache hits — are shared
    with unsharded serving, plus the shard map: which global graph ids
    live on which shard.
    """

    name: str
    scale: str
    kind: str  # "nfv" | "ftv"
    #: the full collection in global id order (graph objects are shared
    #: with the shard entries, never copied)
    graphs: list[LabeledGraph]
    #: collection-wide label statistics (identical to the unsharded
    #: entry's, so rewriting decisions don't depend on shard layout)
    stats: LabelStats
    #: ascending global graph ids per shard (empty tuple = empty shard)
    assignment: tuple[tuple[int, ...], ...]
    #: the single shard holding an NFV entry's stored graph
    home_shard: int
    _catalog: "ShardedCatalog"
    #: per-shard sketch router (FTV entries only; None = unroutable)
    router: Optional[ShardRouter] = None

    @property
    def num_shards(self) -> int:
        """Shard count of the owning catalog."""
        return len(self.assignment)

    @property
    def max_path_length(self) -> int:
        """The entry's FTV feature path length (census configuration)."""
        return self._register_config[3]

    def involved_shards(self) -> tuple[int, ...]:
        """Shards that hold at least one graph (fan-out targets)."""
        if self.kind == "nfv":
            return (self.home_shard,)
        return tuple(
            s for s, ids in enumerate(self.assignment) if ids
        )

    def shard_ids(self, shard: int) -> tuple[int, ...]:
        """Global graph ids stored on ``shard`` (local id = position)."""
        return self.assignment[shard]

    def shard_entry(self, shard: int) -> DatasetEntry:
        """The shard's warm :class:`DatasetEntry` (reload-transparent)."""
        return self._catalog.shard_entry(self.name, shard)

    @property
    def psi(self):
        """The NFV entry's warm Ψ frontend (home shard)."""
        if self.kind != "nfv":
            raise ValueError(f"dataset {self.name!r} is a collection")
        return self.shard_entry(self.home_shard).psi


class ShardedCatalog:
    """N shard catalogs serving partitions of each dataset.

    ``load`` builds a named dataset once, partitions collections with
    :func:`assign_shards`, and registers each partition on its own
    :class:`DatasetCatalog` shard — so every shard warms its own
    matcher indexes and Grapes/GGSX filters over just its graphs.  NFV
    datasets (one stored graph) live whole on a deterministic home
    shard.

    ``max_bytes`` is split evenly across shards: each shard catalog
    enforces its own watermark and evicts independently, so memory
    accounting — like work — is per shard.  A watermark-evicted shard
    partition is transparently re-registered on next access (the
    ``reloads`` counter ticks), because the sharded catalog retains the
    built collection and assignment.
    """

    def __init__(
        self,
        num_shards: int = 2,
        overhead: OverheadModel = OverheadModel(),
        max_bytes: Optional[int] = None,
        assignment: str = "size_balanced",
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if max_bytes is not None and max_bytes < num_shards:
            raise ValueError("max_bytes must be >= num_shards")
        self.num_shards = num_shards
        self.overhead = overhead
        self.assignment_strategy = assignment
        per_shard = (
            max_bytes // num_shards if max_bytes is not None else None
        )
        self.shards = [
            DatasetCatalog(overhead=overhead, max_bytes=per_shard)
            for _ in range(num_shards)
        ]
        #: transparent re-registrations of watermark-evicted partitions
        self.reloads = 0
        #: completed :meth:`reassign` calls (rebalance bookkeeping)
        self.reassignments = 0
        #: whole stored graphs moved between shards across all reassigns
        self.migrated_graphs = 0
        self._entries: dict[str, ShardedEntry] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def load(
        self,
        name: str,
        scale: str = "default",
        algorithms: tuple[str, ...] = ("GQL", "SPA"),
        ftv_method: str = "Grapes",
        max_path_length: int = 3,
    ) -> ShardedEntry:
        """Load ``name``, partition it, and warm every shard.

        Idempotent per name with the same configuration; a conflicting
        re-load raises, mirroring :meth:`DatasetCatalog.load`.
        """
        config = (scale, tuple(algorithms), ftv_method, max_path_length)
        existing = self._entries.get(name)
        if existing is not None:
            if existing._load_config != config:
                raise ValueError(
                    f"dataset {name!r} already loaded with config "
                    f"{existing._load_config}; unload it before "
                    f"re-loading with {config}"
                )
            return existing
        if name in NFV_DATASETS:
            graphs = [build_nfv_graph(name, scale)]
            kind = "nfv"
            home = zlib.crc32(name.encode()) % self.num_shards
            assignment = tuple(
                (0,) if s == home else ()
                for s in range(self.num_shards)
            )
        elif name in FTV_DATASETS:
            graphs = build_ftv_graphs(name, scale)
            kind = "ftv"
            home = 0
            assignment = assign_shards(
                graphs, self.num_shards, self.assignment_strategy
            )
        else:
            raise ValueError(
                f"unknown dataset {name!r}; known: "
                f"{NFV_DATASETS + FTV_DATASETS}"
            )
        entry = ShardedEntry(
            name=name,
            scale=scale,
            kind=kind,
            graphs=graphs,
            stats=LabelStats.of_collection(graphs),
            assignment=assignment,
            home_shard=home,
            _catalog=self,
        )
        entry._load_config = config
        entry._register_config = (
            scale, tuple(algorithms), ftv_method, max_path_length
        )
        if kind == "ftv":
            entry.router = ShardRouter(entry)
        self._entries[name] = entry
        for shard in entry.involved_shards():
            self._register_shard(entry, shard)
        return entry

    def _register_shard(
        self, entry: ShardedEntry, shard: int
    ) -> DatasetEntry:
        """(Re-)register one partition on its shard catalog.

        Every (re-)registration also re-folds the shard's routing
        sketch from the fresh filter index, so watermark-eviction
        reloads and rebalance migrations can never leave a stale
        sketch behind.
        """
        scale, algorithms, ftv_method, max_path_length = (
            entry._register_config
        )
        sub = self.shards[shard].register(
            entry.name,
            [entry.graphs[g] for g in entry.assignment[shard]],
            kind=entry.kind,
            scale=scale,
            algorithms=algorithms,
            ftv_method=ftv_method,
            max_path_length=max_path_length,
        )
        if entry.router is not None:
            entry.router.refresh(shard, sub.ftv_index)
        return sub

    def get(self, name: str) -> ShardedEntry:
        """The sharded entry for ``name`` (KeyError when never loaded)."""
        entry = self._entries.get(name)
        if entry is None:
            raise KeyError(
                f"dataset {name!r} not loaded; sharded catalog holds "
                f"{sorted(self._entries)}"
            )
        return entry

    def shard_entry(self, name: str, shard: int) -> DatasetEntry:
        """One shard's warm partition entry.

        A partition the shard catalog watermark-evicted is transparently
        re-registered here (the sharded catalog still holds the graphs
        and the assignment), so eviction trades latency for memory
        without ever turning a loaded dataset into an error.
        """
        entry = self.get(name)
        if not entry.assignment[shard]:
            raise KeyError(f"shard {shard} holds no graphs of {name!r}")
        try:
            return self.shards[shard].get(name)
        except KeyError:
            self.reloads += 1
            return self._register_shard(entry, shard)

    def reassign(
        self,
        name: str,
        assignment: Sequence[Sequence[int]],
    ) -> tuple[int, ...]:
        """Migrate ``name``'s graphs to a new shard assignment.

        The quiesce-point migration primitive behind
        :class:`~repro.service.rebalance.Rebalancer`: callers must
        guarantee no query is mid-flight against this entry (the
        service's ``idle`` property).  Whole stored graphs move between
        shards — only the shards whose partitions actually changed are
        unloaded and re-registered (fresh matcher indexes, filter
        indexes, and routing sketches), the rest keep their warm state.
        The new assignment must be a permutation-free re-partition of
        exactly the same global graph ids; anything else raises before
        any shard is touched.

        Returns the changed shard ids (empty when the assignment is
        already in place).  Answers are invariant under reassignment
        for the same reason they are invariant under sharding at all:
        filtering is a per-graph predicate, and the merge maps local
        ids back to global ids.
        """
        entry = self.get(name)
        if entry.kind != "ftv":
            raise ValueError(
                f"dataset {name!r} is not a collection; NFV entries "
                "live whole on their home shard"
            )
        new = tuple(tuple(sorted(ids)) for ids in assignment)
        if len(new) != self.num_shards:
            raise ValueError(
                f"assignment has {len(new)} shards; catalog has "
                f"{self.num_shards}"
            )
        flat = sorted(g for ids in new for g in ids)
        if flat != list(range(len(entry.graphs))):
            raise ValueError(
                "assignment must cover every graph id exactly once"
            )
        old = entry.assignment
        changed = tuple(
            s for s in range(self.num_shards) if new[s] != old[s]
        )
        if not changed:
            return ()
        moved = sum(
            len(set(new[s]) - set(old[s])) for s in changed
        )
        entry.assignment = new
        for shard in changed:
            self.shards[shard].unload(name)
            if new[shard]:
                self._register_shard(entry, shard)
            elif entry.router is not None:
                entry.router.refresh(shard, None)
        if entry.router is not None:
            entry.router.bump()
        self.reassignments += 1
        self.migrated_graphs += moved
        return changed

    def unload(self, name: str) -> None:
        """Drop a dataset from every shard (explicit, final)."""
        self._entries.pop(name, None)
        for shard in self.shards:
            shard.unload(name)

    def datasets(self) -> list[str]:
        """Names of the loaded datasets."""
        return sorted(self._entries)

    def memory_report(self) -> dict:
        """Per-shard memory accounting plus catalog-wide totals."""
        per = [shard.memory_report() for shard in self.shards]
        return {
            "num_shards": self.num_shards,
            "shards": per,
            "total_bytes": sum(r["total_bytes"] for r in per),
            "evictions": sum(r["evictions"] for r in per),
            "reloads": (
                self.reloads + sum(r["reloads"] for r in per)
            ),
            "reassignments": self.reassignments,
            "migrated_graphs": self.migrated_graphs,
            "datasets": {
                name: {
                    "kind": e.kind,
                    "graphs_per_shard": [
                        len(ids) for ids in e.assignment
                    ],
                    **(
                        {"routing": e.router.as_metrics()}
                        if e.router is not None
                        else {}
                    ),
                }
                for name, e in sorted(self._entries.items())
            },
        }


# ----------------------------------------------------------------------
# fan-out merge
# ----------------------------------------------------------------------

def merge_shard_outcomes(
    outcomes: dict[int, RaceOutcome],
    id_maps: dict[int, Optional[tuple[int, ...]]],
) -> RaceOutcome:
    """Fold per-shard race outcomes into one :class:`RaceOutcome`.

    ``id_maps[shard]`` maps the shard's local graph ids to global ids
    (``None`` = identity — NFV entries and the unsharded path).  With a
    single identity-mapped shard the outcome passes through untouched,
    which is what keeps the unsharded service bit-for-bit the
    pre-sharding service.

    Merge semantics (deterministic, shard-order fold):

    * ``found`` — OR over shards; ``killed`` — OR over shards (one
      budget-killed shard leaves the merged answer incomplete, so it is
      marked killed and never cached);
    * ``matching_ids`` — per-shard local matches mapped to global ids
      and merged ascending, identical to the unsharded sweep order;
    * ``num_embeddings`` — summed (FTV: the count of matching graphs);
    * ``steps`` — the deciding shard's race time, where the deciding
      shard is the lowest-indexed shard that found a match, or, when
      none did, the slowest shard (parallel completion time: shards run
      on disjoint pools);
    * ``winner`` — the deciding shard's winner;
    * ``per_variant_steps`` — summed per variant across shards (the
      total work bill of the fan-out).
    """
    if not outcomes:
        raise ValueError("cannot merge zero shard outcomes")
    shards = sorted(outcomes)
    if len(shards) == 1 and id_maps.get(shards[0]) is None:
        return outcomes[shards[0]]
    found_shards = [s for s in shards if outcomes[s].found]
    if found_shards:
        deciding = found_shards[0]
    else:
        deciding = max(shards, key=lambda s: (outcomes[s].steps, -s))
    matching: list[int] = []
    num_embeddings = 0
    per_variant: dict = {}
    overhead = 0
    for s in shards:
        race = outcomes[s]
        overhead += race.overhead_steps
        for variant, steps in race.per_variant_steps.items():
            per_variant[variant] = per_variant.get(variant, 0) + steps
        if race.outcome is None:
            continue
        num_embeddings += race.outcome.num_embeddings
        local = tuple(getattr(race.outcome, "matching_ids", ()))
        id_map = id_maps.get(s)
        matching.extend(
            local if id_map is None else (id_map[i] for i in local)
        )
    found = bool(found_shards)
    merged_match = MatchOutcome(
        found=found, num_embeddings=num_embeddings
    )
    merged_match.matching_ids = tuple(sorted(matching))
    return RaceOutcome(
        winner=outcomes[deciding].winner,
        outcome=merged_match,
        steps=outcomes[deciding].steps,
        found=found,
        killed=any(outcomes[s].killed for s in shards),
        overhead_steps=overhead,
        per_variant_steps=per_variant,
    )
