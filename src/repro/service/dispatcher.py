"""Deterministic concurrent dispatch of many Ψ races.

The paper runs one race at a time; a service interleaves many.  The
single-query semantics stay **bit-for-bit identical** to
:func:`repro.psi.executors.interleaved_race` because both run the same
loop: :class:`repro.psi.executors.RaceTask` (re-exported here), whose
:meth:`~repro.psi.executors.RaceTask.round` executes exactly one
quantum turn and can therefore be interleaved with other races —
engines are generators and don't notice what runs between their turns.

:class:`Dispatcher` owns ``workers`` simulated workers.  Each tick it
walks the active races in the caller-provided priority order (the
service passes fair-share order) and runs one round per race while
worker slots remain; a race's variants are co-scheduled (the paper's
thread-group model), so a race needs ``len(alive_variants)`` slots.
The virtual clock advances one quantum per tick — the parallel time of
the workers' step slices.

Determinism: engines are deterministic generators, the tick order is a
pure function of submission history, and the clock is virtual — two
runs of the same workload produce identical winners, step totals, and
latencies, on any machine.
"""

from __future__ import annotations

from typing import Optional

from ..psi.executors import (
    DEFAULT_RACE_QUANTUM,
    RaceOutcome,
    RaceTask,
)

__all__ = ["RaceTask", "Dispatcher"]


class Dispatcher:
    """Bounded worker pool interleaving many :class:`RaceTask`\\ s."""

    def __init__(
        self,
        workers: int = 4,
        quantum: int = DEFAULT_RACE_QUANTUM,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.quantum = quantum
        self.clock = 0
        self.ticks = 0
        #: total engine-steps executed across all races (work, not time)
        self.work_steps = 0
        self._active: dict[object, RaceTask] = {}

    def admit(self, token: object, race: RaceTask) -> None:
        """Attach a race to the pool under an opaque ``token``.

        A race wider than the pool can never be co-scheduled — reject
        it loudly rather than deadlocking the tick loop.
        """
        if race.width > self.workers:
            raise ValueError(
                f"race has {race.width} variants but the pool has "
                f"{self.workers} workers; shrink the variant set or "
                "grow the pool"
            )
        self._active[token] = race

    @property
    def active(self) -> int:
        """Number of races currently attached."""
        return len(self._active)

    def tokens(self) -> list:
        """Tokens of the attached races, in admission order."""
        return list(self._active)

    def slots_free(self) -> int:
        """Worker slots not claimed by active races this tick."""
        return self.workers - sum(r.width for r in self._active.values())

    def tick(
        self, order: list
    ) -> list[tuple[object, int, Optional[RaceOutcome]]]:
        """One scheduling quantum over the pool.

        ``order`` is the priority order over tokens (the service passes
        fair-share order); unknown tokens are ignored, active tokens
        missing from ``order`` run last in admission order.  Returns one
        ``(token, work_steps_this_tick, outcome_or_None)`` event per
        race that ran this tick (outcome set when it finished); the
        clock advances by one quantum.
        """
        sequence = [t for t in order if t in self._active]
        sequence += [t for t in self._active if t not in sequence]
        slots = self.workers
        events: list[tuple[object, int, Optional[RaceOutcome]]] = []
        for token in sequence:
            race = self._active[token]
            need = max(1, race.width)
            if slots < need:
                continue
            slots -= need
            outcome = race.round()
            self.work_steps += race.last_round_steps
            if outcome is not None:
                del self._active[token]
            events.append((token, race.last_round_steps, outcome))
        self.clock += self.quantum
        self.ticks += 1
        return events

    def cancel(self, token: object) -> None:
        """Detach and kill a race."""
        race = self._active.pop(token, None)
        if race is not None:
            race.close()
